// Microbenchmarks of the substrate hot paths (google-benchmark): event
// engine throughput, BFS path computation, pledge-list maintenance,
// host queue churn, and a full protocol step through the simulation.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "experiment/simulation.hpp"
#include "net/shortest_paths.hpp"
#include "node/host.hpp"
#include "proto/pledge_list.hpp"
#include "sim/engine.hpp"

namespace {

using namespace realtor;

void BM_EngineScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < batch; ++i) {
      engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EngineScheduleFire)->Arg(1024)->Arg(16384);

void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<EventId> ids;
    ids.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      ids.push_back(engine.schedule_in(static_cast<SimTime>(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      engine.cancel(ids[i]);
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
}
BENCHMARK(BM_EngineCancelHeavy);

void BM_EngineScheduleCancel(benchmark::State& state) {
  // Pure schedule + cancel throughput: every event dies before firing, so
  // the run() only drains dead heap entries.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<EventId> ids(batch);
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < batch; ++i) {
      ids[i] = engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
    }
    for (std::size_t i = 0; i < batch; ++i) {
      engine.cancel(ids[i]);
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch) * 2);
}
BENCHMARK(BM_EngineScheduleCancel)->Arg(4096);

void BM_EngineTimerChurn(benchmark::State& state) {
  // The protocol hot pattern: Algorithm H arms a HELP timeout and resets
  // it whenever a PLEDGE arrives, so most timers are cancelled and
  // re-armed many times before one finally fires.
  constexpr std::size_t kTimers = 512;
  constexpr int kRounds = 32;
  std::vector<EventId> ids(kTimers);
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < kTimers; ++i) {
      ids[i] = engine.schedule_in(10.0 + static_cast<double>(i) * 0.01,
                                  [] {});
    }
    for (int r = 0; r < kRounds; ++r) {
      for (std::size_t i = 0; i < kTimers; ++i) {
        engine.cancel(ids[i]);
        ids[i] = engine.schedule_in(
            10.0 + static_cast<double>(r) * 0.5 +
                static_cast<double>(i) * 0.01,
            [] {});
      }
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTimers * kRounds) * 2);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_ShortestPathsMesh(benchmark::State& state) {
  const auto side = static_cast<NodeId>(state.range(0));
  const net::Topology mesh = net::make_mesh(side, side);
  for (auto _ : state) {
    net::ShortestPaths sp(mesh);
    benchmark::DoNotOptimize(sp.average_path_length());
  }
}
BENCHMARK(BM_ShortestPathsMesh)->Arg(5)->Arg(10)->Arg(20);

void BM_PledgeListChurn(benchmark::State& state) {
  proto::PledgeList list(100.0, 0.1);
  RngStream rng(7, "bench");
  SimTime now = 0.0;
  for (auto _ : state) {
    now += 0.1;
    const NodeId node = static_cast<NodeId>(rng.uniform_index(64));
    list.update(node, rng.uniform01(), 1.0, now);
    list.expire(now);
    benchmark::DoNotOptimize(list.candidates(now, rng));
  }
}
BENCHMARK(BM_PledgeListChurn);

void BM_HostEnqueueComplete(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    node::Host host(engine, 0, 1e9);
    for (int i = 0; i < 1024; ++i) {
      node::Task task;
      task.id = static_cast<TaskId>(i);
      task.size_seconds = 1.0;
      host.try_enqueue(task);
    }
    engine.run();
    benchmark::DoNotOptimize(host.completed_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_HostEnqueueComplete);

void BM_SimulationSecond(benchmark::State& state) {
  // Cost of one simulated second of the full §5 experiment (REALTOR,
  // lambda=8) including protocol traffic and migrations.
  for (auto _ : state) {
    experiment::ScenarioConfig config;
    config.lambda = 8.0;
    config.duration = static_cast<SimTime>(state.range(0));
    config.seed = 42;
    experiment::Simulation sim(config);
    benchmark::DoNotOptimize(sim.run().generated);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationSecond)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_Xoshiro(benchmark::State& state) {
  RngStream rng(1, "bench");
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.exponential(5.0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
