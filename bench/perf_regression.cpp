// perf_regression — machine-readable substrate benchmarks plus the
// serial-vs-parallel correctness gate.
//
// Two artifacts seed the repo's performance trajectory:
//
//   BENCH_kernel.json  engine hot-path throughput: schedule+fire,
//                      schedule+cancel, and the Algorithm-H timer-churn
//                      pattern (ops/s each);
//   BENCH_sweep.json   the full Fig-6 sweep wall clock, serial (--jobs=1)
//                      versus parallel (--jobs=N), the speedup, and
//                      whether the two legs produced byte-identical
//                      figure tables + CSV.
//   BENCH_scale.json   the flood fan-out + attack-churn scale matrix:
//                      mesh/torus/random topologies at N in {25, 400,
//                      2500, 10000}, each cell a PUSH-flood-heavy run
//                      (~--scale-floods floods regardless of N) under two
//                      kill/restore churn waves. The N=25 cells are gated
//                      on byte-identical metrics against a reference
//                      captured before the zero-copy transport landed.
//
// Flags (besides everything bench_common.hpp documents):
//   --kernel-out=PATH   default BENCH_kernel.json
//   --sweep-out=PATH    default BENCH_sweep.json
//   --scale-out=PATH    default BENCH_scale.json
//   --skip-kernel / --skip-sweep / --skip-scale
//   --min-time=S        minimum seconds per kernel measurement (default 0.4)
//   --scale-n=25,400,2500,10000   node counts for the scale matrix
//   --scale-topos=mesh,torus,random
//   --scale-floods=N    flood budget per cell (default 5000); the metric
//                       reference only gates the default budget
//   --scale-print-reference       print fingerprint lines for embedding
//
// Exit status is nonzero when the parallel sweep output differs from the
// serial output in any byte, or when an N=25 scale cell's metrics diverge
// from the pre-change reference — CI runs this as a determinism gate (a
// correctness gate, deliberately not a timing gate).
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "experiment/figures.hpp"
#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "sim/engine.hpp"

namespace {

using namespace realtor;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct KernelResult {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_s() const { return seconds > 0.0 ? double(ops) / seconds : 0.0; }
};

/// Repeats `batch` (returning the ops it performed) until `min_time`
/// seconds have been measured.
template <typename Batch>
KernelResult measure(const std::string& name, double min_time, Batch batch) {
  KernelResult result;
  result.name = name;
  batch();  // warm-up, untimed
  const Clock::time_point start = Clock::now();
  do {
    result.ops += batch();
    result.seconds = seconds_since(start);
  } while (result.seconds < min_time);
  return result;
}

std::uint64_t schedule_fire_batch() {
  constexpr std::size_t kEvents = 16384;
  sim::Engine engine;
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  engine.run();
  return kEvents * 2;  // one schedule + one pop/fire each
}

std::uint64_t schedule_cancel_batch() {
  constexpr std::size_t kEvents = 4096;
  sim::Engine engine;
  std::vector<EventId> ids(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids[i] = engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.cancel(ids[i]);
  }
  engine.run();  // drains the dead heap entries
  return kEvents * 2;
}

std::uint64_t timer_churn_batch() {
  // Algorithm H's HELP timeout: armed, then cancelled + re-armed many
  // times before one expiry finally fires.
  constexpr std::size_t kTimers = 512;
  constexpr int kRounds = 32;
  sim::Engine engine;
  std::vector<EventId> ids(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    ids[i] = engine.schedule_in(10.0 + static_cast<double>(i) * 0.01, [] {});
  }
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      engine.cancel(ids[i]);
      ids[i] = engine.schedule_in(
          10.0 + static_cast<double>(r) * 0.5 + static_cast<double>(i) * 0.01,
          [] {});
    }
  }
  engine.run();
  return static_cast<std::uint64_t>(kTimers) * kRounds * 2;
}

int run_kernel(const Flags& flags) {
  const double min_time = flags.get_double("min-time", 0.4);
  const std::vector<KernelResult> results = {
      measure("engine_schedule_fire", min_time, schedule_fire_batch),
      measure("engine_schedule_cancel", min_time, schedule_cancel_batch),
      measure("engine_timer_churn", min_time, timer_churn_batch),
  };

  const std::string path = flags.get_string("kernel-out", "BENCH_kernel.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"seconds\": " << r.seconds
        << ", \"ops_per_s\": " << r.ops_per_s() << "}"
        << (i + 1 < results.size() ? "," : "") << '\n';
    std::cout << r.name << ": " << r.ops_per_s() / 1e6 << " Mops/s\n";
  }
  out << "  ],\n  \"hardware_concurrency\": " << resolve_jobs(0) << "\n}\n";
  std::cout << "kernel throughput -> " << path << '\n';
  return 0;
}

/// Everything a sweep prints, rendered to one string: the four paper
/// figure tables plus their CSV forms. Byte equality of this string is the
/// determinism gate between the serial and parallel legs.
std::string render_sweep(const std::vector<experiment::SweepCell>& cells) {
  std::ostringstream os;
  const auto tables = {
      experiment::fig5_admission_probability(cells),
      experiment::fig6_message_overhead(cells),
      experiment::fig7_cost_per_admitted(cells),
      experiment::fig8_migration_rate(cells),
  };
  for (const Table& table : tables) {
    table.print(os);
    table.print_csv(os);
  }
  return os.str();
}

int run_sweep_bench(const Flags& flags) {
  const experiment::ScenarioConfig config = benchutil::base_config(flags);
  experiment::SweepOptions options = benchutil::sweep_options(flags);
  const unsigned parallel_jobs = resolve_jobs(options.jobs);
  const std::size_t runs = options.protocols.size() *
                           options.lambdas.size() * options.replications;

  std::cout << "sweep: " << options.protocols.size() << " protocols x "
            << options.lambdas.size() << " lambdas x "
            << options.replications << " reps = " << runs
            << " runs, duration=" << config.duration << " s\n";

  options.jobs = 1;
  const Clock::time_point serial_start = Clock::now();
  const auto serial_cells = experiment::run_sweep(config, options);
  const double serial_seconds = seconds_since(serial_start);
  std::cout << "serial (--jobs=1): " << serial_seconds << " s\n";

  options.jobs = parallel_jobs;
  const Clock::time_point parallel_start = Clock::now();
  const auto parallel_cells = experiment::run_sweep(config, options);
  const double parallel_seconds = seconds_since(parallel_start);
  std::cout << "parallel (--jobs=" << parallel_jobs << "): "
            << parallel_seconds << " s\n";

  const std::string serial_render = render_sweep(serial_cells);
  const bool identical = serial_render == render_sweep(parallel_cells);
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::cout << "speedup: " << speedup << "x, identical: "
            << (identical ? "yes" : "NO — determinism violation") << '\n';

  const std::string path = flags.get_string("sweep-out", "BENCH_sweep.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n  \"figure\": \"fig6\",\n  \"runs\": " << runs
      << ",\n  \"replications\": " << options.replications
      << ",\n  \"duration\": " << config.duration
      << ",\n  \"jobs\": " << parallel_jobs
      << ",\n  \"serial_seconds\": " << serial_seconds
      << ",\n  \"parallel_seconds\": " << parallel_seconds
      << ",\n  \"speedup\": " << speedup
      << ",\n  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::cout << "sweep wall clock -> " << path << '\n';
  return identical ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Scale matrix: flood fan-out + attack churn at N up to 10k nodes.
//
// Each cell runs pure PUSH (one advert flood per alive node per second) at
// per-node arrival rate 0.5/s for `floods / N` simulated seconds, so every
// cell performs roughly the same number of floods while fan-out width grows
// with N. Two attack waves (kill max(1, N/50) nodes, restore them after 20%
// of the run) churn the topology version, exercising the shortest-path
// invalidation path. The unicast cost is pinned at 4.0 for every topology so
// the cell measures the transport data path, not path statistics.

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

experiment::ScenarioConfig scale_config(const std::string& topo, NodeId n,
                                        std::uint64_t floods) {
  experiment::ScenarioConfig c;
  if (topo == "torus") {
    c.topology.kind = experiment::TopologyKind::kTorus;
    c.topology.width = static_cast<NodeId>(std::lround(std::sqrt(double(n))));
    c.topology.height = c.topology.width;
  } else if (topo == "random") {
    c.topology.kind = experiment::TopologyKind::kRandom;
    c.topology.nodes = n;
    c.topology.links = static_cast<std::size_t>(n) * 2;
    c.topology.seed = 1;
  } else {
    c.topology.kind = experiment::TopologyKind::kMesh;
    c.topology.width = static_cast<NodeId>(std::lround(std::sqrt(double(n))));
    c.topology.height = c.topology.width;
  }
  c.protocol_kind = proto::ProtocolKind::kPurePush;
  c.protocol.push_interval = 1.0;
  c.lambda = 0.5 * static_cast<double>(n);
  // At least one advertise tick per node: below 1 s the periodic adverts
  // (first fired at push_interval) would never run and the cell would
  // measure nothing. Only the N=10000 cells hit the floor (and so flood
  // ~2x the nominal count); the N=25 reference cells keep duration 200 s.
  c.duration = std::max(
      1.0, static_cast<double>(floods) / static_cast<double>(n));
  c.seed = 42;
  c.fixed_unicast_cost = 4.0;  // every topology: isolate the fan-out path

  const std::size_t victims =
      std::max<std::size_t>(1, static_cast<std::size_t>(n) / 50);
  for (const double at : {0.3, 0.6}) {
    experiment::AttackWave wave;
    wave.time = at * c.duration;
    wave.count = victims;
    wave.grace = 0.0;
    wave.outage = 0.2 * c.duration;
    c.attacks.push_back(wave);
  }
  return c;
}

/// Every counter a run produces, rendered to one exact string. Byte
/// equality of this fingerprint is the before/after gate for the zero-copy
/// transport: sharing payloads and batching deliveries must not move a
/// single task or message.
std::string metrics_fingerprint(const experiment::RunMetrics& m) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "gen=" << m.generated << ";local=" << m.admitted_local
     << ";migr=" << m.admitted_migrated << ";rej=" << m.rejected
     << ";dead=" << m.arrivals_at_dead_nodes << ";comp=" << m.completed
     << ";lost=" << m.lost_to_attack << ";sends=" << m.ledger.total_sends()
     << ";cost=" << m.ledger.total_cost()
     << ";overhead=" << m.ledger.overhead_cost();
  return os.str();
}

struct ScaleReference {
  const char* topo;
  NodeId n;
  const char* fingerprint;
};

/// Captured from the pre-change build (eager all-pairs refresh, per-
/// destination message copies) at the default --scale-floods=5000, seed 42.
constexpr ScaleReference kScaleReference[] = {
    {"mesh", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=194892;overhead=194080"},
    {"torus", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=243112;overhead=242300"},
    {"random", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=240232;overhead=239420"},
};

struct ScaleResult {
  std::string topo;
  NodeId n = 0;
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t floods = 0;
  std::string fingerprint;
  bool gated = false;      // an N=25 reference exists for this cell
  bool identical = true;   // fingerprint matched that reference
};

int run_scale(const Flags& flags) {
  const std::uint64_t floods =
      static_cast<std::uint64_t>(flags.get_int("scale-floods", 5000));
  const bool print_reference =
      flags.get_bool("scale-print-reference", false);
  std::vector<std::string> topos =
      split_csv(flags.get_string("scale-topos", "mesh,torus,random"));
  std::vector<NodeId> sizes;
  for (const double n :
       flags.get_double_list("scale-n", {25, 400, 2500, 10000})) {
    sizes.push_back(static_cast<NodeId>(n));
  }

  std::vector<ScaleResult> results;
  bool all_identical = true;
  for (const std::string& topo : topos) {
    for (const NodeId n : sizes) {
      const experiment::ScenarioConfig config = scale_config(topo, n, floods);
      experiment::Simulation sim(config);
      const Clock::time_point start = Clock::now();
      const experiment::RunMetrics& metrics = sim.run();
      ScaleResult result;
      result.topo = topo;
      result.n = n;
      result.seconds = seconds_since(start);
      result.events = sim.engine().events_processed();
      result.floods = metrics.ledger.sends(net::MessageKind::kPushAdvert);
      result.fingerprint = metrics_fingerprint(metrics);
      if (floods == 5000) {
        for (const ScaleReference& ref : kScaleReference) {
          if (result.topo == ref.topo && result.n == ref.n) {
            result.gated = true;
            result.identical = result.fingerprint == ref.fingerprint;
            all_identical = all_identical && result.identical;
          }
        }
      }
      std::cout << "scale " << topo << " n=" << n << ": " << result.seconds
                << " s, " << result.events << " events, " << result.floods
                << " floods"
                << (result.gated
                        ? (result.identical ? " [reference ok]"
                                            : " [REFERENCE MISMATCH]")
                        : "")
                << '\n';
      if (print_reference) {
        std::cout << "    {\"" << topo << "\", " << n << ", \""
                  << result.fingerprint << "\"},\n";
      }
      results.push_back(std::move(result));
    }
  }

  const std::string path = flags.get_string("scale-out", "BENCH_scale.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n  \"floods_per_cell\": " << floods << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    out << "    {\"topology\": \"" << r.topo << "\", \"n\": " << r.n
        << ", \"seconds\": " << r.seconds << ", \"events\": " << r.events
        << ", \"floods\": " << r.floods << ", \"events_per_s\": "
        << (r.seconds > 0.0 ? double(r.events) / r.seconds : 0.0)
        << ", \"gated\": " << (r.gated ? "true" : "false")
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"reference_ok\": " << (all_identical ? "true" : "false")
      << "\n}\n";
  std::cout << "scale matrix -> " << path << '\n';
  if (!all_identical) {
    std::cerr << "scale matrix diverged from the pre-change reference\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  int status = 0;
  if (!flags.get_bool("skip-kernel", false)) {
    status = run_kernel(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-scale", false)) {
    status = run_scale(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-sweep", false)) {
    status = run_sweep_bench(flags);
  }
  return status;
}
