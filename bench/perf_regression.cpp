// perf_regression — machine-readable substrate benchmarks plus the
// serial-vs-parallel correctness gate.
//
// Two artifacts seed the repo's performance trajectory:
//
//   BENCH_kernel.json  engine hot-path throughput: schedule+fire,
//                      schedule+cancel, and the Algorithm-H timer-churn
//                      pattern (ops/s each);
//   BENCH_sweep.json   the full Fig-6 sweep wall clock, serial (--jobs=1)
//                      versus parallel (--jobs=N), the speedup, and
//                      whether the two legs produced byte-identical
//                      figure tables + CSV.
//
// Flags (besides everything bench_common.hpp documents):
//   --kernel-out=PATH   default BENCH_kernel.json
//   --sweep-out=PATH    default BENCH_sweep.json
//   --skip-kernel / --skip-sweep
//   --min-time=S        minimum seconds per kernel measurement (default 0.4)
//
// Exit status is nonzero when the parallel sweep output differs from the
// serial output in any byte — CI runs this as a determinism gate (a
// correctness gate, deliberately not a timing gate).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "experiment/figures.hpp"
#include "experiment/sweep.hpp"
#include "sim/engine.hpp"

namespace {

using namespace realtor;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct KernelResult {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_s() const { return seconds > 0.0 ? double(ops) / seconds : 0.0; }
};

/// Repeats `batch` (returning the ops it performed) until `min_time`
/// seconds have been measured.
template <typename Batch>
KernelResult measure(const std::string& name, double min_time, Batch batch) {
  KernelResult result;
  result.name = name;
  batch();  // warm-up, untimed
  const Clock::time_point start = Clock::now();
  do {
    result.ops += batch();
    result.seconds = seconds_since(start);
  } while (result.seconds < min_time);
  return result;
}

std::uint64_t schedule_fire_batch() {
  constexpr std::size_t kEvents = 16384;
  sim::Engine engine;
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  engine.run();
  return kEvents * 2;  // one schedule + one pop/fire each
}

std::uint64_t schedule_cancel_batch() {
  constexpr std::size_t kEvents = 4096;
  sim::Engine engine;
  std::vector<EventId> ids(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids[i] = engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.cancel(ids[i]);
  }
  engine.run();  // drains the dead heap entries
  return kEvents * 2;
}

std::uint64_t timer_churn_batch() {
  // Algorithm H's HELP timeout: armed, then cancelled + re-armed many
  // times before one expiry finally fires.
  constexpr std::size_t kTimers = 512;
  constexpr int kRounds = 32;
  sim::Engine engine;
  std::vector<EventId> ids(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    ids[i] = engine.schedule_in(10.0 + static_cast<double>(i) * 0.01, [] {});
  }
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      engine.cancel(ids[i]);
      ids[i] = engine.schedule_in(
          10.0 + static_cast<double>(r) * 0.5 + static_cast<double>(i) * 0.01,
          [] {});
    }
  }
  engine.run();
  return static_cast<std::uint64_t>(kTimers) * kRounds * 2;
}

int run_kernel(const Flags& flags) {
  const double min_time = flags.get_double("min-time", 0.4);
  const std::vector<KernelResult> results = {
      measure("engine_schedule_fire", min_time, schedule_fire_batch),
      measure("engine_schedule_cancel", min_time, schedule_cancel_batch),
      measure("engine_timer_churn", min_time, timer_churn_batch),
  };

  const std::string path = flags.get_string("kernel-out", "BENCH_kernel.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"seconds\": " << r.seconds
        << ", \"ops_per_s\": " << r.ops_per_s() << "}"
        << (i + 1 < results.size() ? "," : "") << '\n';
    std::cout << r.name << ": " << r.ops_per_s() / 1e6 << " Mops/s\n";
  }
  out << "  ],\n  \"hardware_concurrency\": " << resolve_jobs(0) << "\n}\n";
  std::cout << "kernel throughput -> " << path << '\n';
  return 0;
}

/// Everything a sweep prints, rendered to one string: the four paper
/// figure tables plus their CSV forms. Byte equality of this string is the
/// determinism gate between the serial and parallel legs.
std::string render_sweep(const std::vector<experiment::SweepCell>& cells) {
  std::ostringstream os;
  const auto tables = {
      experiment::fig5_admission_probability(cells),
      experiment::fig6_message_overhead(cells),
      experiment::fig7_cost_per_admitted(cells),
      experiment::fig8_migration_rate(cells),
  };
  for (const Table& table : tables) {
    table.print(os);
    table.print_csv(os);
  }
  return os.str();
}

int run_sweep_bench(const Flags& flags) {
  const experiment::ScenarioConfig config = benchutil::base_config(flags);
  experiment::SweepOptions options = benchutil::sweep_options(flags);
  const unsigned parallel_jobs = resolve_jobs(options.jobs);
  const std::size_t runs = options.protocols.size() *
                           options.lambdas.size() * options.replications;

  std::cout << "sweep: " << options.protocols.size() << " protocols x "
            << options.lambdas.size() << " lambdas x "
            << options.replications << " reps = " << runs
            << " runs, duration=" << config.duration << " s\n";

  options.jobs = 1;
  const Clock::time_point serial_start = Clock::now();
  const auto serial_cells = experiment::run_sweep(config, options);
  const double serial_seconds = seconds_since(serial_start);
  std::cout << "serial (--jobs=1): " << serial_seconds << " s\n";

  options.jobs = parallel_jobs;
  const Clock::time_point parallel_start = Clock::now();
  const auto parallel_cells = experiment::run_sweep(config, options);
  const double parallel_seconds = seconds_since(parallel_start);
  std::cout << "parallel (--jobs=" << parallel_jobs << "): "
            << parallel_seconds << " s\n";

  const std::string serial_render = render_sweep(serial_cells);
  const bool identical = serial_render == render_sweep(parallel_cells);
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::cout << "speedup: " << speedup << "x, identical: "
            << (identical ? "yes" : "NO — determinism violation") << '\n';

  const std::string path = flags.get_string("sweep-out", "BENCH_sweep.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n  \"figure\": \"fig6\",\n  \"runs\": " << runs
      << ",\n  \"replications\": " << options.replications
      << ",\n  \"duration\": " << config.duration
      << ",\n  \"jobs\": " << parallel_jobs
      << ",\n  \"serial_seconds\": " << serial_seconds
      << ",\n  \"parallel_seconds\": " << parallel_seconds
      << ",\n  \"speedup\": " << speedup
      << ",\n  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::cout << "sweep wall clock -> " << path << '\n';
  return identical ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  int status = 0;
  if (!flags.get_bool("skip-kernel", false)) {
    status = run_kernel(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-sweep", false)) {
    status = run_sweep_bench(flags);
  }
  return status;
}
