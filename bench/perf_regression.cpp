// perf_regression — machine-readable substrate benchmarks plus the
// serial-vs-parallel correctness gate.
//
// Two artifacts seed the repo's performance trajectory:
//
//   BENCH_kernel.json  engine hot-path throughput: schedule+fire,
//                      schedule+cancel, and the Algorithm-H timer-churn
//                      pattern (ops/s each);
//   BENCH_sweep.json   the full Fig-6 sweep wall clock, serial (--jobs=1)
//                      versus parallel (--jobs=N), the speedup, and
//                      whether the two legs produced byte-identical
//                      figure tables + CSV. Plus a "warm_start" section:
//                      an attack-parameter sweep (identical pre-attack
//                      prefixes, divergent waves) timed under
//                      --exec=thread and --exec=fork, the fork speedup,
//                      and whether the two exec modes produced
//                      byte-identical cell aggregates.
//   BENCH_scale.json   the flood fan-out + attack-churn scale matrix:
//                      mesh/torus/random topologies at N in {25, 400,
//                      2500, 10000}, each cell a PUSH-flood-heavy run
//                      (~--scale-floods floods regardless of N) under two
//                      kill/restore churn waves. The N=25 cells are gated
//                      on byte-identical metrics against a reference
//                      captured before the zero-copy transport landed.
//   BENCH_obs.json     the tracing-overhead matrix: one attack-heavy
//                      REALTOR run at N=2500 timed with tracing off, with
//                      the binary flight recorder, with a JSONL sink, and
//                      with the live telemetry plane (min of --obs-reps
//                      each). The flight and live legs are budget-gated:
//                      each one's overhead over the untraced leg must
//                      stay within --obs-budget (default 5%) — the
//                      property that makes "always-on" honest. All legs
//                      must also produce byte-identical run metrics
//                      (tracing never changes decisions).
//   BENCH_trace.json   the trace-ingest matrix: a deterministic synthetic
//                      10k-node JSONL trace of --trace-mb megabytes read
//                      three ways — the legacy ParsedEvent reader, the
//                      zero-copy EventStore serially, and the EventStore
//                      with --trace-jobs parse shards — each leg then
//                      running the two heaviest analyses (--scorecard and
//                      --check) so the artifact records end-to-end wall
//                      time, not just parse time. Gated on all legs
//                      agreeing byte-for-byte: event-stream fingerprint,
//                      scorecard JSON, invariant-violation list, and
//                      malformed-line accounting (exit 2 on divergence).
//
// Flags (besides everything bench_common.hpp documents):
//   --kernel-out=PATH   default BENCH_kernel.json
//   --sweep-out=PATH    default BENCH_sweep.json
//   --scale-out=PATH    default BENCH_scale.json
//   --obs-out=PATH      default BENCH_obs.json
//   --skip-kernel / --skip-sweep / --skip-scale / --skip-obs
//   --skip-warm         skip the warm-start fork-vs-thread section
//   --warm-lambda=L     arrival rate of the attack sweep (default 6)
//   --warm-duration=T   simulated seconds per warm-start run (default 300;
//                       waves land at 0.8 T, so ~80% of each run is the
//                       shared prefix the fork executor snapshots)
//   --warm-sets=K       attack schedules swept (default 8)
//   --warm-reps=R       replications per cell (default 2)
//   --min-time=S        minimum seconds per kernel measurement (default 0.4)
//   --scale-n=25,400,2500,10000   node counts for the scale matrix
//   --scale-topos=mesh,torus,random
//   --scale-floods=N    flood budget per cell (default 5000); the metric
//                       reference only gates the default budget
//   --scale-print-reference       print fingerprint lines for embedding
//   --obs-n=N           node count for the overhead matrix (default 2500)
//   --obs-reps=R        timed repetitions per leg (default 7; min wins;
//                       legs are interleaved rep by rep so machine noise
//                       hits all of them alike)
//   --obs-budget=F      flight-recorder overhead budget (default 0.05)
//   --obs-duration=T    simulated seconds for the matrix run (default 10)
//   --obs-wave=K        victims in the matrix's attack wave (default N/50)
//   --obs-capacity=N    flight-ring capacity for the matrix (default
//                       kDefaultFlightCapacity)
//   --obs-cost=MODE     exact (default) | average | fixed4 — unicast cost
//                       model for the matrix scenario; trace density is
//                       identical across modes, only baseline work moves
//   --obs-null          add a do-nothing-sink leg (emission-site floor)
//   --trace-out=PATH    default BENCH_trace.json
//   --skip-trace        skip the trace-ingest matrix
//   --trace-mb=M        synthetic trace size in MiB (default 100)
//   --trace-jobs=N      parse shards for the parallel leg (default 4;
//                       0 = one per hardware thread)
//   --trace-reps=R      timed repetitions per leg (default 3; min wins)
//   --trace-input=PATH  ingest an existing trace instead of generating
//                       one (the identity gates still run)
//   --trace-keep        keep the generated synthetic trace on disk
//
// Exit status is nonzero when the parallel sweep output differs from the
// serial output in any byte, when an N=25 scale cell's metrics diverge
// from the pre-change reference, when a traced obs leg's metrics diverge
// from the untraced leg (exit 2), when a trace-ingest leg diverges from
// the legacy reader in any gated byte (exit 2), or when the
// flight-recorder overhead exceeds its budget (exit 3) — CI runs this as
// a determinism gate plus the one timing gate the flight recorder's
// contract requires.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <locale>
#include <memory>
#include <sstream>
#include <string_view>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/format.hpp"
#include "common/parallel.hpp"
#include "common/profile.hpp"
#include "experiment/figures.hpp"
#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "experiment/warm_start.hpp"
#include "obs/event_store.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/invariants.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/live/live_plane.hpp"
#include "obs/scorecard.hpp"
#include "obs/trace_reader.hpp"
#include "proto/factory.hpp"
#include "sim/engine.hpp"

namespace {

using namespace realtor;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The CPU frequency governor ("performance", "powersave", ...), or
/// "unknown" where sysfs does not expose one (containers, macOS).
std::string cpu_governor() {
  std::ifstream gov(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  std::string name;
  if (gov && std::getline(gov, name) && !name.empty()) return name;
  return "unknown";
}

/// Machine context at the top of every BENCH_*.json: wall-clock numbers
/// are only comparable across artifacts produced on the same core count
/// and governor setting, so every header records both.
void write_machine_header(std::ostream& out) {
  out << "  \"hw_threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"governor\": \"" << cpu_governor() << "\",\n";
}

struct KernelResult {
  std::string name;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_s() const { return seconds > 0.0 ? double(ops) / seconds : 0.0; }
};

/// Repeats `batch` (returning the ops it performed) until `min_time`
/// seconds have been measured.
template <typename Batch>
KernelResult measure(const std::string& name, double min_time, Batch batch) {
  KernelResult result;
  result.name = name;
  batch();  // warm-up, untimed
  const Clock::time_point start = Clock::now();
  do {
    result.ops += batch();
    result.seconds = seconds_since(start);
  } while (result.seconds < min_time);
  return result;
}

std::uint64_t schedule_fire_batch() {
  constexpr std::size_t kEvents = 16384;
  sim::Engine engine;
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  engine.run();
  return kEvents * 2;  // one schedule + one pop/fire each
}

std::uint64_t schedule_cancel_batch() {
  constexpr std::size_t kEvents = 4096;
  sim::Engine engine;
  std::vector<EventId> ids(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    ids[i] = engine.schedule_in(static_cast<SimTime>(i % 97), [] {});
  }
  for (std::size_t i = 0; i < kEvents; ++i) {
    engine.cancel(ids[i]);
  }
  engine.run();  // drains the dead heap entries
  return kEvents * 2;
}

std::uint64_t timer_churn_batch() {
  // Algorithm H's HELP timeout: armed, then cancelled + re-armed many
  // times before one expiry finally fires.
  constexpr std::size_t kTimers = 512;
  constexpr int kRounds = 32;
  sim::Engine engine;
  std::vector<EventId> ids(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    ids[i] = engine.schedule_in(10.0 + static_cast<double>(i) * 0.01, [] {});
  }
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      engine.cancel(ids[i]);
      ids[i] = engine.schedule_in(
          10.0 + static_cast<double>(r) * 0.5 + static_cast<double>(i) * 0.01,
          [] {});
    }
  }
  engine.run();
  return static_cast<std::uint64_t>(kTimers) * kRounds * 2;
}

int run_kernel(const Flags& flags) {
  const double min_time = flags.get_double("min-time", 0.4);
  const std::vector<KernelResult> results = {
      measure("engine_schedule_fire", min_time, schedule_fire_batch),
      measure("engine_schedule_cancel", min_time, schedule_cancel_batch),
      measure("engine_timer_churn", min_time, timer_churn_batch),
  };

  const std::string path = flags.get_string("kernel-out", "BENCH_kernel.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n";
  write_machine_header(out);
  out << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"seconds\": " << r.seconds
        << ", \"ops_per_s\": " << r.ops_per_s() << "}"
        << (i + 1 < results.size() ? "," : "") << '\n';
    std::cout << r.name << ": " << r.ops_per_s() / 1e6 << " Mops/s\n";
  }
  out << "  ],\n  \"hardware_concurrency\": " << resolve_jobs(0) << "\n}\n";
  std::cout << "kernel throughput -> " << path << '\n';
  return 0;
}

/// Every counter a run produces, rendered to one exact string. Byte
/// equality of this fingerprint is the before/after gate for the zero-copy
/// transport: sharing payloads and batching deliveries must not move a
/// single task or message.
std::string metrics_fingerprint(const experiment::RunMetrics& m) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "gen=" << m.generated << ";local=" << m.admitted_local
     << ";migr=" << m.admitted_migrated << ";rej=" << m.rejected
     << ";dead=" << m.arrivals_at_dead_nodes << ";comp=" << m.completed
     << ";lost=" << m.lost_to_attack << ";sends=" << m.ledger.total_sends()
     << ";cost=" << m.ledger.total_cost()
     << ";overhead=" << m.ledger.overhead_cost();
  return os.str();
}

/// Everything a sweep prints, rendered to one string: the four paper
/// figure tables plus their CSV forms. Byte equality of this string is the
/// determinism gate between the serial and parallel legs.
std::string render_sweep(const std::vector<experiment::SweepCell>& cells) {
  std::ostringstream os;
  const auto tables = {
      experiment::fig5_admission_probability(cells),
      experiment::fig6_message_overhead(cells),
      experiment::fig7_cost_per_admitted(cells),
      experiment::fig8_migration_rate(cells),
  };
  for (const Table& table : tables) {
    table.print(os);
    table.print_csv(os);
  }
  return os.str();
}

/// Every aggregate of every cell, rendered to one exact string — the
/// identity gate between the thread and fork exec modes: warm-start
/// snapshotting must not move a single sample of any Welford accumulator
/// or any summed counter.
std::string cells_fingerprint(const std::vector<experiment::SweepCell>& cells) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (const experiment::SweepCell& cell : cells) {
    os << proto::to_string(cell.kind) << '|' << cell.lambda << '|'
       << cell.attack_set;
    for (const OnlineStats* stats :
         {&cell.admission_probability, &cell.total_messages,
          &cell.messages_per_admitted, &cell.migration_rate,
          &cell.mean_occupancy, &cell.evacuation_success}) {
      os << '|' << stats->count() << ':' << stats->mean() << ':'
         << stats->min() << ':' << stats->max() << ':' << stats->variance();
    }
    os << '|' << metrics_fingerprint(cell.summed) << '\n';
  }
  return os.str();
}

/// The warm-start bench grid: one lambda, three protocols, K single-wave
/// attack schedules of growing severity. Every (protocol, rep) slice
/// shares one pre-attack prefix across the K sets — the shape the fork
/// executor exists for.
experiment::SweepOptions warm_sweep_options(const Flags& flags,
                                            double duration,
                                            std::size_t max_victims) {
  experiment::SweepOptions options;
  options.lambdas = {flags.get_double("warm-lambda", 6.0)};
  options.protocols = {proto::ProtocolKind::kRealtor,
                       proto::ProtocolKind::kAdaptivePull,
                       proto::ProtocolKind::kPurePush};
  options.replications =
      static_cast<std::uint32_t>(flags.get_int("warm-reps", 2));
  options.jobs = static_cast<unsigned>(flags.get_int("jobs", 0));
  const std::int64_t sets = flags.get_int("warm-sets", 8);
  for (std::int64_t k = 0; k < sets; ++k) {
    experiment::AttackWave wave;
    wave.time = 0.8 * duration;
    // Growing severity, capped at the topology size — a wave cannot
    // kill more nodes than exist.
    wave.count = std::min(static_cast<std::size_t>(2 + 2 * k), max_victims);
    wave.grace = 1.0;
    wave.outage = 0.15 * duration;
    options.attack_sets.push_back({wave});
  }
  return options;
}

struct WarmBenchResult {
  std::size_t runs = 0;
  std::size_t classes = 0;
  double thread_seconds = 0.0;
  double fork_seconds = 0.0;
  double speedup = 0.0;
  bool identical = false;
  bool ran = false;
};

WarmBenchResult run_warm_bench(const Flags& flags) {
  WarmBenchResult result;
  experiment::ScenarioConfig config = benchutil::base_config(flags);
  config.duration = flags.get_double("warm-duration", 300.0);
  experiment::SweepOptions options = warm_sweep_options(
      flags, config.duration,
      static_cast<std::size_t>(config.topology.node_count()));
  result.runs = experiment::sweep_run_ids(options).size();
  result.classes =
      experiment::plan_warm_start(
          experiment::sweep_point_configs(config, options))
          .size();
  std::cout << "warm-start sweep: " << options.protocols.size()
            << " protocols x " << options.attack_sets.size()
            << " attack sets x " << options.replications << " reps = "
            << result.runs << " runs, " << result.classes
            << " classes, duration=" << config.duration << " s\n";

  options.exec = experiment::SweepExec::kThread;
  const Clock::time_point thread_start = Clock::now();
  const auto thread_cells = experiment::run_sweep(config, options);
  result.thread_seconds = seconds_since(thread_start);
  std::cout << "  exec=thread: " << result.thread_seconds << " s\n";

  options.exec = experiment::SweepExec::kFork;
  const Clock::time_point fork_start = Clock::now();
  const auto fork_cells = experiment::run_sweep(config, options);
  result.fork_seconds = seconds_since(fork_start);
  std::cout << "  exec=fork:   " << result.fork_seconds << " s"
            << (experiment::fork_exec_supported()
                    ? ""
                    : " (fork unsupported; ran as threads)")
            << '\n';

  result.identical =
      cells_fingerprint(thread_cells) == cells_fingerprint(fork_cells);
  result.speedup = result.fork_seconds > 0.0
                       ? result.thread_seconds / result.fork_seconds
                       : 0.0;
  result.ran = true;
  std::cout << "  fork speedup: " << result.speedup << "x, identical: "
            << (result.identical ? "yes" : "NO — determinism violation")
            << '\n';
  return result;
}

int run_sweep_bench(const Flags& flags) {
  const experiment::ScenarioConfig config = benchutil::base_config(flags);
  experiment::SweepOptions options = benchutil::sweep_options(flags);
  const unsigned parallel_jobs = resolve_jobs(options.jobs);
  const std::size_t runs = options.protocols.size() *
                           options.lambdas.size() * options.replications;

  std::cout << "sweep: " << options.protocols.size() << " protocols x "
            << options.lambdas.size() << " lambdas x "
            << options.replications << " reps = " << runs
            << " runs, duration=" << config.duration << " s\n";

  options.jobs = 1;
  const Clock::time_point serial_start = Clock::now();
  const auto serial_cells = experiment::run_sweep(config, options);
  const double serial_seconds = seconds_since(serial_start);
  std::cout << "serial (--jobs=1): " << serial_seconds << " s\n";

  options.jobs = parallel_jobs;
  const Clock::time_point parallel_start = Clock::now();
  const auto parallel_cells = experiment::run_sweep(config, options);
  const double parallel_seconds = seconds_since(parallel_start);
  std::cout << "parallel (--jobs=" << parallel_jobs << "): "
            << parallel_seconds << " s\n";

  const std::string serial_render = render_sweep(serial_cells);
  const bool identical = serial_render == render_sweep(parallel_cells);
  const double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::cout << "speedup: " << speedup << "x, identical: "
            << (identical ? "yes" : "NO — determinism violation") << '\n';

  WarmBenchResult warm;
  if (!flags.get_bool("skip-warm", false)) {
    warm = run_warm_bench(flags);
  }

  const std::string path = flags.get_string("sweep-out", "BENCH_sweep.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n";
  write_machine_header(out);
  out << "  \"figure\": \"fig6\",\n  \"runs\": " << runs
      << ",\n  \"replications\": " << options.replications
      << ",\n  \"duration\": " << config.duration
      << ",\n  \"jobs\": " << parallel_jobs
      << ",\n  \"serial_seconds\": " << serial_seconds
      << ",\n  \"parallel_seconds\": " << parallel_seconds
      << ",\n  \"speedup\": " << speedup
      << ",\n  \"identical\": " << (identical ? "true" : "false");
  if (warm.ran) {
    out << ",\n  \"warm_start\": {\n    \"runs\": " << warm.runs
        << ",\n    \"classes\": " << warm.classes
        << ",\n    \"fork_supported\": "
        << (experiment::fork_exec_supported() ? "true" : "false")
        << ",\n    \"thread_seconds\": " << warm.thread_seconds
        << ",\n    \"fork_seconds\": " << warm.fork_seconds
        << ",\n    \"speedup\": " << warm.speedup
        << ",\n    \"identical\": " << (warm.identical ? "true" : "false")
        << "\n  }";
  }
  out << "\n}\n";
  std::cout << "sweep wall clock -> " << path << '\n';
  if (warm.ran && !warm.identical) return 2;
  return identical ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Scale matrix: flood fan-out + attack churn at N up to 10k nodes.
//
// Each cell runs pure PUSH (one advert flood per alive node per second) at
// per-node arrival rate 0.5/s for `floods / N` simulated seconds, so every
// cell performs roughly the same number of floods while fan-out width grows
// with N. Two attack waves (kill max(1, N/50) nodes, restore them after 20%
// of the run) churn the topology version, exercising the shortest-path
// invalidation path. The unicast cost is pinned at 4.0 for every topology so
// the cell measures the transport data path, not path statistics.

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

experiment::ScenarioConfig scale_config(const std::string& topo, NodeId n,
                                        std::uint64_t floods) {
  experiment::ScenarioConfig c;
  if (topo == "torus") {
    c.topology.kind = experiment::TopologyKind::kTorus;
    c.topology.width = static_cast<NodeId>(std::lround(std::sqrt(double(n))));
    c.topology.height = c.topology.width;
  } else if (topo == "random") {
    c.topology.kind = experiment::TopologyKind::kRandom;
    c.topology.nodes = n;
    c.topology.links = static_cast<std::size_t>(n) * 2;
    c.topology.seed = 1;
  } else {
    c.topology.kind = experiment::TopologyKind::kMesh;
    c.topology.width = static_cast<NodeId>(std::lround(std::sqrt(double(n))));
    c.topology.height = c.topology.width;
  }
  c.protocol_kind = proto::ProtocolKind::kPurePush;
  c.protocol.push_interval = 1.0;
  c.lambda = 0.5 * static_cast<double>(n);
  // At least one advertise tick per node: below 1 s the periodic adverts
  // (first fired at push_interval) would never run and the cell would
  // measure nothing. Only the N=10000 cells hit the floor (and so flood
  // ~2x the nominal count); the N=25 reference cells keep duration 200 s.
  c.duration = std::max(
      1.0, static_cast<double>(floods) / static_cast<double>(n));
  c.seed = 42;
  c.fixed_unicast_cost = 4.0;  // every topology: isolate the fan-out path

  const std::size_t victims =
      std::max<std::size_t>(1, static_cast<std::size_t>(n) / 50);
  for (const double at : {0.3, 0.6}) {
    experiment::AttackWave wave;
    wave.time = at * c.duration;
    wave.count = victims;
    wave.grace = 0.0;
    wave.outage = 0.2 * c.duration;
    c.attacks.push_back(wave);
  }
  return c;
}

struct ScaleReference {
  const char* topo;
  NodeId n;
  const char* fingerprint;
};

/// Captured from the pre-change build (eager all-pairs refresh, per-
/// destination message copies) at the default --scale-floods=5000, seed 42.
constexpr ScaleReference kScaleReference[] = {
    {"mesh", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=194892;overhead=194080"},
    {"torus", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=243112;overhead=242300"},
    {"random", 25,
     "gen=2529;local=1758;migr=203;rej=530;dead=38;comp=1101;lost=45;"
     "sends=5631;cost=240232;overhead=239420"},
};

struct ScaleResult {
  std::string topo;
  NodeId n = 0;
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t floods = 0;
  std::string fingerprint;
  bool gated = false;      // an N=25 reference exists for this cell
  bool identical = true;   // fingerprint matched that reference
};

int run_scale(const Flags& flags) {
  const std::uint64_t floods =
      static_cast<std::uint64_t>(flags.get_int("scale-floods", 5000));
  const bool print_reference =
      flags.get_bool("scale-print-reference", false);
  std::vector<std::string> topos =
      split_csv(flags.get_string("scale-topos", "mesh,torus,random"));
  std::vector<NodeId> sizes;
  for (const double n :
       flags.get_double_list("scale-n", {25, 400, 2500, 10000})) {
    sizes.push_back(static_cast<NodeId>(n));
  }

  std::vector<ScaleResult> results;
  bool all_identical = true;
  for (const std::string& topo : topos) {
    for (const NodeId n : sizes) {
      const experiment::ScenarioConfig config = scale_config(topo, n, floods);
      experiment::Simulation sim(config);
      const Clock::time_point start = Clock::now();
      const experiment::RunMetrics& metrics = sim.run();
      ScaleResult result;
      result.topo = topo;
      result.n = n;
      result.seconds = seconds_since(start);
      result.events = sim.engine().events_processed();
      result.floods = metrics.ledger.sends(net::MessageKind::kPushAdvert);
      result.fingerprint = metrics_fingerprint(metrics);
      if (floods == 5000) {
        for (const ScaleReference& ref : kScaleReference) {
          if (result.topo == ref.topo && result.n == ref.n) {
            result.gated = true;
            result.identical = result.fingerprint == ref.fingerprint;
            all_identical = all_identical && result.identical;
          }
        }
      }
      std::cout << "scale " << topo << " n=" << n << ": " << result.seconds
                << " s, " << result.events << " events, " << result.floods
                << " floods"
                << (result.gated
                        ? (result.identical ? " [reference ok]"
                                            : " [REFERENCE MISMATCH]")
                        : "")
                << '\n';
      if (print_reference) {
        std::cout << "    {\"" << topo << "\", " << n << ", \""
                  << result.fingerprint << "\"},\n";
      }
      results.push_back(std::move(result));
    }
  }

  const std::string path = flags.get_string("scale-out", "BENCH_scale.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n";
  write_machine_header(out);
  out << "  \"floods_per_cell\": " << floods << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    out << "    {\"topology\": \"" << r.topo << "\", \"n\": " << r.n
        << ", \"seconds\": " << r.seconds << ", \"events\": " << r.events
        << ", \"floods\": " << r.floods << ", \"events_per_s\": "
        << (r.seconds > 0.0 ? double(r.events) / r.seconds : 0.0)
        << ", \"gated\": " << (r.gated ? "true" : "false")
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"reference_ok\": " << (all_identical ? "true" : "false")
      << "\n}\n";
  std::cout << "scale matrix -> " << path << '\n';
  if (!all_identical) {
    std::cerr << "scale matrix diverged from the pre-change reference\n";
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Tracing-overhead matrix: the flight recorder's ≤ budget contract as a
// tested property.
//
// One attack-heavy REALTOR cell at N=2500 (solicitations, evacuations and
// migrations on top of the steady task flow) is run four ways: untraced,
// into a flight ring, into a JSONL file, and into the live telemetry
// plane (windowing + rule evaluation per tick, no downstream, exposition
// buffered in memory). Legs are timed --obs-reps times INTERLEAVED
// (off, flight, jsonl, live, off, ...) and the per-leg
// minimum wall clock is kept — on a shared machine a load spike that
// lands during one leg's block of reps would bias the ratio; round-robin
// exposes every leg to the same windows. The JSONL leg is reported for
// scale (it is the expensive alternative the flight recorder exists to
// avoid) but not gated. A hidden --obs-null leg times a do-nothing sink,
// isolating what the emission sites themselves cost (event construction
// plus virtual dispatch) from what the ring adds.

experiment::ScenarioConfig obs_config(const Flags& flags) {
  experiment::ScenarioConfig c;
  const NodeId n = static_cast<NodeId>(flags.get_int("obs-n", 2500));
  c.topology.kind = experiment::TopologyKind::kMesh;
  c.topology.width = static_cast<NodeId>(std::lround(std::sqrt(double(n))));
  c.topology.height = c.topology.width;
  c.protocol_kind = proto::ProtocolKind::kRealtor;
  c.lambda = 0.2 * static_cast<double>(n);
  c.duration = flags.get_double("obs-duration", 10.0);
  c.seed = 42;
  // Message-cost model: exact per-hop unicast costs (the paper's §5
  // ablation, which it asserts changes no comparison) are the default —
  // at this scale they are the physically faithful model, and the run
  // does the routing work a real deployment pays, which is the baseline
  // an "always-on overhead" claim should be measured against. The
  // alternatives keep the trace density identical (the protocol makes
  // the same decisions; record counts match to the event) but skip the
  // routing work, compressing the baseline: "average" uses the computed
  // topology-average path length, "fixed4" pins the 5x5-mesh constant 4
  // — both useful to expose the recorder's raw per-event cost.
  const std::string cost = flags.get_string("obs-cost", "exact");
  if (cost == "fixed4") {
    c.fixed_unicast_cost = 4.0;
  } else if (cost == "average") {
    c.fixed_unicast_cost.reset();
  } else {
    c.cost_mode = net::CostMode::kExactHops;
    c.fixed_unicast_cost.reset();
  }
  // No periodic sampler: sampling work only happens when tracing is
  // active, so it would inflate the traced legs with gauge computation
  // the untraced leg never performs. The legs must schedule identical
  // work and differ only in the sink behind the emission sites.
  // live_cadence is set for EVERY leg for the same reason: the tick
  // callback reschedules itself whether or not a sink is attached, so
  // the engine schedule is identical and the live leg differs from
  // "off" only by the plane behind the emission sites.
  c.live_cadence = 1.0;
  // One graced wave mid-run: solicit -> evacuate -> kill -> restore, the
  // event mix the scorecard consumes.
  experiment::AttackWave wave;
  wave.time = 0.4 * c.duration;
  wave.count = static_cast<std::size_t>(flags.get_int(
      "obs-wave",
      std::max<std::int64_t>(1, static_cast<std::int64_t>(n) / 50)));
  wave.grace = 1.0;
  wave.outage = 0.3 * c.duration;
  c.attacks.push_back(wave);
  return c;
}

using SinkHandle =
    std::pair<obs::TraceSink*, std::function<std::uint64_t()>>;

struct ObsLeg {
  std::string name;
  /// Builds the leg's sink (nullptr = untraced) fresh for every rep, so
  /// ring/file state never carries across reps.
  std::function<SinkHandle()> make_sink;
  double seconds = 0.0;          // min across reps
  std::vector<double> rep_seconds;  // one entry per rep, in rep order
  std::uint64_t records = 0;     // trace records the sink received
  std::string fingerprint;
};

/// Times every leg `reps` times, interleaved round-robin. On a shared
/// machine a load spike that lands during one leg's block of reps would
/// bias the overhead ratio; cycling off → flight → jsonl each rep exposes
/// all legs to the same windows, and the per-leg minimum then picks each
/// leg's quietest one.
void run_obs_legs(std::vector<ObsLeg>& legs,
                  const experiment::ScenarioConfig& config, int reps) {
  for (int rep = 0; rep < reps; ++rep) {
    // Rotate which leg goes first each round: a load ramp inside one
    // round would otherwise always hit the same leg of every pair.
    for (std::size_t k = 0; k < legs.size(); ++k) {
      ObsLeg& leg =
          legs[(k + static_cast<std::size_t>(rep)) % legs.size()];
      auto sink = leg.make_sink();
      experiment::Simulation sim(config);
      if (sink.first != nullptr) sim.set_trace_sink(sink.first);
      const Clock::time_point start = Clock::now();
      const experiment::RunMetrics& metrics = sim.run();
      if (sink.first != nullptr) sink.first->flush();
      const double seconds = seconds_since(start);
      if (rep == 0 || seconds < leg.seconds) leg.seconds = seconds;
      leg.rep_seconds.push_back(seconds);
      leg.records = sink.second != nullptr ? sink.second() : 0;
      leg.fingerprint = metrics_fingerprint(metrics);
    }
  }
}

/// Overhead of `leg` over `base` from paired per-round ratios. Rep i of
/// every leg runs back-to-back in the same interleaving round, so each
/// pair saw nearly the same machine load and the ratio mostly cancels it.
/// The gate takes the MINIMUM ratio across rounds: external load can only
/// slow a leg down, so a spuriously high ratio needs a spike landing in
/// the leg's half of one round — and a spurious budget breach would need
/// one in every round. A real regression lifts all ratios and still trips
/// the minimum. The flip side (an off-half spike deflating one round)
/// makes the gate lenient under noise, which is the right failure mode
/// for CI on shared runners: it flags regressions larger than the noise
/// floor instead of flapping on it.
std::vector<double> paired_ratios(const ObsLeg& leg, const ObsLeg& base) {
  std::vector<double> ratios;
  const std::size_t n = std::min(leg.rep_seconds.size(),
                                 base.rep_seconds.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (base.rep_seconds[i] > 0.0) {
      ratios.push_back(leg.rep_seconds[i] / base.rep_seconds[i]);
    }
  }
  return ratios;
}

/// The gated overhead: minimum paired ratio (see above).
double paired_overhead(const ObsLeg& leg, const ObsLeg& base) {
  const std::vector<double> ratios = paired_ratios(leg, base);
  if (ratios.empty()) return 0.0;
  return *std::min_element(ratios.begin(), ratios.end()) - 1.0;
}

/// Median paired ratio — the "typical round" overhead reported alongside
/// the gated minimum. Noisier than the gate (a spike in either half of a
/// round moves it) but unbiased, so it is the number to quote.
double paired_overhead_median(const ObsLeg& leg, const ObsLeg& base) {
  std::vector<double> ratios = paired_ratios(leg, base);
  if (ratios.empty()) return 0.0;
  std::sort(ratios.begin(), ratios.end());
  const std::size_t mid = ratios.size() / 2;
  return (ratios.size() % 2 == 1 ? ratios[mid]
                                 : 0.5 * (ratios[mid - 1] + ratios[mid])) -
         1.0;
}

int run_obs(const Flags& flags) {
  const experiment::ScenarioConfig config = obs_config(flags);
  const int reps = static_cast<int>(flags.get_int("obs-reps", 7));
  const double budget = flags.get_double("obs-budget", 0.05);
  const std::string jsonl_path =
      flags.get_string("obs-out", "BENCH_obs.json") + ".trace.jsonl";

  std::cout << "obs overhead: n=" << config.topology.width << "x"
            << config.topology.height << ", duration=" << config.duration
            << " s, " << reps << " reps per leg\n";

  const std::size_t capacity = static_cast<std::size_t>(flags.get_int(
      "obs-capacity", static_cast<std::int64_t>(obs::kDefaultFlightCapacity)));
  // Sinks built fresh per rep; kept alive until the leg's next rep.
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::JsonlSink> jsonl;
  std::unique_ptr<obs::live::LivePlane> live_plane;

  struct NullSink final : obs::TraceSink {
    std::uint64_t seen = 0;
    void on_event(const obs::TraceEvent&) override { ++seen; }
  };
  static NullSink null_sink;

  std::vector<ObsLeg> legs(4);
  if (flags.get_bool("obs-null", false)) {
    legs.emplace_back();
    legs.back().name = "null";
    legs.back().make_sink = [] {
      null_sink.seen = 0;
      return SinkHandle{&null_sink, [] { return null_sink.seen; }};
    };
  }
  legs[0].name = "off";
  legs[0].make_sink = [] { return SinkHandle{nullptr, nullptr}; };
  legs[1].name = "flight";
  legs[1].make_sink = [&recorder, capacity] {
    recorder = std::make_unique<obs::FlightRecorder>(capacity);
    obs::FlightRing& ring = recorder->ring(0);
    return SinkHandle{&ring, [&ring] { return ring.recorded(); }};
  };
  legs[2].name = "jsonl";
  legs[2].make_sink = [&jsonl, &jsonl_path] {
    jsonl = std::make_unique<obs::JsonlSink>(jsonl_path,
                                             /*flush_every=*/256);
    obs::JsonlSink& sink = *jsonl;
    return SinkHandle{&sink, [&sink] { return sink.lines_written(); }};
  };
  // The live-telemetry plane at full price: every event windowed, the
  // default rule set evaluated each tick, exposition buffered in memory
  // (no downstream sink, no file I/O — those belong to the flight/jsonl
  // legs). Gated at the same budget as the flight recorder.
  legs[3].name = "live";
  legs[3].make_sink = [&live_plane] {
    obs::live::LiveConfig cfg;
    live_plane = std::make_unique<obs::live::LivePlane>(std::move(cfg));
    obs::live::LivePlane& plane = *live_plane;
    return SinkHandle{&plane, [&plane] { return plane.events_seen(); }};
  };
  run_obs_legs(legs, config, reps);
  const ObsLeg& off = legs[0];
  const ObsLeg& flight = legs[1];
  const ObsLeg& jsonl_leg = legs[2];
  const ObsLeg& live = legs[3];
  jsonl.reset();
  std::remove(jsonl_path.c_str());

  const auto overhead = [&off](const ObsLeg& leg) {
    return paired_overhead(leg, off);
  };
  const double flight_overhead = overhead(flight);
  const double jsonl_overhead = overhead(jsonl_leg);
  const double live_overhead = overhead(live);
  const bool identical = off.fingerprint == flight.fingerprint &&
                         off.fingerprint == jsonl_leg.fingerprint &&
                         off.fingerprint == live.fingerprint;
  const bool within_budget =
      flight_overhead <= budget && live_overhead <= budget;

  if (legs.size() > 4) {
    std::cout << "  null: " << legs[4].seconds << " s, overhead "
              << overhead(legs[4]) * 100.0 << "%\n";
  }
  for (const ObsLeg* leg : {&off, &flight, &jsonl_leg, &live}) {
    std::cout << "  " << leg->name << ": " << leg->seconds << " s";
    if (leg->records > 0) std::cout << ", " << leg->records << " records";
    if (leg != &off) {
      std::cout << ", overhead min " << overhead(*leg) * 100.0
                << "% / median "
                << paired_overhead_median(*leg, off) * 100.0 << "%";
    }
    std::cout << '\n';
  }
  std::cout << "  metrics identical across legs: "
            << (identical ? "yes" : "NO — tracing changed the run") << '\n'
            << "  flight+live budget (" << budget * 100.0 << "%): "
            << (within_budget ? "ok" : "EXCEEDED") << '\n';

  // One extra rep with the self-profiler armed (tracing off). It runs
  // AFTER the gated legs, so the budget numbers above measure the
  // shipping configuration — ProfileScope compiled in but disabled — and
  // the scope tree still lands in BENCH_obs.json for inspection.
  obs::Profiler::instance().reset();
  obs::Profiler::instance().set_enabled(true);
  {
    experiment::Simulation profiled(config);
    profiled.run();
  }
  obs::Profiler::instance().set_enabled(false);
  const std::vector<obs::ProfileEntry> profile_entries =
      obs::Profiler::instance().snapshot();
  std::vector<const obs::ProfileEntry*> profile_scopes;
  for (const obs::ProfileEntry& entry : profile_entries) {
    if (!entry.path.empty()) profile_scopes.push_back(&entry);
  }

  const std::string path = flags.get_string("obs-out", "BENCH_obs.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << "{\n";
  write_machine_header(out);
  out << "  \"nodes\": "
      << static_cast<std::uint64_t>(config.topology.width) *
             config.topology.height
      << ",\n  \"duration\": " << config.duration
      << ",\n  \"cost_model\": \""
      << (config.cost_mode == net::CostMode::kExactHops
              ? "exact_hops"
              : (config.fixed_unicast_cost ? "fixed4" : "average"))
      << "\",\n  \"reps\": " << reps << ",\n  \"legs\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const ObsLeg& leg = legs[i];
    out << "    {\"name\": \"" << leg.name
        << "\", \"seconds\": " << leg.seconds
        << ", \"records\": " << leg.records
        << ", \"overhead\": " << overhead(leg)
        << ", \"overhead_median\": " << paired_overhead_median(leg, off)
        << "}" << (i < 3 ? "," : "") << '\n';
  }
  out << "  ],\n  \"profile\": [\n";
  for (std::size_t i = 0; i < profile_scopes.size(); ++i) {
    const obs::ProfileEntry& entry = *profile_scopes[i];
    out << "    {\"path\": \"" << entry.path
        << "\", \"calls\": " << entry.calls
        << ", \"ms\": " << static_cast<double>(entry.ns) / 1e6 << "}"
        << (i + 1 < profile_scopes.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"flight_overhead\": " << flight_overhead
      << ",\n  \"flight_overhead_median\": "
      << paired_overhead_median(flight, off)
      << ",\n  \"jsonl_overhead\": " << jsonl_overhead
      << ",\n  \"live_overhead\": " << live_overhead
      << ",\n  \"live_overhead_median\": "
      << paired_overhead_median(live, off)
      << ",\n  \"budget\": " << budget
      << ",\n  \"within_budget\": " << (within_budget ? "true" : "false")
      << ",\n  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::cout << "obs overhead matrix -> " << path << '\n';

  if (!identical) {
    std::cerr << "tracing changed run metrics — determinism violation\n";
    return 2;
  }
  if (!within_budget) {
    if (flight_overhead > budget) {
      std::cerr << "flight-recorder overhead " << flight_overhead * 100.0
                << "% exceeds the " << budget * 100.0 << "% budget\n";
    }
    if (live_overhead > budget) {
      std::cerr << "live-plane overhead " << live_overhead * 100.0
                << "% exceeds the " << budget * 100.0 << "% budget\n";
    }
    return 3;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Trace-ingest matrix: the zero-copy EventStore against the legacy reader.
//
// A synthetic 10k-node attack trace is generated deterministically (LCG,
// fixed seed, integer-rendered timestamps — every machine and locale
// benches identical bytes): the steady task flow, HELP/pledge traffic,
// kill/evacuate/restore episodes, escaped string payloads, and an
// occasional malformed line so the tolerant-accounting path is exercised
// end to end. Three legs ingest the same file:
//
//   legacy_reader   load_trace_file into ParsedEvents — the pre-change
//                   representation (per-event kind string + field vector);
//   store_serial    load_trace_store with jobs=1 (mmap + interning, one
//                   shard) — isolates the data-layout win;
//   store_parallel  load_trace_store with --trace-jobs shards — adds the
//                   sharded parse.
//
// Every leg then runs the two heaviest analyses (the scorecard and the
// invariant catalog), so the artifact records the end-to-end wall time a
// `realtor_trace --scorecard`/`--check` user sees. The identity gate is
// the point: all legs must agree on the event-stream fingerprint, the
// scorecard JSON, the violation list, and the malformed accounting —
// byte-for-byte. Exit 2 on any divergence.

// unsigned long long so results feed %llu without per-site casts.
unsigned long long trace_rng(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

/// Writes ~target_bytes of synthetic 10k-node trace to `path`. All number
/// formatting is integer-based (micros, millis) so the generated bytes are
/// locale-proof and identical on every platform.
bool write_synthetic_trace(const std::string& path,
                           std::uint64_t target_bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  std::string chunk;
  chunk.reserve(2u << 20);
  char line[320];
  std::uint64_t rng = 0x5851f42d4c957f2dULL;
  std::uint64_t written = 0;
  std::uint64_t micros = 0;  // simulated clock, integer microseconds
  unsigned long long task = 0;
  unsigned long long episode = 0;
  std::uint64_t lines = 0;
  constexpr unsigned kNodes = 10000;
  const auto emit = [&](int n) {
    chunk.append(line, static_cast<std::size_t>(n));
    chunk.push_back('\n');
    ++lines;
    if (chunk.size() >= (1u << 20)) {
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      written += chunk.size();
      chunk.clear();
    }
  };
  while (written + chunk.size() < target_bytes) {
    micros += 1 + trace_rng(rng) % 900;
    const unsigned long long ts = micros / 1000000;
    const unsigned long long tf = micros % 1000000;
    const unsigned node = static_cast<unsigned>(trace_rng(rng) % kNodes);
    if (lines % 40000 == 39999) {
      // One malformed line per ~40k: the tolerant accounting must agree
      // across every leg, so the bench input exercises it.
      emit(std::snprintf(line, sizeof line,
                         "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":", ts, tf,
                         node));
      continue;
    }
    if (lines % 5000 == 4999) {
      // Attack episode: kill -> evacuate -> restore, the scorecard's food.
      const unsigned long long lost = trace_rng(rng) % 6;
      const unsigned long long resident = 4 + trace_rng(rng) % 12;
      const unsigned long long saved = resident - trace_rng(rng) % 3;
      emit(std::snprintf(line, sizeof line,
                         "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                         "\"node_killed\",\"episode\":%llu,\"lost\":%llu}",
                         ts, tf, node, episode, lost));
      emit(std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"evacuation\","
          "\"episode\":%llu,\"resident\":%llu,\"saved\":%llu}",
          ts, tf, node, episode, resident, saved));
      emit(std::snprintf(line, sizeof line,
                         "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                         "\"node_restored\",\"episode\":%llu}",
                         ts, tf, node, episode));
      ++episode;
      continue;
    }
    if (lines % 997 == 0) {
      // Escaped string payload: forces the arena-decode path (the value
      // cannot be a view into the mapping).
      emit(std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"escalation\","
          "\"cause\":\"grace \\\"expired\\\" -> retry\\n\",\"id\":%llu}",
          ts, tf, node, task));
      continue;
    }
    const std::uint64_t pick = trace_rng(rng) % 100;
    int n;
    if (pick < 28) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"task_arrival\","
          "\"id\":%llu,\"size\":%llu.%03llu,\"deadline\":%llu.%03llu}",
          ts, tf, node, ++task, 1 + trace_rng(rng) % 9, trace_rng(rng) % 1000,
          20 + trace_rng(rng) % 80, trace_rng(rng) % 1000);
    } else if (pick < 42) {
      n = std::snprintf(line, sizeof line,
                        "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                        "\"task_admit_local\",\"id\":%llu}",
                        ts, tf, node, 1 + trace_rng(rng) % (task + 1));
    } else if (pick < 48) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"task_admit_migrated\","
          "\"id\":%llu,\"origin\":%llu}",
          ts, tf, node, 1 + trace_rng(rng) % (task + 1),
          trace_rng(rng) % kNodes);
    } else if (pick < 54) {
      n = std::snprintf(line, sizeof line,
                        "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                        "\"task_rejected\",\"id\":%llu,\"cause\":\"full\"}",
                        ts, tf, node, 1 + trace_rng(rng) % (task + 1));
    } else if (pick < 70) {
      n = std::snprintf(line, sizeof line,
                        "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                        "\"task_completed\",\"id\":%llu}",
                        ts, tf, node, 1 + trace_rng(rng) % (task + 1));
    } else if (pick < 78) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"help_sent\","
          "\"origin\":%u,\"urgency\":0.%03llu}",
          ts, tf, node, node, trace_rng(rng) % 1000);
    } else if (pick < 86) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"pledge_sent\","
          "\"pledger\":%u,\"origin\":%llu,\"availability\":0.%03llu}",
          ts, tf, node, node, trace_rng(rng) % kNodes,
          trace_rng(rng) % 1000);
    } else if (pick < 92) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"advert_sent\","
          "\"availability\":0.%03llu,\"answered\":%s}",
          ts, tf, node, trace_rng(rng) % 1000,
          trace_rng(rng) % 2 ? "true" : "false");
    } else if (pick < 97) {
      n = std::snprintf(
          line, sizeof line,
          "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":\"migration_success\","
          "\"id\":%llu,\"target\":%llu}",
          ts, tf, node, 1 + trace_rng(rng) % (task + 1),
          trace_rng(rng) % kNodes);
    } else {
      n = std::snprintf(line, sizeof line,
                        "{\"t\":%llu.%06llu,\"node\":%u,\"kind\":"
                        "\"gossip_round\",\"fanout\":%llu}",
                        ts, tf, node, 1 + trace_rng(rng) % 4);
    }
    emit(n);
  }
  out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  return static_cast<bool>(out);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
std::uint64_t fnv1a(std::uint64_t h, std::string_view text) {
  return fnv1a(h, text.data(), text.size());
}

/// Hashes one payload field. Numbers go through the locale-independent
/// %.17g (shortest round-trip superset), so the fingerprint is exact.
void hash_field(std::uint64_t& h, std::string_view key,
                obs::JsonValue::Type type, bool boolean, double number,
                std::string_view text) {
  h = fnv1a(h, key);
  const unsigned char tag = static_cast<unsigned char>(type);
  h = fnv1a(h, &tag, 1);
  switch (type) {
    case obs::JsonValue::Type::kNumber: {
      char buf[40];
      const int n = format_double(buf, sizeof buf, "%.17g", number);
      h = fnv1a(h, buf, static_cast<std::size_t>(n));
      break;
    }
    case obs::JsonValue::Type::kString:
      h = fnv1a(h, text);
      break;
    case obs::JsonValue::Type::kBool:
      h = fnv1a(h, boolean ? "1" : "0", 1);
      break;
    case obs::JsonValue::Type::kNull:
      break;
  }
  h = fnv1a(h, "\x1e", 1);
}

void hash_header(std::uint64_t& h, double time, NodeId node,
                 std::string_view kind) {
  char buf[40];
  const int n = format_double(buf, sizeof buf, "%.17g", time);
  h = fnv1a(h, buf, static_cast<std::size_t>(n));
  const std::uint32_t id = node;
  h = fnv1a(h, &id, sizeof id);
  h = fnv1a(h, kind);
  h = fnv1a(h, "\x1f", 1);
}

std::uint64_t events_fingerprint(const std::vector<obs::ParsedEvent>& events) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const obs::ParsedEvent& event : events) {
    hash_header(h, event.time, event.node, event.kind);
    for (const auto& [key, value] : event.fields) {
      hash_field(h, key, value.type, value.boolean,
                 value.type == obs::JsonValue::Type::kNumber ? value.number
                                                             : 0.0,
                 value.text);
    }
  }
  return h;
}

std::uint64_t store_fingerprint(const obs::EventStore& store) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const obs::EventRec& rec : store.records()) {
    hash_header(h, rec.time, rec.node, store.name(rec.kind));
    const obs::StoredField* field = store.fields().data() + rec.field_begin;
    for (std::uint32_t i = 0; i < rec.field_count; ++i, ++field) {
      hash_field(h, store.name(field->key), field->type, field->boolean,
                 field->number, field->text);
    }
  }
  return h;
}

std::string render_violations(const std::vector<obs::Violation>& violations) {
  std::string out;
  char buf[40];
  for (const obs::Violation& v : violations) {
    out += v.invariant;
    out += '|';
    format_double(buf, sizeof buf, "%.17g", v.time);
    out += buf;
    out += '|';
    out += std::to_string(v.node);
    out += '|';
    out += v.detail;
    out += '\n';
  }
  return out;
}

std::string render_accounting(const obs::TraceLoadStats& stats) {
  std::string out = "lines=" + std::to_string(stats.lines);
  out += ";events=" + std::to_string(stats.events);
  out += ";malformed=" + std::to_string(stats.malformed);
  out += ";first_line=" + std::to_string(stats.first_malformed_line);
  out += ";first_error=" + stats.first_error;
  return out;
}

struct TraceLeg {
  const char* name = "";
  double load_seconds = 0.0;     // min across reps
  double analyze_seconds = 0.0;  // scorecard + invariant catalog, min
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  std::string scorecard;
  std::string violations;
  std::string accounting;
};

int run_trace_bench(const Flags& flags) {
  const double mb = flags.get_double("trace-mb", 100.0);
  unsigned jobs = static_cast<unsigned>(
      std::max<std::int64_t>(flags.get_int("trace-jobs", 4), 0));
  jobs = resolve_jobs(jobs);
  const int reps =
      std::max(1, static_cast<int>(flags.get_int("trace-reps", 3)));

  std::string input = flags.get_string("trace-input", "");
  const bool generated = input.empty();
  if (generated) {
    input = flags.get_string("trace-out", "BENCH_trace.json") +
            ".input.jsonl";
    std::cout << "trace ingest: generating " << mb
              << " MiB synthetic 10k-node trace...\n";
    if (!write_synthetic_trace(
            input, static_cast<std::uint64_t>(mb * 1024.0 * 1024.0))) {
      std::cerr << "cannot write " << input << '\n';
      return 1;
    }
  }

  TraceLeg legacy, serial, parallel;
  legacy.name = "legacy_reader";
  serial.name = "store_serial";
  parallel.name = "store_parallel";
  obs::IngestStats ingest;  // from the parallel leg: bytes/mapped/shards

  for (int rep = 0; rep < reps; ++rep) {
    {
      std::vector<obs::ParsedEvent> events;
      obs::TraceLoadStats stats;
      std::string error;
      Clock::time_point start = Clock::now();
      if (!obs::load_trace_file(input, events, stats, &error)) {
        std::cerr << "legacy reader failed: " << error << '\n';
        return 1;
      }
      const double load = seconds_since(start);
      if (rep == 0 || load < legacy.load_seconds) legacy.load_seconds = load;
      start = Clock::now();
      const obs::Scorecard card = obs::build_scorecard(events);
      const std::vector<obs::Violation> violations =
          obs::check_invariants(events);
      const double analyze = seconds_since(start);
      if (rep == 0 || analyze < legacy.analyze_seconds) {
        legacy.analyze_seconds = analyze;
      }
      if (rep == 0) {
        legacy.events = events.size();
        legacy.fingerprint = events_fingerprint(events);
        legacy.scorecard = obs::render_scorecard_json(card);
        legacy.violations = render_violations(violations);
        legacy.accounting = render_accounting(stats);
      }
    }
    for (TraceLeg* leg : {&serial, &parallel}) {
      const unsigned leg_jobs = leg == &serial ? 1 : jobs;
      obs::EventStore store;
      obs::IngestStats stats;
      std::string error;
      Clock::time_point start = Clock::now();
      if (!obs::load_trace_store(input, store, stats, &error, leg_jobs)) {
        std::cerr << leg->name << " failed: " << error << '\n';
        return 1;
      }
      const double load = seconds_since(start);
      if (rep == 0 || load < leg->load_seconds) leg->load_seconds = load;
      start = Clock::now();
      const obs::Scorecard card = obs::build_scorecard(store);
      const std::vector<obs::Violation> violations =
          obs::check_invariants(store);
      const double analyze = seconds_since(start);
      if (rep == 0 || analyze < leg->analyze_seconds) {
        leg->analyze_seconds = analyze;
      }
      if (rep == 0) {
        leg->events = store.size();
        leg->fingerprint = store_fingerprint(store);
        leg->scorecard = obs::render_scorecard_json(card);
        leg->violations = render_violations(violations);
        leg->accounting = render_accounting(stats.to_trace_stats());
        if (leg == &parallel) ingest = std::move(stats);
      }
    }
  }

  bool identical = true;
  for (const TraceLeg* leg : {&serial, &parallel}) {
    const auto mismatch = [&](const char* what, bool same) {
      if (!same) {
        identical = false;
        std::cerr << leg->name << " diverged from legacy_reader: " << what
                  << '\n';
      }
    };
    mismatch("event count", leg->events == legacy.events);
    mismatch("event fingerprint", leg->fingerprint == legacy.fingerprint);
    mismatch("scorecard JSON", leg->scorecard == legacy.scorecard);
    mismatch("violations", leg->violations == legacy.violations);
    mismatch("malformed accounting", leg->accounting == legacy.accounting);
  }

  const double mib = static_cast<double>(ingest.bytes) / (1024.0 * 1024.0);
  const auto rate = [&](const TraceLeg& leg) {
    return leg.load_seconds > 0.0 ? mib / leg.load_seconds : 0.0;
  };
  const auto total = [](const TraceLeg& leg) {
    return leg.load_seconds + leg.analyze_seconds;
  };
  const double ingest_speedup_serial =
      serial.load_seconds > 0.0 ? legacy.load_seconds / serial.load_seconds
                                : 0.0;
  const double ingest_speedup =
      parallel.load_seconds > 0.0
          ? legacy.load_seconds / parallel.load_seconds
          : 0.0;
  const double e2e_speedup =
      total(parallel) > 0.0 ? total(legacy) / total(parallel) : 0.0;

  std::cout << "trace ingest: " << mib << " MiB, " << legacy.events
            << " events, "
            << (legacy.accounting.substr(legacy.accounting.find("malformed=")))
            << ", jobs=" << jobs << ", shards=" << ingest.shards << ", "
            << (ingest.mapped ? "mmap" : "read") << '\n';
  for (const TraceLeg* leg : {&legacy, &serial, &parallel}) {
    std::cout << "  " << leg->name << ": load " << leg->load_seconds
              << " s (" << rate(*leg) << " MiB/s), analyze "
              << leg->analyze_seconds << " s, total " << total(*leg)
              << " s\n";
  }
  std::cout << "  ingest speedup: serial " << ingest_speedup_serial
            << "x, jobs=" << jobs << " " << ingest_speedup
            << "x; end-to-end " << e2e_speedup << "x, identical: "
            << (identical ? "yes" : "NO — ingest divergence") << '\n';

  const std::string path = flags.get_string("trace-out", "BENCH_trace.json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out.imbue(std::locale::classic());
  out << "{\n";
  // Interpreting the parallel leg needs the core count: on a
  // single-core box the sharded parse is pure overhead, on CI
  // runners it is where the speedup lives.
  write_machine_header(out);
  out << "  \"input_mib\": " << mib
      << ",\n  \"input_bytes\": " << ingest.bytes
      << ",\n  \"events\": " << legacy.events
      << ",\n  \"lines\": " << ingest.lines
      << ",\n  \"malformed\": " << ingest.malformed
      << ",\n  \"jobs\": " << jobs << ",\n  \"shards\": " << ingest.shards
      << ",\n  \"mapped\": " << (ingest.mapped ? "true" : "false")
      << ",\n  \"reps\": " << reps << ",\n  \"legs\": [\n";
  const TraceLeg* legs[] = {&legacy, &serial, &parallel};
  for (std::size_t i = 0; i < 3; ++i) {
    const TraceLeg& leg = *legs[i];
    out << "    {\"name\": \"" << leg.name
        << "\", \"load_seconds\": " << leg.load_seconds
        << ", \"mib_per_s\": " << rate(leg)
        << ", \"analyze_seconds\": " << leg.analyze_seconds
        << ", \"total_seconds\": " << total(leg) << "}" << (i < 2 ? "," : "")
        << '\n';
  }
  out << "  ],\n  \"ingest_speedup_serial\": " << ingest_speedup_serial
      << ",\n  \"ingest_speedup_parallel\": " << ingest_speedup
      << ",\n  \"e2e_speedup_parallel\": " << e2e_speedup
      << ",\n  \"identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::cout << "trace ingest matrix -> " << path << '\n';

  if (generated && !flags.get_bool("trace-keep", false)) {
    std::remove(input.c_str());
  }
  if (!identical) {
    std::cerr << "trace ingest diverged from the legacy reader\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  int status = 0;
  if (!flags.get_bool("skip-kernel", false)) {
    status = run_kernel(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-scale", false)) {
    status = run_scale(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-obs", false)) {
    status = run_obs(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-trace", false)) {
    status = run_trace_bench(flags);
    if (status != 0) return status;
  }
  if (!flags.get_bool("skip-sweep", false)) {
    status = run_sweep_bench(flags);
  }
  return status;
}
