// Ablation D — threshold sensitivity. §5 fixes both Algorithm H's and
// Algorithm P's levels at 0.9 ("Pull-.9", "Push-.9"); this sweeps the
// shared threshold for REALTOR at a mid-load and an overload point.
// Expected: low thresholds solicit early and often (more overhead, little
// admission benefit); very high thresholds react too late to migrate.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));

  std::cout << "Ablation D: Algorithm H/P threshold sweep (REALTOR, reps="
            << reps << ")\n";

  Table table({"threshold", "admit@6", "overhead@6", "migr@6", "admit@8",
               "overhead@8", "migr@8"});
  for (const double threshold :
       {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    table.row().cell(threshold, 2);
    for (const double lambda : {6.0, 8.0}) {
      OnlineStats admit, overhead, migration;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol.help_threshold = threshold;
        config.protocol.pledge_threshold = threshold;
        config.protocol.availability_floor = 1.0 - threshold;
        config.protocol_kind = proto::ProtocolKind::kRealtor;
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 32452843ULL * rep;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit.add(m.admission_probability());
        overhead.add(m.total_messages());
        migration.add(m.migration_rate());
      }
      table.cell(admit.mean(), 4).cell(overhead.mean(), 0).cell(
          migration.mean(), 4);
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
