// Ablation H — speculative migration (paper §3: "the migration of the
// component can happen concurrently to the negotiation among the Admission
// Controls (speculative migration), thus enabling very low-latency
// migration").
//
// Runs the threaded Agile cluster under overload with a one-way network
// delay d and compares the sequential negotiation path (request + reply +
// transfer, ~3d decision-to-registered) against the speculative path
// (state ships with the request, ~1d), plus the price of speculation:
// transfers that arrive at a refusing host are wasted.
#include <iostream>

#include "agile/cluster.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const double lambda = flags.get_double("lambda", 6.0);

  std::cout << "Ablation H: speculative vs sequential migration latency "
            << "(4 hosts, queue 20s, lambda=" << lambda << ")\n";

  Table table({"delay (model s)", "mode", "latency (model s)", "x delay",
               "admission", "spec misses"});
  for (const double delay : flags.get_double_list("delays", {0.1, 0.3, 0.6})) {
    for (const bool speculative : {false, true}) {
      agile::ClusterConfig config;
      config.num_hosts = 4;
      config.queue_capacity = 20.0;
      config.lambda = lambda;
      config.mean_task_size = 2.0;
      config.model_duration = flags.get_double("duration", 90.0);
      config.time_compression = flags.get_double("compression", 0.01);
      config.network_delay = delay;
      config.speculative_migration = speculative;
      config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
      agile::Cluster cluster(config);
      const agile::ClusterMetrics m = cluster.run();
      const double latency = m.mean_migration_latency();
      table.row()
          .cell(delay, 2)
          .cell(std::string(speculative ? "speculative" : "sequential"))
          .cell(latency, 4)
          .cell(delay > 0.0 ? latency / delay : 0.0, 2)
          .cell(m.admission_probability(), 4)
          .cell(m.speculative_rejected);
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\n(latency = decision at the origin to component registered "
               "at the destination,\nmeasured in model time; 'x delay' near "
               "3 = sequential round trip, near 1 = speculative)\n";
  return 0;
}
