// Ablation A — the paper's claim 2: REALTOR's "overhead ... is independent
// of the network size or the system size" (§1). We scale the mesh from 3x3
// to 10x10 holding the *per-node* offered load constant and report, for
// REALTOR and pure PUSH:
//   * HELP solicitations per node per second — the scalability quantity:
//     how often a node initiates discovery, bounded by Algorithm H's
//     interval adaptation regardless of system size;
//   * PLEDGE replies per HELP — the information return, which naturally
//     grows with the pool of available hosts (each reply is borne by a
//     host with spare capacity);
//   * accounting cost units per admitted task (grows for any flooding
//     scheme since a flood costs #links).
// Expected: REALTOR's solicitation rate stays flat with size while pure
// PUSH's unconditional per-task cost grows an order of magnitude faster.
#include <iostream>

#include "bench_common.hpp"
#include "experiment/figures.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const double per_node_lambda = flags.get_double("node-lambda", 0.28);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double duration = flags.get_double("duration", 400.0);

  std::cout << "Ablation A: system-size independence "
            << "(per-node lambda=" << per_node_lambda
            << ", duration=" << duration << "s, reps=" << reps << ")\n";

  Table table({"mesh", "nodes", "links", "HELPs/node/s", "PLEDGEs/HELP",
               "REALTOR units/task", "Push-1 units/task", "REALTOR admit",
               "Push-1 admit"});

  for (const NodeId side : {NodeId{3}, NodeId{4}, NodeId{5}, NodeId{6},
                            NodeId{8}, NodeId{10}}) {
    const NodeId nodes = side * side;
    OnlineStats help_rate, pledges_per_help, units[2], admit[2];
    const proto::ProtocolKind kinds[2] = {proto::ProtocolKind::kRealtor,
                                          proto::ProtocolKind::kPurePush};
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      for (int k = 0; k < 2; ++k) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.topology.width = side;
        config.topology.height = side;
        config.lambda = per_node_lambda * nodes;
        config.duration = duration;
        config.protocol_kind = kinds[k];
        // Unicast cost must track the actual topology, not the paper's
        // 5x5 constant.
        config.fixed_unicast_cost.reset();
        config.seed = 42 + 7919ULL * rep + side;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        if (kinds[k] == proto::ProtocolKind::kRealtor) {
          const auto helps = m.ledger.sends(net::MessageKind::kHelp);
          help_rate.add(static_cast<double>(helps) /
                        (static_cast<double>(nodes) * duration));
          pledges_per_help.add(
              helps > 0 ? static_cast<double>(
                              m.ledger.sends(net::MessageKind::kPledge)) /
                              static_cast<double>(helps)
                        : 0.0);
        }
        units[k].add(m.messages_per_admitted());
        admit[k].add(m.admission_probability());
      }
    }
    std::size_t links = 0;
    {
      const auto topo = net::make_mesh(side, side);
      links = topo.num_links();
    }
    table.row()
        .cell(std::to_string(side) + "x" + std::to_string(side))
        .cell(static_cast<std::uint64_t>(nodes))
        .cell(static_cast<std::uint64_t>(links))
        .cell(help_rate.mean(), 4)
        .cell(pledges_per_help.mean(), 2)
        .cell(units[0].mean(), 2)
        .cell(units[1].mean(), 2)
        .cell(admit[0].mean(), 4)
        .cell(admit[1].mean(), 4);
  }
  std::cout << '\n';
  table.print(std::cout);
  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty()) table.save_csv(csv);
  return 0;
}
