// Ablation F — multi-resource discovery (paper §5 footnote 3: "More
// general resource scenarios such as network bandwidth, current security
// level, etc., would give similar results"). We run the Fig. 5 sweep for
// REALTOR in three configurations:
//   * CPU only (the paper's model),
//   * CPU + light NIC shares + security levels (footnote regime), and
//   * CPU + heavy NIC shares (bandwidth becomes the binding resource).
// Expected: the light configuration tracks the CPU-only curve closely
// (validating the footnote); the heavy one shifts the knee left because
// the NIC saturates before the CPU queue does.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));

  std::cout << "Ablation F: multi-resource discovery (REALTOR, reps=" << reps
            << ")\n";

  struct Variant {
    const char* name;
    bool enabled;
    double mean_bw;
    double secure_fraction;
  };
  const Variant variants[] = {
      {"CPU-only", false, 0.0, 0.0},
      {"CPU+NIC+security (light)", true, 0.03, 0.2},
      {"CPU+NIC (heavy)", true, 0.20, 0.0},
  };

  Table table({"lambda", "CPU-only", "light multi", "heavy NIC",
               "migr CPU-only", "migr light", "migr heavy"});
  for (const double lambda :
       flags.get_double_list("lambdas", {4.0, 6.0, 8.0, 10.0})) {
    OnlineStats admit[3], migrate[3];
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      for (int v = 0; v < 3; ++v) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = proto::ProtocolKind::kRealtor;
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 86028157ULL * rep;
        config.multi_resource.enabled = variants[v].enabled;
        config.multi_resource.mean_bandwidth_share = variants[v].mean_bw;
        config.multi_resource.secure_task_fraction =
            variants[v].secure_fraction;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit[v].add(m.admission_probability());
        migrate[v].add(m.migration_rate());
      }
    }
    table.row()
        .cell(lambda, 1)
        .cell(admit[0].mean(), 4)
        .cell(admit[1].mean(), 4)
        .cell(admit[2].mean(), 4)
        .cell(migrate[0].mean(), 4)
        .cell(migrate[1].mean(), 4)
        .cell(migrate[2].mean(), 4);
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
