// Reproduces Figure 5: admission probability vs task arrival rate for the
// five discovery protocols on the 5x5 mesh.
//
// Expected shape (paper §5): all curves close together; REALTOR and
// Push-.9 best; Pull-100 lowest; Push-1 in the middle.
#include <iostream>

#include "bench_common.hpp"
#include "experiment/figures.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto config = benchutil::base_config(flags);
  const auto options = benchutil::sweep_options(flags);

  std::cout << "Figure 5: admission probability (task-size=5, q-size="
            << config.queue_capacity << ", duration=" << config.duration
            << "s, reps=" << options.replications << ")\n";
  const auto cells = experiment::run_sweep(config, options);
  experiment::emit_figure(
      "Fig 5: admission probability vs lambda",
      experiment::figure_table(
          cells,
          [](const experiment::SweepCell& c)
              -> const OnlineStats& { return c.admission_probability; },
          4, flags.get_bool("ci", false)),
      flags.get_string("csv", ""));
  return 0;
}
