// Timeline J — attack response over time (the survivability narrative of
// §1 as a time series, not plotted in the paper). Ten of 25 nodes die at
// t=200 s (1 s warning) and recover at t=350 s; we sample windowed
// admission probability, mean occupancy and protocol overhead every 25 s
// for REALTOR and the two extreme baselines.
// Expected: a dip in windowed admission after the attack (40% capacity
// gone), REALTOR recovering within a TTL of the restore, and the overhead
// column showing who pays what for the recovery.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  // High enough that losing 40% of the hosts overloads the survivors
  // (arrivals addressed to dead hosts never reach the admission path).
  const double lambda = flags.get_double("lambda", 7.0);

  std::cout << "Timeline: windowed admission through an attack wave "
            << "(lambda=" << lambda
            << ", 10/25 nodes down t=200..350s, 25s windows)\n";

  const proto::ProtocolKind kinds[] = {proto::ProtocolKind::kRealtor,
                                       proto::ProtocolKind::kPurePush,
                                       proto::ProtocolKind::kAdaptivePull};

  std::vector<std::vector<experiment::TimelineSample>> timelines;
  for (const auto kind : kinds) {
    experiment::ScenarioConfig config = benchutil::base_config(flags);
    config.protocol_kind = kind;
    config.lambda = lambda;
    config.duration = flags.get_double("duration", 500.0);
    config.timeline_interval = 25.0;
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    experiment::AttackWave wave;
    wave.time = 200.0;
    wave.count = 10;
    wave.grace = 1.0;
    wave.outage = 150.0;
    config.attacks = {wave};
    experiment::Simulation sim(config);
    sim.run();
    timelines.push_back(sim.timeline());
  }

  Table table({"t (s)", "alive", "occupancy", "REALTOR admit",
               "Push-1 admit", "Pull-100 admit", "REALTOR overhead"});
  for (std::size_t i = 0; i < timelines[0].size(); ++i) {
    table.row()
        .cell(timelines[0][i].time, 0)
        .cell(static_cast<std::uint64_t>(timelines[0][i].alive_nodes))
        .cell(timelines[0][i].mean_occupancy, 3)
        .cell(timelines[0][i].window_admission, 4)
        .cell(timelines[1][i].window_admission, 4)
        .cell(timelines[2][i].window_admission, 4)
        .cell(timelines[0][i].overhead_cost, 0);
  }
  std::cout << '\n';
  table.print(std::cout);
  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty()) table.save_csv(csv);
  return 0;
}
