// Ablation K — the paper's accounting assumption. §5: "the number of
// messages for resource information advertisement to the network is
// counted as the number of links for all approaches. This assumption does
// not affect the performance comparison."
//
// We re-run the Fig. 6 comparison under three accountings:
//   * paper:    flood = #links (40), unicast pinned at 4;
//   * exact:    flood = #links, unicast = true hop distance;
//   * spanning: flood = N-1 (spanning-tree dissemination), unicast = hops;
// and report each protocol's overhead *rank* (1 = cheapest). The paper's
// claim holds iff the ranking column is identical across accountings.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

namespace {

struct Accounting {
  const char* name;
  realtor::net::CostMode cost_mode;
  bool pin_unicast;
  realtor::net::FloodMode flood_mode;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double lambda = flags.get_double("lambda", 8.0);

  std::cout << "Ablation K: accounting-assumption check (lambda=" << lambda
            << ", reps=" << reps << ")\n";

  const Accounting accountings[] = {
      {"paper (links, avg=4)", net::CostMode::kPaperAverage, true,
       net::FloodMode::kLinks},
      {"exact (links, hops)", net::CostMode::kExactHops, false,
       net::FloodMode::kLinks},
      {"spanning (N-1, hops)", net::CostMode::kExactHops, false,
       net::FloodMode::kSpanningTree},
  };

  Table table({"accounting", "protocol", "overhead", "rank"});
  for (const Accounting& accounting : accountings) {
    struct Entry {
      proto::ProtocolKind kind;
      double overhead;
    };
    std::vector<Entry> entries;
    for (const auto kind : proto::kAllProtocolKinds) {
      OnlineStats overhead;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = kind;
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 512927357ULL * rep;
        config.cost_mode = accounting.cost_mode;
        config.flood_mode = accounting.flood_mode;
        if (!accounting.pin_unicast) config.fixed_unicast_cost.reset();
        experiment::Simulation sim(config);
        overhead.add(sim.run().total_messages());
      }
      entries.push_back(Entry{kind, overhead.mean()});
    }
    // Rank by overhead (1 = cheapest).
    for (const Entry& e : entries) {
      int rank = 1;
      for (const Entry& other : entries) {
        if (other.overhead < e.overhead) ++rank;
      }
      table.row()
          .cell(std::string(accounting.name))
          .cell(std::string(proto::paper_label(e.kind)))
          .cell(e.overhead, 0)
          .cell(static_cast<std::uint64_t>(rank));
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nIdentical per-protocol ranks across the three accountings "
               "confirm the paper's\nclaim that the counting convention does "
               "not affect the comparison.\n";
  return 0;
}
