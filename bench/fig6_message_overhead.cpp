// Reproduces Figure 6: total number of message exchanges vs arrival rate.
//
// Expected shape (paper §5): Push-1 highest (flat, wasteful at light
// load); Pull-.9 grows roughly linearly with load; Pull-100 lowest;
// REALTOR moderate — slightly above Push-.9, about a third of Push-1.
#include <iostream>

#include "bench_common.hpp"
#include "experiment/figures.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto config = benchutil::base_config(flags);
  const auto options = benchutil::sweep_options(flags);

  std::cout << "Figure 6: number of messages exchanged (task-size=5, q-size="
            << config.queue_capacity << ", push interval=1, window=100)\n";
  const auto cells = experiment::run_sweep(config, options);
  experiment::emit_figure("Fig 6: total messages vs lambda",
                          experiment::fig6_message_overhead(cells),
                          flags.get_string("csv", ""));
  return 0;
}
