// Ablation G — inter-neighbor-group discovery (§7 future work: "extend
// this work to inter-neighbor-group resource discovery and allocation for
// very large distributed dynamic real-time systems").
//
// Large meshes at fixed per-node load, REALTOR flat (floods reach the
// whole overlay) vs federated (floods stay inside 5x5 neighbor groups;
// a node whose group is dry escalates through the gateway into adjacent
// groups). Expected: the federated overlay cuts the discovery bill by an
// amount that grows with system size, at near-equal admission probability
// — the property that makes the protocol viable for "very large" systems.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double per_node_lambda = flags.get_double("node-lambda", 0.32);
  const double duration = flags.get_double("duration", 400.0);

  std::cout << "Ablation G: inter-group (federated) discovery "
            << "(REALTOR, per-node lambda=" << per_node_lambda
            << ", 5x5 groups, duration=" << duration << "s, reps=" << reps
            << ")\n";

  Table table({"mesh", "groups", "flat admit", "fed admit", "flat overhead",
               "fed overhead", "saving", "escalations"});
  for (const NodeId side : {NodeId{10}, NodeId{15}, NodeId{20}}) {
    OnlineStats admit[2], overhead[2], escalations;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      for (int fed = 0; fed < 2; ++fed) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.topology.width = side;
        config.topology.height = side;
        config.lambda = per_node_lambda * side * side;
        config.duration = duration;
        config.protocol_kind = proto::ProtocolKind::kRealtor;
        config.fixed_unicast_cost.reset();
        config.seed = 42 + 472882027ULL * rep + side;
        if (fed == 1) {
          config.federation.enabled = true;
          config.federation.block_width = 5;
          config.federation.block_height = 5;
        }
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit[fed].add(m.admission_probability());
        overhead[fed].add(m.total_messages());
        if (fed == 1) {
          escalations.add(static_cast<double>(m.escalations));
        }
      }
    }
    const double saving =
        overhead[0].mean() > 0.0
            ? 1.0 - overhead[1].mean() / overhead[0].mean()
            : 0.0;
    table.row()
        .cell(std::to_string(side) + "x" + std::to_string(side))
        .cell(static_cast<std::uint64_t>((side / 5) * (side / 5)))
        .cell(admit[0].mean(), 4)
        .cell(admit[1].mean(), 4)
        .cell(overhead[0].mean(), 0)
        .cell(overhead[1].mean(), 0)
        .cell(saving, 3)
        .cell(escalations.mean(), 0);
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
