// Ablation M — community membership budget. §4: a host joins "as many
// communities as it is able to without over-allocating its spare
// resources"; every membership costs one unsolicited PLEDGE per threshold
// crossing. This sweeps the budget (0 = unlimited) for REALTOR at mid and
// overload points, reporting admission, total overhead, and the
// unsolicited-pledge share. Expected: admission saturates by a budget of
// ~8 while the crossing-pledge bill keeps growing with the budget — the
// basis for the repository default of 8.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));

  std::cout << "Ablation M: community membership budget (REALTOR, reps="
            << reps << ")\n";

  Table table({"budget", "admit@6", "overhead@6", "admit@8", "overhead@8",
               "pledges@8"});
  for (const std::uint32_t budget : {1u, 2u, 4u, 8u, 16u, 0u}) {
    table.row().cell(budget == 0 ? std::string("unlimited")
                                 : std::to_string(budget));
    for (const double lambda : {6.0, 8.0}) {
      OnlineStats admit, overhead, pledges;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = proto::ProtocolKind::kRealtor;
        config.protocol.max_communities = budget;
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 611953ULL * rep;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit.add(m.admission_probability());
        overhead.add(m.total_messages());
        pledges.add(static_cast<double>(
            m.ledger.sends(net::MessageKind::kPledge)));
      }
      table.cell(admit.mean(), 4).cell(overhead.mean(), 0);
      if (lambda == 8.0) table.cell(pledges.mean(), 0);
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
