// Ablation B — the paper's claim 3: REALTOR "works well in highly adverse
// environments" (§1, §7). An attack wave kills a growing fraction of the
// mesh at t=100 s with a 1 s warning (grace) during which victims evacuate
// their resident components through the discovery protocol; nodes recover
// after 60 s. We report admission probability over the whole run and the
// evacuation success rate, for all five protocols.
// Expected: REALTOR and the pull schemes (which can solicit on demand and
// whose soft state expires) sustain evacuation as the attack grows, while
// the push schemes degrade — their tables hold stale entries for dead
// hosts and adaptive PUSH has no way to ask for fresh information.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 5));
  const double lambda = flags.get_double("lambda", 6.0);

  std::cout << "Ablation B: attack survivability (lambda=" << lambda
            << ", wave at t=100s, grace 1s, outage 60s, reps=" << reps
            << ")\n";

  Table admit_table({"attacked%", "Pull-.9", "Push-1", "Push-.9", "Pull-100",
                     "REALTOR-100"});
  Table rescue_table({"attacked%", "Pull-.9", "Push-1", "Push-.9", "Pull-100",
                      "REALTOR-100"});

  for (const std::size_t count : {std::size_t{0}, std::size_t{2},
                                  std::size_t{5}, std::size_t{7},
                                  std::size_t{10}}) {
    admit_table.row().cell(static_cast<std::uint64_t>(count * 4));
    rescue_table.row().cell(static_cast<std::uint64_t>(count * 4));
    for (const auto kind :
         {proto::ProtocolKind::kPurePull, proto::ProtocolKind::kPurePush,
          proto::ProtocolKind::kAdaptivePush,
          proto::ProtocolKind::kAdaptivePull, proto::ProtocolKind::kRealtor}) {
      OnlineStats admit, rescue;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 300.0);
        config.protocol_kind = kind;
        config.seed = 42 + 104729ULL * rep;
        if (count > 0) {
          experiment::AttackWave wave;
          wave.time = 100.0;
          wave.count = count;
          wave.grace = 1.0;
          wave.outage = 60.0;
          config.attacks = {wave};
        }
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit.add(m.admission_probability());
        rescue.add(count > 0 ? m.evacuation_success_rate() : 1.0);
      }
      admit_table.cell(admit.mean(), 4);
      rescue_table.cell(rescue.mean(), 4);
    }
  }

  std::cout << "\n-- Admission probability under attack --\n";
  admit_table.print(std::cout);
  std::cout << "\n-- Evacuation success rate (resident work rescued) --\n";
  rescue_table.print(std::cout);
  return 0;
}
