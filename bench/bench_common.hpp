// Shared flag plumbing for the figure-reproduction binaries.
//
// Every binary accepts:
//   --lambdas=1,2,...   arrival-rate sweep (tasks/s system-wide)
//   --reps=N            replications per cell (default 5)
//   --duration=T        simulated seconds per run (default 600)
//   --seed=S            base seed (default 42)
//   --topology=mesh|torus|ring|star|complete|random  overlay shape
//                       (default mesh; non-mesh shapes unpin the paper's
//                       fixed unicast cost of 4 and use the computed
//                       average path length)
//   --width=W           mesh/torus width in nodes (default 5)
//   --height=H          mesh/torus height in nodes (default 5)
//   --nodes=N           node count for ring/star/complete/random
//   --links=L           link count for random topologies
//   --topo-seed=S       random-topology construction seed (default 1)
//   --approx-paths      sampled average-path/diameter estimation on
//                       topologies >= ~2500 alive nodes (exact otherwise)
//   --queue=Q           per-node queue capacity, seconds of work (default 100)
//   --task-size=S       mean task size, seconds (default 5)
//   --help-threshold=V  Algorithm P solicitation threshold
//   --pledge-threshold=V  availability-pledge threshold
//   --alpha=V --beta=V  Algorithm H interval adaptation gains
//   --upper-limit=V     HELP-interval upper limit / window
//   --help-timeout=T    HELP retransmission timeout (seconds)
//   --push-interval=T   PUSH advertisement period (seconds)
//   --ttl=T             soft-state availability TTL (seconds)
//   --max-communities=N community membership cap
//   --reward=migration|pledge  Algorithm H reward policy (default
//                       migration; pledge rewards the first useful pledge)
//   --tries=N           migration negotiation attempts (default 1)
//   --jobs=N            sweep worker threads; 0 (default) = one per
//                       hardware thread, 1 = serial reference path.
//                       Results are byte-identical for every value.
//   --exec=thread|fork  sweep execution backend (default thread). fork
//                       snapshots shared pre-attack prefixes and finishes
//                       each point in a COW child (Linux only; results
//                       byte-identical to thread).
//   --csv=PATH          also write the table as CSV
//   --ci                print 95% confidence half-widths
//   --trace=PREFIX      JSONL trace per sweep run, named
//                       PREFIX.<proto>.lambda<L>.rep<R>.jsonl
//   --trace-flush-every=K  batch JSONL writes, K lines per flush
//   --flight-recorder[=N]  binary flight ring per sweep run (N records),
//                       dumped to <flight-out>.<proto>.lambda<L>.rep<R>.bin
//   --flight-out=PREFIX flight dump prefix (default "flight")
#pragma once

#include <string>
#include <vector>

#include "common/flags.hpp"
#include "experiment/cli_config.hpp"
#include "experiment/scenario.hpp"
#include "experiment/sweep.hpp"

namespace realtor::benchutil {

inline std::vector<double> default_lambdas() {
  return {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
}

inline experiment::ScenarioConfig base_config(const Flags& flags) {
  experiment::ScenarioConfig config;
  // Same topology pass-through as the CLI (mesh 5x5 when unspecified), so
  // the scale matrix is runnable straight from any bench binary.
  experiment::apply_topology_flags(flags, config);
  config.duration = flags.get_double("duration", 600.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.queue_capacity = flags.get_double("queue", 100.0);
  config.mean_task_size = flags.get_double("task-size", 5.0);

  proto::ProtocolConfig& p = config.protocol;
  p.help_threshold = flags.get_double("help-threshold", p.help_threshold);
  p.pledge_threshold = flags.get_double("pledge-threshold", p.pledge_threshold);
  p.alpha = flags.get_double("alpha", p.alpha);
  p.beta = flags.get_double("beta", p.beta);
  p.help_upper_limit = flags.get_double("upper-limit", p.help_upper_limit);
  p.help_timeout = flags.get_double("help-timeout", p.help_timeout);
  p.push_interval = flags.get_double("push-interval", p.push_interval);
  p.soft_state_ttl = flags.get_double("ttl", p.soft_state_ttl);
  p.max_communities = static_cast<std::uint32_t>(
      flags.get_int("max-communities", p.max_communities));
  if (flags.get_string("reward", "migration") == "pledge") {
    p.reward_policy = proto::HelpRewardPolicy::kOnFirstUsefulPledge;
  }
  config.migration.max_tries =
      static_cast<std::uint32_t>(flags.get_int("tries", 1));
  return config;
}

inline experiment::SweepOptions sweep_options(const Flags& flags) {
  experiment::SweepOptions options = experiment::paper_sweep_options(
      flags.get_double_list("lambdas", default_lambdas()),
      static_cast<std::uint32_t>(flags.get_int("reps", 5)));
  options.jobs = static_cast<unsigned>(flags.get_int("jobs", 0));
  if (const std::optional<experiment::SweepExec> exec =
          experiment::parse_exec(flags.get_string("exec", "thread"))) {
    options.exec = *exec;
  }
  // Same per-run tracing the CLI sweep offers (one suffixed file per run,
  // never shared across workers); tracing does not change any measured
  // metric, only wall-clock time.
  experiment::RunSinkOptions sinks;
  sinks.jsonl_prefix = flags.get_string("trace", "");
  sinks.jsonl_flush_every =
      static_cast<std::size_t>(flags.get_int("trace-flush-every", 0));
  if (flags.has("flight-recorder")) {
    sinks.flight_prefix = flags.get_string("flight-out", "flight");
    const std::int64_t n = flags.get_int(
        "flight-recorder",
        static_cast<std::int64_t>(obs::kDefaultFlightCapacity));
    sinks.flight_capacity = n > 0 ? static_cast<std::size_t>(n)
                                  : obs::kDefaultFlightCapacity;
    sinks.jsonl_prefix.clear();  // flight wins if both were passed
  }
  options.make_trace_sink =
      experiment::make_run_sink_factory(std::move(sinks));
  return options;
}

}  // namespace realtor::benchutil
