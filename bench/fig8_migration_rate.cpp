// Reproduces Figure 8: migration rate per admitted task.
//
// Expected shape (paper §5): REALTOR highest, peaking near 30% in the
// overload region and then declining as Upper_limit suppresses HELP;
// Push-1 rises until saturation and then flattens; the pull-based schemes
// lowest (their information is stale by the time a migration is needed).
#include <iostream>

#include "bench_common.hpp"
#include "experiment/figures.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto config = benchutil::base_config(flags);
  const auto options = benchutil::sweep_options(flags);

  std::cout << "Figure 8: migration rate per admitted task\n";
  const auto cells = experiment::run_sweep(config, options);
  experiment::emit_figure("Fig 8: migration rate vs lambda",
                          experiment::fig8_migration_rate(cells),
                          flags.get_string("csv", ""));
  return 0;
}
