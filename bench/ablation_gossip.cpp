// Ablation I — REALTOR vs a modern gossip baseline.
//
// Not in the paper: push-pull anti-entropy gossip (SWIM / memberlist /
// Serf-style) became the standard way to disseminate membership and load
// state after 2003. This bench situates REALTOR against it on the paper's
// own workload: admission probability, migration rate, and message
// overhead across the arrival-rate sweep, plus a fanout sensitivity table.
// Expected: gossip is competitive on admission (its information converges
// in O(log N) rounds) but, like pure PUSH, pays a load-independent
// standing cost; REALTOR's demand-driven traffic undercuts it at light
// load and matches it under overload.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));

  std::cout << "Ablation I: REALTOR vs push-pull gossip (reps=" << reps
            << ")\n";

  Table sweep({"lambda", "REALTOR admit", "Gossip admit", "REALTOR overhead",
               "Gossip overhead", "REALTOR migr", "Gossip migr"});
  for (const double lambda :
       flags.get_double_list("lambdas", {2.0, 4.0, 6.0, 8.0, 10.0})) {
    OnlineStats admit[2], overhead[2], migr[2];
    const proto::ProtocolKind kinds[2] = {proto::ProtocolKind::kRealtor,
                                          proto::ProtocolKind::kGossip};
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      for (int k = 0; k < 2; ++k) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = kinds[k];
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 179424673ULL * rep;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit[k].add(m.admission_probability());
        overhead[k].add(m.total_messages());
        migr[k].add(m.migration_rate());
      }
    }
    sweep.row()
        .cell(lambda, 1)
        .cell(admit[0].mean(), 4)
        .cell(admit[1].mean(), 4)
        .cell(overhead[0].mean(), 0)
        .cell(overhead[1].mean(), 0)
        .cell(migr[0].mean(), 4)
        .cell(migr[1].mean(), 4);
  }
  std::cout << '\n';
  sweep.print(std::cout);

  Table fanout({"fanout", "interval", "admit@8", "overhead@8"});
  for (const std::uint32_t f : {1u, 2u, 4u}) {
    for (const double interval : {0.5, 1.0, 2.0}) {
      OnlineStats admit, overhead;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = proto::ProtocolKind::kGossip;
        config.protocol.gossip_fanout = f;
        config.protocol.gossip_interval = interval;
        config.lambda = 8.0;
        config.duration = flags.get_double("duration", 400.0);
        config.seed = 42 + 179424673ULL * rep;
        experiment::Simulation sim(config);
        const auto& m = sim.run();
        admit.add(m.admission_probability());
        overhead.add(m.total_messages());
      }
      fanout.row()
          .cell(static_cast<std::uint64_t>(f))
          .cell(interval, 1)
          .cell(admit.mean(), 4)
          .cell(overhead.mean(), 0);
    }
  }
  std::cout << "\n-- gossip fanout / interval sensitivity --\n";
  fanout.print(std::cout);
  return 0;
}
