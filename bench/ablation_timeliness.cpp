// Ablation L — information timeliness. §5 explains Fig. 8's ordering by
// the "untimeliness of the pull-based approach: ... information is
// collected before migration request rises, [so] the information can be
// out-of-dated rather easily", while adaptive push "is more timely because
// each host disseminates information only when it changes the status."
//
// We make staleness physical: a per-hop propagation delay on every
// protocol message (floods arrive hop by hop, pledges take their path
// length). As the delay grows, every scheme's candidate information ages;
// the claim predicts the demand-driven schemes keep their admission edge
// while absolute effectiveness decays for everyone.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double lambda = flags.get_double("lambda", 8.0);

  std::cout << "Ablation L: per-hop delay vs admission probability "
            << "(lambda=" << lambda << ", reps=" << reps << ")\n";

  Table table({"hop delay (s)", "Pull-.9", "Push-1", "Push-.9", "Pull-100",
               "REALTOR-100"});
  for (const double delay :
       flags.get_double_list("delays", {0.0, 0.1, 0.5, 1.0, 2.0})) {
    table.row().cell(delay, 2);
    for (const auto kind : proto::kAllProtocolKinds) {
      OnlineStats admit;
      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        experiment::ScenarioConfig config = benchutil::base_config(flags);
        config.protocol_kind = kind;
        config.lambda = lambda;
        config.duration = flags.get_double("duration", 400.0);
        config.network_delay = delay;
        config.seed = 42 + 275604541ULL * rep;
        experiment::Simulation sim(config);
        admit.add(sim.run().admission_probability());
      }
      table.cell(admit.mean(), 4);
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
