// Ablation E — migration retry budget. §5 restricts the experiments to a
// one-time migration try; §3 describes the full behaviour ("migration is
// aborted and the next node in REALTOR's list is tried"). This sweeps the
// retry budget for REALTOR and adaptive PUSH under overload.
// Expected: extra tries buy admission probability at the price of extra
// negotiation traffic, with diminishing returns after 2-3 tries.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));

  std::cout << "Ablation E: migration retry budget (reps=" << reps << ")\n";

  Table table({"tries", "protocol", "admit@8", "admit@10", "negotiation@10",
               "migr-rate@10"});
  for (const std::uint32_t tries : {1u, 2u, 3u, 5u}) {
    for (const auto kind : {proto::ProtocolKind::kRealtor,
                            proto::ProtocolKind::kAdaptivePush}) {
      OnlineStats admit8, admit10, nego10, migr10;
      for (const double lambda : {8.0, 10.0}) {
        for (std::uint32_t rep = 0; rep < reps; ++rep) {
          experiment::ScenarioConfig config = benchutil::base_config(flags);
          config.migration.max_tries = tries;
          config.protocol_kind = kind;
          config.lambda = lambda;
          config.duration = flags.get_double("duration", 400.0);
          config.seed = 42 + 49979687ULL * rep;
          experiment::Simulation sim(config);
          const auto& m = sim.run();
          if (lambda == 8.0) {
            admit8.add(m.admission_probability());
          } else {
            admit10.add(m.admission_probability());
            nego10.add(m.ledger.cost(net::MessageKind::kNegotiation));
            migr10.add(m.migration_rate());
          }
        }
      }
      table.row()
          .cell(static_cast<std::uint64_t>(tries))
          .cell(std::string(proto::paper_label(kind)))
          .cell(admit8.mean(), 4)
          .cell(admit10.mean(), 4)
          .cell(nego10.mean(), 0)
          .cell(migr10.mean(), 4);
    }
  }
  std::cout << '\n';
  table.print(std::cout);
  return 0;
}
