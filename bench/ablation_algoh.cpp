// Ablation C — Algorithm H design knobs. The paper leaves alpha and beta
// "subject to the local resource manager" (§4) and its Fig. 2 pseudocode
// admits two readings of the reward rule (see ProtocolConfig). This bench
// quantifies all three choices for REALTOR at a mid/overload point:
//   * alpha (penalty growth) x beta (reward shrink) grid,
//   * Upper_limit sweep (the "100" in REALTOR-100),
//   * reward policy: on-migration-success vs on-first-useful-pledge.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

namespace {

struct Point {
  realtor::OnlineStats admission;
  realtor::OnlineStats overhead;
};

Point run_point(const realtor::Flags& flags,
                const realtor::proto::ProtocolConfig& protocol,
                double lambda, std::uint32_t reps) {
  using namespace realtor;
  Point point;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    experiment::ScenarioConfig config = benchutil::base_config(flags);
    config.protocol = protocol;
    config.protocol_kind = proto::ProtocolKind::kRealtor;
    config.lambda = lambda;
    config.duration = flags.get_double("duration", 400.0);
    config.seed = 42 + 15485863ULL * rep;
    experiment::Simulation sim(config);
    const auto& m = sim.run();
    point.admission.add(m.admission_probability());
    point.overhead.add(m.total_messages());
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double lambda = flags.get_double("lambda", 8.0);

  std::cout << "Ablation C: Algorithm H parameters (REALTOR, lambda="
            << lambda << ", reps=" << reps << ")\n";

  Table grid({"alpha", "beta", "admission", "overhead"});
  for (const double alpha : {0.25, 0.5, 1.0, 2.0}) {
    for (const double beta : {0.25, 0.5, 0.75}) {
      proto::ProtocolConfig protocol;
      protocol.alpha = alpha;
      protocol.beta = beta;
      const Point p = run_point(flags, protocol, lambda, reps);
      grid.row()
          .cell(alpha, 2)
          .cell(beta, 2)
          .cell(p.admission.mean(), 4)
          .cell(p.overhead.mean(), 0);
    }
  }
  std::cout << "\n-- alpha x beta grid --\n";
  grid.print(std::cout);

  Table upper({"Upper_limit", "admission", "overhead"});
  for (const double limit : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    proto::ProtocolConfig protocol;
    protocol.help_upper_limit = limit;
    protocol.soft_state_ttl = limit;  // TTL tracks the max refresh gap
    const Point p = run_point(flags, protocol, lambda, reps);
    upper.row().cell(limit, 0).cell(p.admission.mean(), 4).cell(
        p.overhead.mean(), 0);
  }
  std::cout << "\n-- Upper_limit sweep (REALTOR-<limit>) --\n";
  upper.print(std::cout);

  Table reward({"reward policy", "admission", "overhead"});
  for (const auto policy : {proto::HelpRewardPolicy::kOnMigrationSuccess,
                            proto::HelpRewardPolicy::kOnFirstUsefulPledge}) {
    proto::ProtocolConfig protocol;
    protocol.reward_policy = policy;
    const Point p = run_point(flags, protocol, lambda, reps);
    reward.row()
        .cell(policy == proto::HelpRewardPolicy::kOnMigrationSuccess
                  ? std::string("on-migration-success")
                  : std::string("on-first-useful-pledge"))
        .cell(p.admission.mean(), 4)
        .cell(p.overhead.mean(), 0);
  }
  std::cout << "\n-- Fig. 2 reward-rule reading --\n";
  reward.print(std::cout);
  return 0;
}
