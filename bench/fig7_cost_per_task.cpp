// Reproduces Figure 7: communication cost per admitted task.
//
// Expected shape (paper §5): Push-1 around 200 messages per admitted task
// at lambda=5 while all others stay under ~50; REALTOR and Push-.9 decline
// as the system saturates; REALTOR shows a bump where occupancy oscillates
// around the threshold (near lambda=6 in the paper).
#include <iostream>

#include "bench_common.hpp"
#include "experiment/figures.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto config = benchutil::base_config(flags);
  const auto options = benchutil::sweep_options(flags);

  std::cout << "Figure 7: message cost per admitted task\n";
  const auto cells = experiment::run_sweep(config, options);
  experiment::emit_figure("Fig 7: messages per admitted task vs lambda",
                          experiment::fig7_cost_per_admitted(cells),
                          flags.get_string("csv", ""));
  return 0;
}
