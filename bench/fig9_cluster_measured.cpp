// Reproduces Figure 9: *measured* admission probability of the REALTOR
// implementation inside the Agile Objects runtime.
//
// Paper §6: 20 Linux hosts, queue_size = 50, tasks are timers waiting to
// expire, REALTOR over IP multicast (HELP) + UDP (PLEDGE), TCP admission
// negotiation. Our substitute is the in-process threaded cluster
// (src/agile): one reactor thread per host, lossy datagram channels, a
// synchronous admission RPC, time-compressed so the sweep finishes in
// seconds. Expected shape: the same declining curve as Fig. 5's REALTOR,
// shifted by the smaller cluster and queue.
#include <iostream>

#include "agile/cluster.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "proto/factory.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const auto lambdas = flags.get_double_list(
      "lambdas", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  const auto reps = static_cast<std::uint32_t>(flags.get_int("reps", 3));
  const double duration = flags.get_double("duration", 60.0);
  const double compression = flags.get_double("compression", 0.003);
  const auto hosts = static_cast<NodeId>(flags.get_int("hosts", 20));
  const double queue = flags.get_double("queue", 50.0);
  const double loss = flags.get_double("loss", 0.0);

  std::cout << "Figure 9: measured admission probability (threaded Agile "
               "Objects cluster)\n"
            << "hosts=" << hosts << " queue=" << queue
            << " task_size=5 duration=" << duration
            << "s x" << reps << " reps, time compression " << compression
            << " wall-s per model-s\n";

  Table table({"lambda", "REALTOR (measured)", "+-95%", "migration-rate",
               "helps", "pledges"});
  for (const double lambda : lambdas) {
    OnlineStats admission, migration;
    std::uint64_t helps = 0, pledges = 0;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      agile::ClusterConfig config;
      config.num_hosts = hosts;
      config.queue_capacity = queue;
      config.lambda = lambda;
      config.model_duration = duration;
      config.time_compression = compression;
      config.loss_probability = loss;
      config.seed = 42 + 1000003ULL * rep +
                    static_cast<std::uint64_t>(lambda * 1e6);
      agile::Cluster cluster(config);
      const agile::ClusterMetrics m = cluster.run();
      admission.add(m.admission_probability());
      migration.add(m.migration_rate());
      helps += m.helps;
      pledges += m.pledges;
    }
    table.row()
        .cell(lambda, 1)
        .cell(admission.mean(), 4)
        .cell(admission.ci95_halfwidth(), 4)
        .cell(migration.mean(), 4)
        .cell(helps)
        .cell(pledges);
  }
  std::cout << '\n';
  table.print(std::cout);
  const std::string csv = flags.get_string("csv", "");
  if (!csv.empty() && table.save_csv(csv)) {
    std::cout << "(csv: " << csv << ")\n";
  }

  if (flags.get_bool("all-protocols", true)) {
    // Extension beyond the paper's early measurement: the same cluster
    // runs every discovery scheme, making Fig. 9 a *measured* protocol
    // comparison (same shape expectations as the simulated Fig. 5).
    std::cout << "\nMeasured protocol comparison (admission probability):\n";
    Table compare({"lambda", "Pull-.9", "Push-1", "Push-.9", "Pull-100",
                   "REALTOR-100"});
    const auto compare_reps =
        static_cast<std::uint32_t>(flags.get_int("compare-reps", 2));
    for (const double lambda : lambdas) {
      compare.row().cell(lambda, 1);
      for (const auto kind : proto::kAllProtocolKinds) {
        OnlineStats admission;
        for (std::uint32_t rep = 0; rep < compare_reps; ++rep) {
          agile::ClusterConfig config;
          config.num_hosts = hosts;
          config.queue_capacity = queue;
          config.lambda = lambda;
          config.model_duration = duration;
          config.time_compression = compression;
          config.loss_probability = loss;
          config.discovery = kind;
          config.seed = 42 + 1000003ULL * rep +
                        static_cast<std::uint64_t>(lambda * 1e6);
          agile::Cluster cluster(config);
          admission.add(cluster.run().admission_probability());
        }
        compare.cell(admission.mean(), 4);
      }
    }
    compare.print(std::cout);
  }
  return 0;
}
