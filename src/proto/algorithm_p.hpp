// Algorithm P (paper Fig. 3): the pledge policy.
//
//   Whenever a HELP message arrives:
//     if the host has used its resource less than a threshold level:
//       reply PLEDGE
//   Whenever the resource availability changes across the threshold level:
//     reply PLEDGE
//
// Like AlgorithmH this is a pure state machine; the driver decides where
// the unsolicited pledges go (REALTOR: to every community the host is a
// member of; adaptive PUSH: flooded to the neighbor scope).
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"
#include "node/threshold.hpp"
#include "proto/config.hpp"

namespace realtor::proto {

class AlgorithmP {
 public:
  explicit AlgorithmP(const ProtocolConfig& config);

  /// Fig. 3 first rule: pledge in response to HELP iff below threshold.
  bool should_pledge_on_help(double occupancy) const;

  /// Feeds an occupancy sample at `now`; returns the threshold crossing,
  /// if any (Fig. 3 second rule fires on kUp as well as kDown — crossing
  /// up tells organizers we are *no longer* available).
  node::Crossing note_status(SimTime now, double occupancy);

  /// Long-run fraction of time this host has been below its pledge
  /// threshold — the "probability of resource grant" field of PLEDGE.
  double grant_probability(SimTime now) const;

  double threshold() const { return detector_.threshold(); }

 private:
  node::ThresholdDetector detector_;
  TimeWeightedStats below_threshold_;
};

}  // namespace realtor::proto
