#include "proto/adaptive_push.hpp"

#include "common/profile.hpp"

namespace realtor::proto {

AdaptivePushProtocol::AdaptivePushProtocol(NodeId self,
                                           const ProtocolConfig& config,
                                           ProtocolEnv env)
    : DiscoveryProtocol(self, config, std::move(env)),
      detector_(config.pledge_threshold),
      table_(self, config.availability_floor) {}

void AdaptivePushProtocol::on_status_change(double occupancy) {
  if (!env_.topology->alive(self_)) return;
  const node::Crossing crossing = detector_.update(occupancy);
  if (crossing == node::Crossing::kNone) return;
  if (tracing()) {
    trace(trace_event(obs::EventKind::kThresholdCrossing)
              .with("direction",
                    crossing == node::Crossing::kUp ? "up" : "down")
              .with("occupancy", occupancy)
              .with("threshold", detector_.threshold()));
  }
  PushAdvertMsg advert;
  advert.origin = self_;
  advert.availability = 1.0 - occupancy;
  advert.security_level = local_security();
  advert.cause = issue_trace_id();  // the advert_sent event below
  env_.transport->flood(self_, Message{advert});
  if (tracing()) {
    trace(trace_event(obs::EventKind::kAdvertSent)
              .with("availability", advert.availability)
              .with("periodic", false)
              .with("id", advert.cause));
  }
}

void AdaptivePushProtocol::on_task_arrival(double /*occupancy_with_task*/) {}

void AdaptivePushProtocol::on_message(NodeId /*from*/, const Message& msg) {
  obs::ProfileScope scope("proto/adaptive_push");
  if (const auto* advert = std::get_if<PushAdvertMsg>(&msg)) {
    table_.update(advert->origin, advert->availability, now(),
                  advert->security_level);
  }
}

std::vector<NodeId> AdaptivePushProtocol::migration_candidates(
    const CandidateQuery& query) {
  return table_.candidates(peers(), rng_, query.min_availability,
                           query.min_security);
}

void AdaptivePushProtocol::on_migration_result(NodeId target, double fraction,
                                               bool success) {
  if (success) {
    table_.debit(target, fraction);
  } else {
    table_.invalidate(target);
  }
}

void AdaptivePushProtocol::on_self_killed() {
  detector_.reset();
  table_ = AvailabilityTable(self_, config_.availability_floor);
}

ProtocolProbe AdaptivePushProtocol::probe(SimTime /*now*/) const {
  ProtocolProbe out;
  out.table_size = table_.size();
  return out;
}

}  // namespace realtor::proto
