// Soft-state list of hosts that pledged resources to this organizer.
//
// §3: "REALTOR's objective is to maintain a list of hosts with their
// resource status, so the admission control can be very light-weight."
// Entries are refreshed by PLEDGE messages and silently expire after a TTL
// — the statelessness that makes the protocol idempotent and fault
// tolerant (§4).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace realtor::proto {

struct PledgeEntry {
  double availability = 0.0;
  double grant_probability = 0.0;
  SimTime updated = 0.0;
  /// Pledger's security clearance (255 = unrestricted).
  std::uint8_t security_level = 255;
};

/// Candidate requirements (mirrors proto::CandidateQuery without the
/// header dependency).
struct PledgeQuery {
  double min_availability = 0.0;
  std::uint8_t min_security = 0;
};

class PledgeList {
 public:
  /// `ttl`: entry lifetime since last refresh. `availability_floor`:
  /// entries at or below this availability are never candidates.
  PledgeList(double ttl, double availability_floor);

  /// Inserts or refreshes an entry (idempotent: replaying the same pledge
  /// leaves identical state).
  void update(NodeId node, double availability, double grant_probability,
              SimTime now, std::uint8_t security_level = 255);

  /// Locally debits availability after sending `fraction` of the target's
  /// capacity its way, so consecutive migrations do not dog-pile on one
  /// pledger before its next refresh.
  void debit(NodeId node, double fraction);

  /// Drops an entry (failed negotiation revealed it stale).
  void remove(NodeId node);

  /// Removes entries older than the TTL.
  void expire(SimTime now);

  bool contains(NodeId node) const { return entries_.count(node) > 0; }
  std::optional<PledgeEntry> get(NodeId node) const;

  /// Live entries at `now`, including unusable ones. O(entries): walks
  /// the map checking TTLs — analysis/test use, not per-event paths.
  std::size_t size(SimTime now) const;

  /// Entries held, counting stale ones not yet expired (expiry is lazy).
  /// O(1) — this is the form trace emission sites report, so tracing a
  /// pledge flood stays constant-cost per event.
  std::size_t held() const { return entries_.size(); }

  /// Usable candidates matching `query`, best availability first; ties
  /// broken by `rng` so organizers do not all herd onto the same pledger.
  std::vector<NodeId> candidates(SimTime now, RngStream& rng,
                                 const PledgeQuery& query = {}) const;

  double ttl() const { return ttl_; }

  void clear() { entries_.clear(); }

 private:
  bool usable(const PledgeEntry& e, SimTime now,
              const PledgeQuery& query) const;

  double ttl_;
  double floor_;
  std::unordered_map<NodeId, PledgeEntry> entries_;
};

}  // namespace realtor::proto
