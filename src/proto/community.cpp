#include "proto/community.hpp"

#include "common/assert.hpp"

namespace realtor::proto {

CommunityMembership::CommunityMembership(double ttl,
                                         std::uint32_t max_communities)
    : ttl_(ttl), max_(max_communities) {
  REALTOR_ASSERT(ttl_ > 0.0);
}

bool CommunityMembership::note_refresh_answered(NodeId organizer,
                                                SimTime now) {
  const auto it = joined_.find(organizer);
  if (it != joined_.end()) {
    it->second = now;
    return true;
  }
  prune(now);
  if (max_ != 0 && joined_.size() >= max_) {
    // Budget full: hand the slot to this (most recent) solicitor by
    // evicting the membership we refreshed longest ago.
    auto stalest = joined_.begin();
    for (auto cur = joined_.begin(); cur != joined_.end(); ++cur) {
      if (cur->second < stalest->second) stalest = cur;
    }
    if (stalest->second > now) return false;
    joined_.erase(stalest);
  }
  joined_.emplace(organizer, now);
  return true;
}

bool CommunityMembership::is_member_of(NodeId organizer, SimTime now) const {
  const auto it = joined_.find(organizer);
  return it != joined_.end() && now - it->second <= ttl_;
}

std::vector<NodeId> CommunityMembership::active_organizers(SimTime now) const {
  std::vector<NodeId> out;
  out.reserve(joined_.size());
  for (const auto& [organizer, stamp] : joined_) {
    if (now - stamp <= ttl_) out.push_back(organizer);
  }
  return out;
}

std::uint32_t CommunityMembership::count(SimTime now) const {
  std::uint32_t live = 0;
  for (const auto& [organizer, stamp] : joined_) {
    if (now - stamp <= ttl_) ++live;
  }
  return live;
}

void CommunityMembership::prune(SimTime now, std::vector<NodeId>* expired) {
  for (auto it = joined_.begin(); it != joined_.end();) {
    if (now - it->second > ttl_) {
      if (expired != nullptr) expired->push_back(it->first);
      it = joined_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace realtor::proto
