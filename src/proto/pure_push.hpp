// Pure PUSH baseline ("Push-1").
//
// §4: "Each host disseminates its own resource availability information to
// its neighbors unconditionally at every preset interval." No HELP, no
// solicitation: a fixed-rate flood of advertisements whose cost is
// independent of whether anyone needs the information — the bandwidth
// waste the paper demonstrates in Figs. 6-7.
#pragma once

#include <memory>

#include "proto/availability_table.hpp"
#include "proto/discovery_protocol.hpp"
#include "sim/process.hpp"

namespace realtor::proto {

class PurePushProtocol final : public DiscoveryProtocol {
 public:
  PurePushProtocol(NodeId self, const ProtocolConfig& config, ProtocolEnv env);

  const char* name() const override { return "pure-push"; }

  void start() override;
  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  void on_self_restored() override { advertiser_.start(); }
  ProtocolProbe probe(SimTime now) const override;

 private:
  void advertise();

  AvailabilityTable table_;
  sim::PeriodicProcess advertiser_;
};

}  // namespace realtor::proto
