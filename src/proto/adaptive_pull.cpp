#include "proto/adaptive_pull.hpp"

#include <algorithm>

#include "common/profile.hpp"

namespace realtor::proto {

AdaptivePullProtocol::AdaptivePullProtocol(NodeId self,
                                           const ProtocolConfig& config,
                                           ProtocolEnv env)
    : DiscoveryProtocol(self, config, std::move(env)),
      algo_h_(config),
      responder_(config),
      pledge_list_(config.soft_state_ttl, config.availability_floor),
      help_timer_(*env_.engine) {}

void AdaptivePullProtocol::on_status_change(double occupancy) {
  responder_.note_status(now(), occupancy);
}

void AdaptivePullProtocol::on_task_arrival(double occupancy_with_task) {
  if (!env_.topology->alive(self_)) return;
  if (!algo_h_.should_send_help(now(), occupancy_with_task)) {
    // See RealtorProtocol::on_task_arrival: remember when suppressed
    // demand started waiting so the eventual HELP reports its backoff.
    algo_h_.note_blocked(now(), occupancy_with_task);
    return;
  }
  send_help(
      std::min(1.0, std::max(0.0, occupancy_with_task - config_.help_threshold)));
}

void AdaptivePullProtocol::solicit() {
  if (!env_.topology->alive(self_)) return;
  if (tracing()) trace(trace_event(obs::EventKind::kSolicit));
  send_help(1.0);  // emergency: bypass the Algorithm-H interval gate
}

void AdaptivePullProtocol::trace_interval(const char* reason) const {
  if (!tracing()) return;
  trace(trace_event(obs::EventKind::kHelpInterval)
            .with("interval", algo_h_.interval())
            .with("reason", reason));
}

void AdaptivePullProtocol::send_help(double urgency) {
  const SimTime backoff = algo_h_.blocked_time(now());
  HelpMsg help;
  help.origin = self_;
  help.member_count = static_cast<std::uint32_t>(pledge_list_.size(now()));
  help.urgency = urgency;
  help.episode = open_episode();
  help.cause = issue_trace_id();  // the help_sent event below
  env_.transport->flood(self_, Message{help});
  const SimTime timeout = algo_h_.note_help_sent(now());
  help_timer_.arm(timeout, [this] {
    algo_h_.note_timeout();
    trace_interval("timeout");
  });
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpSent)
              .with("urgency", urgency)
              .with("interval", algo_h_.interval())
              .with("members", help.member_count)
              .with("episode", help.episode)
              .with("id", help.cause)
              .with("backoff", backoff));
  }
}

void AdaptivePullProtocol::on_message(NodeId /*from*/, const Message& msg) {
  obs::ProfileScope scope("proto/adaptive_pull");
  if (const auto* help = std::get_if<HelpMsg>(&msg)) {
    handle_help(*help);
  } else if (const auto* pledge = std::get_if<PledgeMsg>(&msg)) {
    handle_pledge(*pledge);
  }
}

void AdaptivePullProtocol::handle_help(const HelpMsg& help) {
  if (!env_.topology->alive(self_)) return;
  const double occupancy = local_occupancy();
  const bool answered = responder_.should_pledge_on_help(occupancy);
  const std::uint64_t received_id = issue_trace_id();
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpReceived)
              .with("origin", help.origin)
              .with("urgency", help.urgency)
              .with("answered", answered)
              .with("episode", help.episode)
              .with("id", received_id)
              .with("cause", help.cause));
  }
  if (!answered) return;
  PledgeMsg pledge;
  pledge.pledger = self_;
  pledge.availability = 1.0 - occupancy;
  pledge.community_count = 0;  // adaptive PULL members keep no membership
  pledge.grant_probability = responder_.grant_probability(now());
  pledge.security_level = local_security();
  pledge.episode = help.episode;
  pledge.cause = issue_trace_id();  // the pledge_sent event below
  env_.transport->unicast(self_, help.origin, Message{pledge});
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeSent)
              .with("organizer", help.origin)
              .with("availability", pledge.availability)
              .with("grant_probability", pledge.grant_probability)
              .with("episode", pledge.episode)
              .with("id", pledge.cause)
              .with("cause", received_id));
  }
}

void AdaptivePullProtocol::handle_pledge(const PledgeMsg& pledge) {
  if (algo_h_.note_pledge()) {
    // Fig. 2 "reset_timer": the round stays open while pledges keep coming.
    help_timer_.restart(config_.help_timeout);
  }
  pledge_list_.update(pledge.pledger, pledge.availability,
                      pledge.grant_probability, now(),
                      pledge.security_level);
  last_evidence_ = issue_trace_id();  // the pledge_received event below
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeReceived)
              .with("pledger", pledge.pledger)
              .with("availability", pledge.availability)
              .with("list_size", pledge_list_.held())
              .with("episode", pledge.episode)
              .with("id", last_evidence_)
              .with("cause", pledge.cause));
  }
  if (config_.reward_policy == HelpRewardPolicy::kOnFirstUsefulPledge &&
      pledge.availability > config_.availability_floor) {
    if (algo_h_.claim_round_reward()) trace_interval("reward");
  }
}

std::vector<NodeId> AdaptivePullProtocol::migration_candidates(
    const CandidateQuery& query) {
  pledge_list_.expire(now());
  return pledge_list_.candidates(
      now(), rng_, PledgeQuery{query.min_availability, query.min_security});
}

void AdaptivePullProtocol::on_migration_result(NodeId target, double fraction,
                                               bool success) {
  if (success) {
    pledge_list_.debit(target, fraction);
    if (config_.reward_policy == HelpRewardPolicy::kOnMigrationSuccess) {
      // Fig. 2 "a node is found for migration": the list delivered.
      algo_h_.note_success();
      trace_interval("reward");
    }
  } else {
    pledge_list_.remove(target);
  }
}

void AdaptivePullProtocol::on_self_killed() {
  pledge_list_.clear();
  help_timer_.cancel();
}

ProtocolProbe AdaptivePullProtocol::probe(SimTime now) const {
  ProtocolProbe out;
  out.table_size = pledge_list_.size(now);
  out.help_interval = algo_h_.interval();
  return out;
}

}  // namespace realtor::proto
