// Algorithm H (paper Fig. 2): the adaptive HELP-interval controller.
//
//   Whenever a task arrives:
//     if resource usage would exceed the threshold and
//        (T_current - T_sent) > HELP_interval:  send HELP; set_timer
//   Timeout:
//     if (interval + interval*alpha) < Upper_limit: interval += interval*alpha
//   Whenever a PLEDGE arrives:
//     if the timer is not expired: reset_timer
//     update pledge list
//     if a node is found for migration:
//       if (interval - interval*beta) > 0: interval -= interval*beta
//
// Interpretation (see ProtocolConfig::reward_policy): "reset_timer"
// restarts the round-closing timeout, so every HELP round eventually ends
// in a timeout — the penalty — once the pledge stream dries up; the reward
// fires when a node found through the list actually receives a migration
// (default) or once per round on the first usable pledge (alternative).
// Under overload rewards become rare while every round still pays the
// penalty, which drives the interval to Upper_limit — the suppression §5
// credits for REALTOR's low overhead at high load.
//
// This class is the pure state machine — no timers, no I/O — so both the
// discrete-event protocols and the threaded Agile runtime can drive it.
// The driver owns the actual timer and calls note_timeout() on expiry.
#pragma once

#include "common/types.hpp"
#include "proto/config.hpp"

namespace realtor::proto {

class AlgorithmH {
 public:
  explicit AlgorithmH(const ProtocolConfig& config);

  /// Trigger test at a task arrival: occupancy (including the arriving
  /// task) exceeds the threshold AND a full interval elapsed since the
  /// previous HELP.
  bool should_send_help(SimTime now, double occupancy_with_task) const;

  /// Records that the driver sent a HELP at `now` and armed the response
  /// timer. Returns the timeout duration the driver should use.
  SimTime note_help_sent(SimTime now);

  /// Pledge arrived. Returns true while a round is open — the driver must
  /// then restart its round-closing timer ("reset_timer" in Fig. 2).
  bool note_pledge();

  /// The round-closing timer expired: the round is over, penalty (grow
  /// interval toward Upper_limit).
  void note_timeout();

  /// A node was found for migration: reward (shrink interval).
  void note_success();

  /// Applies note_success() at most once per HELP round (the
  /// kOnFirstUsefulPledge reward policy). Returns whether it fired.
  bool claim_round_reward();

  /// Records that a qualifying arrival (occupancy above threshold) was
  /// suppressed by the interval gate at `now`. Only the first suppression
  /// since the last HELP is kept: it marks when demand started waiting.
  void note_blocked(SimTime now, double occupancy_with_task);

  /// Algorithm-H backoff: how long demand has been waiting on the interval
  /// gate when a HELP finally goes out at `now` — the span from the first
  /// suppressed qualifying arrival to `now`, 0 when the HELP fired on its
  /// first trigger. Cleared by note_help_sent().
  SimTime blocked_time(SimTime now) const {
    return first_blocked_ >= 0.0 ? now - first_blocked_ : 0.0;
  }

  double interval() const { return interval_; }
  SimTime last_help_time() const { return last_sent_; }
  bool awaiting_response() const { return awaiting_; }

  std::uint64_t helps_sent() const { return helps_sent_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t rewards() const { return rewards_; }

 private:
  double threshold_;
  double alpha_;
  double beta_;
  double upper_limit_;
  double floor_;
  double timeout_;

  double interval_;
  SimTime last_sent_;
  SimTime first_blocked_ = -1.0;  // < 0: no suppressed demand pending
  bool awaiting_ = false;
  bool round_rewarded_ = false;

  std::uint64_t helps_sent_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t rewards_ = 0;
};

}  // namespace realtor::proto
