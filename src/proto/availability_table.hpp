// Last-heard availability table for the PUSH baselines.
//
// Unlike the pull-side PledgeList, entries never expire: under PUSH the
// absence of a new advertisement means "no status change", so the last
// value stays authoritative. A peer we have never heard from is *not* a
// candidate — the schemes only know what was actually advertised. (The
// no-expiry property is also the push schemes' weakness under attack: a
// dead host stops advertising and keeps its stale, possibly rosy entry —
// the survivability ablation exercises exactly that.)
//
// Storage is a flat array indexed by NodeId (grown on demand): every
// advert delivery is one table store, and this is the single hottest
// write in a push-heavy run — N-1 stores per flood — so it must not pay
// hashing or node allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace realtor::proto {

class AvailabilityTable {
 public:
  /// `self`: this node, excluded from candidates. `availability_floor`:
  /// entries at or below this are not candidates.
  AvailabilityTable(NodeId self, double availability_floor);

  /// Records an advertisement.
  void update(NodeId node, double availability, SimTime now,
              std::uint8_t security_level = 255) {
    Entry& entry = slot(node);
    if (!entry.heard) {
      entry.heard = true;
      ++size_;
    }
    entry.availability = availability;
    entry.updated = now;
    entry.security_level = security_level;
  }

  /// Locally debits availability after migrating work to `node`.
  void debit(NodeId node, double fraction) {
    if (node >= entries_.size() || !entries_[node].heard) {
      return;  // never-heard peers are not candidates
    }
    Entry& entry = entries_[node];
    entry.availability -= fraction;
    if (entry.availability < 0.0) entry.availability = 0.0;
  }

  /// Drops to zero availability (failed negotiation showed the entry is
  /// wrong); recovers at the peer's next advertisement.
  void invalidate(NodeId node) {
    Entry& entry = slot(node);
    if (!entry.heard) {
      entry.heard = true;
      ++size_;
    }
    entry.availability = 0.0;
  }

  /// Availability of `node`: last advertised, or 0.0 if never heard from.
  double availability(NodeId node) const {
    return node < entries_.size() && entries_[node].heard
               ? entries_[node].availability
               : 0.0;
  }

  bool heard_from(NodeId node) const {
    return node < entries_.size() && entries_[node].heard;
  }
  /// Entries currently held (push-side sampler probe).
  std::size_t size() const { return size_; }

  /// Candidates among `peers` matching the requirements, best
  /// availability first, random tie-break. Security of never-heard peers
  /// is unknown, and they are not candidates anyway.
  std::vector<NodeId> candidates(const std::vector<NodeId>& peers,
                                 RngStream& rng, double min_availability = 0.0,
                                 std::uint8_t min_security = 0) const;

 private:
  struct Entry {
    double availability = 1.0;
    SimTime updated = 0.0;
    std::uint8_t security_level = 255;
    bool heard = false;
  };

  Entry& slot(NodeId node) {
    if (node >= entries_.size()) entries_.resize(node + 1);
    return entries_[node];
  }

  NodeId self_;
  double floor_;
  std::size_t size_ = 0;
  std::vector<Entry> entries_;  // indexed by NodeId
};

}  // namespace realtor::proto
