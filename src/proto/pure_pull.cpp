#include "proto/pure_pull.hpp"

#include <algorithm>

#include "common/profile.hpp"

namespace realtor::proto {

PurePullProtocol::PurePullProtocol(NodeId self, const ProtocolConfig& config,
                                   ProtocolEnv env)
    : DiscoveryProtocol(self, config, std::move(env)),
      responder_(config),
      pledge_list_(config.soft_state_ttl, config.availability_floor) {}

void PurePullProtocol::on_status_change(double occupancy) {
  // Feed the grant-probability estimator; pure PULL sends nothing
  // unsolicited, so the crossing result is discarded.
  responder_.note_status(now(), occupancy);
}

void PurePullProtocol::on_task_arrival(double occupancy_with_task) {
  if (!env_.topology->alive(self_)) return;
  if (occupancy_with_task < config_.help_threshold) return;
  send_help(
      std::min(1.0, std::max(0.0, occupancy_with_task - config_.help_threshold)));
}

void PurePullProtocol::solicit() {
  if (!env_.topology->alive(self_)) return;
  if (tracing()) trace(trace_event(obs::EventKind::kSolicit));
  send_help(1.0);
}

void PurePullProtocol::send_help(double urgency) {
  HelpMsg help;
  help.origin = self_;
  help.member_count = static_cast<std::uint32_t>(pledge_list_.size(now()));
  help.urgency = urgency;
  help.episode = open_episode();
  help.cause = issue_trace_id();  // the help_sent event below
  env_.transport->flood(self_, Message{help});
  ++helps_sent_;
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpSent)
              .with("urgency", urgency)
              .with("members", help.member_count)
              .with("episode", help.episode)
              .with("id", help.cause)
              .with("backoff", 0.0));
  }
}

void PurePullProtocol::on_message(NodeId /*from*/, const Message& msg) {
  obs::ProfileScope scope("proto/pure_pull");
  if (const auto* help = std::get_if<HelpMsg>(&msg)) {
    handle_help(*help);
  } else if (const auto* pledge = std::get_if<PledgeMsg>(&msg)) {
    handle_pledge(*pledge);
  }
}

void PurePullProtocol::handle_help(const HelpMsg& help) {
  if (!env_.topology->alive(self_)) return;
  const double occupancy = local_occupancy();
  const bool answered = responder_.should_pledge_on_help(occupancy);
  const std::uint64_t received_id = issue_trace_id();
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpReceived)
              .with("origin", help.origin)
              .with("urgency", help.urgency)
              .with("answered", answered)
              .with("episode", help.episode)
              .with("id", received_id)
              .with("cause", help.cause));
  }
  if (!answered) return;
  PledgeMsg pledge;
  pledge.pledger = self_;
  pledge.availability = 1.0 - occupancy;
  pledge.community_count = 0;  // pure PULL keeps no membership state
  pledge.grant_probability = responder_.grant_probability(now());
  pledge.security_level = local_security();
  pledge.episode = help.episode;
  pledge.cause = issue_trace_id();  // the pledge_sent event below
  env_.transport->unicast(self_, help.origin, Message{pledge});
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeSent)
              .with("organizer", help.origin)
              .with("availability", pledge.availability)
              .with("grant_probability", pledge.grant_probability)
              .with("episode", pledge.episode)
              .with("id", pledge.cause)
              .with("cause", received_id));
  }
}

void PurePullProtocol::handle_pledge(const PledgeMsg& pledge) {
  pledge_list_.update(pledge.pledger, pledge.availability,
                      pledge.grant_probability, now(),
                      pledge.security_level);
  last_evidence_ = issue_trace_id();  // the pledge_received event below
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeReceived)
              .with("pledger", pledge.pledger)
              .with("availability", pledge.availability)
              .with("list_size", pledge_list_.held())
              .with("episode", pledge.episode)
              .with("id", last_evidence_)
              .with("cause", pledge.cause));
  }
}

std::vector<NodeId> PurePullProtocol::migration_candidates(
    const CandidateQuery& query) {
  pledge_list_.expire(now());
  return pledge_list_.candidates(
      now(), rng_, PledgeQuery{query.min_availability, query.min_security});
}

void PurePullProtocol::on_migration_result(NodeId target, double fraction,
                                           bool success) {
  if (success) {
    pledge_list_.debit(target, fraction);
  } else {
    pledge_list_.remove(target);
  }
}

void PurePullProtocol::on_self_killed() { pledge_list_.clear(); }

ProtocolProbe PurePullProtocol::probe(SimTime now) const {
  ProtocolProbe out;
  out.table_size = pledge_list_.size(now);
  return out;
}

}  // namespace realtor::proto
