// Pure PULL baseline ("Pull-.9").
//
// §4: "Each host solicits PLEDGE from its community members whenever 1) a
// task arrives and 2) the resource usage level is beyond a threshold
// level. ... this scheme generates HELP messages unlimitedly (without
// Upper_limit in Algorithm H) as long as resource usage is above the
// threshold level." Responders pledge exactly once per HELP. Under
// overload almost nobody can pledge, so HELP floods burn bandwidth —
// the failure mode Fig. 6 shows as the linearly growing curve.
#pragma once

#include "proto/algorithm_p.hpp"
#include "proto/discovery_protocol.hpp"
#include "proto/pledge_list.hpp"

namespace realtor::proto {

class PurePullProtocol final : public DiscoveryProtocol {
 public:
  PurePullProtocol(NodeId self, const ProtocolConfig& config, ProtocolEnv env);

  const char* name() const override { return "pure-pull"; }

  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  void solicit() override;
  ProtocolProbe probe(SimTime now) const override;

  std::uint64_t helps_sent() const { return helps_sent_; }

 private:
  void send_help(double urgency);
  void handle_help(const HelpMsg& help);
  void handle_pledge(const PledgeMsg& pledge);

  AlgorithmP responder_;    // HELP-reply policy (Fig. 3 first rule only)
  PledgeList pledge_list_;  // organizer-side soft state
  std::uint64_t helps_sent_ = 0;
};

}  // namespace realtor::proto
