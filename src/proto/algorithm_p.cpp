#include "proto/algorithm_p.hpp"

namespace realtor::proto {

AlgorithmP::AlgorithmP(const ProtocolConfig& config)
    : detector_(config.pledge_threshold) {}

bool AlgorithmP::should_pledge_on_help(double occupancy) const {
  return occupancy < detector_.threshold();
}

node::Crossing AlgorithmP::note_status(SimTime now, double occupancy) {
  below_threshold_.update(now, occupancy < detector_.threshold() ? 1.0 : 0.0);
  return detector_.update(occupancy);
}

double AlgorithmP::grant_probability(SimTime now) const {
  // Before any observation assume fully grantable (a fresh host is empty).
  if (below_threshold_.empty()) return 1.0;
  return below_threshold_.average(now);
}

}  // namespace realtor::proto
