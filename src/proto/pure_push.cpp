#include "proto/pure_push.hpp"

#include "common/profile.hpp"

namespace realtor::proto {

PurePushProtocol::PurePushProtocol(NodeId self, const ProtocolConfig& config,
                                   ProtocolEnv env)
    : DiscoveryProtocol(self, config, std::move(env)),
      table_(self, config.availability_floor),
      advertiser_(*env_.engine, config.push_interval, [this] { advertise(); }) {}

void PurePushProtocol::start() { advertiser_.start(); }

void PurePushProtocol::advertise() {
  if (!env_.topology->alive(self_)) return;  // dead hosts stay silent
  PushAdvertMsg advert;
  advert.origin = self_;
  advert.availability = 1.0 - local_occupancy();
  advert.security_level = local_security();
  advert.cause = issue_trace_id();  // the advert_sent event below
  env_.transport->flood(self_, Message{advert});
  if (tracing()) {
    trace(trace_event(obs::EventKind::kAdvertSent)
              .with("availability", advert.availability)
              .with("periodic", true)
              .with("id", advert.cause));
  }
}

void PurePushProtocol::on_status_change(double /*occupancy*/) {
  // Pure PUSH is oblivious to status changes; it only ticks.
}

void PurePushProtocol::on_task_arrival(double /*occupancy_with_task*/) {}

void PurePushProtocol::on_message(NodeId /*from*/, const Message& msg) {
  obs::ProfileScope scope("proto/pure_push");
  if (const auto* advert = std::get_if<PushAdvertMsg>(&msg)) {
    table_.update(advert->origin, advert->availability, now(),
                  advert->security_level);
  }
  // HELP/PLEDGE are not part of this scheme; ignore them (idempotence under
  // stray traffic).
}

std::vector<NodeId> PurePushProtocol::migration_candidates(
    const CandidateQuery& query) {
  return table_.candidates(peers(), rng_, query.min_availability,
                           query.min_security);
}

void PurePushProtocol::on_migration_result(NodeId target, double fraction,
                                           bool success) {
  if (success) {
    table_.debit(target, fraction);
  } else {
    table_.invalidate(target);
  }
}

void PurePushProtocol::on_self_killed() {
  advertiser_.stop();
  table_ = AvailabilityTable(self_, config_.availability_floor);
}

ProtocolProbe PurePushProtocol::probe(SimTime /*now*/) const {
  ProtocolProbe out;
  out.table_size = table_.size();
  return out;
}

}  // namespace realtor::proto
