// Wire formats of the community protocol (§4) plus the PUSH baselines'
// advertisement. Field names follow the paper's message definitions.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace realtor::proto {

/// "HELP: Hostid, Type(help), number of members, degree of demand."
/// Flooded over the overlay when the organizer needs migration targets.
struct HelpMsg {
  NodeId origin = kInvalidNode;
  /// Current community size known to the organizer.
  std::uint32_t member_count = 0;
  /// Degree of demand: how far occupancy is above the HELP threshold,
  /// in [0, 1].
  double urgency = 0.0;
  /// Causal discovery-episode id (obs::EpisodeSource); solicited PLEDGEs
  /// echo it so offline analysis can reconstruct the trigger→HELP→PLEDGE→
  /// migration chain. 0 = untracked (harness without an episode source).
  std::uint64_t episode = 0;
  /// Lineage: id of the trace event that produced this message (the
  /// sender's help_sent record), so receive-side events can point back at
  /// their cause and each episode forms an explicit causality DAG. 0 when
  /// tracing is off — lineage ids are only allocated on traced paths.
  std::uint64_t cause = 0;
};

/// "PLEDGE: Hostid, Type(pledge), Resource availability (degree), number of
/// communities, probabilities of resource grant when requested."
/// Unicast back to the community organizer.
struct PledgeMsg {
  NodeId pledger = kInvalidNode;
  /// Free fraction of the pledger's binding resource: 1 - occupancy.
  double availability = 0.0;
  /// Communities the pledger currently belongs to.
  std::uint32_t community_count = 0;
  /// Long-run fraction of time the pledger has been below its pledge
  /// threshold — an estimate of the probability a grant succeeds.
  double grant_probability = 0.0;
  /// Security level the pledger runs at (multi-resource extension; 255 =
  /// unrestricted, the CPU-only default).
  std::uint8_t security_level = 255;
  /// Episode of the HELP this pledge answers; 0 for unsolicited status
  /// pledges (Fig. 3 second rule — threshold-crossing updates belong to no
  /// solicitation round).
  std::uint64_t episode = 0;
  /// Lineage: id of the pledger's pledge_sent trace event (see
  /// HelpMsg::cause). 0 when tracing is off or the pledge is unsolicited.
  std::uint64_t cause = 0;
};

/// Availability advertisement used by the PUSH baselines (flooded).
struct PushAdvertMsg {
  NodeId origin = kInvalidNode;
  double availability = 0.0;
  /// Security level of the advertising host (see PledgeMsg).
  std::uint8_t security_level = 255;
  /// Lineage: id of the sender's advert_sent trace event (see
  /// HelpMsg::cause). 0 when tracing is off.
  std::uint64_t cause = 0;
};

/// One entry of a gossip digest (modern anti-entropy baseline, in the
/// style of SWIM / memberlist: per-origin versioned availability records
/// merged last-writer-wins).
struct DigestEntry {
  NodeId node = kInvalidNode;
  double availability = 0.0;
  /// Monotone per-origin version; higher wins on merge.
  std::uint64_t version = 0;
  std::uint8_t security_level = 255;
};

/// Push-pull gossip exchange: `origin` shares its digest with one peer;
/// `reply` distinguishes the pull half (replies are not re-answered).
struct GossipMsg {
  NodeId origin = kInvalidNode;
  bool reply = false;
  std::vector<DigestEntry> digest;
  /// Lineage: id of the sender's gossip_round trace event (see
  /// HelpMsg::cause). 0 when tracing is off or for reply halves.
  std::uint64_t cause = 0;
};

using Message = std::variant<HelpMsg, PledgeMsg, PushAdvertMsg, GossipMsg>;

}  // namespace realtor::proto
