// REALTOR ("REsource ALlocaTOR") — the paper's contribution.
//
// "Combination of Push-.9 and Pull-100" (§5): the pull side is Algorithm H
// (adaptive HELP interval with reward/penalty and Upper_limit); the push
// side is Algorithm P (answer HELP when below threshold, and *additionally*
// send an unsolicited PLEDGE to every community this host belongs to
// whenever its own usage crosses the threshold in either direction —
// crossing up warns organizers we are no longer available, crossing down
// re-advertises capacity).
//
// All state is soft: pledge entries expire after a TTL, community
// membership lapses when HELP refreshes stop, and every message is
// idempotent — the stateless, inherently fault-tolerant design of §4.
#pragma once

#include "proto/algorithm_h.hpp"
#include "proto/algorithm_p.hpp"
#include "proto/community.hpp"
#include "proto/discovery_protocol.hpp"
#include "proto/pledge_list.hpp"
#include "sim/timer.hpp"

namespace realtor::proto {

class RealtorProtocol final : public DiscoveryProtocol {
 public:
  RealtorProtocol(NodeId self, const ProtocolConfig& config, ProtocolEnv env);

  const char* name() const override { return "realtor"; }

  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  void solicit() override;
  ProtocolProbe probe(SimTime now) const override;

  // Introspection for tests and ablations.
  const AlgorithmH& algorithm_h() const { return algo_h_; }
  const PledgeList& pledge_list() const { return pledge_list_; }
  std::uint32_t community_count() { return membership_.count(now()); }
  std::uint64_t unsolicited_pledges() const { return unsolicited_pledges_; }

 private:
  void send_help(double urgency);
  void handle_help(const HelpMsg& help);
  void handle_pledge(const PledgeMsg& pledge);
  /// `episode` is the id of the HELP round this pledge answers; 0 for the
  /// unsolicited threshold-crossing updates of Fig. 3's second rule.
  /// `cause` is the lineage id of the help_received event that triggered
  /// this pledge (0 for unsolicited pledges / untraced runs).
  void send_pledge_to(NodeId organizer, double occupancy,
                      std::uint64_t episode = 0, std::uint64_t cause = 0);
  /// Emits a help_interval record attributing the change to `reason`
  /// ("timeout" / "reward"); no-op when untraced.
  void trace_interval(const char* reason) const;

  AlgorithmH algo_h_;           // organizer side: when to solicit
  AlgorithmP algo_p_;           // member side: when to pledge
  PledgeList pledge_list_;      // organizer side: who pledged to us
  CommunityMembership membership_;  // member side: whose HELPs we answered
  sim::Timer help_timer_;
  std::uint64_t unsolicited_pledges_ = 0;
};

}  // namespace realtor::proto
