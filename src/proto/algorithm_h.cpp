#include "proto/algorithm_h.hpp"

#include "common/assert.hpp"

namespace realtor::proto {

AlgorithmH::AlgorithmH(const ProtocolConfig& config)
    : threshold_(config.help_threshold),
      alpha_(config.alpha),
      beta_(config.beta),
      upper_limit_(config.help_upper_limit),
      floor_(config.help_interval_floor),
      timeout_(config.help_timeout),
      interval_(config.initial_help_interval),
      // Allow the very first qualifying arrival to send HELP immediately.
      last_sent_(-kNeverTime) {
  REALTOR_ASSERT(threshold_ > 0.0);
  REALTOR_ASSERT(alpha_ > 0.0);
  REALTOR_ASSERT(beta_ > 0.0 && beta_ < 1.0);
  REALTOR_ASSERT(upper_limit_ >= interval_);
  REALTOR_ASSERT(floor_ > 0.0 && floor_ <= interval_);
  REALTOR_ASSERT(timeout_ > 0.0);
}

bool AlgorithmH::should_send_help(SimTime now,
                                  double occupancy_with_task) const {
  if (occupancy_with_task < threshold_) return false;
  return now - last_sent_ > interval_;
}

SimTime AlgorithmH::note_help_sent(SimTime now) {
  last_sent_ = now;
  first_blocked_ = -1.0;
  awaiting_ = true;
  round_rewarded_ = false;
  ++helps_sent_;
  return timeout_;
}

void AlgorithmH::note_blocked(SimTime now, double occupancy_with_task) {
  if (occupancy_with_task < threshold_) return;
  if (first_blocked_ < 0.0) first_blocked_ = now;
}

bool AlgorithmH::note_pledge() { return awaiting_; }

void AlgorithmH::note_timeout() {
  awaiting_ = false;
  // Fig. 2: grow only while the grown value stays below Upper_limit.
  const double grown = interval_ + interval_ * alpha_;
  if (grown < upper_limit_) {
    interval_ = grown;
  } else {
    interval_ = upper_limit_;
  }
  ++timeouts_;
}

void AlgorithmH::note_success() {
  const double shrunk = interval_ - interval_ * beta_;
  if (shrunk > floor_) {
    interval_ = shrunk;
  } else {
    interval_ = floor_;
  }
  ++rewards_;
}

bool AlgorithmH::claim_round_reward() {
  if (!awaiting_ || round_rewarded_) return false;
  round_rewarded_ = true;
  note_success();
  return true;
}

}  // namespace realtor::proto
