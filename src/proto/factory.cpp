#include "proto/factory.hpp"

#include "common/assert.hpp"
#include "proto/adaptive_pull.hpp"
#include "proto/adaptive_push.hpp"
#include "proto/gossip.hpp"
#include "proto/pure_pull.hpp"
#include "proto/pure_push.hpp"
#include "proto/realtor.hpp"

namespace realtor::proto {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPurePush:
      return "pure-push";
    case ProtocolKind::kAdaptivePush:
      return "adaptive-push";
    case ProtocolKind::kPurePull:
      return "pure-pull";
    case ProtocolKind::kAdaptivePull:
      return "adaptive-pull";
    case ProtocolKind::kRealtor:
      return "realtor";
    case ProtocolKind::kGossip:
      return "gossip-pushpull";
  }
  return "?";
}

const char* paper_label(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPurePush:
      return "Push-1";
    case ProtocolKind::kAdaptivePush:
      return "Push-.9";
    case ProtocolKind::kPurePull:
      return "Pull-.9";
    case ProtocolKind::kAdaptivePull:
      return "Pull-100";
    case ProtocolKind::kRealtor:
      return "REALTOR-100";
    case ProtocolKind::kGossip:
      return "Gossip-PP";
  }
  return "?";
}

std::optional<ProtocolKind> parse_protocol(const std::string& text) {
  for (const ProtocolKind kind : kExtendedProtocolKinds) {
    if (text == to_string(kind) || text == paper_label(kind)) return kind;
  }
  if (text == "REALTOR") return ProtocolKind::kRealtor;
  if (text == "gossip") return ProtocolKind::kGossip;
  return std::nullopt;
}

std::unique_ptr<DiscoveryProtocol> make_protocol(ProtocolKind kind,
                                                 NodeId self,
                                                 const ProtocolConfig& config,
                                                 ProtocolEnv env) {
  switch (kind) {
    case ProtocolKind::kPurePush:
      return std::make_unique<PurePushProtocol>(self, config, std::move(env));
    case ProtocolKind::kAdaptivePush:
      return std::make_unique<AdaptivePushProtocol>(self, config,
                                                    std::move(env));
    case ProtocolKind::kPurePull:
      return std::make_unique<PurePullProtocol>(self, config, std::move(env));
    case ProtocolKind::kAdaptivePull:
      return std::make_unique<AdaptivePullProtocol>(self, config,
                                                    std::move(env));
    case ProtocolKind::kRealtor:
      return std::make_unique<RealtorProtocol>(self, config, std::move(env));
    case ProtocolKind::kGossip:
      return std::make_unique<GossipProtocol>(self, config, std::move(env));
  }
  REALTOR_ASSERT_MSG(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace realtor::proto
