#include "proto/gossip.hpp"

#include <algorithm>

#include "common/profile.hpp"

namespace realtor::proto {

GossipProtocol::GossipProtocol(NodeId self, const ProtocolConfig& config,
                               ProtocolEnv env)
    : DiscoveryProtocol(self, config, std::move(env)),
      gossiper_(*env_.engine, config.gossip_interval,
                [this] { gossip_round(); }) {
  refresh_self_entry();
}

void GossipProtocol::start() { gossiper_.start(); }

void GossipProtocol::refresh_self_entry() {
  DigestEntry& self_entry = digest_[self_];
  self_entry.node = self_;
  self_entry.availability = 1.0 - local_occupancy();
  self_entry.version = ++self_version_;
  self_entry.security_level = local_security();
}

void GossipProtocol::on_status_change(double occupancy) {
  DigestEntry& self_entry = digest_[self_];
  self_entry.node = self_;
  self_entry.availability = 1.0 - occupancy;
  self_entry.version = ++self_version_;
  self_entry.security_level = local_security();
}

void GossipProtocol::on_task_arrival(double /*occupancy_with_task*/) {
  // Gossip has no demand-driven path; dissemination is purely periodic.
}

std::vector<DigestEntry> GossipProtocol::snapshot_digest() const {
  std::vector<DigestEntry> out;
  out.reserve(digest_.size());
  for (const auto& [node, entry] : digest_) {
    out.push_back(entry);
  }
  return out;
}

void GossipProtocol::send_digest(NodeId to, bool reply,
                                 std::uint64_t cause) {
  GossipMsg msg;
  msg.origin = self_;
  msg.reply = reply;
  msg.digest = snapshot_digest();
  msg.cause = cause;
  env_.transport->unicast(self_, to, Message{msg});
}

void GossipProtocol::gossip_round() {
  if (!env_.topology->alive(self_)) return;
  std::vector<NodeId>& alive_peers = peer_scratch_;
  peers_into(alive_peers);
  if (alive_peers.empty()) return;
  const std::uint32_t fanout = std::min<std::uint32_t>(
      config_.gossip_fanout,
      static_cast<std::uint32_t>(alive_peers.size()));
  const std::uint64_t round_id = issue_trace_id();  // gossip_round below
  // Partial Fisher-Yates: the first `fanout` entries become this round's
  // targets.
  for (std::uint32_t i = 0; i < fanout; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.uniform_index(
                alive_peers.size() - i));
    std::swap(alive_peers[i], alive_peers[j]);
    send_digest(alive_peers[i], /*reply=*/false, round_id);
  }
  if (tracing()) {
    trace(trace_event(obs::EventKind::kGossipRound)
              .with("fanout", fanout)
              .with("digest_size", digest_.size())
              .with("id", round_id));
  }
}

void GossipProtocol::merge(const std::vector<DigestEntry>& digest) {
  for (const DigestEntry& incoming : digest) {
    if (incoming.node == self_) continue;  // we own our entry
    DigestEntry& local = digest_[incoming.node];
    if (local.node == kInvalidNode || incoming.version > local.version) {
      local = incoming;
    }
  }
}

void GossipProtocol::on_message(NodeId from, const Message& msg) {
  obs::ProfileScope scope("proto/gossip");
  const auto* gossip = std::get_if<GossipMsg>(&msg);
  if (gossip == nullptr) return;  // HELP/PLEDGE/advert: not our scheme
  merge(gossip->digest);
  if (!gossip->reply && env_.topology->alive(self_)) {
    // Pull half of push-pull: answer with our (just merged) digest.
    send_digest(from, /*reply=*/true);
  }
}

ProtocolProbe GossipProtocol::probe(SimTime /*now*/) const {
  ProtocolProbe out;
  out.table_size = digest_.size();
  return out;
}

std::vector<NodeId> GossipProtocol::migration_candidates(
    const CandidateQuery& query) {
  struct Ranked {
    NodeId node;
    double availability;
    std::uint64_t tie;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(digest_.size());
  for (const auto& [node, entry] : digest_) {
    if (node == self_ || !env_.topology->alive(node)) continue;
    if (entry.availability <= config_.availability_floor) continue;
    if (entry.availability < query.min_availability) continue;
    if (entry.security_level < query.min_security) continue;
    ranked.push_back(Ranked{node, entry.availability, rng_.next_u64()});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.availability != b.availability) return a.availability > b.availability;
    return a.tie < b.tie;
  });
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.node);
  return out;
}

void GossipProtocol::on_migration_result(NodeId target, double fraction,
                                         bool success) {
  const auto it = digest_.find(target);
  if (it == digest_.end()) return;
  if (success) {
    it->second.availability =
        std::max(0.0, it->second.availability - fraction);
  } else {
    it->second.availability = 0.0;  // corrected by the next fresher entry
  }
}

void GossipProtocol::on_self_killed() {
  gossiper_.stop();
  digest_.clear();
  refresh_self_entry();
}

std::uint64_t GossipProtocol::version_of(NodeId node) const {
  const auto it = digest_.find(node);
  return it == digest_.end() ? 0 : it->second.version;
}

double GossipProtocol::availability_of(NodeId node) const {
  const auto it = digest_.find(node);
  return it == digest_.end() ? 0.0 : it->second.availability;
}

}  // namespace realtor::proto
