// Push-pull gossip baseline ("Gossip-PP") — a modern comparison point.
//
// Not in the paper: this is the style of availability dissemination that
// later systems (SWIM, memberlist, Serf, Consul) made standard, included
// so the evaluation can situate REALTOR against it. Every
// `gossip_interval` a node picks `gossip_fanout` random alive peers and
// sends its full digest (per-origin versioned availability records); the
// peer merges newer entries and replies with its own digest (the pull
// half). Information spreads in O(log N) rounds with per-node traffic
// independent of demand — like pure PUSH it pays whether or not anyone
// needs to migrate, but over cheap unicasts instead of floods.
#pragma once

#include <unordered_map>

#include "node/threshold.hpp"
#include "proto/discovery_protocol.hpp"
#include "sim/process.hpp"

namespace realtor::proto {

class GossipProtocol final : public DiscoveryProtocol {
 public:
  GossipProtocol(NodeId self, const ProtocolConfig& config, ProtocolEnv env);

  const char* name() const override { return "gossip-pushpull"; }

  void start() override;
  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  void on_self_restored() override { gossiper_.start(); }

  // Introspection for tests.
  std::uint64_t version_of(NodeId node) const;
  double availability_of(NodeId node) const;
  std::size_t digest_size() const { return digest_.size(); }
  ProtocolProbe probe(SimTime now) const override;

 private:
  void gossip_round();
  void refresh_self_entry();
  std::vector<DigestEntry> snapshot_digest() const;
  void merge(const std::vector<DigestEntry>& digest);
  /// `cause` is the lineage id of the gossip_round event this digest
  /// belongs to (0 for reply halves / untraced runs).
  void send_digest(NodeId to, bool reply, std::uint64_t cause = 0);

  std::unordered_map<NodeId, DigestEntry> digest_;  // keyed by entry.node
  std::uint64_t self_version_ = 0;
  std::vector<NodeId> peer_scratch_;  // reused across gossip rounds
  sim::PeriodicProcess gossiper_;
};

}  // namespace realtor::proto
