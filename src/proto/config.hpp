// Tunables for all five discovery protocols, named after the paper's
// parameters. Defaults reproduce the §5 simulation configuration.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace realtor::proto {

/// When Algorithm H's reward ("a node is found for migration") fires. The
/// paper's Fig. 2 pseudocode is ambiguous; both readings are implemented
/// and compared in the algorithm-H ablation bench.
enum class HelpRewardPolicy {
  /// Shrink when a migration actually lands on a discovered node — the
  /// reading that reproduces the paper's overhead curves (under overload
  /// rounds keep closing with penalties, pinning the interval at
  /// Upper_limit exactly as §5 describes).
  kOnMigrationSuccess,
  /// Shrink once per HELP round, on the first pledge that yields a usable
  /// candidate.
  kOnFirstUsefulPledge,
};

struct ProtocolConfig {
  // --- Algorithm H (pull side) -------------------------------------------
  /// Queue-occupancy level above which an arriving task triggers HELP
  /// ("Algorithm H 0.9" in §5).
  double help_threshold = 0.9;
  /// Starting HELP_interval, seconds.
  double initial_help_interval = 1.0;
  /// Upper_limit in Fig. 2 — also the adaptive-PULL time window (100).
  double help_upper_limit = 100.0;
  /// Floor so the multiplicative reward cannot collapse the interval to 0
  /// (the paper only requires it to stay positive).
  double help_interval_floor = 0.1;
  /// Penalty growth factor (interval += interval * alpha on timeout).
  double alpha = 1.0;
  /// Reward shrink factor (interval -= interval * beta on success).
  double beta = 0.5;
  /// set_timer duration in Fig. 2: the round-closing timeout. Every PLEDGE
  /// restarts it ("if the corresponding timer is not expired, reset_timer");
  /// when it finally fires the round is over and the penalty applies.
  double help_timeout = 1.0;
  HelpRewardPolicy reward_policy = HelpRewardPolicy::kOnMigrationSuccess;

  // --- Algorithm P (push side) -------------------------------------------
  /// Occupancy level below which a host pledges ("Algorithm P 0.9").
  double pledge_threshold = 0.9;
  /// Maximum communities a host joins (0 = unlimited). §4 lets hosts join
  /// "as many communities as [they are] able to *without over-allocating
  /// [their] spare resources*" — each membership costs an unsolicited
  /// PLEDGE per threshold crossing, so the default budget is small; the
  /// community-size ablation sweeps this.
  std::uint32_t max_communities = 8;

  // --- Pure PUSH -----------------------------------------------------------
  /// Periodic dissemination interval ("push interval = 1").
  double push_interval = 1.0;

  // --- Gossip baseline (modern comparison) ---------------------------------
  /// Push-pull anti-entropy round period (SWIM/memberlist-style).
  double gossip_interval = 1.0;
  /// Peers contacted per round.
  std::uint32_t gossip_fanout = 2;

  // --- Soft state ----------------------------------------------------------
  /// Pledge entries and community memberships expire this many seconds
  /// after the last refresh. Matches the organizer's maximum refresh gap
  /// (Upper_limit).
  double soft_state_ttl = 100.0;
  /// Candidates whose advertised availability is at or below this are not
  /// usable (1 - pledge_threshold: the pledger itself would not pledge).
  double availability_floor = 0.1;
};

}  // namespace realtor::proto
