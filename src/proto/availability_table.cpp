#include "proto/availability_table.hpp"

#include <algorithm>

namespace realtor::proto {

AvailabilityTable::AvailabilityTable(NodeId self, double availability_floor)
    : self_(self), floor_(availability_floor) {}

void AvailabilityTable::update(NodeId node, double availability, SimTime now,
                               std::uint8_t security_level) {
  entries_[node] = Entry{availability, now, security_level};
}

void AvailabilityTable::debit(NodeId node, double fraction) {
  const auto it = entries_.find(node);
  if (it == entries_.end()) return;  // never-heard peers are not candidates
  it->second.availability -= fraction;
  if (it->second.availability < 0.0) it->second.availability = 0.0;
}

void AvailabilityTable::invalidate(NodeId node) {
  entries_[node].availability = 0.0;
}

double AvailabilityTable::availability(NodeId node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.availability;
}

std::vector<NodeId> AvailabilityTable::candidates(
    const std::vector<NodeId>& peers, RngStream& rng, double min_availability,
    std::uint8_t min_security) const {
  struct Ranked {
    NodeId node;
    double availability;
    std::uint64_t tie;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(peers.size());
  for (const NodeId peer : peers) {
    if (peer == self_) continue;
    const auto it = entries_.find(peer);
    if (it == entries_.end()) continue;  // never heard: not a candidate
    const Entry& entry = it->second;
    if (entry.availability <= floor_) continue;
    if (entry.availability < min_availability) continue;
    if (entry.security_level < min_security) continue;
    ranked.push_back(Ranked{peer, entry.availability, rng.next_u64()});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.availability != b.availability) return a.availability > b.availability;
    return a.tie < b.tie;
  });
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.node);
  return out;
}

}  // namespace realtor::proto
