#include "proto/availability_table.hpp"

#include <algorithm>

namespace realtor::proto {

AvailabilityTable::AvailabilityTable(NodeId self, double availability_floor)
    : self_(self), floor_(availability_floor) {}

std::vector<NodeId> AvailabilityTable::candidates(
    const std::vector<NodeId>& peers, RngStream& rng, double min_availability,
    std::uint8_t min_security) const {
  struct Ranked {
    NodeId node;
    double availability;
    std::uint64_t tie;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(peers.size());
  for (const NodeId peer : peers) {
    if (peer == self_) continue;
    if (peer >= entries_.size() || !entries_[peer].heard) {
      continue;  // never heard: not a candidate
    }
    const Entry& entry = entries_[peer];
    if (entry.availability <= floor_) continue;
    if (entry.availability < min_availability) continue;
    if (entry.security_level < min_security) continue;
    ranked.push_back(Ranked{peer, entry.availability, rng.next_u64()});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.availability != b.availability) return a.availability > b.availability;
    return a.tie < b.tie;
  });
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.node);
  return out;
}

}  // namespace realtor::proto
