// Transport seam between protocol logic and its environment.
//
// The discrete-event harness implements this against the Topology +
// MessageLedger (experiment::SimTransport); tests implement it with plain
// vectors to script message interleavings, duplicates and losses.
#pragma once

#include "common/types.hpp"
#include "proto/message.hpp"

namespace realtor::proto {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `msg` to every alive node except `origin`; accounted as one
  /// flood (cost = number of alive links, per §5).
  virtual void flood(NodeId origin, const Message& msg) = 0;

  /// Point-to-point delivery; accounted at the unicast cost (average
  /// shortest path length, 4 on the paper's mesh).
  virtual void unicast(NodeId from, NodeId to, const Message& msg) = 0;
};

}  // namespace realtor::proto
