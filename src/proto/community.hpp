// Member-side community bookkeeping.
//
// §4: "Each host usually owns one community and is a member of several
// other communities. The membership ... is valid only for the interval
// between two consecutive refresh messages" — a HELP from the organizer is
// the refresh; memberships lapse silently when refreshes stop, and a
// disbanding community needs no teardown messages.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace realtor::proto {

class CommunityMembership {
 public:
  /// `ttl`: membership lifetime since the last refresh we answered.
  /// `max_communities`: 0 = unlimited.
  CommunityMembership(double ttl, std::uint32_t max_communities);

  /// Records that we answered organizer `organizer`'s HELP at `now` and
  /// (re)joined its community. When the membership budget is full the
  /// stalest membership is evicted — the budget goes to the organizers
  /// who solicited most recently, i.e. the ones that actually need our
  /// status updates. Returns false only if eviction was impossible (the
  /// incumbent memberships are all fresher than `now`, which cannot
  /// happen with a monotone clock).
  bool note_refresh_answered(NodeId organizer, SimTime now);

  /// True if our membership in `organizer`'s community is still live.
  bool is_member_of(NodeId organizer, SimTime now) const;

  /// Organizers whose communities we currently belong to.
  std::vector<NodeId> active_organizers(SimTime now) const;

  /// Live membership count.
  std::uint32_t count(SimTime now) const;

  /// Drops expired memberships; when `expired` is non-null the dropped
  /// organizers are appended (community-churn trace hook).
  void prune(SimTime now, std::vector<NodeId>* expired = nullptr);

  void clear() { joined_.clear(); }

 private:
  double ttl_;
  std::uint32_t max_;
  std::unordered_map<NodeId, SimTime> joined_;  // organizer -> last refresh
};

}  // namespace realtor::proto
