#include "proto/pledge_list.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace realtor::proto {

PledgeList::PledgeList(double ttl, double availability_floor)
    : ttl_(ttl), floor_(availability_floor) {
  REALTOR_ASSERT(ttl_ > 0.0);
}

void PledgeList::update(NodeId node, double availability,
                        double grant_probability, SimTime now,
                        std::uint8_t security_level) {
  entries_[node] =
      PledgeEntry{availability, grant_probability, now, security_level};
}

void PledgeList::debit(NodeId node, double fraction) {
  const auto it = entries_.find(node);
  if (it == entries_.end()) return;
  it->second.availability -= fraction;
  if (it->second.availability < 0.0) it->second.availability = 0.0;
}

void PledgeList::remove(NodeId node) { entries_.erase(node); }

void PledgeList::expire(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.updated > ttl_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<PledgeEntry> PledgeList::get(NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t PledgeList::size(SimTime now) const {
  std::size_t count = 0;
  for (const auto& [node, entry] : entries_) {
    if (now - entry.updated <= ttl_) ++count;
  }
  return count;
}

bool PledgeList::usable(const PledgeEntry& e, SimTime now,
                        const PledgeQuery& query) const {
  if ((now - e.updated) > ttl_) return false;
  if (e.availability <= floor_) return false;
  if (e.availability < query.min_availability) return false;
  return e.security_level >= query.min_security;
}

std::vector<NodeId> PledgeList::candidates(SimTime now, RngStream& rng,
                                           const PledgeQuery& query) const {
  struct Ranked {
    NodeId node;
    double availability;
    std::uint64_t tie;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [node, entry] : entries_) {
    if (usable(entry, now, query)) {
      ranked.push_back(Ranked{node, entry.availability, rng.next_u64()});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.availability != b.availability) return a.availability > b.availability;
    return a.tie < b.tie;
  });
  std::vector<NodeId> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.node);
  return out;
}

}  // namespace realtor::proto
