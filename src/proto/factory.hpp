// Protocol factory + the paper's curve labels.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "proto/discovery_protocol.hpp"

namespace realtor::proto {

enum class ProtocolKind {
  kPurePush,      // "Push-1"
  kAdaptivePush,  // "Push-.9"
  kPurePull,      // "Pull-.9"
  kAdaptivePull,  // "Pull-100"
  kRealtor,       // "REALTOR-100"
  kGossip,        // "Gossip-PP" (modern baseline, not in the paper)
};

/// The paper's five curves (Figs. 5-8).
inline constexpr ProtocolKind kAllProtocolKinds[] = {
    ProtocolKind::kPurePull, ProtocolKind::kPurePush,
    ProtocolKind::kAdaptivePush, ProtocolKind::kAdaptivePull,
    ProtocolKind::kRealtor};

/// Paper protocols plus the modern gossip baseline.
inline constexpr ProtocolKind kExtendedProtocolKinds[] = {
    ProtocolKind::kPurePull,     ProtocolKind::kPurePush,
    ProtocolKind::kAdaptivePush, ProtocolKind::kAdaptivePull,
    ProtocolKind::kRealtor,      ProtocolKind::kGossip};

/// Machine-readable name ("realtor", "pure-push", ...).
const char* to_string(ProtocolKind kind);

/// The curve label used in the paper's figures ("REALTOR-100", "Push-1",
/// "Push-.9", "Pull-.9", "Pull-100").
const char* paper_label(ProtocolKind kind);

/// Parses either naming scheme; nullopt on junk.
std::optional<ProtocolKind> parse_protocol(const std::string& text);

std::unique_ptr<DiscoveryProtocol> make_protocol(ProtocolKind kind,
                                                 NodeId self,
                                                 const ProtocolConfig& config,
                                                 ProtocolEnv env);

}  // namespace realtor::proto
