// Adaptive PULL baseline ("Pull-100").
//
// §4: solicits like REALTOR — HELP gated by Algorithm H's adaptive interval
// with Upper_limit — but "it generates PLEDGE exactly once in response to
// each HELP": no unsolicited status pledges, so the organizer's view decays
// between solicitations. The untimeliness of the information is why this
// scheme shows the lowest overhead but also the weakest admission curve
// (Figs. 5-6).
#pragma once

#include "proto/algorithm_h.hpp"
#include "proto/algorithm_p.hpp"
#include "proto/discovery_protocol.hpp"
#include "proto/pledge_list.hpp"
#include "sim/timer.hpp"

namespace realtor::proto {

class AdaptivePullProtocol final : public DiscoveryProtocol {
 public:
  AdaptivePullProtocol(NodeId self, const ProtocolConfig& config,
                       ProtocolEnv env);

  const char* name() const override { return "adaptive-pull"; }

  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  void solicit() override;
  ProtocolProbe probe(SimTime now) const override;

  const AlgorithmH& algorithm_h() const { return algo_h_; }

 private:
  void send_help(double urgency);
  void handle_help(const HelpMsg& help);
  void handle_pledge(const PledgeMsg& pledge);
  void trace_interval(const char* reason) const;

  AlgorithmH algo_h_;
  AlgorithmP responder_;
  PledgeList pledge_list_;
  sim::Timer help_timer_;
};

}  // namespace realtor::proto
