// Adaptive PUSH baseline ("Push-.9").
//
// §4: "Each host disseminates its own resource availability information to
// its neighbors whenever the resource usage changes across a threshold
// level." Advertisement volume tracks status *changes* rather than time,
// which is why the paper finds it close to Push-1 in effectiveness at a
// fraction of the overhead.
#pragma once

#include "node/threshold.hpp"
#include "proto/availability_table.hpp"
#include "proto/discovery_protocol.hpp"

namespace realtor::proto {

class AdaptivePushProtocol final : public DiscoveryProtocol {
 public:
  AdaptivePushProtocol(NodeId self, const ProtocolConfig& config,
                       ProtocolEnv env);

  const char* name() const override { return "adaptive-push"; }

  void on_status_change(double occupancy) override;
  void on_task_arrival(double occupancy_with_task) override;
  void on_message(NodeId from, const Message& msg) override;
  using DiscoveryProtocol::migration_candidates;
  std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) override;
  void on_migration_result(NodeId target, double fraction,
                           bool success) override;
  void on_self_killed() override;
  ProtocolProbe probe(SimTime now) const override;

 private:
  node::ThresholdDetector detector_;
  AvailabilityTable table_;
};

}  // namespace realtor::proto
