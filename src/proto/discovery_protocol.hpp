// The common interface of the five resource-discovery protocols.
//
// One instance runs per host. The surrounding harness (discrete-event
// simulation or the threaded Agile runtime) owns the Host and the
// Transport; the protocol reacts to local status changes, task arrivals
// and incoming messages, and answers migration-candidate queries from the
// admission controller.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "proto/config.hpp"
#include "proto/message.hpp"
#include "proto/transport.hpp"
#include "sim/engine.hpp"

namespace realtor::proto {

/// Environment handed to every protocol instance. Non-owning: the harness
/// guarantees these outlive the protocol.
struct ProtocolEnv {
  sim::Engine* engine = nullptr;
  const net::Topology* topology = nullptr;
  Transport* transport = nullptr;
  /// Occupancy of this protocol's own host, in [0, 1].
  std::function<double()> local_occupancy;
  /// Security level of this protocol's own host (255 = unrestricted;
  /// only set by multi-resource harnesses).
  std::function<std::uint8_t()> local_security;
  /// Root seed; per-node tie-break streams derive from it.
  std::uint64_t seed = 0;
  /// Optional event tracer (nullptr = untraced, the zero-overhead
  /// default). Borrowed from the harness; emission never changes protocol
  /// decisions, so traced and untraced runs of one seed are identical.
  obs::Tracer* tracer = nullptr;
  /// Optional shared allocator of discovery-episode ids (nullptr =
  /// episode threading disabled; all episodes read 0). Like the tracer it
  /// never influences decisions — allocation is one counter increment.
  obs::EpisodeSource* episodes = nullptr;
};

/// Requirements of the task a candidate must be able to take (all
/// defaults reproduce the CPU-only behaviour: any usable entry matches).
struct CandidateQuery {
  /// Minimum advertised free fraction; the protocol still applies its
  /// own availability floor on top.
  double min_availability = 0.0;
  /// Required host security clearance.
  std::uint8_t min_security = 0;
};

/// Read-only snapshot of a protocol's soft state, taken by the
/// time-series sampler. Fields a scheme does not maintain stay zero.
struct ProtocolProbe {
  /// Entries in the candidate store (pledge list, availability table, or
  /// gossip digest).
  std::size_t table_size = 0;
  /// Live community memberships (REALTOR only).
  std::uint32_t communities = 0;
  /// Current Algorithm-H solicitation interval (adaptive pull schemes).
  double help_interval = 0.0;
};

class DiscoveryProtocol {
 public:
  DiscoveryProtocol(NodeId self, const ProtocolConfig& config,
                    ProtocolEnv env);
  virtual ~DiscoveryProtocol() = default;
  DiscoveryProtocol(const DiscoveryProtocol&) = delete;
  DiscoveryProtocol& operator=(const DiscoveryProtocol&) = delete;

  NodeId self() const { return self_; }
  const ProtocolConfig& config() const { return config_; }
  virtual const char* name() const = 0;

  /// Begins autonomous behaviour (periodic advertisement etc.).
  virtual void start() {}

  /// The host's backlog changed (admission, completion, migration in/out).
  virtual void on_status_change(double occupancy) = 0;

  /// A task arrived at this host. `occupancy_with_task` includes the new
  /// task's demand and may exceed 1 when the task does not fit — this is
  /// the "resource usage would exceed a threshold level" signal of
  /// Algorithm H. Called *after* the admission/migration decision, so pull
  /// protocols act on information gathered before the request (the paper's
  /// "untimeliness" of PULL).
  virtual void on_task_arrival(double occupancy_with_task) = 0;

  /// A protocol message arrived from `from`.
  virtual void on_message(NodeId from, const Message& msg) = 0;

  /// Hosts able to receive a migrating task with requirements `query`,
  /// best first. May mutate internal soft state (expiry sweeps, tie-break
  /// draws).
  virtual std::vector<NodeId> migration_candidates(
      const CandidateQuery& query) = 0;

  /// Unconstrained query (the paper's CPU-only experiments).
  std::vector<NodeId> migration_candidates() {
    return migration_candidates(CandidateQuery{});
  }

  /// Feedback from admission control: a migration of `fraction` of the
  /// target's capacity to `target` succeeded or was aborted.
  virtual void on_migration_result(NodeId target, double fraction,
                                   bool success) = 0;

  /// Emergency solicitation: a resource monitor or security enforcer (§3)
  /// is about to force migrations off this host — gather fresh candidate
  /// information *now*, bypassing normal rate gates. Push-based schemes
  /// have no solicitation primitive, so the default is a no-op.
  virtual void solicit() {}

  /// This host was killed: drop all soft state (it restarts cold).
  virtual void on_self_killed() {}

  /// This host recovered from a kill and rejoins the system.
  virtual void on_self_restored() {}

  /// Soft-state snapshot for the sampler; never mutates (no expiry sweep).
  virtual ProtocolProbe probe(SimTime /*now*/) const { return {}; }

  /// Id of this node's most recent discovery episode (the last HELP round
  /// it opened), or 0 if it never solicited / episode threading is off.
  /// The admission layer stamps migration-decision events with it: the
  /// candidate list consulted for a migration was gathered by that round's
  /// pledges, so the outcome is causally attributed to it.
  std::uint64_t current_episode() const { return current_episode_; }

  /// Lineage id of the trace event that last refreshed this node's
  /// candidate store (the most recent pledge_received record), or 0 if no
  /// pledge arrived yet / tracing is off. The admission layer uses it as
  /// the cause of migration_attempt events: the candidate list a migration
  /// consults is exactly the evidence that record folded in.
  std::uint64_t last_evidence_id() const { return last_evidence_; }

 protected:
  SimTime now() const { return env_.engine->now(); }
  double local_occupancy() const { return env_.local_occupancy(); }

  /// True when an active tracer is attached — the guard every emission
  /// site tests before building its event payload.
  bool tracing() const {
    return env_.tracer != nullptr && env_.tracer->active();
  }
  /// Event pre-stamped with the current time and this node; only call
  /// under tracing().
  obs::TraceEvent trace_event(obs::EventKind kind) const {
    return obs::TraceEvent(now(), self_, kind);
  }
  void trace(const obs::TraceEvent& event) const { env_.tracer->emit(event); }

  /// Allocates the next lineage event id, or 0 when tracing is off — the
  /// allocator is only ever touched on traced paths, so untraced runs stay
  /// bit-identical and pay nothing.
  std::uint64_t issue_trace_id() const {
    return tracing() ? env_.tracer->issue_id() : 0;
  }
  std::uint8_t local_security() const {
    return env_.local_security ? env_.local_security() : 255;
  }

  /// Opens a new discovery episode: allocates the next id from the shared
  /// source and remembers it as this node's current episode. Pull schemes
  /// call this once per HELP flood, before stamping the message.
  std::uint64_t open_episode() {
    current_episode_ = env_.episodes != nullptr ? env_.episodes->next() : 0;
    return current_episode_;
  }

  /// Alive overlay nodes other than self — the neighbor scope (§5: the
  /// topology "represents the limited scope of neighbors ... for all five
  /// resource discovery schemes").
  std::vector<NodeId> peers() const;

  /// Same set written into `out` (cleared first) — lets periodic hot paths
  /// (gossip rounds, candidate queries) reuse one buffer instead of
  /// allocating per call.
  void peers_into(std::vector<NodeId>& out) const;

  NodeId self_;
  ProtocolConfig config_;
  ProtocolEnv env_;
  RngStream rng_;  // tie-breaks only; never feeds workload randomness
  std::uint64_t current_episode_ = 0;
  /// See last_evidence_id(); maintained by the pull schemes' pledge
  /// handlers (push/gossip candidate refreshes have no per-record trace
  /// event, so theirs stays 0).
  std::uint64_t last_evidence_ = 0;
};

inline DiscoveryProtocol::DiscoveryProtocol(NodeId self,
                                            const ProtocolConfig& config,
                                            ProtocolEnv env)
    : self_(self),
      config_(config),
      env_(std::move(env)),
      rng_(env_.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1)), "proto-ties") {}

inline void DiscoveryProtocol::peers_into(std::vector<NodeId>& out) const {
  out.clear();
  env_.topology->for_each_alive_node([&](NodeId n) {
    if (n != self_) out.push_back(n);
  });
}

inline std::vector<NodeId> DiscoveryProtocol::peers() const {
  std::vector<NodeId> out;
  out.reserve(env_.topology->alive_count());
  peers_into(out);
  return out;
}

}  // namespace realtor::proto
