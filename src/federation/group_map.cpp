#include "federation/group_map.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace realtor::federation {

GroupMap::GroupMap(std::vector<GroupId> group_of)
    : group_of_(std::move(group_of)) {
  REALTOR_ASSERT(!group_of_.empty());
  GroupId max_group = 0;
  for (const GroupId g : group_of_) {
    max_group = std::max(max_group, g);
  }
  members_.resize(max_group + 1);
  for (NodeId node = 0; node < group_of_.size(); ++node) {
    members_[group_of_[node]].push_back(node);
  }
  for (const auto& group : members_) {
    REALTOR_ASSERT_MSG(!group.empty(), "empty group in partition");
  }
}

GroupMap GroupMap::mesh_blocks(NodeId mesh_w, NodeId mesh_h, NodeId block_w,
                               NodeId block_h) {
  REALTOR_ASSERT(block_w > 0 && block_h > 0);
  REALTOR_ASSERT_MSG(mesh_w % block_w == 0 && mesh_h % block_h == 0,
                     "block dimensions must divide the mesh");
  const NodeId blocks_per_row = mesh_w / block_w;
  std::vector<GroupId> group_of(static_cast<std::size_t>(mesh_w) * mesh_h);
  for (NodeId y = 0; y < mesh_h; ++y) {
    for (NodeId x = 0; x < mesh_w; ++x) {
      const GroupId group = (y / block_h) * blocks_per_row + (x / block_w);
      group_of[y * mesh_w + x] = group;
    }
  }
  return GroupMap(std::move(group_of));
}

GroupMap GroupMap::chunks(NodeId num_nodes, NodeId group_size) {
  REALTOR_ASSERT(num_nodes > 0);
  REALTOR_ASSERT(group_size > 0);
  std::vector<GroupId> group_of(num_nodes);
  for (NodeId node = 0; node < num_nodes; ++node) {
    group_of[node] = node / group_size;
  }
  return GroupMap(std::move(group_of));
}

GroupId GroupMap::group_of(NodeId node) const {
  REALTOR_ASSERT(node < group_of_.size());
  return group_of_[node];
}

const std::vector<NodeId>& GroupMap::members(GroupId group) const {
  REALTOR_ASSERT(group < members_.size());
  return members_[group];
}

std::vector<GroupId> GroupMap::adjacent_groups(
    GroupId group, const net::Topology& topology) const {
  REALTOR_ASSERT(group < members_.size());
  std::vector<GroupId> out;
  for (const net::Link& link : topology.links()) {
    const GroupId ga = group_of_[link.a];
    const GroupId gb = group_of_[link.b];
    GroupId other = group;
    if (ga == group && gb != group) {
      other = gb;
    } else if (gb == group && ga != group) {
      other = ga;
    } else {
      continue;
    }
    if (std::find(out.begin(), out.end(), other) == out.end()) {
      out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t GroupMap::intra_group_alive_links(
    GroupId group, const net::Topology& topology) const {
  std::size_t count = 0;
  for (const net::Link& link : topology.links()) {
    if (group_of_[link.a] == group && group_of_[link.b] == group &&
        topology.alive(link.a) && topology.alive(link.b)) {
      ++count;
    }
  }
  return count;
}

NodeId GroupMap::gateway(GroupId group, const net::Topology& topology) const {
  for (const NodeId node : members(group)) {
    if (topology.alive(node)) return node;
  }
  return kInvalidNode;
}

}  // namespace realtor::federation
