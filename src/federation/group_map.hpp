// Neighbor-group partitioning — the paper's §7 future work: "we will
// extend this work to inter-neighbor-group resource discovery and
// allocation for very large distributed dynamic real-time systems."
//
// A GroupMap splits the overlay into disjoint neighbor groups. Discovery
// floods (HELP, push adverts) stay inside the origin's group; when a
// group is exhausted the harness escalates a solicitation into adjacent
// groups through a gateway. Unicasts (PLEDGE, negotiation) remain global.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace realtor::federation {

using GroupId = std::uint32_t;

class GroupMap {
 public:
  /// Partitions a mesh_w x mesh_h mesh into block_w x block_h blocks;
  /// block dimensions must divide the mesh dimensions.
  static GroupMap mesh_blocks(NodeId mesh_w, NodeId mesh_h, NodeId block_w,
                              NodeId block_h);

  /// Generic partition: consecutive id ranges of `group_size` nodes (the
  /// last group may be smaller).
  static GroupMap chunks(NodeId num_nodes, NodeId group_size);

  GroupId group_of(NodeId node) const;
  const std::vector<NodeId>& members(GroupId group) const;
  GroupId group_count() const {
    return static_cast<GroupId>(members_.size());
  }
  NodeId num_nodes() const {
    return static_cast<NodeId>(group_of_.size());
  }

  /// Groups connected to `group` by at least one topology link.
  std::vector<GroupId> adjacent_groups(GroupId group,
                                       const net::Topology& topology) const;

  /// Links of `topology` with both alive endpoints inside `group` — the
  /// flood cost base for a group-scoped flood.
  std::size_t intra_group_alive_links(GroupId group,
                                      const net::Topology& topology) const;

  /// Gateway of a group: its lowest-id alive member (kInvalidNode when
  /// the whole group is dead). Deterministic, recomputed on demand so it
  /// survives gateway failures — consistent with the soft-state design.
  NodeId gateway(GroupId group, const net::Topology& topology) const;

 private:
  explicit GroupMap(std::vector<GroupId> group_of);

  std::vector<GroupId> group_of_;          // node -> group
  std::vector<std::vector<NodeId>> members_;  // group -> nodes
};

}  // namespace realtor::federation
