#include "sim/timer.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::sim {

void Timer::arm(SimTime delay, Callback cb) {
  REALTOR_ASSERT(static_cast<bool>(cb));
  cancel();
  cb_ = std::move(cb);
  event_ = engine_.schedule_in(delay, [this] {
    // The engine dropped its copy; keep ours alive while it runs so the
    // callback may re-arm this same timer.
    event_ = kInvalidEvent;
    cb_();
  });
}

void Timer::restart(SimTime delay) {
  REALTOR_ASSERT_MSG(static_cast<bool>(cb_), "restart() before arm()");
  engine_.cancel(event_);
  event_ = engine_.schedule_in(delay, [this] {
    event_ = kInvalidEvent;
    cb_();
  });
}

void Timer::cancel() {
  if (event_ != kInvalidEvent) {
    engine_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

}  // namespace realtor::sim
