// Periodic process helper: the pure-PUSH baseline advertises availability at
// a fixed interval (Push-1 in the paper); this wraps the self-rescheduling
// pattern with clean start/stop semantics.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace realtor::sim {

class PeriodicProcess {
 public:
  using Callback = std::function<void()>;

  PeriodicProcess(Engine& engine, SimTime interval, Callback cb);
  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Starts ticking; the first tick fires one full interval from now
  /// (matching a host that begins advertising after joining).
  void start();

  void stop();

  bool running() const { return engine_.pending(event_); }

  SimTime interval() const { return interval_; }
  void set_interval(SimTime interval);

 private:
  void tick();

  Engine& engine_;
  SimTime interval_;
  Callback cb_;
  EventId event_ = kInvalidEvent;
};

}  // namespace realtor::sim
