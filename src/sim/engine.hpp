// Deterministic discrete-event engine.
//
// Single-threaded: all model code runs inside event callbacks on one thread.
// Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events at equal times fire in scheduling (FIFO) order;
//   * cancellation is O(1) and never perturbs the order of other events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace realtor::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel() until the event fires.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` seconds (>= 0).
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// True if `id` is scheduled and not yet fired/cancelled.
  bool pending(EventId id) const;

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Fires at most `max_events` events; returns how many fired.
  std::size_t step(std::size_t max_events = 1);

  std::size_t pending_count() const { return callbacks_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Sampled observation hook: after every `sample_every`-th processed
  /// event, `observer` is called with (now, events_processed,
  /// pending_count) — enough for a tracer to record engine progress
  /// without touching the hot loop otherwise. `sample_every` = 0 (the
  /// default) disables the hook; the loop then pays one integer test per
  /// event. The observer must not mutate the engine.
  using Observer =
      std::function<void(SimTime now, std::uint64_t processed,
                         std::size_t pending)>;
  void set_observer(std::uint64_t sample_every, Observer observer);

 private:
  struct HeapEntry {
    SimTime time;
    EventId id;
  };
  struct HeapCompare {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  /// Pops the next live event; returns false when the queue is exhausted.
  bool pop_next(HeapEntry& out, Callback& cb);

  /// Bumps the processed counter and fires the sampled observer.
  void note_processed();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t observe_every_ = 0;
  Observer observer_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap_;
  // Source of truth for liveness: cancel() erases here, the heap entry is
  // dropped lazily when popped.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace realtor::sim
