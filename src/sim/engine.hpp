// Deterministic discrete-event engine.
//
// Single-threaded: all model code runs inside event callbacks on one thread.
// Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events at equal times fire in scheduling (FIFO) order — except while
//     a reserved sequence block is active (see reserve_seqs), which exists
//     precisely to let the warm-start executor re-arm deferred events into
//     the tie-break positions an unforked run would have given them;
//   * cancellation is O(1) and never perturbs the order of other events.
//
// Storage design (the hot path of every benchmark): events live in a
// free-listed slot arena — a plain vector of {generation, callback} slots —
// and a 4-ary heap orders 16-byte {time, seq, slot} entries. cancel() is a
// generation bump on the slot (no hash lookup, no deallocation); the stale
// heap entry is dropped lazily when popped (its seq no longer matching the
// slot's), or in bulk by heap_compact() when corpses outnumber live
// events. Callbacks are EventFn values, move-constructed into recycled
// slots, so scheduling allocates nothing once the arena and heap have
// grown to the steady-state working set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/event_fn.hpp"

namespace realtor::sim {

class Engine {
 public:
  using Callback = EventFn;

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel() until the event fires.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` seconds (>= 0).
  EventId schedule_in(SimTime delay, Callback cb);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// True if `id` is scheduled and not yet fired/cancelled.
  bool pending(EventId id) const;

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Runs all events with time strictly < `t`, then advances the clock to
  /// `t`. The warm-start snapshot barrier: events at exactly `t` stay
  /// pending, so divergent events re-armed at `t` from a reserved sequence
  /// block can still win the equal-time tie-break against them.
  void run_until_before(SimTime t);

  /// Burns `n` consecutive sequence numbers at the current allocation
  /// point and returns the first. Together with use_reserved_seqs() this
  /// lets a caller hold tie-break positions open for events it will only
  /// schedule later (the warm-start executor reserves the attack block in
  /// the shared prefix and arms each child's waves into it after fork);
  /// sequences never reused, so leftover reservations are simply wasted.
  std::uint32_t reserve_seqs(std::uint32_t n);

  /// Makes the next `n` schedule calls draw sequence numbers `first`,
  /// `first+1`, ... instead of fresh ones. The block must come from
  /// reserve_seqs(); nesting is not supported.
  void use_reserved_seqs(std::uint32_t first, std::uint32_t n);

  /// Ends reserved-sequence mode; asserts the block was fully consumed
  /// (an unconsumed reservation means the caller's event count drifted
  /// from what it actually scheduled).
  void end_reserved_seqs();

  /// Fires at most `max_events` events; returns how many fired.
  std::size_t step(std::size_t max_events = 1);

  std::size_t pending_count() const { return live_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Sampled observation hook: after every `sample_every`-th processed
  /// event, `observer` is called with (now, events_processed,
  /// pending_count) — enough for a tracer to record engine progress
  /// without touching the hot loop otherwise. `sample_every` = 0 (the
  /// default) disables the hook; the loop then pays one integer test per
  /// event. The observer must not mutate the engine.
  using Observer =
      std::function<void(SimTime now, std::uint64_t processed,
                         std::size_t pending)>;
  void set_observer(std::uint64_t sample_every, Observer observer);

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One arena cell. `generation` starts at 1 and is bumped every time the
  /// slot is released (fire or cancel), so an EventId handle — which packs
  /// the generation it was issued under — can never act on a reused slot.
  /// (A stale handle could only collide after 2^32 reuses of one slot.)
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    /// Sequence number of the slot's current pending event, 0 when idle.
    /// Heap entries validate against this at pop time.
    std::uint32_t seq = 0;
  };

  /// Heap entries carry the firing time, a monotone sequence number for
  /// the FIFO tie-break among simultaneous events, and the owning slot.
  /// Liveness is validated by comparing `seq` against the slot's current
  /// sequence — sequences are unique engine-wide (schedule_at asserts
  /// before the 32-bit space could wrap), so a stale entry can never
  /// match. Keeping the entry at 16 bytes instead of 24 matters: draining
  /// a large queue is bound by sift-down cache traffic, which scales with
  /// entry size.
  struct HeapEntry {
    SimTime time;
    std::uint32_t seq;
    std::uint32_t slot;
  };
  /// Min-heap order on (time, seq).
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// The heap is 4-ary: half the depth of a binary heap, and the four
  /// children of a node sit in one cache line's worth of 24-byte entries,
  /// which is what the pop-side sift-down is bound by.
  void heap_push(const HeapEntry& entry);
  /// Restores heap order below `i` after heap_[i] was replaced.
  void sift_down(std::size_t i);
  /// Removes heap_.front(); the heap must be nonempty.
  void heap_pop_front();
  /// Rebuilds the heap without its dead entries. Called when cancelled
  /// garbage outnumbers live events, so lazy deletion costs amortized O(1)
  /// per cancel instead of a sift-down per corpse at pop time.
  void heap_compact();

  static EventId pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  /// Returns the slot to the free list and invalidates outstanding
  /// handles/heap entries. The callback must already be moved out or dead.
  void release(std::uint32_t slot);

  /// Pops the next live event; returns false when the queue is exhausted.
  bool pop_next(SimTime& time, Callback& cb);

  /// Bumps the processed counter and fires the sampled observer.
  void note_processed();

  SimTime now_ = 0.0;
  std::uint32_t next_seq_ = 1;
  /// Reserved-sequence mode (see reserve_seqs): while reserved_left_ > 0,
  /// schedule_at draws from reserved_next_ instead of next_seq_.
  std::uint32_t reserved_next_ = 0;
  std::uint32_t reserved_left_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::uint64_t observe_every_ = 0;
  Observer observer_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  /// Heap entries whose event was cancelled (heap_.size() - dead_ live).
  std::size_t dead_ = 0;
};

}  // namespace realtor::sim
