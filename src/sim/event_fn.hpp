// Move-only type-erased `void()` callable with a large inline buffer.
//
// The engine fires millions of events per simulated run; storing each
// callback in a std::function pays a heap allocation whenever the capture
// exceeds the library's small-object buffer (16 bytes on libstdc++ —
// smaller than a typical `[this, task, origin]` capture here). EventFn
// widens the inline buffer so every callback the simulator actually
// schedules is move-constructed straight into the event slot, and falls
// back to the heap only for outsized captures (e.g. trace-replay records).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace realtor::sim {

class EventFn {
 public:
  /// Inline capture capacity, sized for the hottest real capture in the
  /// tree: SimTransport::deliver_later's [this, dest, origin, msg] with a
  /// 56-byte proto::Message variant is 72 bytes — every protocol message
  /// delivery allocates unless it fits here.
  static constexpr std::size_t kInlineBytes = 72;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule_*() call site.
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_.inline_buf)) Fn(std::forward<F>(f));
      vtable_ = &kInlineVTable<Fn>;
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      vtable_ = &kHeapVTable<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  union Storage {
    alignas(std::max_align_t) unsigned char inline_buf[kInlineBytes];
    void* heap;
  };

  struct VTable {
    void (*invoke)(Storage& s);
    /// Move-constructs dst from src and destroys src's callable.
    void (*relocate)(Storage& dst, Storage& src);
    void (*destroy)(Storage& s);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* inline_ptr(Storage& s) {
    return std::launder(reinterpret_cast<Fn*>(s.inline_buf));
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](Storage& s) { (*inline_ptr<Fn>(s))(); },
      [](Storage& dst, Storage& src) {
        Fn* from = inline_ptr<Fn>(src);
        ::new (static_cast<void*>(dst.inline_buf)) Fn(std::move(*from));
        from->~Fn();
      },
      [](Storage& s) { inline_ptr<Fn>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](Storage& s) { (*static_cast<Fn*>(s.heap))(); },
      [](Storage& dst, Storage& src) { dst.heap = src.heap; },
      [](Storage& s) { delete static_cast<Fn*>(s.heap); },
  };

  void move_from(EventFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  Storage storage_;
};

}  // namespace realtor::sim
