#include "sim/arrivals.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace realtor::sim {

PoissonArrivals::PoissonArrivals(Engine& engine, std::uint64_t seed,
                                 double rate, double mean_size,
                                 NodeId num_nodes, ArrivalSink sink)
    : engine_(engine),
      gaps_(seed, "poisson-gaps"),
      sizes_(seed, "task-sizes"),
      placement_(seed, "placement"),
      rate_(rate),
      mean_size_(mean_size),
      num_nodes_(num_nodes),
      sink_(std::move(sink)) {
  REALTOR_ASSERT(rate_ > 0.0);
  REALTOR_ASSERT(mean_size_ > 0.0);
  REALTOR_ASSERT(num_nodes_ > 0);
  REALTOR_ASSERT(static_cast<bool>(sink_));
}

void PoissonArrivals::start() {
  if (event_ != kInvalidEvent && engine_.pending(event_)) return;
  event_ = engine_.schedule_in(gaps_.exponential(1.0 / rate_),
                               [this] { emit(); });
}

void PoissonArrivals::stop() {
  if (event_ != kInvalidEvent) {
    engine_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void PoissonArrivals::emit() {
  Arrival arrival;
  arrival.id = next_task_++;
  arrival.time = engine_.now();
  arrival.size_seconds = sizes_.exponential(mean_size_);
  arrival.node = static_cast<NodeId>(placement_.uniform_index(num_nodes_));
  // Schedule the next arrival before delivering this one so a sink that
  // stops the process sees a consistent state.
  event_ = engine_.schedule_in(gaps_.exponential(1.0 / rate_),
                               [this] { emit(); });
  sink_(arrival);
}

TraceArrivals::TraceArrivals(Engine& engine, std::vector<Arrival> trace,
                             ArrivalSink sink)
    : engine_(engine), trace_(std::move(trace)), sink_(std::move(sink)) {
  REALTOR_ASSERT(static_cast<bool>(sink_));
  REALTOR_ASSERT(std::is_sorted(
      trace_.begin(), trace_.end(),
      [](const Arrival& a, const Arrival& b) { return a.time < b.time; }));
}

void TraceArrivals::start() {
  for (const Arrival& arrival : trace_) {
    engine_.schedule_at(arrival.time, [this, arrival] { sink_(arrival); });
  }
}

std::vector<Arrival> generate_poisson_trace(std::uint64_t seed, double rate,
                                            double mean_size, NodeId num_nodes,
                                            std::size_t count) {
  REALTOR_ASSERT(rate > 0.0);
  REALTOR_ASSERT(mean_size > 0.0);
  REALTOR_ASSERT(num_nodes > 0);
  RngStream gaps(seed, "poisson-gaps");
  RngStream sizes(seed, "task-sizes");
  RngStream placement(seed, "placement");
  std::vector<Arrival> trace;
  trace.reserve(count);
  SimTime t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += gaps.exponential(1.0 / rate);
    Arrival arrival;
    arrival.id = static_cast<TaskId>(i);
    arrival.time = t;
    arrival.size_seconds = sizes.exponential(mean_size);
    arrival.node = static_cast<NodeId>(placement.uniform_index(num_nodes));
    trace.push_back(arrival);
  }
  return trace;
}

}  // namespace realtor::sim
