#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/profile.hpp"

namespace realtor::sim {

Engine::Engine() {
  // Typical steady-state working sets (one completion timer per host plus
  // in-flight protocol traffic) sit well under this; reserving avoids the
  // first few reallocation steps on every simulation construction.
  heap_.reserve(64);
  slots_.reserve(64);
}

void Engine::heap_push(const HeapEntry& entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);  // placeholder; the hole sifts up below
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!fires_before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Engine::sift_down(std::size_t i) {
  const HeapEntry value = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (fires_before(heap_[c], heap_[best])) best = c;
    }
    if (!fires_before(heap_[best], value)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = value;
}

void Engine::heap_pop_front() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Engine::heap_compact() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].seq == entry.seq) {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  dead_ = 0;
  if (kept > 1) {
    // Floyd construction over the 4-ary layout: sift every parent down,
    // deepest first.
    for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

EventId Engine::schedule_at(SimTime t, Callback cb) {
  REALTOR_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  REALTOR_ASSERT(static_cast<bool>(cb));
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(cb);
  std::uint32_t seq;
  if (reserved_left_ > 0) {
    seq = reserved_next_++;
    --reserved_left_;
  } else {
    seq = next_seq_++;
    REALTOR_ASSERT_MSG(next_seq_ != 0, "event sequence space exhausted");
  }
  s.seq = seq;
  heap_push(HeapEntry{t, seq, slot});
  ++live_;
  return pack(slot, s.generation);
}

std::uint32_t Engine::reserve_seqs(std::uint32_t n) {
  const std::uint32_t first = next_seq_;
  REALTOR_ASSERT_MSG(0xffffffffu - next_seq_ > n,
                     "event sequence space exhausted");
  next_seq_ += n;
  return first;
}

void Engine::use_reserved_seqs(std::uint32_t first, std::uint32_t n) {
  REALTOR_ASSERT_MSG(reserved_left_ == 0, "reserved blocks cannot nest");
  REALTOR_ASSERT_MSG(first + n <= next_seq_, "block was never reserved");
  reserved_next_ = first;
  reserved_left_ = n;
}

void Engine::end_reserved_seqs() {
  REALTOR_ASSERT_MSG(reserved_left_ == 0,
                     "reserved sequence block not fully consumed");
  reserved_next_ = 0;
}

EventId Engine::schedule_in(SimTime delay, Callback cb) {
  REALTOR_ASSERT_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Engine::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.generation;
  s.seq = 0;  // sequences start at 1, so any heap entry is now stale
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

void Engine::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return;
  if (slots_[slot].generation != generation_of(id)) return;  // fired/dead
  release(slot);
  ++dead_;  // the event's heap entry is now garbage
  // Compact once corpses outnumber live entries, so cancel-heavy phases
  // (Algorithm H re-arming its HELP timers) don't grow the heap unboundedly
  // or tax every subsequent push/pop with dead weight.
  if (dead_ > 64 && dead_ * 2 > heap_.size()) heap_compact();
}

void Engine::set_observer(std::uint64_t sample_every, Observer observer) {
  observe_every_ = sample_every;
  observer_ = std::move(observer);
}

void Engine::note_processed() {
  ++processed_;
  if (observe_every_ != 0 && processed_ % observe_every_ == 0 && observer_) {
    observer_(now_, processed_, live_);
  }
}

bool Engine::pending(EventId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot < slots_.size() &&
         slots_[slot].generation == generation_of(id);
}

bool Engine::pop_next(SimTime& time, Callback& cb) {
  if (live_ == 0) {  // only corpses (if anything) remain — drop them all
    heap_.clear();
    dead_ = 0;
    return false;
  }
  for (;;) {
    const HeapEntry top = heap_.front();
    heap_pop_front();
    Slot& s = slots_[top.slot];
    if (s.seq != top.seq) {  // cancelled
      --dead_;
      continue;
    }
    cb = std::move(s.fn);
    release(top.slot);
    time = top.time;
    return true;
  }
}

void Engine::run() {
  SimTime time = 0.0;
  Callback cb;
  while (pop_next(time, cb)) {
    now_ = time;
    note_processed();
    obs::ProfileScope scope("engine/dispatch");
    cb();
  }
}

void Engine::run_until(SimTime t) {
  REALTOR_ASSERT(t >= now_);
  while (live_ > 0) {
    // Peek for a live event not later than t.
    const HeapEntry top = heap_.front();
    if (slots_[top.slot].seq != top.seq) {  // cancelled
      heap_pop_front();
      --dead_;
      continue;
    }
    if (top.time > t) break;
    heap_pop_front();
    Slot& s = slots_[top.slot];
    Callback cb = std::move(s.fn);
    release(top.slot);
    now_ = top.time;
    note_processed();
    obs::ProfileScope scope("engine/dispatch");
    cb();
  }
  now_ = t;
}

void Engine::run_until_before(SimTime t) {
  REALTOR_ASSERT(t >= now_);
  while (live_ > 0) {
    const HeapEntry top = heap_.front();
    if (slots_[top.slot].seq != top.seq) {  // cancelled
      heap_pop_front();
      --dead_;
      continue;
    }
    if (top.time >= t) break;
    heap_pop_front();
    Slot& s = slots_[top.slot];
    Callback cb = std::move(s.fn);
    release(top.slot);
    now_ = top.time;
    note_processed();
    obs::ProfileScope scope("engine/dispatch");
    cb();
  }
  now_ = t;
}

std::size_t Engine::step(std::size_t max_events) {
  std::size_t fired = 0;
  SimTime time = 0.0;
  Callback cb;
  while (fired < max_events && pop_next(time, cb)) {
    now_ = time;
    note_processed();
    ++fired;
    obs::ProfileScope scope("engine/dispatch");
    cb();
  }
  return fired;
}

}  // namespace realtor::sim
