#include "sim/engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  REALTOR_ASSERT_MSG(t >= now_, "cannot schedule in the past");
  REALTOR_ASSERT(static_cast<bool>(cb));
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Engine::schedule_in(SimTime delay, Callback cb) {
  REALTOR_ASSERT_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Engine::cancel(EventId id) { callbacks_.erase(id); }

void Engine::set_observer(std::uint64_t sample_every, Observer observer) {
  observe_every_ = sample_every;
  observer_ = std::move(observer);
}

void Engine::note_processed() {
  ++processed_;
  if (observe_every_ != 0 && processed_ % observe_every_ == 0 && observer_) {
    observer_(now_, processed_, callbacks_.size());
  }
}

bool Engine::pending(EventId id) const { return callbacks_.count(id) > 0; }

bool Engine::pop_next(HeapEntry& out, Callback& cb) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    out = top;
    cb = std::move(it->second);
    callbacks_.erase(it);
    return true;
  }
  return false;
}

void Engine::run() {
  HeapEntry entry{};
  Callback cb;
  while (pop_next(entry, cb)) {
    now_ = entry.time;
    note_processed();
    cb();
  }
}

void Engine::run_until(SimTime t) {
  REALTOR_ASSERT(t >= now_);
  while (!heap_.empty()) {
    // Peek for a live event not later than t.
    const HeapEntry top = heap_.top();
    if (callbacks_.count(top.id) == 0) {
      heap_.pop();
      continue;
    }
    if (top.time > t) break;
    heap_.pop();
    auto it = callbacks_.find(top.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    note_processed();
    cb();
  }
  now_ = t;
}

std::size_t Engine::step(std::size_t max_events) {
  std::size_t fired = 0;
  HeapEntry entry{};
  Callback cb;
  while (fired < max_events && pop_next(entry, cb)) {
    now_ = entry.time;
    note_processed();
    ++fired;
    cb();
  }
  return fired;
}

}  // namespace realtor::sim
