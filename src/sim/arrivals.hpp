// Workload arrival processes.
//
// The paper's workload (§5): tasks arrive as a Poisson process with rate
// lambda, each with an exponentially distributed length (mean 5 s), and are
// assigned to a uniformly random node. PoissonArrivals generates the stream;
// TraceArrivals replays a recorded one (for regression tests and for running
// the same workload through the threaded Agile cluster).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace realtor::sim {

/// One generated task arrival, before protocol processing.
struct Arrival {
  TaskId id = 0;
  SimTime time = 0.0;
  double size_seconds = 0.0;
  NodeId node = kInvalidNode;
};

/// Sink invoked at the simulated instant of each arrival.
using ArrivalSink = std::function<void(const Arrival&)>;

class PoissonArrivals {
 public:
  /// `rate`: arrivals per second across the whole system. `mean_size`:
  /// exponential task length mean. `num_nodes`: uniform placement range.
  PoissonArrivals(Engine& engine, std::uint64_t seed, double rate,
                  double mean_size, NodeId num_nodes, ArrivalSink sink);

  /// Begins generating; the first arrival is one exponential gap from now.
  void start();
  void stop();

  std::uint64_t generated() const { return next_task_; }

 private:
  void emit();

  Engine& engine_;
  RngStream gaps_;
  RngStream sizes_;
  RngStream placement_;
  double rate_;
  double mean_size_;
  NodeId num_nodes_;
  ArrivalSink sink_;
  TaskId next_task_ = 0;
  EventId event_ = kInvalidEvent;
};

/// Replays a fixed arrival list in timestamp order.
class TraceArrivals {
 public:
  TraceArrivals(Engine& engine, std::vector<Arrival> trace, ArrivalSink sink);

  void start();

  std::size_t size() const { return trace_.size(); }

 private:
  Engine& engine_;
  std::vector<Arrival> trace_;
  ArrivalSink sink_;
};

/// Pre-generates `count` arrivals with the same distributions as
/// PoissonArrivals — used to run byte-identical workloads through multiple
/// protocol configurations or through the Agile cluster.
std::vector<Arrival> generate_poisson_trace(std::uint64_t seed, double rate,
                                            double mean_size, NodeId num_nodes,
                                            std::size_t count);

}  // namespace realtor::sim
