#include "sim/process.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::sim {

PeriodicProcess::PeriodicProcess(Engine& engine, SimTime interval, Callback cb)
    : engine_(engine), interval_(interval), cb_(std::move(cb)) {
  REALTOR_ASSERT(interval_ > 0.0);
  REALTOR_ASSERT(static_cast<bool>(cb_));
}

void PeriodicProcess::start() {
  if (running()) return;
  event_ = engine_.schedule_in(interval_, [this] { tick(); });
}

void PeriodicProcess::stop() {
  if (event_ != kInvalidEvent) {
    engine_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void PeriodicProcess::set_interval(SimTime interval) {
  REALTOR_ASSERT(interval > 0.0);
  interval_ = interval;
  if (running()) {
    stop();
    start();
  }
}

void PeriodicProcess::tick() {
  event_ = engine_.schedule_in(interval_, [this] { tick(); });
  cb_();
}

}  // namespace realtor::sim
