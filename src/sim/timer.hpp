// Restartable one-shot timer.
//
// Algorithm H (paper Fig. 2) arms a timeout whenever a HELP message is sent
// and *resets* it when a PLEDGE arrives before expiry; this class captures
// exactly that arm / reset / cancel lifecycle.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace realtor::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  explicit Timer(Engine& engine) : engine_(engine) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer to fire `delay` seconds from now. A
  /// previously armed expiry is cancelled first.
  void arm(SimTime delay, Callback cb);

  /// Re-arms with the same callback and a fresh delay. Requires a prior
  /// arm(); the pending expiry (if any) is cancelled.
  void restart(SimTime delay);

  void cancel();

  bool active() const { return engine_.pending(event_); }

 private:
  Engine& engine_;
  EventId event_ = kInvalidEvent;
  Callback cb_;
};

}  // namespace realtor::sim
