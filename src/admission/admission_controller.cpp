#include "admission/admission_controller.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/profile.hpp"

namespace realtor::admission {

AdmissionController::AdmissionController(const MigrationPolicy& policy,
                                         const net::Topology& topology,
                                         const net::CostModel& cost_model,
                                         net::MessageLedger& ledger,
                                         HostResolver host_of)
    : policy_(policy),
      topology_(topology),
      cost_model_(cost_model),
      ledger_(ledger),
      host_of_(std::move(host_of)) {
  REALTOR_ASSERT(policy_.max_tries >= 1);
  REALTOR_ASSERT(static_cast<bool>(host_of_));
}

MigrationOutcome AdmissionController::try_migrate(
    const node::Task& task, NodeId origin,
    proto::DiscoveryProtocol& protocol) {
  obs::ProfileScope profile_scope("admission/try_migrate");
  MigrationOutcome outcome;
  proto::CandidateQuery query;
  query.min_security = task.min_security;
  const std::vector<NodeId> candidates = protocol.migration_candidates(query);
  if (candidates.empty()) {
    ++no_candidate_;
    return outcome;
  }

  for (const NodeId target : candidates) {
    if (outcome.attempts >= policy_.max_tries) break;
    if (target == origin) continue;
    ++outcome.attempts;
    ++attempts_;
    if (tracing()) {
      // The candidate list was assembled from the pledges of the node's
      // most recent HELP round — attribute the outcome to that episode
      // (0 for push/gossip schemes, which never solicit). Lineage: the
      // first attempt's cause is the pledge_received that last refreshed
      // the list; retries chain off the preceding abort, so the walk from
      // the final outcome back to the HELP covers every retry.
      const std::uint64_t cause = outcome.last_event != 0
                                      ? outcome.last_event
                                      : protocol.last_evidence_id();
      outcome.last_event = tracer_->issue_id();
      tracer_->emit(obs::TraceEvent(engine_->now(), origin,
                                    obs::EventKind::kMigrationAttempt)
                        .with("task", task.id)
                        .with("target", target)
                        .with("attempt", outcome.attempts)
                        .with("episode", protocol.current_episode())
                        .with("id", outcome.last_event)
                        .with("cause", cause));
    }

    // Negotiation round-trip between the two admission controls. Charged
    // even when the target is dead or refuses — failed speculation is
    // exactly the cost the one-try policy is trading against.
    ledger_.record(net::MessageKind::kNegotiation,
                   policy_.negotiation_messages *
                       cost_model_.unicast_cost(origin, target));

    node::Host* host = host_of_(target);
    const bool target_up = topology_.alive(target) && host != nullptr;
    node::Task moved = task;
    ++moved.migrations;
    const double fraction =
        host != nullptr ? task.size_seconds / host->capacity_seconds() : 0.0;
    if (target_up && host->try_enqueue(moved)) {
      ledger_.record(net::MessageKind::kMigration,
                     policy_.migration_messages *
                         cost_model_.unicast_cost(origin, target));
      protocol.on_migration_result(target, fraction, true);
      ++migrations_;
      outcome.admitted = true;
      outcome.target = target;
      if (tracing()) {
        const std::uint64_t cause = outcome.last_event;
        outcome.last_event = tracer_->issue_id();
        tracer_->emit(obs::TraceEvent(engine_->now(), origin,
                                      obs::EventKind::kMigrationSuccess)
                          .with("task", task.id)
                          .with("target", target)
                          .with("attempts", outcome.attempts)
                          .with("episode", protocol.current_episode())
                          .with("id", outcome.last_event)
                          .with("cause", cause));
      }
      return outcome;
    }
    protocol.on_migration_result(target, fraction, false);
    ++aborted_;
    if (tracing()) {
      const std::uint64_t cause = outcome.last_event;
      outcome.last_event = tracer_->issue_id();
      tracer_->emit(obs::TraceEvent(engine_->now(), origin,
                                    obs::EventKind::kMigrationAbort)
                        .with("task", task.id)
                        .with("target", target)
                        .with("target_alive", target_up)
                        .with("episode", protocol.current_episode())
                        .with("id", outcome.last_event)
                        .with("cause", cause));
    }
  }
  return outcome;
}

}  // namespace realtor::admission
