// Admission control + migration negotiation.
//
// §3: REALTOR keeps the host list so "the admission control can be very
// light-weight"; when the chosen destination turns out to be overloaded
// "migration is aborted and the next node in REALTOR's list is tried."
// §5 restricts the experiments to "only a one-time migration try to the
// best candidate destination node" — max_tries = 1 reproduces that; larger
// budgets exercise the §3 retry behaviour (ablation Tab E).
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "net/cost_model.hpp"
#include "net/message_ledger.hpp"
#include "net/topology.hpp"
#include "node/host.hpp"
#include "obs/trace.hpp"
#include "proto/discovery_protocol.hpp"
#include "sim/engine.hpp"

namespace realtor::admission {

struct MigrationPolicy {
  /// Candidate destinations tried before rejecting (paper experiments: 1).
  std::uint32_t max_tries = 1;
  /// Unicast messages per negotiation round-trip between the two admission
  /// controls (request + accept/refuse).
  double negotiation_messages = 2.0;
  /// Unicast messages to move the component itself.
  double migration_messages = 1.0;
};

struct MigrationOutcome {
  bool admitted = false;
  NodeId target = kInvalidNode;
  std::uint32_t attempts = 0;
  /// Lineage id of the last trace event this decision emitted (the
  /// migration_success on admission, else the final migration_abort /
  /// attempt). The simulation uses it as the cause of the task-level
  /// admit/reject record. 0 when tracing is off or no attempt was made.
  std::uint64_t last_event = 0;
};

class AdmissionController {
 public:
  /// `host_of` resolves a node id to its host; returns nullptr for nodes
  /// outside the harness (never happens in the experiments).
  using HostResolver = std::function<node::Host*(NodeId)>;

  AdmissionController(const MigrationPolicy& policy,
                      const net::Topology& topology,
                      const net::CostModel& cost_model,
                      net::MessageLedger& ledger, HostResolver host_of);

  /// Attempts to place `task` (which did not fit at `origin`) on one of
  /// `protocol`'s candidates. Negotiation and transfer messages are
  /// charged to the ledger; the protocol gets per-attempt feedback.
  MigrationOutcome try_migrate(const node::Task& task, NodeId origin,
                               proto::DiscoveryProtocol& protocol);

  /// Attaches a borrowed tracer for migration lifecycle records;
  /// `engine` supplies the timestamps. nullptr detaches.
  void set_tracer(obs::Tracer* tracer, const sim::Engine* engine) {
    tracer_ = tracer;
    engine_ = engine;
  }

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t migrations() const { return migrations_; }
  /// Rejections because the protocol offered no candidate at all.
  std::uint64_t no_candidate() const { return no_candidate_; }

 private:
  bool tracing() const {
    return tracer_ != nullptr && engine_ != nullptr && tracer_->active();
  }

  MigrationPolicy policy_;
  const net::Topology& topology_;
  const net::CostModel& cost_model_;
  net::MessageLedger& ledger_;
  HostResolver host_of_;
  obs::Tracer* tracer_ = nullptr;
  const sim::Engine* engine_ = nullptr;

  std::uint64_t attempts_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t no_candidate_ = 0;
};

}  // namespace realtor::admission
