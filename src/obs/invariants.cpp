#include "obs/invariants.hpp"

#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/format.hpp"

namespace realtor::obs {
namespace {

/// Expands the "%g" conversions of `fmt` with the leading arguments in
/// order. Every catalog detail uses only %g, and routing each conversion
/// through format_double keeps violation messages byte-identical across
/// process locales (a comma radix would garble the CI --check output).
std::string format_detail(const char* fmt, double a, double b = 0.0,
                          double c = 0.0, double d = 0.0) {
  const double args[4] = {a, b, c, d};
  std::size_t next = 0;
  std::string out;
  char buf[32];
  for (const char* p = fmt; *p != '\0'; ++p) {
    if (p[0] == '%' && p[1] == 'g' && next < 4) {
      const int n = format_double(buf, sizeof buf, "%g", args[next++]);
      if (n > 0) out.append(buf, static_cast<std::size_t>(n));
      ++p;
      continue;
    }
    out += *p;
  }
  return out;
}

class Checker {
 public:
  explicit Checker(const InvariantConfig& config) : config_(config) {}

  void feed(const SpanEvent& event) {
    switch (event.kind) {
      case EventKind::kHelpSent:
        on_help_sent(event);
        break;
      case EventKind::kHelpInterval:
        on_interval(event);
        break;
      case EventKind::kPledgeSent:
        on_pledge_sent(event);
        break;
      case EventKind::kPledgeReceived:
        on_pledge_received(event);
        break;
      case EventKind::kMigrationSuccess:
        on_migration(event);
        break;
      case EventKind::kCommunityJoin:
        joined_.insert({event.node, event.peer});
        break;
      case EventKind::kCommunityExpire:
        on_expire(event);
        break;
      default:
        break;
    }
  }

  std::vector<Violation> take() { return std::move(violations_); }

 private:
  void report(const char* invariant, const SpanEvent& event,
              std::string detail) {
    violations_.push_back(
        Violation{invariant, event.time, event.node, std::move(detail)});
  }

  double tracked_interval(NodeId node) const {
    const auto it = interval_.find(node);
    return it != interval_.end() ? it->second
                                 : config_.initial_help_interval;
  }

  void check_bounds(const SpanEvent& event, double interval) {
    if (interval < config_.help_interval_floor - config_.tolerance ||
        interval > config_.help_upper_limit + config_.tolerance) {
      report("help_interval_bounds", event,
             format_detail("interval %g outside [%g, %g]", interval,
                           config_.help_interval_floor,
                           config_.help_upper_limit));
    }
  }

  void on_help_sent(const SpanEvent& event) {
    if (event.interval >= 0.0) check_bounds(event, event.interval);
    if (event.episode > 0) {
      auto [it, inserted] = last_episode_.try_emplace(event.node, 0);
      if (!inserted && event.episode <= it->second) {
        report("episode_monotone", event,
               format_detail("help episode %g not above previous %g",
                             static_cast<double>(event.episode),
                             static_cast<double>(it->second)));
      }
      it->second = event.episode;
      opened_[event.node].insert(event.episode);
    }
  }

  void on_interval(const SpanEvent& event) {
    if (event.interval < 0.0) return;
    check_bounds(event, event.interval);
    const double prev = tracked_interval(event.node);
    const double grown = prev + prev * config_.alpha;
    const double expect_grow =
        grown < config_.help_upper_limit ? grown : config_.help_upper_limit;
    const double shrunk = prev - prev * config_.beta;
    const double expect_shrink =
        shrunk > config_.help_interval_floor ? shrunk
                                             : config_.help_interval_floor;
    const bool is_grow =
        std::fabs(event.interval - expect_grow) <= config_.tolerance;
    const bool is_shrink =
        std::fabs(event.interval - expect_shrink) <= config_.tolerance;
    if (!is_grow && !is_shrink) {
      report("help_interval_step", event,
             format_detail("interval %g from %g is neither the alpha step "
                           "%g nor the beta step %g",
                           event.interval, prev, expect_grow,
                           expect_shrink));
    }
    interval_[event.node] = event.interval;
  }

  void on_pledge_sent(const SpanEvent& event) {
    if (event.episode == 0) return;  // unsolicited status update: exempt
    if (event.availability < 0.0) return;
    const double min_avail = 1.0 - config_.pledge_threshold;
    if (event.availability < min_avail - config_.tolerance) {
      report("solicited_pledge_threshold", event,
             format_detail("solicited pledge with availability %g below %g "
                           "(sender was over the pledge threshold)",
                           event.availability, min_avail));
    }
  }

  void on_pledge_received(const SpanEvent& event) {
    if (event.peer != kInvalidNode) {
      pledgers_[event.node].insert(event.peer);
    }
    if (event.episode > 0) {
      const auto it = opened_.find(event.node);
      if (it == opened_.end() || it->second.count(event.episode) == 0) {
        report("episode_echo", event,
               format_detail("pledge echoes episode %g which node %g never "
                             "opened",
                             static_cast<double>(event.episode),
                             static_cast<double>(event.node)));
      }
    }
  }

  void on_migration(const SpanEvent& event) {
    if (event.episode == 0) return;  // push/gossip: no pledges by design
    if (event.peer == kInvalidNode) return;
    const auto it = pledgers_.find(event.node);
    if (it == pledgers_.end() || it->second.count(event.peer) == 0) {
      report("migration_has_pledge", event,
             format_detail("migration to node %g without a prior pledge "
                           "from it (episode %g)",
                           static_cast<double>(event.peer),
                           static_cast<double>(event.episode)));
    }
  }

  void on_expire(const SpanEvent& event) {
    const auto key = std::make_pair(event.node, event.peer);
    const auto it = joined_.find(key);
    if (it == joined_.end()) {
      report("community_expire_has_join", event,
             format_detail("membership in organizer %g expired without a "
                           "recorded join",
                           static_cast<double>(event.peer)));
      return;
    }
    joined_.erase(it);
  }

  InvariantConfig config_;
  std::vector<Violation> violations_;
  std::map<NodeId, double> interval_;
  std::map<NodeId, std::uint64_t> last_episode_;
  std::map<NodeId, std::set<std::uint64_t>> opened_;
  std::map<NodeId, std::set<NodeId>> pledgers_;
  std::set<std::pair<NodeId, NodeId>> joined_;
};

}  // namespace

std::vector<Violation> check_invariants(const std::vector<SpanEvent>& events,
                                        const InvariantConfig& config) {
  Checker checker(config);
  for (const SpanEvent& event : events) {
    checker.feed(event);
  }
  return checker.take();
}

std::vector<Violation> check_invariants(const std::vector<TraceEvent>& events,
                                        const InvariantConfig& config) {
  return check_invariants(normalize_events(events), config);
}

std::vector<Violation> check_invariants(const std::vector<ParsedEvent>& events,
                                        const InvariantConfig& config) {
  return check_invariants(normalize_events(events), config);
}

std::vector<Violation> check_invariants(const EventStore& store,
                                        const InvariantConfig& config) {
  return check_invariants(normalize_events(store), config);
}

}  // namespace realtor::obs
