#include "obs/event_store.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/parallel.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define REALTOR_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define REALTOR_HAS_MMAP 0
#endif

namespace realtor::obs {

// --- TextArena ----------------------------------------------------------

char* TextArena::alloc(std::size_t n) {
  if (cursor_ == nullptr ||
      static_cast<std::size_t>(chunk_end_ - cursor_) < n + 1) {
    const std::size_t chunk = n + 1 > kChunkSize ? n + 1 : kChunkSize;
    chunks_.push_back(std::make_unique<char[]>(chunk));
    cursor_ = chunks_.back().get();
    chunk_end_ = cursor_ + chunk;
  }
  char* out = cursor_;
  cursor_ += n + 1;
  bytes_used_ += n + 1;
  return out;
}

void TextArena::trim(char* base, std::size_t used) {
  base[used] = '\0';
  bytes_used_ -= static_cast<std::size_t>(cursor_ - (base + used + 1));
  cursor_ = base + used + 1;
}

std::string_view TextArena::store(std::string_view text) {
  char* dst = alloc(text.size());
  if (!text.empty()) std::memcpy(dst, text.data(), text.size());
  dst[text.size()] = '\0';
  return {dst, text.size()};
}

void TextArena::adopt(TextArena&& other) {
  for (auto& chunk : other.chunks_) chunks_.push_back(std::move(chunk));
  bytes_used_ += other.bytes_used_;
  other.chunks_.clear();
  other.cursor_ = nullptr;
  other.chunk_end_ = nullptr;
  other.bytes_used_ = 0;
  // cursor_/chunk_end_ keep pointing into our own current chunk: adopted
  // chunks are full (or trimmed) and are never bump-allocated from again.
}

// --- InternTable --------------------------------------------------------

void InternTable::rehash(std::size_t slot_count) {
  slots_.assign(slot_count, 0);
  const std::size_t mask = slot_count - 1;
  for (StrId id = 0; id < names_.size(); ++id) {
    std::size_t i = hash(names_[id]) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = id + 1;
  }
}

/// First sighting of a name (or an empty table): the inline hit path in
/// the header already probed and missed, so re-probe after making room
/// and insert. Misses are rare — a trace has a handful of distinct kind
/// and key names — so this stays out of line.
StrId InternTable::intern_miss(std::string_view text, TextArena& arena,
                               bool copy) {
  if (slots_.empty()) rehash(64);
  std::size_t mask = slots_.size() - 1;
  std::size_t i = hash(text) & mask;
  while (slots_[i] != 0) {
    const StrId id = slots_[i] - 1;
    if (names_[id] == text) return id;
    i = (i + 1) & mask;
  }
  const StrId id = static_cast<StrId>(names_.size());
  names_.push_back(copy ? arena.store(text) : text);
  EventKind kind = EventKind::kCount;
  parse_event_kind(names_.back(), kind);
  kinds_.push_back(kind);
  slots_[i] = id + 1;
  if ((names_.size() + 1) * 4 > slots_.size() * 3) {
    rehash(slots_.size() * 2);
  }
  return id;
}

StrId InternTable::find(std::string_view text) const {
  if (slots_.empty()) return kNoStrId;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hash(text) & mask;
  while (slots_[i] != 0) {
    const StrId id = slots_[i] - 1;
    if (names_[id] == text) return id;
    i = (i + 1) & mask;
  }
  return kNoStrId;
}

// --- MappedBuffer -------------------------------------------------------

MappedBuffer::~MappedBuffer() { reset(); }

MappedBuffer::MappedBuffer(MappedBuffer&& other) noexcept
    : owned_(std::move(other.owned_)),
      map_(other.map_),
      map_size_(other.map_size_) {
  other.map_ = nullptr;
  other.map_size_ = 0;
}

MappedBuffer& MappedBuffer::operator=(MappedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    owned_ = std::move(other.owned_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    other.map_ = nullptr;
    other.map_size_ = 0;
  }
  return *this;
}

void MappedBuffer::reset() {
#if REALTOR_HAS_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
  map_ = nullptr;
  map_size_ = 0;
  owned_.clear();
  owned_.shrink_to_fit();
}

const char* MappedBuffer::data() const {
  return map_ != nullptr ? map_ : owned_.data();
}

std::size_t MappedBuffer::size() const {
  return map_ != nullptr ? map_size_ : owned_.size();
}

void MappedBuffer::adopt(std::string text) {
  reset();
  owned_ = std::move(text);
}

namespace {

bool read_stream_fallback(const std::string& path, std::string& out,
                          std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (end > 0) {
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(end));
    in.read(out.data(), end);
    out.resize(static_cast<std::size_t>(in.gcount()));
  } else {
    // Unsized stream: read in chunks until EOF.
    char chunk[1 << 16];
    out.clear();
    while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
      out.append(chunk, static_cast<std::size_t>(in.gcount()));
    }
  }
  return true;
}

}  // namespace

bool MappedBuffer::open(const std::string& path, std::string* error) {
  reset();
#if REALTOR_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size == 0) {
    ::close(fd);
    // Not a plain non-empty file: take the stream path, which mirrors the
    // legacy ifstream semantics for empty files and odd path types.
    return read_stream_fallback(path, owned_, error);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* mem = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    return read_stream_fallback(path, owned_, error);
  }
#ifdef MADV_SEQUENTIAL
  ::madvise(mem, len, MADV_SEQUENTIAL);
#endif
  map_ = static_cast<char*>(mem);
  map_size_ = len;
  return true;
#else
  return read_stream_fallback(path, owned_, error);
#endif
}

// --- EventView ----------------------------------------------------------

const StoredField* EventView::find(StrId key) const {
  if (key == kNoStrId) return nullptr;
  for (const StoredField* f = fields_begin(); f != fields_end(); ++f) {
    if (f->key == key) return f;
  }
  return nullptr;
}

const StoredField* EventView::find(std::string_view key) const {
  return find(store_->interner_.find(key));
}

double EventView::number(StrId key, double fallback) const {
  const StoredField* field = find(key);
  if (field == nullptr || field->type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return field->number;
}

double EventView::number(std::string_view key, double fallback) const {
  return number(store_->interner_.find(key), fallback);
}

// --- EventStore builder -------------------------------------------------

void EventStore::begin_event(double time, NodeId node, StrId kind) {
  events_.push_back(
      {time, node, kind, static_cast<std::uint32_t>(fields_.size()), 0});
}

void EventStore::add_number(StrId key, double value) {
  fields_.push_back({key, JsonValue::Type::kNumber, false, value, {}});
  ++events_.back().field_count;
}

void EventStore::add_string(StrId key, std::string_view text) {
  fields_.push_back({key, JsonValue::Type::kString, false, 0.0, text});
  ++events_.back().field_count;
}

void EventStore::add_bool(StrId key, bool value) {
  fields_.push_back({key, JsonValue::Type::kBool, value, 0.0, {}});
  ++events_.back().field_count;
}

void EventStore::add_null(StrId key) {
  fields_.push_back({key, JsonValue::Type::kNull, false, 0.0, {}});
  ++events_.back().field_count;
}

void EventStore::stable_sort_by_time() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const EventRec& a, const EventRec& b) {
                     return a.time < b.time;
                   });
}

// --- loader -------------------------------------------------------------

/// Loader backdoor into EventStore internals; local to the obs library.
struct StoreIngest {
  static std::vector<EventRec>& events(EventStore& s) { return s.events_; }
  static std::vector<StoredField>& fields(EventStore& s) {
    return s.fields_;
  }
  static InternTable& interner(EventStore& s) { return s.interner_; }
  static TextArena& arena(EventStore& s) { return s.arena_; }
  static MappedBuffer& backing(EventStore& s) { return s.backing_; }
};

namespace {

/// One parse destination: either the global store (serial path) or a
/// per-shard scratch store (parallel path).
struct Sink {
  std::vector<EventRec>& events;
  std::vector<StoredField>& fields;
  InternTable& interner;
  TextArena& arena;
};

// The cursor and error plumbing mirror trace_reader.cpp exactly: the
// new parser must reject the same lines with the same messages at the
// same byte offsets, which the event-store tests pin.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

bool fail(const Cursor& cursor, std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + " at offset " + std::to_string(cursor.pos);
  }
  return false;
}

/// Escape decode, deliberately out of line: escaped strings are rare
/// (and bounded by the line), and keeping this loop out of
/// parse_string_sv lets the escape-free scan inline into the per-line
/// parse loop. `cursor.pos` must sit on the first content byte. The
/// decode loop is the legacy parse_string loop, so error strings and
/// offsets are identical.
bool parse_string_escaped(Cursor& cursor, TextArena& arena,
                          std::string_view& out, std::string* error) {
  const std::size_t content = cursor.pos;
  char* base = arena.alloc(cursor.text.size() - content);
  std::size_t used = 0;
  const auto bail = [&](const char* what) {
    arena.trim(base, 0);
    return fail(cursor, error, what);
  };
  while (!cursor.done()) {
    const char c = cursor.text[cursor.pos++];
    if (c == '"') {
      arena.trim(base, used);
      out = {base, used};
      return true;
    }
    if (c != '\\') {
      base[used++] = c;
      continue;
    }
    if (cursor.done()) break;
    const char esc = cursor.text[cursor.pos++];
    switch (esc) {
      case '"':
        base[used++] = '"';
        break;
      case '\\':
        base[used++] = '\\';
        break;
      case '/':
        base[used++] = '/';
        break;
      case 'n':
        base[used++] = '\n';
        break;
      case 'r':
        base[used++] = '\r';
        break;
      case 't':
        base[used++] = '\t';
        break;
      case 'b':
        base[used++] = '\b';
        break;
      case 'f':
        base[used++] = '\f';
        break;
      case 'u': {
        if (cursor.pos + 4 > cursor.text.size()) {
          return bail("truncated \\u escape");
        }
        unsigned code = 0;
        const char* first = cursor.text.data() + cursor.pos;
        const auto res = std::from_chars(first, first + 4, code, 16);
        if (res.ptr != first + 4) {
          return bail("bad \\u escape");
        }
        cursor.pos += 4;
        if (code < 0x80) {
          base[used++] = static_cast<char>(code);
        } else {  // non-ASCII escapes: keep a readable placeholder
          base[used++] = '?';
        }
        break;
      }
      default:
        return bail("unknown escape");
    }
  }
  return bail("unterminated string");
}

/// Parses a JSON string. Escape-free strings come back as views into the
/// line (zero-copy); strings with escapes decode into the arena via
/// parse_string_escaped. Small on purpose so it inlines into the
/// per-line loop: keys and kind names dominate the call mix.
inline bool parse_string_sv(Cursor& cursor, TextArena& arena,
                            std::string_view& out, std::string* error) {
  if (!cursor.consume('"')) return fail(cursor, error, "expected '\"'");
  const std::size_t content = cursor.pos;
  // Hybrid scan for the close quote: a short manual loop covers keys and
  // kind names (almost always < 16 bytes, where memchr's call overhead
  // loses), then memchr takes over for long payload strings. A backslash
  // anywhere before the quote demotes the line to the decode path.
  const char* base = cursor.text.data();
  const std::size_t size = cursor.text.size();
  std::size_t pos = content;
  const std::size_t short_end = std::min(size, content + 16);
  bool escaped = false;
  while (pos < short_end) {
    const char c = base[pos];
    if (c == '"') break;
    if (c == '\\') {
      escaped = true;
      break;
    }
    ++pos;
  }
  if (!escaped && pos == short_end && pos < size) {
    const auto* quote =
        static_cast<const char*>(std::memchr(base + pos, '"', size - pos));
    const std::size_t stop =
        quote != nullptr ? static_cast<std::size_t>(quote - base) : size;
    escaped = std::memchr(base + pos, '\\', stop - pos) != nullptr;
    pos = stop;
  }
  if (!escaped) {
    if (pos < size) {  // base[pos] == '"'
      out = cursor.text.substr(content, pos - content);
      cursor.pos = pos + 1;
      return true;
    }
    // No closing quote and no escape: the legacy loop consumes to the
    // end and reports an unterminated string there.
    cursor.pos = size;
    return fail(cursor, error, "unterminated string");
  }
  return parse_string_escaped(cursor, arena, out, error);
}

struct ParsedValue {
  JsonValue::Type type = JsonValue::Type::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string_view text;
};

constexpr double kPow10[] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,
                             1e7,  1e8,  1e9,  1e10, 1e11, 1e12, 1e13,
                             1e14, 1e15, 1e16, 1e17, 1e18, 1e19};

/// Clinger's exact case, shared by parse_value_sv and the header fast
/// path in parse_line_sv: a plain decimal with few enough digits that
/// double(mantissa) and the power of ten are both exact, so one IEEE
/// divide yields the correctly rounded value — by construction
/// bit-identical to what from_chars returns. Returns false with `pos`
/// untouched for anything outside that range (exponents, >19 digits,
/// mantissa >= 2^53, a bare or trailing '.', no digits at all); the
/// caller falls back to from_chars, which also keeps the error behavior
/// identical.
inline bool scan_exact_decimal(const char* data, std::size_t size,
                               std::size_t& pos, double& out) {
  const char* const first = data + pos;
  const char* const last = data + size;
  const char* p = first;
  const bool negative = p < last && *p == '-';
  if (negative) ++p;
  std::uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  while (p < last && *p >= '0' && *p <= '9') {
    mantissa = mantissa * 10 + static_cast<std::uint64_t>(*p - '0');
    ++digits;
    ++p;
  }
  if (p < last && *p == '.' && p + 1 < last && p[1] >= '0' && p[1] <= '9') {
    ++p;
    while (p < last && *p >= '0' && *p <= '9') {
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(*p - '0');
      ++digits;
      ++frac_digits;
      ++p;
    }
  }
  const bool ambiguous_tail =
      p < last && (*p == '.' || *p == 'e' || *p == 'E');
  if (digits == 0 || digits > 19 || ambiguous_tail ||
      mantissa >= (1ULL << 53)) {
    return false;
  }
  double value = static_cast<double>(mantissa);
  if (frac_digits > 0) value /= kPow10[frac_digits];
  out = negative ? -value : value;
  pos += static_cast<std::size_t>(p - first);
  return true;
}

bool parse_value_sv(Cursor& cursor, TextArena& arena, ParsedValue& out,
                    std::string* error) {
  cursor.skip_ws();
  if (cursor.done()) return fail(cursor, error, "expected value");
  const char c = cursor.peek();
  if (c == '"') {
    out.type = JsonValue::Type::kString;
    return parse_string_sv(cursor, arena, out.text, error);
  }
  // Values starting with a digit or '-' can never be true/false/null, so
  // numbers (by far the most common case) skip the literal compares.
  if (c != '-' && (c < '0' || c > '9')) {
    if (cursor.text.substr(cursor.pos, 4) == "true") {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      cursor.pos += 4;
      return true;
    }
    if (cursor.text.substr(cursor.pos, 5) == "false") {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      cursor.pos += 5;
      return true;
    }
    if (cursor.text.substr(cursor.pos, 4) == "null") {
      out.type = JsonValue::Type::kNull;
      cursor.pos += 4;
      return true;
    }
  }
  // Exact fast path first; from_chars handles the long tail.
  if (scan_exact_decimal(cursor.text.data(), cursor.text.size(), cursor.pos,
                         out.number)) {
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  const char* first = cursor.text.data() + cursor.pos;
  const char* last = cursor.text.data() + cursor.text.size();
  double number = 0.0;
  const auto res = std::from_chars(first, last, number);
  if (res.ec != std::errc{} || res.ptr == first) {
    return fail(cursor, error, "expected number");
  }
  out.type = JsonValue::Type::kNumber;
  out.number = number;
  cursor.pos += static_cast<std::size_t>(res.ptr - first);
  return true;
}

/// One line into the sink. On failure any partially appended fields are
/// rolled back (arena scraps from escaped strings are left behind —
/// malformed lines are rare and bounded by the line length).
bool parse_line_sv(std::string_view line, Sink& sink, std::string* error) {
  Cursor cursor{line};
  const std::size_t field_begin = sink.fields.size();
  double time = 0.0;
  NodeId node = kInvalidNode;
  std::string_view kind_text;
  bool saw_time = false;
  bool saw_kind = false;
  const auto bail = [&] {
    sink.fields.resize(field_begin);
    return false;
  };
  // Header fast path: the trace sink always opens a record with
  // {"t":<num>,"node":<num>,"kind":"<name>" in that order and without
  // whitespace, so three literal compares replace the generic key
  // scan/dispatch for the three hottest fields. Any deviation —
  // whitespace, reordered keys, numbers outside the exact-decimal
  // range, an escaped or unterminated kind — restarts the generic
  // parser from the first byte (nothing has been committed and no state
  // mutated), so rejected lines keep their exact legacy error strings
  // and offsets.
  bool header_done = false;
  {
    const char* d = line.data();
    const std::size_t n = line.size();
    std::size_t p = 5;
    double t = 0.0;
    double node_num = 0.0;
    if (n > 5 && std::memcmp(d, "{\"t\":", 5) == 0 &&
        scan_exact_decimal(d, n, p, t) && n - p > 8 &&
        std::memcmp(d + p, ",\"node\":", 8) == 0 &&
        (p += 8, scan_exact_decimal(d, n, p, node_num)) && n - p > 9 &&
        std::memcmp(d + p, ",\"kind\":\"", 9) == 0) {
      p += 9;
      const std::size_t kind_start = p;
      while (p < n && d[p] != '"' && d[p] != '\\') ++p;
      if (p < n && d[p] == '"') {
        time = t;
        node = static_cast<NodeId>(node_num);
        kind_text = {d + kind_start, p - kind_start};
        saw_time = true;
        saw_kind = true;
        cursor.pos = p + 1;
        header_done = true;
      }
    }
  }

  bool members;
  if (header_done) {
    members = cursor.consume(',');
    if (!members && !cursor.consume('}')) {
      fail(cursor, error, "expected ',' or '}'");
      return bail();
    }
  } else {
    if (!cursor.consume('{')) {
      fail(cursor, error, "expected '{'");
      return bail();
    }
    members = !cursor.consume('}');
  }
  if (members) {
    while (true) {
      std::string_view key;
      if (!parse_string_sv(cursor, sink.arena, key, error)) return bail();
      if (!cursor.consume(':')) {
        fail(cursor, error, "expected ':'");
        return bail();
      }
      ParsedValue value;
      if (!parse_value_sv(cursor, sink.arena, value, error)) return bail();
      if (key == "t" && value.type == JsonValue::Type::kNumber) {
        time = value.number;
        saw_time = true;
      } else if (key == "node" && value.type == JsonValue::Type::kNumber) {
        node = static_cast<NodeId>(value.number);
      } else if (key == "kind" && value.type == JsonValue::Type::kString) {
        kind_text = value.text;
        saw_kind = true;
      } else {
        const StrId key_id = sink.interner.intern(key, sink.arena);
        sink.fields.push_back(
            {key_id, value.type, value.boolean, value.number, value.text});
      }
      if (cursor.consume(',')) continue;
      if (cursor.consume('}')) break;
      fail(cursor, error, "expected ',' or '}'");
      return bail();
    }
  }
  cursor.skip_ws();
  if (!cursor.done()) {
    fail(cursor, error, "trailing garbage");
    return bail();
  }
  if (!saw_time) {
    fail(cursor, error, "record has no \"t\"");
    return bail();
  }
  if (!saw_kind) {
    fail(cursor, error, "record has no \"kind\"");
    return bail();
  }
  const StrId kind_id = sink.interner.intern(kind_text, sink.arena);
  sink.events.push_back({time, node, kind_id,
                         static_cast<std::uint32_t>(field_begin),
                         static_cast<std::uint32_t>(sink.fields.size() -
                                                    field_begin)});
  return true;
}

/// Per-shard parse state and counters.
struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<EventRec> events;
  std::vector<StoredField> fields;
  InternTable interner;
  TextArena arena;
  std::size_t total_lines = 0;  // all lines, blank included
  std::size_t nonempty = 0;
  std::size_t malformed = 0;
  std::size_t first_malformed_rel = 0;  // 1-based inside the shard
  std::string first_error;
};

/// Parses [begin, end) of the buffer line by line into `sink`, updating
/// the shard's counters. The accounting is byte-identical to the legacy
/// tolerant loader: blank lines advance the line number but are skipped,
/// the first malformed line keeps its error string.
void parse_range(const char* data, Shard& shard, Sink& sink) {
  std::size_t pos = shard.begin;
  const std::size_t end = shard.end;
  // Only the first malformed line's error is kept, so one string outside
  // the loop suffices; parse_line_sv writes it solely on failure.
  std::string line_error;
  while (pos < end) {
    const auto* nl = static_cast<const char*>(
        std::memchr(data + pos, '\n', end - pos));
    const std::size_t line_end =
        nl != nullptr ? static_cast<std::size_t>(nl - data) : end;
    ++shard.total_lines;
    if (line_end > pos) {
      ++shard.nonempty;
      std::string* error_out =
          shard.malformed == 0 ? &line_error : nullptr;
      if (!parse_line_sv({data + pos, line_end - pos}, sink, error_out)) {
        ++shard.malformed;
        if (shard.first_malformed_rel == 0) {
          shard.first_malformed_rel = shard.total_lines;
          shard.first_error = std::move(line_error);
        }
      }
    }
    pos = line_end + 1;
  }
}

/// Splits [0, size) on newline boundaries into at most `want` shards.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    const char* data, std::size_t size, unsigned want) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const std::size_t target = size / want;
  std::size_t start = 0;
  for (unsigned s = 0; s < want; ++s) {
    std::size_t stop = s + 1 == want ? size : (s + 1) * target;
    if (stop < start) stop = start;
    if (s + 1 != want && stop < size) {
      const auto* nl = static_cast<const char*>(
          std::memchr(data + stop, '\n', size - stop));
      stop = nl != nullptr ? static_cast<std::size_t>(nl - data) + 1 : size;
    }
    ranges.emplace_back(start, stop);
    start = stop;
  }
  return ranges;
}

/// Minimum bytes per shard: below this the spawn cost dominates.
constexpr std::size_t kMinShardBytes = 64 * 1024;

bool load_from_backing(EventStore& out, IngestStats& stats,
                       unsigned jobs) {
  const char* data = StoreIngest::backing(out).data();
  const std::size_t size = StoreIngest::backing(out).size();
  stats.bytes = size;
  stats.mapped = StoreIngest::backing(out).mapped();

  const unsigned workers = resolve_jobs(jobs);
  const std::size_t by_bytes = size / kMinShardBytes;
  unsigned shard_count =
      static_cast<unsigned>(std::min<std::size_t>(workers, by_bytes));
  if (shard_count < 1) shard_count = 1;
  stats.shards = shard_count;

  // Amortize vector growth up front: sink-written traces run ~80 bytes
  // per record with ~2.5 payload fields each, so sizing from the byte
  // count removes nearly every reallocation from the parse hot loop.
  const auto reserve_for = [](Sink& sink, std::size_t bytes) {
    sink.events.reserve(sink.events.size() + bytes / 80 + 16);
    sink.fields.reserve(sink.fields.size() + bytes / 40 + 16);
  };

  if (shard_count == 1) {
    Sink sink{StoreIngest::events(out), StoreIngest::fields(out),
              StoreIngest::interner(out), StoreIngest::arena(out)};
    reserve_for(sink, size);
    Shard shard;
    shard.begin = 0;
    shard.end = size;
    parse_range(data, shard, sink);
    stats.lines = shard.nonempty;
    stats.events = sink.events.size();
    stats.malformed = shard.malformed;
    stats.first_malformed_line = shard.first_malformed_rel;
    stats.first_error = std::move(shard.first_error);
    return true;
  }

  const auto ranges = shard_ranges(data, size, shard_count);
  std::vector<Shard> shards(ranges.size());
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    shards[s].begin = ranges[s].first;
    shards[s].end = ranges[s].second;
  }
  parallel_for(shards.size(), workers, [&](std::size_t s) {
    Shard& shard = shards[s];
    Sink sink{shard.events, shard.fields, shard.interner, shard.arena};
    reserve_for(sink, shard.end - shard.begin);
    parse_range(data, shard, sink);
  });

  // Deterministic merge: walking the shards in order and interning each
  // shard's names first-appearance-first reproduces exactly the id
  // assignment a serial parse would have made, so serial and parallel
  // loads build identical stores.
  InternTable& interner = StoreIngest::interner(out);
  TextArena& arena = StoreIngest::arena(out);
  std::vector<std::vector<StrId>> remap(shards.size());
  std::size_t total_events = 0;
  std::size_t total_fields = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    remap[s].resize(shard.interner.size());
    for (StrId id = 0; id < shard.interner.size(); ++id) {
      // copy=false: the name bytes live in the shard arena, which is
      // adopted below — no recopy needed.
      remap[s][id] = interner.intern(shard.interner.name(id), arena,
                                     /*copy=*/false);
    }
    total_events += shard.events.size();
    total_fields += shard.fields.size();
  }

  std::vector<std::size_t> event_off(shards.size());
  std::vector<std::size_t> field_off(shards.size());
  std::size_t event_cursor = 0;
  std::size_t field_cursor = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    event_off[s] = event_cursor;
    field_off[s] = field_cursor;
    event_cursor += shards[s].events.size();
    field_cursor += shards[s].fields.size();
  }

  std::vector<EventRec>& events = StoreIngest::events(out);
  std::vector<StoredField>& fields = StoreIngest::fields(out);
  events.resize(total_events);
  fields.resize(total_fields);
  parallel_for(shards.size(), workers, [&](std::size_t s) {
    const Shard& shard = shards[s];
    const std::vector<StrId>& ids = remap[s];
    for (std::size_t i = 0; i < shard.events.size(); ++i) {
      EventRec rec = shard.events[i];
      rec.kind = ids[rec.kind];
      rec.field_begin += static_cast<std::uint32_t>(field_off[s]);
      events[event_off[s] + i] = rec;
    }
    for (std::size_t i = 0; i < shard.fields.size(); ++i) {
      StoredField field = shard.fields[i];
      field.key = ids[field.key];
      fields[field_off[s] + i] = field;
    }
  });

  std::size_t lines_before = 0;
  for (Shard& shard : shards) {
    stats.lines += shard.nonempty;
    stats.events += shard.events.size();
    stats.malformed += shard.malformed;
    if (stats.first_malformed_line == 0 && shard.first_malformed_rel != 0) {
      stats.first_malformed_line = lines_before + shard.first_malformed_rel;
      stats.first_error = std::move(shard.first_error);
    }
    lines_before += shard.total_lines;
    arena.adopt(std::move(shard.arena));
  }
  return true;
}

}  // namespace

bool load_trace_store(const std::string& path, EventStore& out,
                      IngestStats& stats, std::string* error,
                      unsigned jobs) {
  out = EventStore{};
  stats = IngestStats{};
  if (!StoreIngest::backing(out).open(path, error)) return false;
  return load_from_backing(out, stats, jobs);
}

bool load_trace_buffer(std::string text, EventStore& out, IngestStats& stats,
                       std::string* error, unsigned jobs) {
  (void)error;
  out = EventStore{};
  stats = IngestStats{};
  StoreIngest::backing(out).adopt(std::move(text));
  return load_from_backing(out, stats, jobs);
}

EventStore store_from_events(const std::vector<ParsedEvent>& events) {
  EventStore store;
  std::size_t total_fields = 0;
  for (const ParsedEvent& event : events) total_fields += event.fields.size();
  store.reserve(events.size(), total_fields);
  for (const ParsedEvent& event : events) {
    store.begin_event(event.time, event.node, store.intern(event.kind));
    for (const auto& [key, value] : event.fields) {
      const StrId key_id = store.intern(key);
      switch (value.type) {
        case JsonValue::Type::kNumber:
          store.add_number(key_id, value.number);
          break;
        case JsonValue::Type::kString:
          store.add_string(key_id, store.store_text(value.text));
          break;
        case JsonValue::Type::kBool:
          store.add_bool(key_id, value.boolean);
          break;
        case JsonValue::Type::kNull:
          store.add_null(key_id);
          break;
      }
    }
  }
  return store;
}

}  // namespace realtor::obs
