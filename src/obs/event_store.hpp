// Zero-copy, data-oriented trace event store — the fast ingest path
// behind realtor_trace and the bench gates.
//
// The original reader (obs/trace_reader.hpp) models each record as a
// ParsedEvent holding a std::string kind plus a vector of
// (std::string key, JsonValue) pairs: at 10k-node scale that is several
// heap allocations per record and the ingest of a multi-hundred-MB trace
// is dominated by malloc and memcpy, not parsing. The EventStore keeps
// the same record model but flattens it:
//
//   - the input file is mmap'd (read-stream fallback) and string values
//     without escapes are string_views straight into the mapping;
//   - kinds, payload keys and escaped/decoded strings live once in a
//     chunked arena with stable addresses; kinds and keys are interned to
//     dense uint32 ids (first-appearance order), so a record is a 24-byte
//     EventRec plus a contiguous run of 32-byte StoredFields — no
//     per-record allocations at all;
//   - parsing shards the mapping on newline boundaries and runs the
//     shards through common/parallel.hpp::parallel_for, then merges them
//     in shard order with an id remap that preserves first-appearance
//     interning, so serial and parallel loads produce identical stores;
//   - flight-recorder dumps decode directly into the store
//     (obs/flight_reader.hpp), skipping the JSON text representation
//     entirely.
//
// The parser replicates the trace_reader grammar bug-for-bug (same
// accepted lines, same error strings and byte offsets, same malformed
// accounting), which the event-store tests pin against the legacy reader.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {

/// Dense id of an interned string (kind names, payload keys).
using StrId = std::uint32_t;
inline constexpr StrId kNoStrId = 0xFFFFFFFFu;

/// Chunked bump allocator with stable addresses: growing never moves
/// previously stored bytes, so string_views into it stay valid for the
/// arena's lifetime — including after the arena is adopted into another
/// one (shard merge).
class TextArena {
 public:
  TextArena() = default;
  TextArena(TextArena&&) = default;
  TextArena& operator=(TextArena&&) = default;
  TextArena(const TextArena&) = delete;
  TextArena& operator=(const TextArena&) = delete;

  /// Copies `text` in and NUL-terminates it (printf-friendly); the
  /// returned view excludes the NUL.
  std::string_view store(std::string_view text);

  /// Reserves `n` writable bytes (plus a NUL slot). Pair with trim() when
  /// the final length is smaller — e.g. decoding an escaped string whose
  /// exact length is unknown up front.
  char* alloc(std::size_t n);
  /// Gives back the tail of the last alloc(): keeps [base, base+used),
  /// NUL-terminates, and rewinds the bump pointer.
  void trim(char* base, std::size_t used);

  /// Moves every chunk of `other` into this arena (addresses unchanged).
  void adopt(TextArena&& other);

  std::size_t bytes_used() const { return bytes_used_; }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cursor_ = nullptr;
  char* chunk_end_ = nullptr;
  std::size_t bytes_used_ = 0;
};

/// string -> dense StrId interner (open-addressed FNV-1a). Ids are handed
/// out in first-appearance order; each interned name caches its
/// parse_event_kind() result so consumers never re-parse kind strings.
class InternTable {
 public:
  /// Returns the id of `text`, interning on first sight. When `copy` is
  /// true the bytes are stored (NUL-terminated) in `arena`; when false
  /// `text` must already point at storage that outlives the table (an
  /// adopted shard arena). Inline because the ingest hot loop calls this
  /// three times per line (kind plus ~two payload keys) and almost every
  /// call is a hit; first sightings take the out-of-line miss path.
  StrId intern(std::string_view text, TextArena& arena, bool copy = true) {
    if (!slots_.empty()) {
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = hash(text) & mask;
      while (slots_[i] != 0) {
        const StrId id = slots_[i] - 1;
        if (names_[id] == text) return id;
        i = (i + 1) & mask;
      }
    }
    return intern_miss(text, arena, copy);
  }
  /// Id of `text` if interned, else kNoStrId. Never allocates.
  StrId find(std::string_view text) const;

  std::string_view name(StrId id) const { return names_[id]; }
  /// Interned names are NUL-terminated whenever they were stored with
  /// copy=true (every name the loaders produce).
  const char* name_cstr(StrId id) const { return names_[id].data(); }
  EventKind kind(StrId id) const { return kinds_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  StrId intern_miss(std::string_view text, TextArena& arena, bool copy);
  void rehash(std::size_t slot_count);

  /// Word-at-a-time FNV variant. Ids never depend on hash values (only
  /// probe placement does), so the mixing is free to change. The length
  /// seeds the state, so zero-padded tails of different lengths cannot
  /// collide trivially.
  static std::uint64_t hash(std::string_view text) {
    std::uint64_t h =
        1469598103934665603ull ^ (text.size() * 1099511628211ull);
    const char* p = text.data();
    std::size_t n = text.size();
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      h = (h ^ word) * 1099511628211ull;
      h ^= h >> 29;
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      std::uint64_t word = 0;
      std::memcpy(&word, p, n);
      h = (h ^ word) * 1099511628211ull;
      h ^= h >> 29;
    }
    return h;
  }

  std::vector<std::string_view> names_;
  std::vector<EventKind> kinds_;
  std::vector<std::uint32_t> slots_;  // id + 1; 0 = empty
};

/// One payload entry. `text` points into the arena or the mapped file;
/// `number` is 0.0 for non-number types (the JsonValue contract that
/// span's apply_field relies on).
struct StoredField {
  StrId key = 0;
  JsonValue::Type type = JsonValue::Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string_view text;
};

/// One record header: fields live at [field_begin, field_begin +
/// field_count) in the store's field array.
struct EventRec {
  double time = 0.0;
  NodeId node = kInvalidNode;
  StrId kind = 0;
  std::uint32_t field_begin = 0;
  std::uint32_t field_count = 0;
};

class EventStore;

/// Accessor over one record — the compatibility view consumers port to.
/// Mirrors ParsedEvent::find()/number() semantics exactly.
class EventView {
 public:
  EventView(const EventStore& store, const EventRec& rec)
      : store_(&store), rec_(&rec) {}

  double time() const { return rec_->time; }
  NodeId node() const { return rec_->node; }
  StrId kind_id() const { return rec_->kind; }
  std::string_view kind() const;
  const char* kind_cstr() const;
  EventKind kind_enum() const;

  std::size_t field_count() const { return rec_->field_count; }
  const StoredField* fields_begin() const;
  const StoredField* fields_end() const;

  /// First field whose key matches; nullptr when absent.
  const StoredField* find(std::string_view key) const;
  const StoredField* find(StrId key) const;
  /// Numeric field access; `fallback` when missing or non-numeric.
  double number(std::string_view key, double fallback = 0.0) const;
  double number(StrId key, double fallback = 0.0) const;

 private:
  const EventStore* store_;
  const EventRec* rec_;
};

/// Memory-mapped (or read) file contents backing zero-copy string_views.
class MappedBuffer {
 public:
  MappedBuffer() = default;
  ~MappedBuffer();
  MappedBuffer(MappedBuffer&& other) noexcept;
  MappedBuffer& operator=(MappedBuffer&& other) noexcept;
  MappedBuffer(const MappedBuffer&) = delete;
  MappedBuffer& operator=(const MappedBuffer&) = delete;

  /// Maps `path` read-only; falls back to reading the whole file when
  /// mmap is unavailable. On failure stores "cannot open <path>" (the
  /// legacy reader's wording) in `error`.
  bool open(const std::string& path, std::string* error);
  /// Takes ownership of in-memory bytes (tests, generated traces).
  void adopt(std::string text);

  const char* data() const;
  std::size_t size() const;
  bool mapped() const { return map_ != nullptr; }

 private:
  void reset();

  std::string owned_;
  char* map_ = nullptr;
  std::size_t map_size_ = 0;
};

/// What ingest saw. The lines/events/malformed/first_* fields carry the
/// exact TraceLoadStats semantics (non-empty lines; first malformed line
/// 1-based over all lines; same error strings), extended with throughput
/// inputs for `realtor_trace --stats`.
struct IngestStats {
  std::uint64_t bytes = 0;  // input size
  std::size_t lines = 0;    // non-empty lines seen
  std::size_t events = 0;
  std::size_t malformed = 0;
  std::size_t first_malformed_line = 0;  // 1-based; 0 = none
  std::string first_error;
  bool mapped = false;   // mmap path (vs read fallback / in-memory)
  unsigned shards = 1;   // parallel parse shards actually used

  TraceLoadStats to_trace_stats() const {
    TraceLoadStats stats;
    stats.lines = lines;
    stats.events = events;
    stats.malformed = malformed;
    stats.first_malformed_line = first_malformed_line;
    stats.first_error = first_error;
    return stats;
  }
};

/// The flat store: one EventRec array, one StoredField array, one intern
/// table, one arena, and (for file loads) the mapped input they point
/// into. Move-only; views and ids stay valid for the store's lifetime.
class EventStore {
 public:
  EventStore() = default;
  EventStore(EventStore&&) = default;
  EventStore& operator=(EventStore&&) = default;
  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  EventView operator[](std::size_t i) const {
    return EventView(*this, events_[i]);
  }
  const std::vector<EventRec>& records() const { return events_; }
  const std::vector<StoredField>& fields() const { return fields_; }

  /// Interner access: id of `text` when interned, else kNoStrId.
  StrId find_id(std::string_view text) const { return interner_.find(text); }
  std::string_view name(StrId id) const { return interner_.name(id); }
  const char* name_cstr(StrId id) const { return interner_.name_cstr(id); }
  EventKind kind_of(StrId id) const { return interner_.kind(id); }

  // --- builder API (flight decode, ParsedEvent conversion, tests) -------
  StrId intern(std::string_view text) {
    return interner_.intern(text, arena_);
  }
  /// Copies `text` into the arena (NUL-terminated) and returns the stable
  /// view — for string values whose backing would not outlive the store.
  std::string_view store_text(std::string_view text) {
    return arena_.store(text);
  }
  void reserve(std::size_t events, std::size_t fields) {
    events_.reserve(events);
    fields_.reserve(fields);
  }
  /// Starts a record; add_* calls attach fields until the next
  /// begin_event. Records are stored in call order.
  void begin_event(double time, NodeId node, StrId kind);
  void begin_event(double time, NodeId node, std::string_view kind) {
    begin_event(time, node, intern(kind));
  }
  void add_number(StrId key, double value);
  /// `text` must outlive the store: arena/store_text result, mapped
  /// buffer contents, or static storage.
  void add_string(StrId key, std::string_view text);
  void add_bool(StrId key, bool value);
  void add_null(StrId key);
  /// Stable-sorts records by time (flight decode: rings merge by time).
  void stable_sort_by_time();

 private:
  friend class EventView;
  friend struct StoreIngest;  // the loaders' backdoor (event_store.cpp,
                              // flight_reader.cpp)

  std::vector<EventRec> events_;
  std::vector<StoredField> fields_;
  InternTable interner_;
  TextArena arena_;
  MappedBuffer backing_;
};

inline std::string_view EventView::kind() const {
  return store_->interner_.name(rec_->kind);
}
inline const char* EventView::kind_cstr() const {
  return store_->interner_.name_cstr(rec_->kind);
}
inline EventKind EventView::kind_enum() const {
  return store_->interner_.kind(rec_->kind);
}
inline const StoredField* EventView::fields_begin() const {
  return store_->fields_.data() + rec_->field_begin;
}
inline const StoredField* EventView::fields_end() const {
  return fields_begin() + rec_->field_count;
}

/// Loads a JSONL trace into `out` with tolerant (count-and-skip)
/// malformed-line semantics, parsing with up to `jobs` threads
/// (0 = resolve_jobs). Returns false only when the path cannot be read.
/// Accepted lines, malformed accounting and error strings are identical
/// to load_trace_file(); serial and parallel loads produce identical
/// stores.
bool load_trace_store(const std::string& path, EventStore& out,
                      IngestStats& stats, std::string* error = nullptr,
                      unsigned jobs = 1);

/// Same, over in-memory bytes (takes ownership — zero-copy views point
/// into the adopted buffer). For tests and generated traces.
bool load_trace_buffer(std::string text, EventStore& out, IngestStats& stats,
                       std::string* error = nullptr, unsigned jobs = 1);

/// Converts legacy ParsedEvents into a store (used by the compatibility
/// overloads so analyzers have a single store-based implementation).
EventStore store_from_events(const std::vector<ParsedEvent>& events);

}  // namespace realtor::obs
