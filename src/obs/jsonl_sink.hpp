// JSONL trace sink: one flat JSON object per event, one event per line.
//
//   {"t":12.5,"node":3,"kind":"help_sent","urgency":1,"interval":2.5}
//
// "t", "kind" are always present; "node" is omitted for system-wide
// records. Numbers round-trip (shortest std::to_chars form), strings are
// escaped per RFC 8259. Lines are written under a mutex so the threaded
// Agile runtime can share one sink across reactor threads.
#pragma once

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace realtor::obs {

/// Appends `text` JSON-escaped (quotes, backslashes, control characters).
void append_json_escaped(std::string& out, std::string_view text);

/// The sink's line format without the trailing newline; exposed for tests.
std::string format_jsonl(const TraceEvent& event);

/// Flush guarantee: events appear in the output in emission order in
/// every mode. With flush_every == 0 (the default) each event is written
/// to the stream as it arrives. With flush_every == K > 0 lines are
/// batched in memory and written + flushed once K events accumulate —
/// one syscall-ish write per K events instead of per event. flush() (and
/// the destructor) always drains the batch, so after either returns every
/// emitted event is in the stream; between batch flushes up to K-1 events
/// may be buffered and would be lost on a crash. Ordering is protected by
/// the same mutex in both modes, so the threaded Agile runtime can share
/// one buffered sink.
class JsonlSink final : public TraceSink {
 public:
  /// Writes to a borrowed stream (tests, stdout piping).
  explicit JsonlSink(std::ostream& out, std::size_t flush_every = 0);
  /// Opens `path` for writing; check ok() before use.
  explicit JsonlSink(const std::string& path, std::size_t flush_every = 0);
  ~JsonlSink() override;

  /// False when the file constructor failed to open the path.
  bool ok() const { return out_ != nullptr && out_->good(); }

  void on_event(const TraceEvent& event) override;
  void flush() override;

  std::uint64_t lines_written() const { return lines_; }
  std::size_t flush_every() const { return flush_every_; }

 private:
  void drain_locked();  // writes + flushes the pending batch

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::mutex mutex_;
  std::uint64_t lines_ = 0;
  std::size_t flush_every_ = 0;
  std::size_t pending_ = 0;
  std::string buffer_;
};

}  // namespace realtor::obs
