#include "obs/trace.hpp"

#include "common/assert.hpp"

namespace realtor::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kHelpSent:
      return "help_sent";
    case EventKind::kHelpReceived:
      return "help_received";
    case EventKind::kPledgeSent:
      return "pledge_sent";
    case EventKind::kPledgeReceived:
      return "pledge_received";
    case EventKind::kAdvertSent:
      return "advert_sent";
    case EventKind::kGossipRound:
      return "gossip_round";
    case EventKind::kHelpInterval:
      return "help_interval";
    case EventKind::kThresholdCrossing:
      return "threshold_crossing";
    case EventKind::kCommunityJoin:
      return "community_join";
    case EventKind::kCommunityExpire:
      return "community_expire";
    case EventKind::kSolicit:
      return "solicit";
    case EventKind::kTaskArrival:
      return "task_arrival";
    case EventKind::kTaskAdmitLocal:
      return "task_admit_local";
    case EventKind::kTaskAdmitMigrated:
      return "task_admit_migrated";
    case EventKind::kTaskRejected:
      return "task_rejected";
    case EventKind::kTaskCompleted:
      return "task_completed";
    case EventKind::kMigrationAttempt:
      return "migration_attempt";
    case EventKind::kMigrationAbort:
      return "migration_abort";
    case EventKind::kMigrationSuccess:
      return "migration_success";
    case EventKind::kNodeKilled:
      return "node_killed";
    case EventKind::kNodeRestored:
      return "node_restored";
    case EventKind::kEvacuation:
      return "evacuation";
    case EventKind::kEscalation:
      return "escalation";
    case EventKind::kDeadlineMiss:
      return "deadline_miss";
    case EventKind::kUnreachableDrop:
      return "unreachable_drop";
    case EventKind::kEngineStep:
      return "engine_step";
    case EventKind::kNodeSample:
      return "node_sample";
    case EventKind::kSystemSample:
      return "system_sample";
    case EventKind::kLiveTick:
      return "live_tick";
    case EventKind::kAlertFiring:
      return "alert_firing";
    case EventKind::kAlertCleared:
      return "alert_cleared";
    case EventKind::kCount:
      break;
  }
  return "?";
}

bool parse_event_kind(std::string_view name, EventKind& out) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventKind::kCount);
       ++i) {
    const auto kind = static_cast<EventKind>(i);
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

TraceField& TraceEvent::next(const char* key) {
  REALTOR_ASSERT_MSG(field_count < kMaxTraceFields,
                     "trace event payload too large");
  TraceField& field = fields[field_count++];
  field.key = key;
  return field;
}

std::size_t MemorySink::count(EventKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

std::vector<TraceEvent> MemorySink::events_of(NodeId node) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.node == node) out.push_back(event);
  }
  return out;
}

}  // namespace realtor::obs
