// Chrome-trace / Perfetto export of a traced run.
//
// Renders the run in the Trace Event JSON format that ui.perfetto.dev and
// chrome://tracing load natively, as three process tracks:
//
//   pid 1  simulation   one thread per node; every lineage-bearing trace
//                       record is a slice, and lineage edges (cause -> id)
//                       become flow arrows between the slices, so a HELP
//                       flood fans out visually into its PLEDGEs.
//   pid 2  episodes     one thread per discovery episode; the episode's
//                       critical path is a slice with its classified phase
//                       edges nested inside.
//   pid 3  profiler     the aggregated ProfileScope tree (loaded from a
//                       --profile TSV), rendered as nested slices whose
//                       widths are cumulative inclusive time.
//
// The export is a pure function of its inputs: events are emitted in
// (pid, tid, ts, -dur) order so identical traces produce byte-identical
// JSON, and parents always precede the slices they enclose.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/profile.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"

namespace realtor::obs {

/// One Trace Event JSON record, pre-serialization. Only the phases the
/// exporter emits are modeled: "X" (complete slice), "s"/"f" (flow
/// start / finish), "M" (metadata).
struct ChromeEvent {
  char ph = 'X';
  int pid = 0;
  std::int64_t tid = 0;
  std::int64_t ts = 0;   // microseconds
  std::int64_t dur = 0;  // microseconds; "X" only
  std::string name;
  /// Flow id binding an "s" to its "f" events ("s"/"f" only).
  std::uint64_t flow_id = 0;
  /// Metadata payload ("M" only): the process/thread name being assigned.
  std::string arg_name;
};

/// Builds the full event list for a run: simulation slices + lineage
/// flows from `events`, episode/phase slices from `analysis`, and (when
/// non-empty) profiler slices from `profile`. Returned sorted; "s" events
/// are emitted only when at least one consumer exists and every "f"
/// references an emitted "s", so flow arrows always resolve.
std::vector<ChromeEvent> build_chrome_events(
    const std::vector<SpanEvent>& events,
    const CriticalPathAnalysis& analysis,
    const std::vector<ProfileEntry>& profile = {});

/// Serializes to a {"traceEvents": [...]} JSON document.
std::string render_chrome_json(const std::vector<ChromeEvent>& events);

}  // namespace realtor::obs
