// Named counters / gauges / histograms with a flattening walk for the
// time-series sampler.
//
// The registry hands out stable references: instrument once at setup
// (`auto& admitted = registry.counter("tasks.admitted")`), update on the
// hot path with a plain add/set, and let the sampler flatten everything
// into system_sample trace records at its period. Metric names live in the
// registry for its lifetime, so their c_str() pointers are safe to put in
// TraceField string slots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/stats.hpp"

namespace realtor::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Streaming distribution (count/mean/min/max via common OnlineStats).
class Histogram {
 public:
  void observe(double value) { stats_.add(value); }
  const OnlineStats& stats() const { return stats_; }
  void reset() { stats_ = OnlineStats{}; }

 private:
  OnlineStats stats_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Visits every metric as flat (name, value) pairs — counters, then
  /// gauges, then histograms, each group sorted by name. Counters and
  /// gauges yield one pair; histograms yield name.count / name.mean /
  /// name.min / name.max (skipped when empty).
  void for_each(
      const std::function<void(const std::string& name, double value)>& fn)
      const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // unique_ptr keeps references stable; map keeps for_each deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace realtor::obs
