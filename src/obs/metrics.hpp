// Named counters / gauges / histograms with a flattening walk for the
// time-series sampler.
//
// The registry hands out stable references: instrument once at setup
// (`auto& admitted = registry.counter("tasks.admitted")`), update on the
// hot path with a plain add/set, and let the sampler flatten everything
// into system_sample trace records at its period. Metric names live in the
// registry for its lifetime, so their c_str() pointers are safe to put in
// TraceField string slots.
//
// Counter and Gauge are lock-free: relaxed atomics make concurrent updates
// from the Agile reactor threads well-defined while compiling to the same
// single instruction as the old plain stores on x86/ARM — the hot path
// stays branch-free. Relaxed ordering is enough because metrics are
// monitoring data: readers (the sampler) tolerate momentary skew between
// metrics and never use them for synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace realtor::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming distribution: count/mean/min/max via common OnlineStats plus
/// quantiles from a bounded reservoir. While the sample count stays within
/// the reservoir capacity every observation is retained and quantile() is
/// exact; past capacity the reservoir degrades gracefully to uniform
/// subsampling (Vitter's Algorithm R) driven by a deterministic internal
/// generator, so two runs that observe the same sequence report identical
/// quantiles. Not thread-safe — histograms are owned by single-threaded
/// analysis paths (sampler flatten, episode summaries), unlike the atomic
/// Counter/Gauge hot paths.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoir = 4096;

  explicit Histogram(std::size_t reservoir_capacity = kDefaultReservoir)
      : capacity_(reservoir_capacity == 0 ? 1 : reservoir_capacity) {}

  void observe(double value);
  const OnlineStats& stats() const { return stats_; }

  /// Folds `other` into this histogram. count/sum/min/max merge exactly
  /// (OnlineStats::merge); the reservoirs are concatenated and, when the
  /// union exceeds this histogram's capacity, downsampled by an even
  /// stride over the union sorted by (value, seq) — a pure function of
  /// the two reservoirs, so merge order and thread scheduling can never
  /// change the merged quantiles. Windowed rollups (obs::live) merge
  /// per-bucket histograms this way instead of re-ingesting raw samples.
  void merge(const Histogram& other);

  /// Quantile in [0, 1] by linear interpolation over the reservoir
  /// (exact while count() <= reservoir capacity). 0.0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  std::size_t reservoir_size() const { return reservoir_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// True while quantile() reflects every observation.
  bool exact() const { return stats_.count() <= capacity_; }

  void reset();

 private:
  OnlineStats stats_;
  std::size_t capacity_;
  std::vector<double> reservoir_;
  /// Observation index (1-based, parallel to reservoir_) of each retained
  /// sample — the deterministic tie-break merge() sorts by.
  std::vector<std::uint64_t> seqs_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Visits every metric as flat (name, value) pairs — counters, then
  /// gauges, then histograms, each group sorted by name. Counters and
  /// gauges yield one pair; histograms yield name.count / name.mean /
  /// name.min / name.max / name.p50 / name.p90 / name.p99 (skipped when
  /// empty).
  void for_each(
      const std::function<void(const std::string& name, double value)>& fn)
      const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // unique_ptr keeps references stable; map keeps for_each deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace realtor::obs
