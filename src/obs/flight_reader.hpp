// Reader for flight-recorder dumps (see flight_recorder.hpp for the
// format). Converts the packed rings back into the exact event model the
// JSONL reader produces — a std::vector<ParsedEvent> — so every consumer
// of JSONL traces (realtor_trace modes, the span builder, the invariant
// checker, the scorecard) runs unchanged on binary dumps.
//
// Semantics match a JSONL round trip field for field: uints come back as
// JSON numbers, non-finite doubles come back as the quoted strings the
// sink would have written ("nan"/"inf"/"-inf"), node 0xFFFFFFFF reads as
// the omitted-node sentinel kInvalidNode.
#pragma once

#include <string>
#include <vector>

#include "obs/event_store.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {

struct FlightDump {
  std::vector<std::string> names;
  std::vector<FlightRingInfo> rings;
  /// All rings' records merged into one stream, sorted by time (stable:
  /// ties keep ring order, and within a ring the recorded order). For the
  /// single-ring simulation dumps this is exactly emission order.
  std::vector<ParsedEvent> events;
  /// Records the file claimed but the reader could not recover: packed
  /// records rejected by unpack (unknown kind / out-of-range name id) plus
  /// records lost to mid-ring truncation. The JSONL analogue of
  /// ReadStats::malformed — `realtor_trace --check` fails when non-zero.
  std::uint64_t malformed = 0;
  /// True when the file ended mid-ring: every intact record up to the cut
  /// was salvaged into `events` and the remainder counted in `malformed`.
  bool truncated = false;

  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;
};

/// True when the file starts with the flight-recorder magic — how
/// realtor_trace auto-detects binary dumps next to JSONL traces.
bool is_flight_file(const std::string& path);

/// Loads a dump. False with a reason in `error` only when nothing is
/// recoverable: unreadable file, bad magic, or a header (name table /
/// ring count / first ring header) cut short. Damage past the headers —
/// a ring truncated mid-record, records with unknown kinds or name ids —
/// never fails the load: intact records are salvaged into `out.events`
/// and the loss is surfaced via `out.malformed` / `out.truncated`.
bool load_flight_file(const std::string& path, FlightDump& out,
                      std::string* error = nullptr);

/// Ring/truncation telemetry of a store-based load (the FlightDump fields
/// that are not the events themselves).
struct FlightStoreInfo {
  std::vector<FlightRingInfo> rings;
  bool truncated = false;

  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;
};

/// Direct decode into an EventStore: packed records become EventRecs and
/// StoredFields straight away — no per-record strings, no JSON text round
/// trip. Same salvage semantics and failure conditions as the FlightDump
/// overload, and the same event model (uints as numbers, non-finite
/// doubles as quoted "nan"/"inf"/"-inf" strings, node 0xFFFFFFFF as
/// kInvalidNode, stable time sort across rings).
///
/// Malformed accounting lands in `stats` with the exact trace_reader
/// semantics: `lines` counts the records the intact ring headers claimed,
/// `events` the decoded ones, `malformed` = lines - events (rejected
/// records plus records lost to mid-ring truncation),
/// `first_malformed_line` the 1-based ordinal of the first lost record in
/// ring-major order, `first_error` the reason.
bool load_flight_file(const std::string& path, EventStore& out,
                      FlightStoreInfo& info, TraceLoadStats& stats,
                      std::string* error = nullptr);

}  // namespace realtor::obs
