#include "obs/sampler.hpp"

#include "common/assert.hpp"

namespace realtor::obs {

Sampler::Sampler(sim::Engine& engine, SimTime interval, Tracer& tracer,
                 const Registry* registry)
    : engine_(engine),
      interval_(interval),
      tracer_(tracer),
      registry_(registry) {
  REALTOR_ASSERT_MSG(interval_ > 0.0, "sampling interval must be positive");
}

void Sampler::start() {
  engine_.schedule_in(interval_, [this] { tick(); });
}

void Sampler::tick() {
  engine_.schedule_in(interval_, [this] { tick(); });
  sample(engine_.now());
}

void Sampler::finish(SimTime now) {
  if (last_tick_ >= now) return;
  sample(now);
}

void Sampler::sample(SimTime now) {
  ++ticks_;
  last_tick_ = now;
  for (const Probe& probe : probes_) {
    probe(now);
  }
  if (registry_ != nullptr && tracer_.active()) {
    registry_->for_each([this, now](const std::string& name, double value) {
      tracer_.emit(TraceEvent(now, kInvalidNode, EventKind::kSystemSample)
                       .with("name", intern(name))
                       .with("value", value));
    });
  }
}

const char* Sampler::intern(const std::string& name) {
  const auto it = interned_.find(name);
  if (it != interned_.end()) return it->second;
  name_arena_.push_back(name);
  const char* stable = name_arena_.back().c_str();
  interned_.emplace(name, stable);
  return stable;
}

}  // namespace realtor::obs
