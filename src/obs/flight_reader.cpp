#include "obs/flight_reader.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace realtor::obs {
namespace {

struct ByteCursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos + sizeof(T) > size) return false;
    std::memcpy(&out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool read_bytes(std::string& out, std::size_t n) {
    if (pos + n > size) return false;
    out.assign(data + pos, n);
    pos += n;
    return true;
  }
};

bool fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

bool read_whole_file(const std::string& path, std::string& out,
                     std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::fseek(file, 0, SEEK_END);
  const long end = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(file);
    return fail(error, "cannot size file");
  }
  out.resize(static_cast<std::size_t>(end));
  const std::size_t got = std::fread(out.data(), 1, out.size(), file);
  std::fclose(file);
  if (got != out.size()) return fail(error, "short read");
  return true;
}

/// One packed record back into the JSONL event model. False when the
/// record references an unknown kind or name id (a corrupt dump).
bool unpack(const FlightRecord& record,
            const std::vector<std::string>& names, ParsedEvent& out) {
  if (record.kind >= static_cast<std::uint8_t>(EventKind::kCount)) {
    return false;
  }
  if (record.field_count > kMaxTraceFields) return false;
  out.time = record.time;
  out.node = static_cast<NodeId>(record.node);
  out.kind = to_string(static_cast<EventKind>(record.kind));
  out.fields.clear();
  out.fields.reserve(record.field_count);
  for (std::uint8_t i = 0; i < record.field_count; ++i) {
    const FlightField& field = record.fields[i];
    if (field.key >= names.size()) return false;
    JsonValue value;
    switch (static_cast<TraceField::Type>(field.type)) {
      case TraceField::Type::kUint:
        value.type = JsonValue::Type::kNumber;
        value.number = static_cast<double>(field.bits);
        break;
      case TraceField::Type::kDouble: {
        const double d = std::bit_cast<double>(field.bits);
        if (std::isfinite(d)) {
          value.type = JsonValue::Type::kNumber;
          value.number = d;
        } else {
          // The JSONL sink quotes non-finite doubles; match it so binary
          // and JSONL round trips of one run parse identically.
          value.type = JsonValue::Type::kString;
          value.text = std::isnan(d) ? "nan" : (d > 0 ? "inf" : "-inf");
        }
        break;
      }
      case TraceField::Type::kString:
        if (field.bits >= names.size()) return false;
        value.type = JsonValue::Type::kString;
        value.text = names[static_cast<std::size_t>(field.bits)];
        break;
      case TraceField::Type::kBool:
        value.type = JsonValue::Type::kBool;
        value.boolean = field.bits != 0;
        break;
      case TraceField::Type::kNone:
        value.type = JsonValue::Type::kNull;
        break;
      default:
        return false;
    }
    out.fields.emplace_back(names[field.key], std::move(value));
  }
  return true;
}

}  // namespace

std::uint64_t FlightDump::total_recorded() const {
  std::uint64_t total = 0;
  for (const FlightRingInfo& ring : rings) total += ring.recorded;
  return total;
}

std::uint64_t FlightDump::total_dropped() const {
  std::uint64_t total = 0;
  for (const FlightRingInfo& ring : rings) total += ring.dropped;
  return total;
}

bool is_flight_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char magic[sizeof(kFlightMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), file);
  std::fclose(file);
  return got == sizeof(magic) &&
         std::memcmp(magic, kFlightMagic, sizeof(magic)) == 0;
}

bool load_flight_file(const std::string& path, FlightDump& out,
                      std::string* error) {
  out = FlightDump{};
  std::string bytes;
  if (!read_whole_file(path, bytes, error)) return false;
  ByteCursor cursor{bytes.data(), bytes.size()};

  char magic[sizeof(kFlightMagic)];
  if (!cursor.read(magic) ||
      std::memcmp(magic, kFlightMagic, sizeof(magic)) != 0) {
    return fail(error, "not a flight-recorder dump (bad magic)");
  }

  std::uint32_t name_count = 0;
  if (!cursor.read(name_count)) return fail(error, "truncated name table");
  out.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint16_t len = 0;
    std::string name;
    if (!cursor.read(len) || !cursor.read_bytes(name, len)) {
      return fail(error, "truncated name table");
    }
    out.names.push_back(std::move(name));
  }

  std::uint32_t ring_count = 0;
  if (!cursor.read(ring_count)) return fail(error, "truncated ring count");
  for (std::uint32_t r = 0; r < ring_count; ++r) {
    FlightRingInfo info;
    if (!cursor.read(info)) {
      // A dump with zero intact ring headers carries no information —
      // fail. Past the first ring, salvage what earlier rings yielded.
      if (r == 0) return fail(error, "truncated ring header");
      out.truncated = true;
      break;
    }
    std::uint64_t consumed = 0;  // records fully read off the cursor
    bool cut = false;
    for (std::uint64_t i = 0; i < info.stored; ++i) {
      FlightRecord record;
      if (!cursor.read(record)) {
        cut = true;
        break;
      }
      ++consumed;
      ParsedEvent event;
      if (!unpack(record, out.names, event)) {
        // Corrupt record body (unknown kind, field count, or name id):
        // count it and keep going — the fixed record size means the
        // cursor is still aligned on the next record.
        ++out.malformed;
        continue;
      }
      out.events.push_back(std::move(event));
    }
    out.rings.push_back(info);
    if (cut) {
      // Mid-ring truncation: everything the ring claimed past the cut is
      // unrecoverable — count it and stop (later rings start at unknown
      // offsets).
      out.truncated = true;
      out.malformed += info.stored - consumed;
      break;
    }
  }
  if (!out.truncated && cursor.pos != cursor.size) {
    return fail(error, "trailing bytes");
  }

  // Multi-ring dumps (agile: one ring per host) interleave by time; a
  // stable sort keeps ring-major order on ties and is a no-op for the
  // single-ring simulation dumps, which are already in emission order.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ParsedEvent& a, const ParsedEvent& b) {
                     return a.time < b.time;
                   });
  return true;
}

std::uint64_t FlightStoreInfo::total_recorded() const {
  std::uint64_t total = 0;
  for (const FlightRingInfo& ring : rings) total += ring.recorded;
  return total;
}

std::uint64_t FlightStoreInfo::total_dropped() const {
  std::uint64_t total = 0;
  for (const FlightRingInfo& ring : rings) total += ring.dropped;
  return total;
}

namespace {

/// Validates a packed record against the name table without touching the
/// store; nullptr when intact, else the rejection reason. The checks and
/// their order mirror the legacy unpack().
const char* record_defect(const FlightRecord& record,
                          std::size_t name_count) {
  if (record.kind >= static_cast<std::uint8_t>(EventKind::kCount)) {
    return "unknown event kind";
  }
  if (record.field_count > kMaxTraceFields) return "too many fields";
  for (std::uint8_t i = 0; i < record.field_count; ++i) {
    const FlightField& field = record.fields[i];
    if (field.key >= name_count) return "key id out of range";
    switch (static_cast<TraceField::Type>(field.type)) {
      case TraceField::Type::kUint:
      case TraceField::Type::kDouble:
      case TraceField::Type::kBool:
      case TraceField::Type::kNone:
        break;
      case TraceField::Type::kString:
        if (field.bits >= name_count) return "name id out of range";
        break;
      default:
        return "unknown field type";
    }
  }
  return nullptr;
}

}  // namespace

bool load_flight_file(const std::string& path, EventStore& out,
                      FlightStoreInfo& info, TraceLoadStats& stats,
                      std::string* error) {
  out = EventStore{};
  info = FlightStoreInfo{};
  stats = TraceLoadStats{};
  MappedBuffer buffer;
  if (!buffer.open(path, error)) return false;
  ByteCursor cursor{buffer.data(), buffer.size()};

  char magic[sizeof(kFlightMagic)];
  if (!cursor.read(magic) ||
      std::memcmp(magic, kFlightMagic, sizeof(magic)) != 0) {
    return fail(error, "not a flight-recorder dump (bad magic)");
  }

  // Name table: interned straight from the mapping — one arena copy per
  // distinct name for the whole dump.
  std::uint32_t name_count = 0;
  if (!cursor.read(name_count)) return fail(error, "truncated name table");
  std::vector<StrId> name_ids;
  name_ids.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint16_t len = 0;
    if (!cursor.read(len) || cursor.pos + len > cursor.size) {
      return fail(error, "truncated name table");
    }
    name_ids.push_back(
        out.intern(std::string_view(cursor.data + cursor.pos, len)));
    cursor.pos += len;
  }

  // Kind names are interned lazily — dumps usually carry a handful of the
  // 27 kinds.
  std::array<StrId, static_cast<std::size_t>(EventKind::kCount)> kind_ids;
  kind_ids.fill(kNoStrId);

  const auto note_malformed = [&](const char* reason) {
    ++stats.malformed;
    if (stats.first_malformed_line == 0) {
      stats.first_malformed_line = stats.lines;
      stats.first_error = reason;
    }
  };

  std::uint32_t ring_count = 0;
  if (!cursor.read(ring_count)) return fail(error, "truncated ring count");
  for (std::uint32_t r = 0; r < ring_count; ++r) {
    FlightRingInfo ring;
    if (!cursor.read(ring)) {
      if (r == 0) return fail(error, "truncated ring header");
      info.truncated = true;
      break;
    }
    std::uint64_t consumed = 0;
    bool cut = false;
    for (std::uint64_t i = 0; i < ring.stored; ++i) {
      FlightRecord record;
      if (!cursor.read(record)) {
        cut = true;
        break;
      }
      ++consumed;
      ++stats.lines;
      const char* defect = record_defect(record, name_ids.size());
      if (defect != nullptr) {
        note_malformed(defect);
        continue;
      }
      const auto kind_index = static_cast<std::size_t>(record.kind);
      if (kind_ids[kind_index] == kNoStrId) {
        kind_ids[kind_index] =
            out.intern(to_string(static_cast<EventKind>(record.kind)));
      }
      out.begin_event(record.time, static_cast<NodeId>(record.node),
                      kind_ids[kind_index]);
      ++stats.events;
      for (std::uint8_t f = 0; f < record.field_count; ++f) {
        const FlightField& field = record.fields[f];
        const StrId key = name_ids[field.key];
        switch (static_cast<TraceField::Type>(field.type)) {
          case TraceField::Type::kUint:
            out.add_number(key, static_cast<double>(field.bits));
            break;
          case TraceField::Type::kDouble: {
            const double d = std::bit_cast<double>(field.bits);
            if (std::isfinite(d)) {
              out.add_number(key, d);
            } else {
              // Match the JSONL sink's quoted non-finite doubles (static
              // storage — no arena copy needed).
              out.add_string(key, std::isnan(d)  ? std::string_view("nan")
                                  : d > 0 ? std::string_view("inf")
                                          : std::string_view("-inf"));
            }
            break;
          }
          case TraceField::Type::kString:
            out.add_string(
                key, out.name(name_ids[static_cast<std::size_t>(field.bits)]));
            break;
          case TraceField::Type::kBool:
            out.add_bool(key, field.bits != 0);
            break;
          case TraceField::Type::kNone:
          default:
            out.add_null(key);
            break;
        }
      }
    }
    info.rings.push_back(ring);
    if (cut) {
      // Mid-ring truncation: the remainder of the ring's claimed records
      // is unrecoverable — account every one of them.
      info.truncated = true;
      for (std::uint64_t lost = consumed; lost < ring.stored; ++lost) {
        ++stats.lines;
        note_malformed("truncated record");
      }
      break;
    }
  }
  if (!info.truncated && cursor.pos != cursor.size) {
    return fail(error, "trailing bytes");
  }

  out.stable_sort_by_time();
  return true;
}

}  // namespace realtor::obs
