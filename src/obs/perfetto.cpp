#include "obs/perfetto.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace realtor::obs {
namespace {

constexpr int kSimPid = 1;
constexpr int kEpisodePid = 2;
constexpr int kProfilePid = 3;

std::int64_t to_us(SimTime t) {
  return static_cast<std::int64_t>(std::llround(t * 1e6));
}

ChromeEvent meta(int pid, std::int64_t tid, const char* key,
                 std::string value) {
  ChromeEvent e;
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = key;
  e.arg_name = std::move(value);
  return e;
}

void append_profile_slices(const std::vector<ProfileEntry>& profile,
                           std::vector<ChromeEvent>& out) {
  if (profile.empty()) return;
  out.push_back(meta(kProfilePid, 0, "process_name", "profiler"));
  out.push_back(meta(kProfilePid, 1, "thread_name", "scopes"));
  // Entries arrive pre-order with inclusive times, so siblings lay out
  // sequentially inside their parent: cursor[d] is where the next slice
  // at depth d starts.
  std::vector<std::int64_t> cursor(1, 0);
  for (const ProfileEntry& entry : profile) {
    if (entry.path.empty()) continue;  // synthetic root node
    const auto depth = static_cast<std::size_t>(entry.depth < 0 ? 0 : entry.depth);
    if (cursor.size() <= depth) cursor.resize(depth + 1, 0);
    const std::int64_t ts = cursor[depth];
    const std::int64_t dur = static_cast<std::int64_t>(entry.ns / 1000);
    ChromeEvent e;
    e.ph = 'X';
    e.pid = kProfilePid;
    e.tid = 1;
    e.ts = ts;
    e.dur = dur;
    const std::size_t slash = entry.path.rfind('/');
    e.name = slash == std::string::npos ? entry.path
                                        : entry.path.substr(slash + 1);
    out.push_back(std::move(e));
    cursor[depth] = ts + dur;
    if (cursor.size() > depth + 1) {
      cursor[depth + 1] = ts;
    } else {
      cursor.push_back(ts);
    }
  }
}

}  // namespace

std::vector<ChromeEvent> build_chrome_events(
    const std::vector<SpanEvent>& events,
    const CriticalPathAnalysis& analysis,
    const std::vector<ProfileEntry>& profile) {
  std::vector<ChromeEvent> out;
  out.push_back(meta(kSimPid, 0, "process_name", "simulation"));
  out.push_back(meta(kEpisodePid, 0, "process_name", "episodes"));

  // --- pid 1: per-node slices + lineage flow arrows -----------------------
  // A producer's "s" is emitted only once (a HELP flood has many
  // consumers) and only if some consumer actually resolved it, so every
  // arrow in the render has both ends.
  std::unordered_set<std::uint64_t> producers;
  std::unordered_set<std::uint64_t> consumed;
  for (const SpanEvent& event : events) {
    if (event.lineage != 0) producers.insert(event.lineage);
  }
  for (const SpanEvent& event : events) {
    if (event.cause != 0 && producers.count(event.cause) != 0) {
      consumed.insert(event.cause);
    }
  }
  std::unordered_set<std::uint64_t> started;
  for (const SpanEvent& event : events) {
    if (event.lineage == 0 && event.cause == 0) continue;
    ChromeEvent slice;
    slice.ph = 'X';
    slice.pid = kSimPid;
    slice.tid = static_cast<std::int64_t>(event.node);
    slice.ts = to_us(event.time);
    slice.dur = 1;
    slice.name = to_string(event.kind);
    out.push_back(slice);
    if (event.lineage != 0 && consumed.count(event.lineage) != 0 &&
        started.insert(event.lineage).second) {
      ChromeEvent flow = slice;
      flow.ph = 's';
      flow.dur = 0;
      flow.flow_id = event.lineage;
      out.push_back(std::move(flow));
    }
    if (event.cause != 0 && consumed.count(event.cause) != 0) {
      ChromeEvent flow = slice;
      flow.ph = 'f';
      flow.dur = 0;
      flow.flow_id = event.cause;
      out.push_back(std::move(flow));
    }
  }

  // --- pid 2: one thread per episode, phase edges nested ------------------
  for (const EpisodePath& path : analysis.paths) {
    const auto tid = static_cast<std::int64_t>(path.episode);
    ChromeEvent episode;
    episode.ph = 'X';
    episode.pid = kEpisodePid;
    episode.tid = tid;
    episode.ts = to_us(path.start);
    episode.dur = std::max<std::int64_t>(1, to_us(path.end) - episode.ts);
    episode.name = "episode";
    out.push_back(std::move(episode));
    for (const CriticalEdge& edge : path.edges) {
      ChromeEvent slice;
      slice.ph = 'X';
      slice.pid = kEpisodePid;
      slice.tid = tid;
      slice.ts = to_us(edge.from_time);
      slice.dur = to_us(edge.to_time) - slice.ts;
      slice.name = to_string(edge.phase);
      out.push_back(std::move(slice));
    }
  }

  // --- pid 3: aggregated profiler tree ------------------------------------
  append_profile_slices(profile, out);

  // (pid, tid, meta-first, ts, -dur): metadata leads its track, parents
  // precede the slices they enclose, and per-track ts is monotone.
  std::stable_sort(out.begin(), out.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     const bool am = a.ph == 'M';
                     const bool bm = b.ph == 'M';
                     if (am != bm) return am;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  return out;
}

std::string render_chrome_json(const std::vector<ChromeEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const ChromeEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":" + std::to_string(e.pid);
    out += ",\"tid\":" + std::to_string(e.tid);
    if (e.ph == 'M') {
      // Names are fixed identifiers from to_string()/phase tables — no
      // JSON-escaping needed anywhere in this exporter.
      out += ",\"name\":\"" + e.name + "\"";
      out += ",\"args\":{\"name\":\"" + e.arg_name + "\"}";
    } else {
      out += ",\"ts\":" + std::to_string(e.ts);
      if (e.ph == 'X') out += ",\"dur\":" + std::to_string(e.dur);
      out += ",\"name\":\"" + e.name + "\"";
      if (e.ph == 's' || e.ph == 'f') {
        out += ",\"cat\":\"lineage\",\"id\":" + std::to_string(e.flow_id);
        if (e.ph == 'f') out += ",\"bp\":\"e\"";
      }
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace realtor::obs
