// Critical-path extraction over the lineage DAG.
//
// Every message-producing trace event carries a lineage "id" and every
// receive-side event a "cause" pointing at the id that produced it (see
// Tracer::issue_id and proto::HelpMsg::cause). For each discovery episode
// this module picks the episode's terminal event (the admission that
// consumed it, else its migration outcome, else its first pledge), walks
// the cause chain back to the root help_sent, and classifies each edge of
// the resulting path into a named protocol phase:
//
//   algo_h_backoff      demand waiting on the Algorithm-H interval gate
//                       (pre-HELP; reported by the help_sent "backoff"
//                       field, not an edge)
//   flood_propagation   help_sent        -> help_received
//   pledge_wait         help_received    -> pledge_sent -> pledge_received
//   admission_decision  pledge_received  -> migration_attempt, retry gaps,
//                       and the outcome -> task admit/reject hop
//   migration_transfer  migration_attempt -> migration_success/abort
//
// Because consecutive chain events telescope, the edge durations of a path
// sum *exactly* to terminal.time - root.time; adding the backoff gives the
// path's total attributed latency. check_critical_paths() asserts these
// identities and backs `realtor_trace --critical-path --check` (the CI
// gate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace realtor::obs {

enum class Phase : std::uint8_t {
  kBackoff = 0,
  kFloodPropagation,
  kPledgeWait,
  kAdmissionDecision,
  kMigrationTransfer,
  kUnattributed,
  kCount,
};

/// Stable snake_case phase name used in reports.
const char* to_string(Phase phase);

/// One lineage edge of an episode's critical path.
struct CriticalEdge {
  Phase phase = Phase::kUnattributed;
  EventKind from_kind = EventKind::kCount;
  EventKind to_kind = EventKind::kCount;
  NodeId from_node = kInvalidNode;
  NodeId to_node = kInvalidNode;
  SimTime from_time = 0.0;
  SimTime to_time = 0.0;
  std::uint64_t episode = 0;

  SimTime duration() const { return to_time - from_time; }
};

/// The cause chain of one episode, root (help_sent) first.
struct EpisodePath {
  std::uint64_t episode = 0;
  NodeId origin = kInvalidNode;
  EventKind root_kind = EventKind::kCount;
  EventKind terminal_kind = EventKind::kCount;
  SimTime start = 0.0;  // root event time
  SimTime end = 0.0;    // terminal event time
  /// Algorithm-H backoff reported by the root help_sent (0 when the HELP
  /// fired on first trigger, or the root carries no backoff field).
  SimTime backoff = 0.0;
  std::vector<CriticalEdge> edges;

  /// Total attributed latency: backoff + sum of edge durations, which by
  /// construction equals backoff + (end - start).
  SimTime total() const { return backoff + (end - start); }
};

struct CriticalPathAnalysis {
  std::vector<EpisodePath> paths;  // ascending episode id
  /// Episodes present in the trace but without any terminal event (no
  /// pledge ever came back) — they contribute no path.
  std::uint64_t episodes_without_terminal = 0;
  /// Cause references that point at no event in the trace (possible with
  /// ring-evicted flight dumps); the walk stops there and the path roots
  /// at the last resolvable event.
  std::uint64_t unresolved_causes = 0;
};

/// Walks the lineage DAG of `events` (time-ordered, as loaded from any
/// sink) and extracts one critical path per episode that reached a
/// terminal event.
CriticalPathAnalysis analyze_critical_paths(
    const std::vector<SpanEvent>& events);

/// Deterministic per-phase latency table (count / mean / p50 / p90 / p99 /
/// max, milliseconds) over every path in `analysis` — byte-identical for
/// identical traces.
std::string render_critical_path(const CriticalPathAnalysis& analysis);

/// Top-K slowest edges across all paths (ties broken by episode then
/// time), the `--blame` report.
std::string render_blame(const CriticalPathAnalysis& analysis,
                         std::size_t top_k);

/// Structural gate: every path's edges must be contiguous and time-ordered
/// and their durations must sum exactly (1e-9) to end - start. Returns
/// human-readable violations; empty = pass.
std::vector<std::string> check_critical_paths(
    const CriticalPathAnalysis& analysis);

}  // namespace realtor::obs
