#include "obs/scorecard.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/format.hpp"
#include "obs/event_store.hpp"

namespace realtor::obs {
namespace {

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {  // defensive: stages are finite by design
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

void append_latency(std::string& out, const char* name,
                    const Histogram& histogram) {
  out += '"';
  out += name;
  out += "\":{\"n\":";
  const auto& stats = histogram.stats();
  append_uint(out, stats.count());
  if (stats.count() > 0) {
    out += ",\"mean\":";
    append_double(out, stats.mean());
    out += ",\"p50\":";
    append_double(out, histogram.p50());
    out += ",\"p90\":";
    append_double(out, histogram.p90());
    out += ",\"p99\":";
    append_double(out, histogram.p99());
    out += ",\"max\":";
    append_double(out, stats.max());
  }
  out += '}';
}

bool is_victim(const std::vector<NodeId>& victims, NodeId node) {
  return std::binary_search(victims.begin(), victims.end(), node);
}

}  // namespace

Scorecard build_scorecard(const EventStore& store) {
  Scorecard card;
  card.records = store.size();

  const std::vector<SpanEvent> spans = normalize_events(store);
  const std::vector<Episode> episodes = build_episodes(spans);
  card.episodes = episodes.size();
  for (const Episode& episode : episodes) {
    if (episode.started && episode.has_pledge()) {
      card.help_to_pledge.observe(episode.time_to_first_pledge());
    }
    if (episode.has_pledge() && episode.has_admission()) {
      card.pledge_to_admission.observe(episode.first_admission_time -
                                       episode.first_pledge_time);
    }
    if (episode.has_admission() && episode.has_migration()) {
      card.admission_to_migration.observe(episode.first_migration_time -
                                          episode.first_admission_time);
    }
    if (episode.started && episode.has_migration()) {
      card.help_to_migration.observe(episode.time_to_migration());
    }
    if (episode.deadline_misses > 0 || episode.unreachable_drops > 0) {
      card.episode_attribution.push_back({episode.id,
                                          episode.deadline_misses,
                                          episode.unreachable_drops});
    }
  }

  for (const SpanEvent& span : spans) {
    if (span.kind == EventKind::kDeadlineMiss) ++card.deadline_misses;
    if (span.kind == EventKind::kUnreachableDrop) ++card.unreachable_drops;
  }

  // Attack waves: node_killed records sharing one timestamp (the injector
  // kills a wave's victims at its single kill instant). The store keeps
  // the payloads ("lost", evacuation "resident"/"saved") that SpanEvent
  // deliberately drops; find_id yields kNoStrId for names the trace never
  // used, which no record carries.
  const StrId node_killed_id = store.find_id("node_killed");
  const StrId evacuation_id = store.find_id("evacuation");
  const StrId lost_id = store.find_id("lost");
  const StrId resident_id = store.find_id("resident");
  const StrId saved_id = store.find_id("saved");

  struct Kill {
    SimTime time;
    NodeId node;
    std::uint64_t lost;
  };
  std::vector<Kill> kills;
  for (const EventRec& rec : store.records()) {
    if (rec.kind == node_killed_id) {
      kills.push_back({rec.time, rec.node,
                       static_cast<std::uint64_t>(
                           EventView(store, rec).number(lost_id))});
    }
  }

  std::size_t i = 0;
  while (i < kills.size()) {
    AttackReport wave;
    wave.index = card.attacks.size();
    wave.kill_time = kills[i].time;
    while (i < kills.size() && kills[i].time == wave.kill_time) {
      wave.victims.push_back(kills[i].node);
      wave.lost += kills[i].lost;
      ++i;
    }
    std::sort(wave.victims.begin(), wave.victims.end());
    card.attacks.push_back(std::move(wave));
  }

  for (std::size_t w = 0; w < card.attacks.size(); ++w) {
    AttackReport& wave = card.attacks[w];
    const SimTime prev_kill =
        w > 0 ? card.attacks[w - 1].kill_time : -1.0;

    // The warning: the wave's emergency solicitations fire at wave.time,
    // before the grace period runs out and the kill lands.
    wave.warn_time = wave.kill_time;
    for (const SpanEvent& span : spans) {
      if (span.time > wave.kill_time) break;
      if (span.time <= prev_kill) continue;
      if (span.kind == EventKind::kSolicit &&
          is_victim(wave.victims, span.node)) {
        wave.warn_time = std::min(wave.warn_time, span.time);
      }
    }
  }

  for (std::size_t w = 0; w < card.attacks.size(); ++w) {
    AttackReport& wave = card.attacks[w];
    const SimTime window_end = w + 1 < card.attacks.size()
                                   ? card.attacks[w + 1].warn_time
                                   : std::numeric_limits<double>::infinity();
    const SimTime prev_kill =
        w > 0 ? card.attacks[w - 1].kill_time : -1.0;

    for (const EventRec& rec : store.records()) {
      if (rec.time >= window_end) break;
      if (rec.kind == evacuation_id && rec.time > prev_kill &&
          is_victim(wave.victims, rec.node)) {
        const EventView view(store, rec);
        wave.evac_resident +=
            static_cast<std::uint64_t>(view.number(resident_id));
        wave.evac_saved += static_cast<std::uint64_t>(view.number(saved_id));
      }
    }

    SimTime last_migration = -1.0;
    for (const SpanEvent& span : spans) {
      if (span.time >= window_end) break;
      if (span.time < wave.warn_time) continue;
      if (span.kind == EventKind::kDeadlineMiss) ++wave.deadline_misses;
      if (span.kind == EventKind::kUnreachableDrop) ++wave.unreachable_drops;
      if (span.kind == EventKind::kMigrationSuccess &&
          is_victim(wave.victims, span.node)) {
        ++wave.migrations;
        last_migration = span.time;
      }
    }
    if (last_migration >= 0.0) {
      wave.mttr = last_migration - wave.warn_time;
    }
    wave.recovered = wave.lost == 0;

    for (const Episode& episode : episodes) {
      if (!episode.started) continue;
      if (!is_victim(wave.victims, episode.origin)) continue;
      if (episode.start_time < wave.warn_time ||
          episode.start_time >= window_end) {
        continue;
      }
      ++wave.episodes;
      wave.pledges += episode.pledges_received;
    }
  }

  return card;
}

Scorecard build_scorecard(const std::vector<ParsedEvent>& events) {
  return build_scorecard(store_from_events(events));
}

std::string render_scorecard_json(const Scorecard& card) {
  std::string out;
  out.reserve(1024);
  out += "{\"records\":";
  append_uint(out, card.records);
  out += ",\"episodes\":";
  append_uint(out, card.episodes);
  out += ",\"deadline_misses\":";
  append_uint(out, card.deadline_misses);
  out += ",\"unreachable_drops\":";
  append_uint(out, card.unreachable_drops);

  out += ",\"stages\":{";
  append_latency(out, "help_to_pledge", card.help_to_pledge);
  out += ',';
  append_latency(out, "pledge_to_admission", card.pledge_to_admission);
  out += ',';
  append_latency(out, "admission_to_migration", card.admission_to_migration);
  out += ',';
  append_latency(out, "help_to_migration", card.help_to_migration);
  out += '}';

  out += ",\"attacks\":[";
  for (std::size_t i = 0; i < card.attacks.size(); ++i) {
    const AttackReport& wave = card.attacks[i];
    if (i > 0) out += ',';
    out += "{\"index\":";
    append_uint(out, wave.index);
    out += ",\"warn\":";
    append_double(out, wave.warn_time);
    out += ",\"kill\":";
    append_double(out, wave.kill_time);
    out += ",\"victims\":[";
    for (std::size_t v = 0; v < wave.victims.size(); ++v) {
      if (v > 0) out += ',';
      append_uint(out, wave.victims[v]);
    }
    out += "],\"lost\":";
    append_uint(out, wave.lost);
    out += ",\"evac_resident\":";
    append_uint(out, wave.evac_resident);
    out += ",\"evac_saved\":";
    append_uint(out, wave.evac_saved);
    out += ",\"episodes\":";
    append_uint(out, wave.episodes);
    out += ",\"pledges\":";
    append_uint(out, wave.pledges);
    out += ",\"migrations\":";
    append_uint(out, wave.migrations);
    out += ",\"deadline_misses\":";
    append_uint(out, wave.deadline_misses);
    out += ",\"unreachable_drops\":";
    append_uint(out, wave.unreachable_drops);
    out += ",\"mttr\":";
    if (wave.has_mttr()) {
      append_double(out, wave.mttr);
    } else {
      out += "null";
    }
    out += ",\"recovered\":";
    out += wave.recovered ? "true" : "false";
    out += '}';
  }
  out += ']';

  out += ",\"episode_attribution\":[";
  for (std::size_t i = 0; i < card.episode_attribution.size(); ++i) {
    const EpisodeAttribution& row = card.episode_attribution[i];
    if (i > 0) out += ',';
    out += "{\"episode\":";
    append_uint(out, row.episode);
    out += ",\"deadline_misses\":";
    append_uint(out, row.deadline_misses);
    out += ",\"unreachable_drops\":";
    append_uint(out, row.unreachable_drops);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

void append_latency_text(std::string& out, const char* label,
                         const Histogram& histogram) {
  char buf[160];
  const auto& stats = histogram.stats();
  if (stats.count() == 0) {
    std::snprintf(buf, sizeof buf, "  %-24s (no samples)\n", label);
  } else {
    // Doubles are pre-formatted locale-independently; the %-8s widths
    // reproduce the historical %-8.3f padding byte for byte.
    char mean[32], p50[32], p90[32], p99[32], max[32];
    format_double(mean, sizeof mean, "%.3f", stats.mean());
    format_double(p50, sizeof p50, "%.3f", histogram.p50());
    format_double(p90, sizeof p90, "%.3f", histogram.p90());
    format_double(p99, sizeof p99, "%.3f", histogram.p99());
    format_double(max, sizeof max, "%.3f", stats.max());
    std::snprintf(buf, sizeof buf,
                  "  %-24s n=%-6llu mean=%-8s p50=%-8s p90=%-8s "
                  "p99=%-8s max=%s\n",
                  label, static_cast<unsigned long long>(stats.count()),
                  mean, p50, p90, p99, max);
  }
  out += buf;
}

}  // namespace

std::string render_scorecard_text(const Scorecard& card) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu records, %llu episodes, %llu deadline misses, "
                "%llu unreachable drops\n\nstage latencies:\n",
                static_cast<unsigned long long>(card.records),
                static_cast<unsigned long long>(card.episodes),
                static_cast<unsigned long long>(card.deadline_misses),
                static_cast<unsigned long long>(card.unreachable_drops));
  out += buf;
  append_latency_text(out, "help_to_pledge", card.help_to_pledge);
  append_latency_text(out, "pledge_to_admission", card.pledge_to_admission);
  append_latency_text(out, "admission_to_migration",
                      card.admission_to_migration);
  append_latency_text(out, "help_to_migration", card.help_to_migration);

  if (card.attacks.empty()) {
    out += "\nno attack waves in this trace\n";
    return out;
  }
  out += "\nattack waves:\n";
  for (const AttackReport& wave : card.attacks) {
    char warn[32], kill[32];
    format_double(warn, sizeof warn, "%.3f", wave.warn_time);
    format_double(kill, sizeof kill, "%.3f", wave.kill_time);
    std::snprintf(buf, sizeof buf,
                  "  wave %llu: warn=%s kill=%s victims=%llu lost=%llu "
                  "evac=%llu/%llu episodes=%llu pledges=%llu "
                  "migrations=%llu misses=%llu drops=%llu ",
                  static_cast<unsigned long long>(wave.index),
                  warn, kill,
                  static_cast<unsigned long long>(wave.victims.size()),
                  static_cast<unsigned long long>(wave.lost),
                  static_cast<unsigned long long>(wave.evac_saved),
                  static_cast<unsigned long long>(wave.evac_resident),
                  static_cast<unsigned long long>(wave.episodes),
                  static_cast<unsigned long long>(wave.pledges),
                  static_cast<unsigned long long>(wave.migrations),
                  static_cast<unsigned long long>(wave.deadline_misses),
                  static_cast<unsigned long long>(wave.unreachable_drops));
    out += buf;
    if (wave.has_mttr()) {
      out += "mttr=";
      out += format_double("%.3f", wave.mttr);
      out += ' ';
    } else {
      out += "mttr=- ";
    }
    out += wave.recovered ? "[recovered]\n" : "[work lost]\n";
  }
  return out;
}

}  // namespace realtor::obs
