#include "obs/jsonl_sink.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace realtor::obs {
namespace {

void append_uint(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double value) {
  // Shortest round-trip form; JSON has no inf/nan, quote those.
  if (!std::isfinite(value)) {
    out += std::isnan(value) ? "\"nan\"" : (value > 0 ? "\"inf\"" : "\"-inf\"");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string format_jsonl(const TraceEvent& event) {
  std::string line;
  line.reserve(96);
  line += "{\"t\":";
  append_double(line, event.time);
  if (event.node != kInvalidNode) {
    line += ",\"node\":";
    append_uint(line, event.node);
  }
  line += ",\"kind\":\"";
  line += to_string(event.kind);
  line += '"';
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    const TraceField& field = event.fields[i];
    line += ",\"";
    append_json_escaped(line, field.key);
    line += "\":";
    switch (field.type) {
      case TraceField::Type::kUint:
        append_uint(line, field.u);
        break;
      case TraceField::Type::kDouble:
        append_double(line, field.d);
        break;
      case TraceField::Type::kString:
        line += '"';
        append_json_escaped(line, field.s != nullptr ? field.s : "");
        line += '"';
        break;
      case TraceField::Type::kBool:
        line += field.b ? "true" : "false";
        break;
      case TraceField::Type::kNone:
        line += "null";
        break;
    }
  }
  line += '}';
  return line;
}

JsonlSink::JsonlSink(std::ostream& out, std::size_t flush_every)
    : out_(&out), flush_every_(flush_every) {}

JsonlSink::JsonlSink(const std::string& path, std::size_t flush_every)
    : file_(path), flush_every_(flush_every) {
  if (file_.is_open()) out_ = &file_;
}

JsonlSink::~JsonlSink() {
  if (out_ != nullptr) flush();
}

void JsonlSink::drain_locked() {
  if (!buffer_.empty()) {
    out_->write(buffer_.data(),
                static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  pending_ = 0;
  out_->flush();
}

void JsonlSink::on_event(const TraceEvent& event) {
  const std::string line = format_jsonl(event);
  std::lock_guard<std::mutex> lock(mutex_);
  ++lines_;
  if (flush_every_ == 0) {
    *out_ << line << '\n';
    return;
  }
  buffer_ += line;
  buffer_ += '\n';
  if (++pending_ >= flush_every_) drain_locked();
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_locked();
}

}  // namespace realtor::obs
