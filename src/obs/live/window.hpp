// Sliding-window aggregators for the live telemetry plane.
//
// Two window shapes cover every rule the alert engine evaluates:
//
//   SlidingWindow — a ring of time buckets, each holding mergeable
//   count/sum/min/max plus an optional per-bucket quantile reservoir
//   (obs::Histogram). advance(now) rotates expired buckets; snapshot()
//   rolls the live buckets up oldest-to-newest via Histogram::merge, so
//   the rollup is a pure function of the observation stream and the
//   advancement instants — the determinism the live plane guarantees
//   across --jobs and --exec modes.
//
//   TailWindow — the last N observations ("admission probability over
//   the last 50 episodes"), a plain value ring with on-demand stats.
//
// Neither window allocates on the observation path once constructed
// (TailWindow never; SlidingWindow only inside Histogram reservoir growth
// up to its bounded capacity).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace realtor::obs::live {

/// Rolled-up view of a window at one evaluation instant.
struct WindowSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;  // 0 when empty
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Time-sliced sliding window: `buckets` ring slots of `span / buckets`
/// simulated seconds each. Observations land in the bucket covering their
/// timestamp; advance() expires buckets older than `span`. Timestamps must
/// be nondecreasing (the engine delivers events in time order).
class SlidingWindow {
 public:
  /// `reservoir_per_bucket` > 0 arms per-bucket quantile reservoirs
  /// (needed by quantile(); count/sum/min/max never need one).
  SlidingWindow(SimTime span, std::size_t buckets,
                std::size_t reservoir_per_bucket = 0);

  void observe(SimTime now, double value);
  /// Counting shorthand for rate signals (value 1.0 per occurrence).
  void count(SimTime now) { observe(now, 1.0); }

  /// Rotates the ring so the window covers (now - span, now]. Buckets the
  /// window slid past are cleared; called implicitly by observe().
  void advance(SimTime now);

  WindowSnapshot snapshot() const;
  /// Quantile over the windowed observations (merged oldest-to-newest per
  /// Histogram::merge). 0.0 when the window is empty or reservoirs are
  /// disarmed.
  double quantile(double q) const;
  /// Events per simulated second over min(span, now) — the window's rate
  /// before one full span has elapsed uses the elapsed time.
  double rate(SimTime now) const;

  SimTime span() const { return span_; }

 private:
  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    Histogram* reservoir = nullptr;  // owned via reservoirs_ when armed
    void clear();
    void observe(double value);
  };

  SimTime span_;
  SimTime bucket_span_;
  std::vector<Bucket> ring_;
  std::vector<Histogram> reservoirs_;  // parallel to ring_ when armed
  /// Global index (floor(now / bucket_span)) of the newest bucket; -1
  /// before the first advance.
  std::int64_t current_ = -1;
};

/// The last N observations, oldest overwritten first.
class TailWindow {
 public:
  explicit TailWindow(std::size_t capacity);

  void observe(double value);
  WindowSnapshot snapshot() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::uint64_t seen_ = 0;
};

}  // namespace realtor::obs::live
