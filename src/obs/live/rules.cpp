#include "obs/live/rules.hpp"

#include <cstdlib>

#include "common/format.hpp"

namespace realtor::obs::live {

namespace {

struct SignalName {
  const char* name;
  RuleSignal signal;
};

constexpr SignalName kSignals[] = {
    {"admission_probability", RuleSignal::kAdmissionProbability},
    {"admission_burn", RuleSignal::kAdmissionBurn},
    {"help_rate", RuleSignal::kHelpRate},
    {"message_rate", RuleSignal::kMessageRate},
    {"rejection_rate", RuleSignal::kRejectionRate},
    {"episode_p50", RuleSignal::kEpisodeP50},
    {"episode_p90", RuleSignal::kEpisodeP90},
    {"episode_p99", RuleSignal::kEpisodeP99},
    {"nodes_alive", RuleSignal::kNodesAlive},
    {"open_episodes", RuleSignal::kOpenEpisodes},
};

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool signal_count_windowed(RuleSignal signal) {
  return signal == RuleSignal::kAdmissionProbability ||
         signal == RuleSignal::kAdmissionBurn;
}

bool signal_rated(RuleSignal signal) {
  return signal == RuleSignal::kHelpRate ||
         signal == RuleSignal::kMessageRate ||
         signal == RuleSignal::kRejectionRate;
}

const char* to_string(RuleSignal signal) {
  for (const SignalName& entry : kSignals) {
    if (entry.signal == signal) return entry.name;
  }
  return "?";
}

const char* to_string(RuleOp op) {
  switch (op) {
    case RuleOp::kLt:
      return "<";
    case RuleOp::kLe:
      return "<=";
    case RuleOp::kGt:
      return ">";
    case RuleOp::kGe:
      return ">=";
  }
  return "?";
}

bool compare(RuleOp op, double value, double bound) {
  switch (op) {
    case RuleOp::kLt:
      return value < bound;
    case RuleOp::kLe:
      return value <= bound;
    case RuleOp::kGt:
      return value > bound;
    case RuleOp::kGe:
      return value >= bound;
  }
  return false;
}

bool parse_alert_rule(const std::string& spec, AlertRule& out,
                      std::string* error) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return fail(error, "alert rule '" + spec + "': expected <name>:<expr>");
  }
  out = AlertRule{};
  out.name = spec.substr(0, colon);
  std::string expr = spec.substr(colon + 1);

  // Split the optional /window off the right first — windows are plain
  // numbers, so the remaining expr is signal[@param]<op>bound[x].
  const std::size_t slash = expr.rfind('/');
  if (slash != std::string::npos) {
    if (!parse_double(expr.substr(slash + 1), out.window) ||
        out.window <= 0.0) {
      return fail(error,
                  "alert rule '" + out.name + "': bad window '" +
                      expr.substr(slash + 1) + "'");
    }
    expr.resize(slash);
  }

  const std::size_t op_pos = expr.find_first_of("<>");
  if (op_pos == std::string::npos || op_pos == 0) {
    return fail(error, "alert rule '" + out.name +
                           "': expected <signal><op><bound>");
  }
  std::size_t bound_pos = op_pos + 1;
  if (expr[op_pos] == '<') {
    out.op = RuleOp::kLt;
  } else {
    out.op = RuleOp::kGt;
  }
  if (bound_pos < expr.size() && expr[bound_pos] == '=') {
    out.op = out.op == RuleOp::kLt ? RuleOp::kLe : RuleOp::kGe;
    ++bound_pos;
  }

  std::string signal_text = expr.substr(0, op_pos);
  const std::size_t at = signal_text.find('@');
  if (at != std::string::npos) {
    if (!parse_double(signal_text.substr(at + 1), out.param)) {
      return fail(error, "alert rule '" + out.name + "': bad @param '" +
                             signal_text.substr(at + 1) + "'");
    }
    signal_text.resize(at);
  }
  bool found = false;
  for (const SignalName& entry : kSignals) {
    if (signal_text == entry.name) {
      out.signal = entry.signal;
      found = true;
      break;
    }
  }
  if (!found) {
    return fail(error, "alert rule '" + out.name + "': unknown signal '" +
                           signal_text + "'");
  }

  std::string bound_text = expr.substr(bound_pos);
  if (!bound_text.empty() && bound_text.back() == 'x') {
    out.relative = true;
    bound_text.pop_back();
    if (!signal_rated(out.signal)) {
      return fail(error, "alert rule '" + out.name +
                             "': baseline-relative bounds (trailing x) only "
                             "apply to rate signals");
    }
  }
  if (!parse_double(bound_text, out.bound)) {
    return fail(error, "alert rule '" + out.name + "': bad bound '" +
                           bound_text + "'");
  }
  if (out.signal == RuleSignal::kAdmissionBurn &&
      (out.param <= 0.0 || out.param >= 1.0)) {
    return fail(error, "alert rule '" + out.name +
                           "': admission_burn needs @slo in (0, 1)");
  }
  return true;
}

std::vector<std::string> default_alert_rules() {
  return {"admission_low:admission_probability<0.9/50",
          "help_storm:help_rate>3x/30"};
}

std::string to_string(const AlertRule& rule) {
  std::string out = rule.name;
  out += ':';
  out += to_string(rule.signal);
  if (rule.signal == RuleSignal::kAdmissionBurn) {
    out += '@';
    append_double_shortest(out, rule.param);
  }
  out += to_string(rule.op);
  append_double_shortest(out, rule.bound);
  if (rule.relative) out += 'x';
  if (rule.window > 0.0) {
    out += '/';
    append_double_shortest(out, rule.window);
  }
  return out;
}

}  // namespace realtor::obs::live
