// The live telemetry plane: a TraceSink that tees the event stream into
// sliding windows, evaluates alert rules, and writes Prometheus-text
// exposition snapshots — while forwarding every event to an optional
// downstream sink (JSONL, flight ring, ...).
//
// Determinism contract. The plane holds no clock of its own: windows
// advance and rules evaluate only on live_tick trace events, which the
// simulation engine emits at ScenarioConfig::live_cadence boundaries.
// Every number in a snapshot and every alert transition is therefore a
// pure function of the trace-event stream — and the stream is already
// byte-identical across --jobs values and --exec=thread|fork (the
// warm-start executor replays the shared prefix into each forked child's
// sink, live_tick events included, so a fresh child plane regenerates
// exactly the window state the thread path built live). Fixed seed in,
// identical exposition file and identical alert_firing events out,
// regardless of parallelism.
//
// Overhead contract: same as Tracer — nothing is attached when live
// telemetry is off, so untraced/not-live runs pay only the existing
// active() pointer test. When on, ingest is a switch plus a few window
// pushes per event; the perf_regression obs matrix gates the paired
// overhead at the flight recorder's <=5% budget.
//
// Not thread-safe: one plane per single-threaded simulation run. The
// threaded agile runtime uses agile::LiveMonitor, which samples atomics
// on a wall-clock thread and shares this directory's windows and rules.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/live/rules.hpp"
#include "obs/live/window.hpp"
#include "obs/trace.hpp"

namespace realtor::obs::live {

struct LiveConfig {
  /// Exposition destination: a file path, "fd:<n>" (an inherited file
  /// descriptor), "-" (stdout), or empty (no exposition — rules still
  /// evaluate and alert events still flow downstream).
  std::string out;
  /// Default time-window span (sim seconds) for rate/latency signals.
  double window = 30.0;
  /// Ring buckets per time window.
  std::size_t buckets = 6;
  /// Default count window (decisions) for admission signals.
  std::size_t decision_window = 50;
  /// Per-bucket quantile reservoir for the episode-latency window.
  std::size_t latency_reservoir = 256;
  /// Open episodes older than this many sim seconds are dropped from the
  /// open count at the next tick (0 = 10 * window).
  double episode_timeout = 0.0;
  /// Rule specs (rules.hpp grammar). Empty = default_alert_rules().
  std::vector<std::string> rules;
  /// Topology size hint for the nodes_alive gauge (0 = unknown, gauge
  /// reports kills/restores relative to 0).
  std::uint64_t node_count = 0;
  /// true: write each snapshot to `out` as it is produced (single-run
  /// operator mode). File targets are rewritten in place so the file
  /// always holds the latest scrapeable snapshot; fd/stdout targets
  /// append. false: buffer the whole snapshot history in memory and
  /// write it on flush() — what sweep runs use, so forked children
  /// regenerate the full history from the replayed prefix and produce
  /// byte-identical files.
  bool write_through = false;
};

/// Called on every alert transition (realtor_sim uses it for
/// dump-on-alert into the flight recorder).
using AlertListener = std::function<void(
    const AlertRule& rule, bool firing, SimTime time, double value)>;

class LivePlane final : public TraceSink {
 public:
  /// `downstream` is borrowed (may be nullptr); set_owned_downstream()
  /// hands the plane ownership instead (sweep factory composition).
  explicit LivePlane(LiveConfig config, TraceSink* downstream = nullptr);
  ~LivePlane() override;

  /// False when a rule spec failed to parse or the exposition target
  /// could not be opened; error() explains.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void set_owned_downstream(std::unique_ptr<TraceSink> downstream);
  /// Borrowed downstream (must outlive the plane); nullptr detaches.
  void set_downstream(TraceSink* downstream) { downstream_ = downstream; }
  void set_alert_listener(AlertListener listener) {
    alert_listener_ = std::move(listener);
  }

  void on_event(const TraceEvent& event) override;
  /// Writes the buffered exposition (buffered mode) and flushes the
  /// downstream sink.
  void flush() override;

  // Introspection (tests, tools).
  std::uint64_t snapshots() const { return snapshots_; }
  std::uint64_t alerts_fired() const { return alerts_fired_; }
  std::uint64_t events_seen() const { return events_seen_; }
  std::size_t open_episodes() const { return open_.size(); }
  /// Exposition text accumulated so far (buffered mode only).
  const std::string& exposition() const { return text_; }
  /// Current firing state of rule `name`; false for unknown rules.
  bool alert_firing(const std::string& name) const;
  std::vector<AlertRule> rules() const;

 private:
  struct RuleState {
    AlertRule rule;
    bool firing = false;
    double last_value = 0.0;
    /// Count-windowed signals own a tail window; rate/latency signals own
    /// a sliding window; gauges own neither.
    std::optional<TailWindow> tail;
    std::optional<SlidingWindow> sliding;
  };

  void ingest(const TraceEvent& event);
  void on_decision(SimTime now, bool admitted, std::uint64_t episode);
  void on_message(SimTime now, RuleSignal rated_signal);
  void feed_rated(RuleSignal signal, SimTime now);
  void tick(SimTime now, bool final_tick);
  double evaluate(RuleState& state, SimTime now, double* effective_bound);
  void emit_downstream(const TraceEvent& event);
  void write_snapshot(SimTime now, bool final_tick);
  void render_snapshot(std::string& out, SimTime now, bool final_tick);
  void fail(const std::string& message);

  LiveConfig config_;
  TraceSink* downstream_ = nullptr;
  std::unique_ptr<TraceSink> owned_downstream_;
  AlertListener alert_listener_;
  bool ok_ = true;
  std::string error_;

  std::vector<RuleState> rules_;

  // Default exposition windows.
  TailWindow decisions_;
  SlidingWindow helps_;
  SlidingWindow messages_;
  SlidingWindow rejections_;
  SlidingWindow episode_latency_;

  // Gauges derived from the stream.
  std::int64_t alive_ = 0;
  std::map<std::uint64_t, SimTime> open_;  // episode id -> open time
  std::array<std::uint64_t, static_cast<std::size_t>(EventKind::kCount)>
      kind_totals_{};
  std::uint64_t decisions_total_ = 0;
  std::uint64_t helps_total_ = 0;
  std::uint64_t messages_total_ = 0;
  std::uint64_t rejections_total_ = 0;

  std::uint64_t events_seen_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t alerts_fired_ = 0;

  // Exposition output.
  bool has_output_ = false;
  std::string text_;  // buffered mode: the whole snapshot history
  int fd_ = -1;       // "fd:<n>" target
  bool to_stdout_ = false;
};

}  // namespace realtor::obs::live
