#include "obs/live/window.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace realtor::obs::live {

void SlidingWindow::Bucket::clear() {
  count = 0;
  sum = 0.0;
  min = 0.0;
  max = 0.0;
  if (reservoir != nullptr) reservoir->reset();
}

void SlidingWindow::Bucket::observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  if (reservoir != nullptr) reservoir->observe(value);
}

SlidingWindow::SlidingWindow(SimTime span, std::size_t buckets,
                             std::size_t reservoir_per_bucket)
    : span_(span),
      bucket_span_(span / static_cast<double>(buckets == 0 ? 1 : buckets)),
      ring_(buckets == 0 ? 1 : buckets) {
  REALTOR_ASSERT_MSG(span > 0.0, "window span must be positive");
  if (reservoir_per_bucket > 0) {
    reservoirs_.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      reservoirs_.emplace_back(reservoir_per_bucket);
      ring_[i].reservoir = &reservoirs_[i];
    }
  }
}

void SlidingWindow::advance(SimTime now) {
  const std::int64_t target =
      static_cast<std::int64_t>(std::floor(now / bucket_span_));
  if (target <= current_) return;
  // Clear every bucket the window slid past; a long quiet gap clears the
  // whole ring at most once.
  const std::int64_t stale =
      std::min<std::int64_t>(target - current_,
                             static_cast<std::int64_t>(ring_.size()));
  for (std::int64_t i = 0; i < stale; ++i) {
    ring_[static_cast<std::size_t>((target - i) %
                                   static_cast<std::int64_t>(ring_.size()))]
        .clear();
  }
  current_ = target;
}

void SlidingWindow::observe(SimTime now, double value) {
  advance(now);
  ring_[static_cast<std::size_t>(current_ %
                                 static_cast<std::int64_t>(ring_.size()))]
      .observe(value);
}

WindowSnapshot SlidingWindow::snapshot() const {
  WindowSnapshot out;
  for (const Bucket& bucket : ring_) {
    if (bucket.count == 0) continue;
    if (out.count == 0) {
      out.min = bucket.min;
      out.max = bucket.max;
    } else {
      out.min = std::min(out.min, bucket.min);
      out.max = std::max(out.max, bucket.max);
    }
    out.count += bucket.count;
    out.sum += bucket.sum;
  }
  return out;
}

double SlidingWindow::quantile(double q) const {
  if (reservoirs_.empty() || current_ < 0) return 0.0;
  // Merge oldest-to-newest so the retained sample (and therefore the
  // quantile) is independent of the ring's physical layout.
  Histogram rollup(reservoirs_.size() * reservoirs_[0].capacity());
  const std::int64_t n = static_cast<std::int64_t>(ring_.size());
  for (std::int64_t age = n - 1; age >= 0; --age) {
    const std::int64_t index = current_ - age;
    if (index < 0) continue;
    rollup.merge(*ring_[static_cast<std::size_t>(index % n)].reservoir);
  }
  return rollup.quantile(q);
}

double SlidingWindow::rate(SimTime now) const {
  const double elapsed = std::min(span_, now);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(snapshot().count) / elapsed;
}

TailWindow::TailWindow(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TailWindow::observe(double value) {
  if (ring_.size() < capacity_) {
    ring_.push_back(value);
  } else {
    ring_[next_] = value;
  }
  next_ = (next_ + 1) % capacity_;
  ++seen_;
}

WindowSnapshot TailWindow::snapshot() const {
  WindowSnapshot out;
  for (const double value : ring_) {
    if (out.count == 0) {
      out.min = value;
      out.max = value;
    } else {
      out.min = std::min(out.min, value);
      out.max = std::max(out.max, value);
    }
    ++out.count;
    out.sum += value;
  }
  return out;
}

}  // namespace realtor::obs::live
