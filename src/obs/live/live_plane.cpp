#include "obs/live/live_plane.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/format.hpp"

namespace realtor::obs::live {

namespace {

const TraceField* find_field(const TraceEvent& event, const char* key) {
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    if (std::strcmp(event.fields[i].key, key) == 0) return &event.fields[i];
  }
  return nullptr;
}

std::uint64_t field_u64(const TraceEvent& event, const char* key) {
  const TraceField* field = find_field(event, key);
  return (field != nullptr && field->type == TraceField::Type::kUint)
             ? field->u
             : 0;
}

bool field_bool(const TraceEvent& event, const char* key) {
  const TraceField* field = find_field(event, key);
  return field != nullptr && field->type == TraceField::Type::kBool &&
         field->b;
}

bool signal_episode_quantile(RuleSignal signal) {
  return signal == RuleSignal::kEpisodeP50 ||
         signal == RuleSignal::kEpisodeP90 ||
         signal == RuleSignal::kEpisodeP99;
}

double signal_quantile(RuleSignal signal) {
  switch (signal) {
    case RuleSignal::kEpisodeP50:
      return 0.50;
    case RuleSignal::kEpisodeP90:
      return 0.90;
    default:
      return 0.99;
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const int written =
      std::snprintf(buffer, sizeof(buffer), "%llu",
                    static_cast<unsigned long long>(value));
  out.append(buffer, static_cast<std::size_t>(written));
}

/// Prometheus label values escape backslash, quote and newline.
void append_label_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

LivePlane::LivePlane(LiveConfig config, TraceSink* downstream)
    : config_(std::move(config)),
      downstream_(downstream),
      decisions_(config_.decision_window),
      helps_(config_.window, config_.buckets),
      messages_(config_.window, config_.buckets),
      rejections_(config_.window, config_.buckets),
      episode_latency_(config_.window, config_.buckets,
                       config_.latency_reservoir),
      alive_(static_cast<std::int64_t>(config_.node_count)) {
  const std::vector<std::string> specs =
      config_.rules.empty() ? default_alert_rules() : config_.rules;
  for (const std::string& spec : specs) {
    RuleState state;
    std::string parse_error;
    if (!parse_alert_rule(spec, state.rule, &parse_error)) {
      fail(parse_error);
      continue;
    }
    if (signal_count_windowed(state.rule.signal)) {
      const std::size_t n = state.rule.window > 0.0
                                ? static_cast<std::size_t>(state.rule.window)
                                : config_.decision_window;
      state.tail.emplace(n);
    } else if (signal_rated(state.rule.signal)) {
      const double span =
          state.rule.window > 0.0 ? state.rule.window : config_.window;
      state.sliding.emplace(span, config_.buckets);
    } else if (signal_episode_quantile(state.rule.signal)) {
      const double span =
          state.rule.window > 0.0 ? state.rule.window : config_.window;
      state.sliding.emplace(span, config_.buckets, config_.latency_reservoir);
    }
    rules_.push_back(std::move(state));
  }

  if (!config_.out.empty()) {
    has_output_ = true;
    if (config_.out == "-") {
      to_stdout_ = true;
      config_.write_through = true;
    } else if (config_.out.rfind("fd:", 0) == 0) {
      char* end = nullptr;
      const long fd = std::strtol(config_.out.c_str() + 3, &end, 10);
      if (end == nullptr || *end != '\0' || fd < 0) {
        fail("--live-metrics: bad file descriptor '" + config_.out + "'");
        has_output_ = false;
      } else {
        fd_ = static_cast<int>(fd);
        config_.write_through = true;
      }
    }
  }
}

LivePlane::~LivePlane() = default;

void LivePlane::fail(const std::string& message) {
  ok_ = false;
  if (!error_.empty()) error_ += "; ";
  error_ += message;
}

void LivePlane::set_owned_downstream(std::unique_ptr<TraceSink> downstream) {
  owned_downstream_ = std::move(downstream);
  downstream_ = owned_downstream_.get();
}

bool LivePlane::alert_firing(const std::string& name) const {
  for (const RuleState& state : rules_) {
    if (state.rule.name == name) return state.firing;
  }
  return false;
}

std::vector<AlertRule> LivePlane::rules() const {
  std::vector<AlertRule> out;
  out.reserve(rules_.size());
  for (const RuleState& state : rules_) out.push_back(state.rule);
  return out;
}

void LivePlane::emit_downstream(const TraceEvent& event) {
  if (downstream_ != nullptr) downstream_->on_event(event);
}

void LivePlane::on_event(const TraceEvent& event) {
  // Forward first so self-emitted alert events land after the tick that
  // produced them, in both live and prefix-replay ingestion.
  emit_downstream(event);
  ingest(event);
}

void LivePlane::ingest(const TraceEvent& event) {
  ++events_seen_;
  if (event.kind < EventKind::kCount) {
    ++kind_totals_[static_cast<std::size_t>(event.kind)];
  }
  const SimTime now = event.time;
  switch (event.kind) {
    case EventKind::kTaskAdmitLocal:
    case EventKind::kTaskAdmitMigrated:
      on_decision(now, true, field_u64(event, "episode"));
      break;
    case EventKind::kTaskRejected:
      ++rejections_total_;
      rejections_.count(now);
      feed_rated(RuleSignal::kRejectionRate, now);
      on_message(now, RuleSignal::kRejectionRate);
      on_decision(now, false, field_u64(event, "episode"));
      break;
    case EventKind::kHelpSent: {
      ++helps_total_;
      helps_.count(now);
      feed_rated(RuleSignal::kHelpRate, now);
      on_message(now, RuleSignal::kMessageRate);
      const std::uint64_t episode = field_u64(event, "episode");
      if (episode != 0) open_.emplace(episode, now);
      break;
    }
    case EventKind::kPledgeSent:
    case EventKind::kAdvertSent:
    case EventKind::kGossipRound:
    case EventKind::kSolicit:
    case EventKind::kEscalation:
      on_message(now, RuleSignal::kMessageRate);
      break;
    case EventKind::kNodeKilled:
      --alive_;
      break;
    case EventKind::kNodeRestored:
      ++alive_;
      break;
    case EventKind::kLiveTick:
      tick(now, field_bool(event, "final"));
      break;
    default:
      break;
  }
}

void LivePlane::feed_rated(RuleSignal signal, SimTime now) {
  for (RuleState& state : rules_) {
    if (state.rule.signal == signal && state.sliding.has_value()) {
      state.sliding->count(now);
    }
  }
}

void LivePlane::on_message(SimTime now, RuleSignal rated_signal) {
  // Rejections count toward their own rate only; every protocol message
  // kind also feeds the aggregate message economy.
  if (rated_signal == RuleSignal::kMessageRate) {
    ++messages_total_;
    messages_.count(now);
    feed_rated(RuleSignal::kMessageRate, now);
  }
}

void LivePlane::on_decision(SimTime now, bool admitted,
                            std::uint64_t episode) {
  ++decisions_total_;
  const double outcome = admitted ? 1.0 : 0.0;
  decisions_.observe(outcome);
  for (RuleState& state : rules_) {
    if (state.tail.has_value()) state.tail->observe(outcome);
  }
  if (episode != 0) {
    const auto it = open_.find(episode);
    if (it != open_.end()) {
      const double latency = now - it->second;
      open_.erase(it);
      episode_latency_.observe(now, latency);
      for (RuleState& state : rules_) {
        if (state.sliding.has_value() &&
            signal_episode_quantile(state.rule.signal)) {
          state.sliding->observe(now, latency);
        }
      }
    }
  }
}

double LivePlane::evaluate(RuleState& state, SimTime now,
                           double* effective_bound) {
  const AlertRule& rule = state.rule;
  *effective_bound = rule.bound;
  switch (rule.signal) {
    case RuleSignal::kAdmissionProbability: {
      const WindowSnapshot snap = state.tail->snapshot();
      return snap.count > 0 ? snap.mean() : 1.0;
    }
    case RuleSignal::kAdmissionBurn: {
      const WindowSnapshot snap = state.tail->snapshot();
      const double admission = snap.count > 0 ? snap.mean() : 1.0;
      return (1.0 - admission) / (1.0 - rule.param);
    }
    case RuleSignal::kHelpRate:
    case RuleSignal::kMessageRate:
    case RuleSignal::kRejectionRate: {
      state.sliding->advance(now);
      if (rule.relative) {
        const std::uint64_t total =
            rule.signal == RuleSignal::kHelpRate      ? helps_total_
            : rule.signal == RuleSignal::kMessageRate ? messages_total_
                                                      : rejections_total_;
        const double baseline =
            now > 0.0 ? static_cast<double>(total) / now : 0.0;
        *effective_bound = rule.bound * baseline;
      }
      return state.sliding->rate(now);
    }
    case RuleSignal::kEpisodeP50:
    case RuleSignal::kEpisodeP90:
    case RuleSignal::kEpisodeP99:
      state.sliding->advance(now);
      return state.sliding->quantile(signal_quantile(rule.signal));
    case RuleSignal::kNodesAlive:
      return static_cast<double>(alive_);
    case RuleSignal::kOpenEpisodes:
      return static_cast<double>(open_.size());
  }
  return 0.0;
}

void LivePlane::tick(SimTime now, bool final_tick) {
  // Drop abandoned episodes (opened, never decided — e.g. the organizer
  // died) so open_episodes measures live distress, not history.
  const double timeout = config_.episode_timeout > 0.0
                             ? config_.episode_timeout
                             : 10.0 * config_.window;
  while (!open_.empty() && open_.begin()->second < now - timeout) {
    open_.erase(open_.begin());
  }

  // Rotate the default windows even through quiet stretches.
  helps_.advance(now);
  messages_.advance(now);
  rejections_.advance(now);
  episode_latency_.advance(now);

  for (RuleState& state : rules_) {
    double effective_bound = 0.0;
    const double value = evaluate(state, now, &effective_bound);
    state.last_value = value;
    const bool holds = compare(state.rule.op, value, effective_bound);
    if (holds == state.firing) continue;
    state.firing = holds;
    if (holds) ++alerts_fired_;
    TraceEvent alert(now, kInvalidNode,
                     holds ? EventKind::kAlertFiring
                           : EventKind::kAlertCleared);
    alert.with("rule", state.rule.name.c_str())
        .with("signal", to_string(state.rule.signal))
        .with("value", value)
        .with("bound", effective_bound);
    emit_downstream(alert);
    if (alert_listener_) alert_listener_(state.rule, holds, now, value);
  }

  ++snapshots_;
  write_snapshot(now, final_tick);
}

void LivePlane::render_snapshot(std::string& out, SimTime now,
                                bool final_tick) {
  out += "# realtor_live snapshot ";
  append_u64(out, snapshots_);
  out += " t=";
  append_double_shortest(out, now);
  if (final_tick) out += " final";
  out += '\n';

  out += "realtor_live_time ";
  append_double_shortest(out, now);
  out += '\n';
  out += "realtor_live_nodes_alive ";
  append_double_shortest(out, static_cast<double>(alive_));
  out += '\n';
  out += "realtor_live_nodes_total ";
  append_u64(out, config_.node_count);
  out += '\n';
  out += "realtor_live_open_episodes ";
  append_u64(out, open_.size());
  out += '\n';
  out += "realtor_live_decisions_total ";
  append_u64(out, decisions_total_);
  out += '\n';

  const WindowSnapshot admissions = decisions_.snapshot();
  out += "realtor_live_admission_probability ";
  append_double_shortest(out,
                         admissions.count > 0 ? admissions.mean() : 1.0);
  out += '\n';
  out += "realtor_live_help_rate ";
  append_double_shortest(out, helps_.rate(now));
  out += '\n';
  out += "realtor_live_message_rate ";
  append_double_shortest(out, messages_.rate(now));
  out += '\n';
  out += "realtor_live_rejection_rate ";
  append_double_shortest(out, rejections_.rate(now));
  out += '\n';
  out += "realtor_live_episode_latency_p50 ";
  append_double_shortest(out, episode_latency_.quantile(0.50));
  out += '\n';
  out += "realtor_live_episode_latency_p99 ";
  append_double_shortest(out, episode_latency_.quantile(0.99));
  out += '\n';

  for (std::size_t kind = 0; kind < kind_totals_.size(); ++kind) {
    if (kind_totals_[kind] == 0) continue;
    out += "realtor_live_events_total{kind=\"";
    out += to_string(static_cast<EventKind>(kind));
    out += "\"} ";
    append_u64(out, kind_totals_[kind]);
    out += '\n';
  }

  out += "realtor_live_alerts_fired_total ";
  append_u64(out, alerts_fired_);
  out += '\n';
  for (const RuleState& state : rules_) {
    out += "realtor_live_alert{rule=\"";
    append_label_escaped(out, state.rule.name);
    out += "\"} ";
    out += state.firing ? '1' : '0';
    out += '\n';
    out += "realtor_live_alert_value{rule=\"";
    append_label_escaped(out, state.rule.name);
    out += "\"} ";
    append_double_shortest(out, state.last_value);
    out += '\n';
  }
  out += '\n';
}

void LivePlane::write_snapshot(SimTime now, bool final_tick) {
  if (!has_output_) {
    // No exposition target: still maintain the in-memory history so
    // embedders (tests, the agile monitor) can read exposition().
    render_snapshot(text_, now, final_tick);
    return;
  }
  if (!config_.write_through) {
    render_snapshot(text_, now, final_tick);
    return;
  }
  std::string snapshot;
  render_snapshot(snapshot, now, final_tick);
  if (to_stdout_) {
    std::fwrite(snapshot.data(), 1, snapshot.size(), stdout);
    std::fflush(stdout);
    return;
  }
  if (fd_ >= 0) {
#if defined(__unix__) || defined(__APPLE__)
    std::size_t off = 0;
    while (off < snapshot.size()) {
      const ::ssize_t n =
          ::write(fd_, snapshot.data() + off, snapshot.size() - off);
      if (n <= 0) {
        if (ok_) fail("--live-metrics: write to fd failed");
        return;
      }
      off += static_cast<std::size_t>(n);
    }
#else
    if (ok_) fail("--live-metrics: fd targets need a POSIX platform");
#endif
    return;
  }
  // File target: rewrite in place so the file always holds the latest
  // complete scrape.
  std::ofstream file(config_.out, std::ios::trunc);
  if (!file) {
    if (ok_) fail("--live-metrics: cannot open '" + config_.out + "'");
    return;
  }
  file.write(snapshot.data(),
             static_cast<std::streamsize>(snapshot.size()));
}

void LivePlane::flush() {
  if (has_output_ && !config_.write_through) {
    std::ofstream file(config_.out, std::ios::trunc);
    if (!file) {
      if (ok_) fail("--live-metrics: cannot open '" + config_.out + "'");
    } else {
      file.write(text_.data(), static_cast<std::streamsize>(text_.size()));
    }
  }
  if (downstream_ != nullptr) downstream_->flush();
}

}  // namespace realtor::obs::live
