// Declarative, deterministic alert rules over live windows.
//
// Grammar (one rule per spec string):
//
//   <name>:<signal>[@<param>]<op><bound>[x][/<window>]
//
//   name    — label carried by alert_firing/alert_cleared trace events.
//   signal  — one of the catalog below.
//   @param  — signal parameter (only admission_burn takes one: the SLO
//             target, e.g. admission_burn@0.95).
//   op      — < <= > >= over the evaluated signal value.
//   bound   — threshold. A trailing `x` turns the rule into a
//             rate-of-change comparison: the windowed rate is compared
//             against bound × the run's cumulative baseline rate.
//   /window — window size. Count-based signals (admission_probability,
//             admission_burn) read it as "last N decisions"; time-based
//             signals read simulated seconds. Omitted = plane defaults.
//
// Signal catalog:
//   admission_probability  admitted / decided over the last N decisions
//                          (1.0 while no decision landed yet)
//   admission_burn@S       SLO burn rate: (1 - window admission) / (1 - S)
//   help_rate              help_sent per sim second over the window
//   message_rate           protocol messages per sim second (HELP, PLEDGE,
//                          adverts, gossip, solicit, escalation)
//   rejection_rate         task_rejected per sim second over the window
//   episode_p50/p90/p99    episode open->decision latency quantile (sim s)
//   nodes_alive            current alive-node count (window ignored)
//   open_episodes          episodes opened but not yet decided
//
// Examples (the ISSUE's three):
//   admission_low:admission_probability<0.9/50
//   help_storm:help_rate>3x/30
//   p99_deadline:episode_p99>5/60
//
// Evaluation is tick-driven (live_tick trace events): a rule transitions
// to firing when its condition holds at a tick and was not holding at the
// previous one, emitting an alert_firing event; the reverse transition
// emits alert_cleared. Everything a rule reads is a pure function of the
// trace-event stream, so firings are byte-identical across --jobs and
// --exec modes for a fixed seed.
#pragma once

#include <string>
#include <vector>

namespace realtor::obs::live {

enum class RuleOp { kLt, kLe, kGt, kGe };

enum class RuleSignal {
  kAdmissionProbability,
  kAdmissionBurn,
  kHelpRate,
  kMessageRate,
  kRejectionRate,
  kEpisodeP50,
  kEpisodeP90,
  kEpisodeP99,
  kNodesAlive,
  kOpenEpisodes,
};

/// True for signals whose /window counts decisions, not seconds.
bool signal_count_windowed(RuleSignal signal);
/// True for signals a trailing `x` (baseline-relative bound) makes sense
/// for — the per-second rate signals.
bool signal_rated(RuleSignal signal);
const char* to_string(RuleSignal signal);

struct AlertRule {
  std::string name;
  RuleSignal signal = RuleSignal::kAdmissionProbability;
  RuleOp op = RuleOp::kLt;
  double bound = 0.0;
  /// Bound is a multiple of the cumulative baseline rate (`x` suffix).
  bool relative = false;
  /// admission_burn's SLO target (@param).
  double param = 0.0;
  /// Window size: decisions for count-windowed signals, sim seconds
  /// otherwise; 0 = the plane's default.
  double window = 0.0;
};

/// Parses one spec; false (with `error` set) on malformed input.
bool parse_alert_rule(const std::string& spec, AlertRule& out,
                      std::string* error);

/// The default rule set --live-metrics arms when no --alert was given:
/// the ISSUE's admission-probability floor and HELP-storm ratio.
std::vector<std::string> default_alert_rules();

/// Canonical one-line rendering (diagnostics, DESIGN examples).
std::string to_string(const AlertRule& rule);

bool compare(RuleOp op, double value, double bound);
const char* to_string(RuleOp op);

}  // namespace realtor::obs::live
