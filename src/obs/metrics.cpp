#include "obs/metrics.hpp"

namespace realtor::obs {
namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& table,
                  const std::string& name) {
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  return find_or_create(histograms_, name);
}

void Registry::for_each(
    const std::function<void(const std::string&, double)>& fn) const {
  for (const auto& [name, counter] : counters_) {
    fn(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    fn(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const OnlineStats& stats = histogram->stats();
    if (stats.count() == 0) continue;
    fn(name + ".count", static_cast<double>(stats.count()));
    fn(name + ".mean", stats.mean());
    fn(name + ".min", stats.min());
    fn(name + ".max", stats.max());
  }
}

}  // namespace realtor::obs
