#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace realtor::obs {
namespace {

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& table,
                  const std::string& name) {
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

/// splitmix64 step — the histogram's private, seed-fixed generator. Using
/// a self-contained stream (rather than common RngStream) keeps quantile
/// estimates a pure function of the observation sequence.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Histogram::observe(double value) {
  stats_.add(value);
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    seqs_.push_back(stats_.count());
    return;
  }
  // Algorithm R: element i of the stream survives with probability
  // capacity / i, keeping the reservoir a uniform sample.
  const std::uint64_t slot = next_u64(rng_state_) % stats_.count();
  if (slot < capacity_) {
    reservoir_[static_cast<std::size_t>(slot)] = value;
    seqs_[static_cast<std::size_t>(slot)] = stats_.count();
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.stats_.count() == 0) return;
  struct Entry {
    double value;
    std::uint64_t seq;
  };
  std::vector<Entry> entries;
  entries.reserve(reservoir_.size() + other.reservoir_.size());
  for (std::size_t i = 0; i < reservoir_.size(); ++i) {
    entries.push_back({reservoir_[i], seqs_[i]});
  }
  for (std::size_t i = 0; i < other.reservoir_.size(); ++i) {
    entries.push_back({other.reservoir_[i], other.seqs_[i]});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.value != b.value ? a.value < b.value : a.seq < b.seq;
            });
  stats_.merge(other.stats_);
  reservoir_.clear();
  seqs_.clear();
  if (entries.size() <= capacity_) {
    for (const Entry& entry : entries) {
      reservoir_.push_back(entry.value);
      seqs_.push_back(entry.seq);
    }
    return;
  }
  // Even stride over the sorted union: keeps the retained sample's
  // quantile shape and is a pure function of the two reservoirs.
  for (std::size_t i = 0; i < capacity_; ++i) {
    const std::size_t pick = i * entries.size() / capacity_;
    reservoir_.push_back(entries[pick].value);
    seqs_.push_back(entries[pick].seq);
  }
}

double Histogram::quantile(double q) const {
  // Degenerate reservoirs first: an empty histogram has no defined
  // quantile (report 0), and a single sample IS every quantile. The
  // guards also keep the interpolation below away from size-1 edge
  // arithmetic (rank is always 0 there, but making the contract explicit
  // costs nothing and is unit-tested).
  if (reservoir_.empty()) return 0.0;
  if (reservoir_.size() == 1) return reservoir_.front();
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const double rank = clamped * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void Histogram::reset() {
  stats_ = OnlineStats{};
  reservoir_.clear();
  seqs_.clear();
  rng_state_ = 0x9e3779b97f4a7c15ULL;
}

Counter& Registry::counter(const std::string& name) {
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  return find_or_create(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  return find_or_create(histograms_, name);
}

void Registry::for_each(
    const std::function<void(const std::string&, double)>& fn) const {
  for (const auto& [name, counter] : counters_) {
    fn(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    fn(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const OnlineStats& stats = histogram->stats();
    if (stats.count() == 0) continue;
    fn(name + ".count", static_cast<double>(stats.count()));
    fn(name + ".mean", stats.mean());
    fn(name + ".min", stats.min());
    fn(name + ".max", stats.max());
    fn(name + ".p50", histogram->p50());
    fn(name + ".p90", histogram->p90());
    fn(name + ".p99", histogram->p99());
  }
}

}  // namespace realtor::obs
