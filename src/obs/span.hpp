// Discovery-episode spans reconstructed from traces.
//
// An episode is the causal arc the paper's survivability argument rests
// on: an overloaded (or warned) node opens a HELP round, the flood
// solicits PLEDGEs that echo the round's id, and the admission controller
// later consults the resulting candidate list to migrate work — so
// "trigger → HELP → PLEDGE → migration" becomes one analyzable unit. The
// protocols stamp every such event with an obs::EpisodeSource id; this
// layer groups the stamped events back into Episode records and derives
// the latencies the end-of-run aggregates cannot show: time from the HELP
// to the first usable PLEDGE, and time from the HELP to the migration it
// enabled.
//
// Works from both trace representations: live TraceEvents (MemorySink,
// in tests) and ParsedEvents re-read from a JSONL file (realtor_trace).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/event_store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {

/// One trace record reduced to the fields span/invariant analysis needs,
/// identical whichever representation it came from. Absent numeric fields
/// read as the documented sentinels, so checks never confuse "missing"
/// with a real 0.
struct SpanEvent {
  SimTime time = 0.0;
  NodeId node = kInvalidNode;
  EventKind kind = EventKind::kCount;
  /// Discovery episode; 0 = outside any episode (push adverts,
  /// unsolicited status pledges, pre-solicitation migrations).
  std::uint64_t episode = 0;
  /// The other node of the record: HELP origin, pledge organizer /
  /// pledger, migration target — whichever one key the kind carries.
  NodeId peer = kInvalidNode;
  /// Advertised free fraction (pledge events); negative = absent.
  double availability = -1.0;
  /// Algorithm-H solicitation interval (help_interval); negative = absent.
  double interval = -1.0;
  /// HELP degree of demand; negative = absent.
  double urgency = -1.0;
  /// help_received only: did the receiver pledge?
  bool answered = false;
  /// Lineage id of this event ("id" field); 0 = no lineage (untraced
  /// producers or kinds outside the causal message path).
  std::uint64_t lineage = 0;
  /// Lineage id of the event that caused this one ("cause" field); 0 =
  /// root of its chain (help_sent, unsolicited sends).
  std::uint64_t cause = 0;
  /// help_sent only: Algorithm-H backoff — how long the interval gate
  /// suppressed qualifying demand before this HELP went out. Negative =
  /// absent (kinds without the field).
  double backoff = -1.0;
};

/// Reduces a live trace record. Every kind normalizes (unknown payload
/// keys are simply ignored).
SpanEvent normalize(const TraceEvent& event);

/// Reduces a JSONL record; false when the kind string is unknown (the
/// event should then be skipped, not treated as data).
bool normalize(const ParsedEvent& event, SpanEvent& out);

std::vector<SpanEvent> normalize_events(const std::vector<TraceEvent>& events);
std::vector<SpanEvent> normalize_events(const std::vector<ParsedEvent>& events);
/// Store-based reduction: payload keys are looked up once as interned ids
/// and kinds come from the interner's cached EventKind — no per-event
/// string comparisons. Unknown kinds are skipped, exactly like the
/// ParsedEvent overload.
std::vector<SpanEvent> normalize_events(const EventStore& store);

/// One reconstructed discovery episode.
struct Episode {
  std::uint64_t id = 0;
  /// The soliciting node (from help_sent; kInvalidNode if the trace
  /// started after the HELP, e.g. a truncated file).
  NodeId origin = kInvalidNode;
  /// Time of the opening help_sent.
  SimTime start_time = 0.0;
  bool started = false;
  double urgency = -1.0;
  std::uint64_t helps_received = 0;
  std::uint64_t pledges_sent = 0;
  std::uint64_t pledges_received = 0;
  SimTime first_pledge_time = -1.0;  // pledge_received at the origin
  std::uint64_t migration_attempts = 0;
  std::uint64_t migration_aborts = 0;
  std::uint64_t migrations = 0;
  /// First migration_attempt stamped with this episode; negative = none.
  SimTime first_attempt_time = -1.0;
  /// First task_admit_migrated stamped with this episode (the admission
  /// decision that consumed the episode's pledges); negative = none.
  SimTime first_admission_time = -1.0;
  /// deadline_miss / unreachable_drop records stamped with this episode.
  std::uint64_t deadline_misses = 0;
  std::uint64_t unreachable_drops = 0;
  SimTime first_migration_time = -1.0;
  NodeId first_migration_target = kInvalidNode;
  std::uint64_t rejections = 0;  // task_rejected stamped with this episode

  bool has_pledge() const { return first_pledge_time >= 0.0; }
  /// HELP-to-first-pledge latency; meaningless unless started && has_pledge.
  SimTime time_to_first_pledge() const {
    return first_pledge_time - start_time;
  }
  bool has_migration() const { return first_migration_time >= 0.0; }
  SimTime time_to_migration() const {
    return first_migration_time - start_time;
  }
  bool has_attempt() const { return first_attempt_time >= 0.0; }
  bool has_admission() const { return first_admission_time >= 0.0; }
};

/// Groups episode-stamped events by id, ascending. Events with episode 0
/// are ignored; events must be in emission (time) order.
std::vector<Episode> build_episodes(const std::vector<SpanEvent>& events);

/// Aggregate latency view over a set of episodes — the percentile report
/// behind `realtor_trace --episodes`.
struct EpisodeSummary {
  std::uint64_t episodes = 0;
  std::uint64_t with_pledge = 0;
  std::uint64_t with_migration = 0;
  Histogram time_to_first_pledge;
  Histogram time_to_migration;
};

EpisodeSummary summarize_episodes(const std::vector<Episode>& episodes);

}  // namespace realtor::obs
