// Structured event tracing.
//
// The simulator's end-of-run aggregates (RunMetrics, MessageLedger) hide
// everything between t=0 and the final table. The tracer makes the
// dynamics the paper argues about — HELP-interval adaptation, community
// churn, evacuation timelines — inspectable: instrumented code emits typed
// records (sim time, node id, event kind, key/value payload) into a
// pluggable TraceSink.
//
// Overhead contract: the default state is "no sink". Every emission site
// is guarded by Tracer::active(), a single pointer test, and TraceEvent is
// a trivially copyable stack value whose payload holds only numbers and
// pointers to static strings — building and emitting an event never
// allocates. Benchmarks therefore pay one predictable branch per site.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

namespace realtor::obs {

/// Allocator of causal discovery-episode ids. An episode is one complete
/// arc of the paper's survivability argument: a threshold-exceeded trigger
/// opens it with a HELP flood, the solicited PLEDGEs echo its id back, and
/// the admission decision / migration outcome close it. Ids start at 1 so
/// 0 can mean "outside any episode" (unsolicited status pledges, push
/// adverts). The counter is atomic (relaxed) so the threaded Agile runtime
/// can share one source across reactor threads; allocation never feeds
/// back into protocol decisions, so traced and untraced runs stay
/// identical.
class EpisodeSource {
 public:
  std::uint64_t next() {
    return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Episodes allocated so far (the last id handed out).
  std::uint64_t issued() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
};

/// Everything the instrumented layers can report. Grouped: protocol
/// events, task/node lifecycle events, engine/sampler records.
enum class EventKind : std::uint8_t {
  // Protocol events.
  kHelpSent = 0,       // HELP flood left this node
  kHelpReceived,       // HELP arrived (answered or not)
  kPledgeSent,         // availability reply / unsolicited status pledge
  kPledgeReceived,     // pledge folded into the pledge list
  kAdvertSent,         // PUSH-based availability flood
  kGossipRound,        // anti-entropy digests sent this round
  kHelpInterval,       // Algorithm H changed its solicitation interval
  kThresholdCrossing,  // Algorithm P's occupancy signal crossed the level
  kCommunityJoin,      // first answer to an organizer's refresh
  kCommunityExpire,    // membership lapsed without a refresh
  kSolicit,            // emergency solicitation (attack warning)
  // Task / node lifecycle events.
  kTaskArrival,
  kTaskAdmitLocal,
  kTaskAdmitMigrated,
  kTaskRejected,
  kTaskCompleted,
  kMigrationAttempt,
  kMigrationAbort,
  kMigrationSuccess,
  kNodeKilled,
  kNodeRestored,
  kEvacuation,
  kEscalation,     // inter-group solicitation (federation runs)
  kDeadlineMiss,   // EDF completion landed past its CUS deadline (agile)
  kUnreachableDrop,  // unicast died at a partition edge (record-and-drop)
  // Engine / sampler records.
  kEngineStep,    // sampled every N processed events
  kNodeSample,    // periodic per-node occupancy/utilization/soft-state
  kSystemSample,  // periodic system-wide gauges (one record per metric)
  // Live telemetry plane (obs/live).
  kLiveTick,      // engine-driven window-advancement boundary (sim time)
  kAlertFiring,   // an alert rule's condition started holding at a tick
  kAlertCleared,  // a firing alert's condition stopped holding
  kCount,
};

/// Stable snake_case name used in the JSONL "kind" field.
const char* to_string(EventKind kind);

/// Inverse of to_string(); returns false for unknown names.
bool parse_event_kind(std::string_view name, EventKind& out);

inline constexpr std::size_t kMaxTraceFields = 8;

/// One typed key/value payload entry. Keys and string values must point to
/// storage that outlives the sink's use of the event (string literals, or
/// registry-owned names for metric samples).
///
/// Deliberately uninitialized: fields live in TraceEvent's fixed array and
/// only entries [0, field_count) are ever written or read, so default
/// construction must not cost a 320-byte clear at every emission site.
/// The value members share storage — with() writes exactly one of them and
/// readers dispatch on `type` to touch only the matching member, so the
/// union keeps every contract while making the field (and therefore the
/// flight recorder's per-event copy) 24 bytes instead of 40.
struct TraceField {
  enum class Type : std::uint8_t { kNone = 0, kUint, kDouble, kString, kBool };

  const char* key;
  Type type;
  union {
    std::uint64_t u;
    double d;
    const char* s;
    bool b;
  };
};
static_assert(sizeof(TraceField) == 24);

/// A trace record: when, where, what, plus a bounded payload. Build with
/// the fluent with() calls; excess fields beyond kMaxTraceFields abort
/// (payloads are chosen statically at the emission site).
struct TraceEvent {
  SimTime time = 0.0;
  /// kInvalidNode marks system-wide records (engine steps, system samples).
  NodeId node = kInvalidNode;
  EventKind kind = EventKind::kCount;
  std::uint32_t field_count = 0;
  /// Entries past field_count are uninitialized — see TraceField.
  std::array<TraceField, kMaxTraceFields> fields;

  TraceEvent() = default;
  TraceEvent(SimTime t, NodeId n, EventKind k) : time(t), node(n), kind(k) {}

  template <typename T>
  TraceEvent& with(const char* key, T value) {
    TraceField& field = next(key);
    if constexpr (std::is_same_v<T, bool>) {
      field.type = TraceField::Type::kBool;
      field.b = value;
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      field.type = TraceField::Type::kUint;
      field.u = static_cast<std::uint64_t>(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      field.type = TraceField::Type::kDouble;
      field.d = value;
    } else {
      static_assert(std::is_convertible_v<T, const char*>,
                    "trace field values are numbers, bools or C strings");
      field.type = TraceField::Type::kString;
      field.s = value;
    }
    return *this;
  }

 private:
  TraceField& next(const char* key);
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay allocation-free");

/// Receiver of trace events. Implementations decide representation
/// (JSONL file, in-memory vector, ...). Sinks used from the threaded
/// Agile runtime must make on_event() thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// In-memory sink for tests and tooling. Not thread-safe: use with the
/// single-threaded simulation harness.
class MemorySink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  std::size_t count(EventKind kind) const;
  /// Events of `node` in emission order (which is time order under the
  /// deterministic engine).
  std::vector<TraceEvent> events_of(NodeId node) const;

  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// The facade instrumented code holds. Default-constructed it is inert:
/// active() is false and emit() is a no-op, which is the zero-overhead
/// null-sink path every benchmark runs on.
class Tracer {
 public:
  bool active() const { return sink_ != nullptr; }

  /// `sink` is borrowed and must outlive all emissions; nullptr disables.
  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void emit(const TraceEvent& event) const {
    if (sink_ != nullptr) sink_->on_event(event);
  }

  void flush() const {
    if (sink_ != nullptr) sink_->flush();
  }

  /// Allocates the next lineage event id (1-based; 0 means "no lineage").
  /// Events that produce messages carry their id in an "id" payload field,
  /// and the message carries it as its cause_id, so receive-side events can
  /// point back at their producer and episodes form an explicit causality
  /// DAG. The counter is per-Tracer (one per Simulation), so sweeps stay
  /// byte-identical across --jobs values; callers only allocate on traced
  /// paths, so untraced runs never touch it. Atomic (relaxed) for the
  /// threaded Agile runtime.
  std::uint64_t issue_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Lineage ids allocated so far (the last id handed out).
  std::uint64_t issued_ids() const {
    return next_id_.load(std::memory_order_relaxed);
  }

 private:
  TraceSink* sink_ = nullptr;
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace realtor::obs
