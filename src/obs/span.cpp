#include "obs/span.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace realtor::obs {
namespace {

bool is_peer_key(std::string_view key) {
  return key == "origin" || key == "organizer" || key == "pledger" ||
         key == "target";
}

void apply_field(SpanEvent& out, std::string_view key, double number,
                 bool boolean, bool is_bool) {
  if (key == "episode") {
    out.episode = static_cast<std::uint64_t>(number);
  } else if (is_peer_key(key)) {
    out.peer = static_cast<NodeId>(number);
  } else if (key == "availability") {
    out.availability = number;
  } else if (key == "interval") {
    out.interval = number;
  } else if (key == "urgency") {
    out.urgency = number;
  } else if (key == "answered" && is_bool) {
    out.answered = boolean;
  } else if (key == "id") {
    out.lineage = static_cast<std::uint64_t>(number);
  } else if (key == "cause") {
    out.cause = static_cast<std::uint64_t>(number);
  } else if (key == "backoff") {
    out.backoff = number;
  }
}

}  // namespace

SpanEvent normalize(const TraceEvent& event) {
  SpanEvent out;
  out.time = event.time;
  out.node = event.node;
  out.kind = event.kind;
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    const TraceField& field = event.fields[i];
    double number = 0.0;
    switch (field.type) {
      case TraceField::Type::kUint:
        number = static_cast<double>(field.u);
        break;
      case TraceField::Type::kDouble:
        number = field.d;
        break;
      default:
        break;
    }
    apply_field(out, field.key, number, field.b,
                field.type == TraceField::Type::kBool);
  }
  return out;
}

bool normalize(const ParsedEvent& event, SpanEvent& out) {
  if (!parse_event_kind(event.kind, out.kind)) return false;
  out.time = event.time;
  out.node = event.node;
  for (const auto& [key, value] : event.fields) {
    apply_field(out, key, value.number, value.boolean,
                value.type == JsonValue::Type::kBool);
  }
  return true;
}

std::vector<SpanEvent> normalize_events(
    const std::vector<TraceEvent>& events) {
  std::vector<SpanEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& event : events) {
    out.push_back(normalize(event));
  }
  return out;
}

std::vector<SpanEvent> normalize_events(
    const std::vector<ParsedEvent>& events) {
  std::vector<SpanEvent> out;
  out.reserve(events.size());
  SpanEvent span;
  for (const ParsedEvent& event : events) {
    span = SpanEvent{};
    if (normalize(event, span)) out.push_back(span);
  }
  return out;
}

std::vector<SpanEvent> normalize_events(const EventStore& store) {
  // The keys apply_field() dispatches on, resolved to interned ids once.
  // Keys the trace never used resolve to kNoStrId, which no stored field
  // carries.
  const StrId episode = store.find_id("episode");
  const StrId origin = store.find_id("origin");
  const StrId organizer = store.find_id("organizer");
  const StrId pledger = store.find_id("pledger");
  const StrId target = store.find_id("target");
  const StrId availability = store.find_id("availability");
  const StrId interval = store.find_id("interval");
  const StrId urgency = store.find_id("urgency");
  const StrId answered = store.find_id("answered");
  const StrId id = store.find_id("id");
  const StrId cause = store.find_id("cause");
  const StrId backoff = store.find_id("backoff");

  std::vector<SpanEvent> out;
  out.reserve(store.size());
  const std::vector<StoredField>& fields = store.fields();
  for (const EventRec& rec : store.records()) {
    const EventKind kind = store.kind_of(rec.kind);
    if (kind == EventKind::kCount) continue;  // unknown kind: skip
    SpanEvent span;
    span.time = rec.time;
    span.node = rec.node;
    span.kind = kind;
    const StoredField* field = fields.data() + rec.field_begin;
    const StoredField* end = field + rec.field_count;
    for (; field != end; ++field) {
      const double number = field->number;  // 0.0 for non-number types
      if (field->key == episode) {
        span.episode = static_cast<std::uint64_t>(number);
      } else if (field->key == origin || field->key == organizer ||
                 field->key == pledger || field->key == target) {
        span.peer = static_cast<NodeId>(number);
      } else if (field->key == availability) {
        span.availability = number;
      } else if (field->key == interval) {
        span.interval = number;
      } else if (field->key == urgency) {
        span.urgency = number;
      } else if (field->key == answered &&
                 field->type == JsonValue::Type::kBool) {
        span.answered = field->boolean;
      } else if (field->key == id) {
        span.lineage = static_cast<std::uint64_t>(number);
      } else if (field->key == cause) {
        span.cause = static_cast<std::uint64_t>(number);
      } else if (field->key == backoff) {
        span.backoff = number;
      }
    }
    out.push_back(span);
  }
  return out;
}

std::vector<Episode> build_episodes(const std::vector<SpanEvent>& events) {
  std::map<std::uint64_t, Episode> by_id;
  for (const SpanEvent& event : events) {
    if (event.episode == 0) continue;
    Episode& episode = by_id[event.episode];
    episode.id = event.episode;
    switch (event.kind) {
      case EventKind::kHelpSent:
        // First help_sent wins: an id is allocated exactly once, so a
        // second sighting can only be a malformed trace — keep the first.
        if (!episode.started) {
          episode.started = true;
          episode.origin = event.node;
          episode.start_time = event.time;
          episode.urgency = event.urgency;
        }
        break;
      case EventKind::kHelpReceived:
        ++episode.helps_received;
        break;
      case EventKind::kPledgeSent:
        ++episode.pledges_sent;
        break;
      case EventKind::kPledgeReceived:
        ++episode.pledges_received;
        if (episode.first_pledge_time < 0.0) {
          episode.first_pledge_time = event.time;
        }
        break;
      case EventKind::kMigrationAttempt:
        ++episode.migration_attempts;
        if (episode.first_attempt_time < 0.0) {
          episode.first_attempt_time = event.time;
        }
        break;
      case EventKind::kTaskAdmitMigrated:
        // Duplicates migration_success for counting, but carries the
        // admission-decision timestamp the stage breakdown needs.
        if (episode.first_admission_time < 0.0) {
          episode.first_admission_time = event.time;
        }
        break;
      case EventKind::kDeadlineMiss:
        ++episode.deadline_misses;
        break;
      case EventKind::kUnreachableDrop:
        ++episode.unreachable_drops;
        break;
      case EventKind::kMigrationAbort:
        ++episode.migration_aborts;
        break;
      case EventKind::kMigrationSuccess:
        ++episode.migrations;
        if (episode.first_migration_time < 0.0) {
          episode.first_migration_time = event.time;
          episode.first_migration_target = event.peer;
        }
        break;
      case EventKind::kTaskRejected:
        ++episode.rejections;
        break;
      default:
        break;
    }
  }
  std::vector<Episode> out;
  out.reserve(by_id.size());
  for (auto& [id, episode] : by_id) {
    out.push_back(episode);
  }
  return out;
}

EpisodeSummary summarize_episodes(const std::vector<Episode>& episodes) {
  EpisodeSummary summary;
  for (const Episode& episode : episodes) {
    ++summary.episodes;
    if (!episode.started) continue;  // latencies need the opening HELP
    if (episode.has_pledge()) {
      ++summary.with_pledge;
      summary.time_to_first_pledge.observe(episode.time_to_first_pledge());
    }
    if (episode.has_migration()) {
      ++summary.with_migration;
      summary.time_to_migration.observe(episode.time_to_migration());
    }
  }
  return summary;
}

}  // namespace realtor::obs
