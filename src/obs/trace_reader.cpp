#include "obs/trace_reader.hpp"

#include <charconv>
#include <fstream>

namespace realtor::obs {
namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

bool fail(const Cursor& cursor, std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + " at offset " + std::to_string(cursor.pos);
  }
  return false;
}

bool parse_string(Cursor& cursor, std::string& out, std::string* error) {
  if (!cursor.consume('"')) return fail(cursor, error, "expected '\"'");
  out.clear();
  while (!cursor.done()) {
    const char c = cursor.text[cursor.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cursor.done()) break;
    const char esc = cursor.text[cursor.pos++];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'u': {
        if (cursor.pos + 4 > cursor.text.size()) {
          return fail(cursor, error, "truncated \\u escape");
        }
        unsigned code = 0;
        const char* first = cursor.text.data() + cursor.pos;
        const auto res = std::from_chars(first, first + 4, code, 16);
        if (res.ptr != first + 4) {
          return fail(cursor, error, "bad \\u escape");
        }
        cursor.pos += 4;
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else {  // non-ASCII escapes: keep a readable placeholder
          out += '?';
        }
        break;
      }
      default:
        return fail(cursor, error, "unknown escape");
    }
  }
  return fail(cursor, error, "unterminated string");
}

bool parse_value(Cursor& cursor, JsonValue& out, std::string* error) {
  cursor.skip_ws();
  if (cursor.done()) return fail(cursor, error, "expected value");
  const char c = cursor.peek();
  if (c == '"') {
    out.type = JsonValue::Type::kString;
    return parse_string(cursor, out.text, error);
  }
  if (cursor.text.substr(cursor.pos, 4) == "true") {
    out.type = JsonValue::Type::kBool;
    out.boolean = true;
    cursor.pos += 4;
    return true;
  }
  if (cursor.text.substr(cursor.pos, 5) == "false") {
    out.type = JsonValue::Type::kBool;
    out.boolean = false;
    cursor.pos += 5;
    return true;
  }
  if (cursor.text.substr(cursor.pos, 4) == "null") {
    out.type = JsonValue::Type::kNull;
    cursor.pos += 4;
    return true;
  }
  const char* first = cursor.text.data() + cursor.pos;
  const char* last = cursor.text.data() + cursor.text.size();
  double number = 0.0;
  const auto res = std::from_chars(first, last, number);
  if (res.ec != std::errc{} || res.ptr == first) {
    return fail(cursor, error, "expected number");
  }
  out.type = JsonValue::Type::kNumber;
  out.number = number;
  cursor.pos += static_cast<std::size_t>(res.ptr - first);
  return true;
}

}  // namespace

const JsonValue* ParsedEvent::find(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double ParsedEvent::number(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  if (value == nullptr || value->type != JsonValue::Type::kNumber) {
    return fallback;
  }
  return value->number;
}

bool parse_jsonl_line(std::string_view line, ParsedEvent& out,
                      std::string* error) {
  out = ParsedEvent{};
  Cursor cursor{line};
  if (!cursor.consume('{')) return fail(cursor, error, "expected '{'");
  bool saw_time = false;
  bool saw_kind = false;
  if (!cursor.consume('}')) {
    while (true) {
      std::string key;
      if (!parse_string(cursor, key, error)) return false;
      if (!cursor.consume(':')) return fail(cursor, error, "expected ':'");
      JsonValue value;
      if (!parse_value(cursor, value, error)) return false;
      if (key == "t" && value.type == JsonValue::Type::kNumber) {
        out.time = value.number;
        saw_time = true;
      } else if (key == "node" && value.type == JsonValue::Type::kNumber) {
        out.node = static_cast<NodeId>(value.number);
      } else if (key == "kind" && value.type == JsonValue::Type::kString) {
        out.kind = value.text;
        saw_kind = true;
      } else {
        out.fields.emplace_back(std::move(key), std::move(value));
      }
      if (cursor.consume(',')) continue;
      if (cursor.consume('}')) break;
      return fail(cursor, error, "expected ',' or '}'");
    }
  }
  cursor.skip_ws();
  if (!cursor.done()) return fail(cursor, error, "trailing garbage");
  if (!saw_time) return fail(cursor, error, "record has no \"t\"");
  if (!saw_kind) return fail(cursor, error, "record has no \"kind\"");
  return true;
}

bool load_trace_file(const std::string& path, std::vector<ParsedEvent>& out,
                     std::string* error) {
  // The strict reader is the tolerant one plus a zero-malformed gate: one
  // loader owns the line walk, and the first malformed line reproduces
  // the historical "line N: reason" failure.
  TraceLoadStats stats;
  if (!load_trace_file(path, out, stats, error)) return false;
  if (stats.malformed > 0) {
    if (error != nullptr) {
      *error = "line " + std::to_string(stats.first_malformed_line) + ": " +
               stats.first_error;
    }
    return false;
  }
  return true;
}

bool load_trace_file(const std::string& path, std::vector<ParsedEvent>& out,
                     TraceLoadStats& stats, std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out.clear();
  stats = TraceLoadStats{};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++stats.lines;
    ParsedEvent event;
    std::string line_error;
    if (!parse_jsonl_line(line, event, &line_error)) {
      ++stats.malformed;
      if (stats.first_malformed_line == 0) {
        stats.first_malformed_line = lineno;
        stats.first_error = std::move(line_error);
      }
      continue;
    }
    ++stats.events;
    out.push_back(std::move(event));
  }
  return true;
}

}  // namespace realtor::obs
