// Periodic time-series sampler driven by the simulation engine.
//
// Every `interval` simulated seconds the sampler runs its probes (harness
// callbacks that emit node_sample records and refresh registry gauges),
// then flattens the attached Registry into one system_sample trace record
// per metric. Sampling only reads state, so enabling it never perturbs a
// run's decisions — traces from the same seed match untraced runs.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace realtor::obs {

class Sampler {
 public:
  /// Called at each sampling tick, before the registry flattening walk.
  using Probe = std::function<void(SimTime now)>;

  /// `registry` may be nullptr (probe-only sampling). All pointers are
  /// borrowed and must outlive the sampler.
  Sampler(sim::Engine& engine, SimTime interval, Tracer& tracer,
          const Registry* registry);

  void add_probe(Probe probe) { probes_.push_back(std::move(probe)); }

  /// Schedules the first tick `interval` seconds from now.
  void start();

  /// Last-sample-at-end: emits one final probe-and-flatten pass at `now`
  /// when the most recent periodic tick landed earlier — the interval not
  /// dividing the horizon, or exceeding it entirely (zero periodic ticks).
  /// The harness calls this once when the run's clock stops, so every
  /// sampled run ends with a sample at its final instant; a periodic tick
  /// that already fired at `now` makes this a no-op. Counts as a tick.
  void finish(SimTime now);

  SimTime interval() const { return interval_; }
  std::uint64_t ticks() const { return ticks_; }
  /// Time of the most recent sample; negative before the first one.
  SimTime last_tick() const { return last_tick_; }

 private:
  void tick();
  /// The probe-and-flatten body shared by tick() and finish().
  void sample(SimTime now);
  /// Stable storage for flattened metric names: TraceField keeps borrowed
  /// const char* slots, so every name a system_sample record mentions is
  /// interned here once.
  const char* intern(const std::string& name);

  sim::Engine& engine_;
  SimTime interval_;
  Tracer& tracer_;
  const Registry* registry_;
  std::vector<Probe> probes_;
  std::deque<std::string> name_arena_;
  std::unordered_map<std::string, const char*> interned_;
  std::uint64_t ticks_ = 0;
  SimTime last_tick_ = -1.0;
};

}  // namespace realtor::obs
