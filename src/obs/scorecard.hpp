// Survivability scorecard: "how well did we survive this attack?" as a
// first-class report derived from any trace (JSONL or flight-recorder
// dump).
//
// Per attack wave (all node_killed records sharing one timestamp):
//   - the warning time (earliest victim solicitation before the kill; the
//     kill itself when the wave struck without grace),
//   - what was at stake (tasks resident on the victims) and what perished,
//   - the recovery work attributed to the wave: discovery episodes opened
//     by victims inside the wave's window, their pledges, and the
//     migrations that re-homed displaced work,
//   - MTTR: warning → last attributed migration_success, i.e. how long
//     until displaced work had found a new home,
//   - deadline misses and partition-dropped unicasts inside the window.
//
// Across all episodes, the discovery→pledge→admission→migration stage
// breakdown as reservoir-histogram percentiles:
//   help_to_pledge          help_sent → first pledge_received
//   pledge_to_admission     first pledge → task_admit_migrated decision
//   admission_to_migration  decision → registered migration_success
//   help_to_migration       the full arc
//
// Rendering is byte-deterministic (std::to_chars shortest doubles, fixed
// field order), so repeated runs of one seed produce identical JSON — the
// property the scorecard tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_reader.hpp"

namespace realtor::obs {

struct AttackReport {
  std::size_t index = 0;
  SimTime warn_time = 0.0;
  SimTime kill_time = 0.0;
  std::vector<NodeId> victims;  // ascending
  /// Tasks that perished with the victims (node_killed "lost").
  std::uint64_t lost = 0;
  /// Evacuation totals over the wave's victims.
  std::uint64_t evac_resident = 0;
  std::uint64_t evac_saved = 0;
  /// Discovery episodes opened by victims inside the wave window.
  std::uint64_t episodes = 0;
  std::uint64_t pledges = 0;  // pledge_received in attributed episodes
  /// migration_success records on victims inside the window.
  std::uint64_t migrations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t unreachable_drops = 0;
  /// warn_time → last attributed migration; negative = nothing re-homed.
  SimTime mttr = -1.0;
  bool has_mttr() const { return mttr >= 0.0; }
  /// No work perished with the nodes.
  bool recovered = false;
};

/// Per-episode deadline-miss / unreachable-drop attribution (only
/// episodes where either count is nonzero).
struct EpisodeAttribution {
  std::uint64_t episode = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t unreachable_drops = 0;
};

struct Scorecard {
  std::uint64_t records = 0;
  std::uint64_t episodes = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t unreachable_drops = 0;
  Histogram help_to_pledge;
  Histogram pledge_to_admission;
  Histogram admission_to_migration;
  Histogram help_to_migration;
  std::vector<AttackReport> attacks;
  std::vector<EpisodeAttribution> episode_attribution;  // ascending id
};

/// Builds the scorecard from a loaded trace (JSONL or flight dump).
/// Events must be in time order (both loaders guarantee it).
Scorecard build_scorecard(const EventStore& store);
/// Compatibility overload: converts into a store first, so both paths run
/// the same implementation.
Scorecard build_scorecard(const std::vector<ParsedEvent>& events);

/// Machine-readable form; byte-identical for identical inputs.
std::string render_scorecard_json(const Scorecard& scorecard);

/// Human-readable form (realtor_trace --scorecard default output).
std::string render_scorecard_text(const Scorecard& scorecard);

}  // namespace realtor::obs
