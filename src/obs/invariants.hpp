// Checkable protocol invariants over traces — the correctness oracle
// behind `realtor_trace --check`.
//
// Each invariant is a property the paper's algorithms guarantee by
// construction; a trace that breaks one is evidence of an implementation
// bug (or a truncated/hand-edited file). The catalog:
//
//   help_interval_bounds       Algorithm H's solicitation interval stays
//                              inside [help_interval_floor,
//                              help_upper_limit] (Fig. 2's Upper_limit and
//                              the floor the reward rule respects).
//   help_interval_step         every interval change is one Fig. 2 move:
//                              grow by alpha (capped at the upper limit) on
//                              timeout, or shrink by beta (floored) on
//                              success — never an arbitrary jump.
//   solicited_pledge_threshold a node only answers HELP while below the
//                              pledge threshold (Fig. 3 first rule), so a
//                              solicited pledge (episode > 0) must
//                              advertise availability above
//                              1 - pledge_threshold. Unsolicited status
//                              pledges (episode 0) are exempt: crossing
//                              *up* deliberately advertises ~0.
//   migration_has_pledge       a migration attributed to a discovery
//                              episode only targets hosts that pledged to
//                              the organizer earlier (the candidate list is
//                              built from pledges). Push/gossip schemes
//                              never solicit, so their migrations carry
//                              episode 0 and are exempt.
//   community_expire_has_join  membership soft state only lapses after it
//                              existed: every community_expire for
//                              (node, organizer) follows a community_join.
//   episode_monotone           a node's successive HELP rounds carry
//                              strictly increasing episode ids (the shared
//                              counter never hands an id out twice).
//   episode_echo               a pledge_received's episode matches a HELP
//                              round previously opened by the receiving
//                              node — pledges cannot answer rounds that
//                              never happened.
#pragma once

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace realtor::obs {

/// Protocol parameters the checks replay. Defaults mirror
/// proto::ProtocolConfig; override when the traced run did.
struct InvariantConfig {
  double initial_help_interval = 1.0;
  double help_upper_limit = 100.0;
  double help_interval_floor = 0.1;
  double alpha = 1.0;
  double beta = 0.5;
  double pledge_threshold = 0.9;
  /// Absolute slack for floating-point comparisons.
  double tolerance = 1e-6;
};

struct Violation {
  /// Catalog name (static storage), e.g. "help_interval_step".
  const char* invariant = "";
  SimTime time = 0.0;
  NodeId node = kInvalidNode;
  /// Human-readable specifics (observed vs expected values).
  std::string detail;
};

/// Runs the whole catalog over a normalized trace (events must be in
/// emission order). Empty result = trace is consistent.
std::vector<Violation> check_invariants(const std::vector<SpanEvent>& events,
                                        const InvariantConfig& config = {});

/// Convenience overloads that normalize first.
std::vector<Violation> check_invariants(const std::vector<TraceEvent>& events,
                                        const InvariantConfig& config = {});
std::vector<Violation> check_invariants(const std::vector<ParsedEvent>& events,
                                        const InvariantConfig& config = {});
std::vector<Violation> check_invariants(const EventStore& store,
                                        const InvariantConfig& config = {});

}  // namespace realtor::obs
