#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <locale>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/format.hpp"
#include "obs/metrics.hpp"

namespace realtor::obs {
namespace {

/// Chain-walk safety cap: a lineage chain longer than this can only be a
/// corrupt trace (cycles are impossible in well-formed output because ids
/// are allocated monotonically and causes point backward).
constexpr std::size_t kMaxChain = 4096;

Phase classify(EventKind from, EventKind to) {
  using K = EventKind;
  if (from == K::kHelpSent && to == K::kHelpReceived) {
    return Phase::kFloodPropagation;
  }
  if (from == K::kHelpReceived && to == K::kPledgeSent) {
    return Phase::kPledgeWait;
  }
  if (from == K::kPledgeSent && to == K::kPledgeReceived) {
    return Phase::kPledgeWait;
  }
  if ((from == K::kPledgeReceived || from == K::kMigrationAbort) &&
      to == K::kMigrationAttempt) {
    return Phase::kAdmissionDecision;
  }
  if (from == K::kMigrationAttempt &&
      (to == K::kMigrationSuccess || to == K::kMigrationAbort)) {
    return Phase::kMigrationTransfer;
  }
  if ((from == K::kMigrationSuccess && to == K::kTaskAdmitMigrated) ||
      (from == K::kMigrationAbort && to == K::kTaskRejected)) {
    return Phase::kAdmissionDecision;
  }
  return Phase::kUnattributed;
}

/// Terminal preference: the admission record that consumed the episode
/// beats the raw migration outcome beats the first returned pledge.
int terminal_rank(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskAdmitMigrated:
      return 3;
    case EventKind::kMigrationSuccess:
      return 2;
    case EventKind::kPledgeReceived:
      return 1;
    default:
      return 0;
  }
}

void append_row(std::ostringstream& out, const char* name,
                const Histogram& h) {
  char row[192];
  const OnlineStats& stats = h.stats();
  // Locale-independent doubles; the %12s widths reproduce the historical
  // %12.3f padding byte for byte.
  char mean[32], p50[32], p90[32], p99[32], max[32];
  format_double(mean, sizeof mean, "%.3f",
                stats.count() > 0 ? stats.mean() * 1e3 : 0.0);
  format_double(p50, sizeof p50, "%.3f", h.p50() * 1e3);
  format_double(p90, sizeof p90, "%.3f", h.p90() * 1e3);
  format_double(p99, sizeof p99, "%.3f", h.p99() * 1e3);
  format_double(max, sizeof max, "%.3f",
                stats.count() > 0 ? stats.max() * 1e3 : 0.0);
  std::snprintf(row, sizeof(row),
                "  %-20s %8llu %12s %12s %12s %12s %12s\n", name,
                static_cast<unsigned long long>(stats.count()), mean, p50,
                p90, p99, max);
  out << row;
}

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kBackoff:
      return "algo_h_backoff";
    case Phase::kFloodPropagation:
      return "flood_propagation";
    case Phase::kPledgeWait:
      return "pledge_wait";
    case Phase::kAdmissionDecision:
      return "admission_decision";
    case Phase::kMigrationTransfer:
      return "migration_transfer";
    case Phase::kUnattributed:
      return "unattributed";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

CriticalPathAnalysis analyze_critical_paths(
    const std::vector<SpanEvent>& events) {
  CriticalPathAnalysis analysis;

  std::unordered_map<std::uint64_t, std::size_t> by_lineage;
  by_lineage.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].lineage != 0) by_lineage.emplace(events[i].lineage, i);
  }

  // Pick each episode's terminal: highest rank, then earliest (events are
  // time-ordered, so the first sighting of a rank is the earliest one).
  std::map<std::uint64_t, std::size_t> terminal_of;  // ordered by episode
  std::map<std::uint64_t, bool> episode_seen;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& event = events[i];
    if (event.episode == 0) continue;
    episode_seen[event.episode] = true;
    const int rank = terminal_rank(event.kind);
    if (rank == 0 || event.lineage == 0) continue;
    const auto it = terminal_of.find(event.episode);
    if (it == terminal_of.end() ||
        rank > terminal_rank(events[it->second].kind)) {
      terminal_of.emplace(event.episode, i).first->second = i;
    }
  }
  analysis.episodes_without_terminal =
      episode_seen.size() - terminal_of.size();

  for (const auto& [episode, terminal_index] : terminal_of) {
    // Walk the cause chain backward from the terminal.
    std::vector<std::size_t> chain;
    std::size_t cursor = terminal_index;
    chain.push_back(cursor);
    while (chain.size() < kMaxChain) {
      const std::uint64_t cause = events[cursor].cause;
      if (cause == 0) break;
      const auto it = by_lineage.find(cause);
      if (it == by_lineage.end()) {
        ++analysis.unresolved_causes;
        break;
      }
      // Stale evidence: an admission may cite the last pledge a node
      // received, which can belong to an earlier solicitation round. The
      // path stays within its own episode, so latency attribution never
      // reaches back across episodes.
      if (events[it->second].episode != episode) break;
      cursor = it->second;
      chain.push_back(cursor);
    }
    std::reverse(chain.begin(), chain.end());

    EpisodePath path;
    path.episode = episode;
    const SpanEvent& root = events[chain.front()];
    const SpanEvent& terminal = events[chain.back()];
    path.origin = root.node;
    path.root_kind = root.kind;
    path.terminal_kind = terminal.kind;
    path.start = root.time;
    path.end = terminal.time;
    if (root.kind == EventKind::kHelpSent && root.backoff > 0.0) {
      path.backoff = root.backoff;
    }
    path.edges.reserve(chain.size() - 1);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const SpanEvent& from = events[chain[i]];
      const SpanEvent& to = events[chain[i + 1]];
      CriticalEdge edge;
      edge.phase = classify(from.kind, to.kind);
      edge.from_kind = from.kind;
      edge.to_kind = to.kind;
      edge.from_node = from.node;
      edge.to_node = to.node;
      edge.from_time = from.time;
      edge.to_time = to.time;
      edge.episode = episode;
      path.edges.push_back(edge);
    }
    analysis.paths.push_back(std::move(path));
  }
  return analysis;
}

std::string render_critical_path(const CriticalPathAnalysis& analysis) {
  std::ostringstream out;
  out.imbue(std::locale::classic());  // no grouping under exotic globals
  out << "critical paths: " << analysis.paths.size() << " episodes ("
      << analysis.episodes_without_terminal << " without terminal, "
      << analysis.unresolved_causes << " unresolved causes)\n";

  Histogram per_phase[static_cast<std::size_t>(Phase::kCount)];
  Histogram totals;
  for (const EpisodePath& path : analysis.paths) {
    totals.observe(path.total());
    if (path.root_kind == EventKind::kHelpSent) {
      per_phase[static_cast<std::size_t>(Phase::kBackoff)].observe(
          path.backoff);
    }
    for (const CriticalEdge& edge : path.edges) {
      per_phase[static_cast<std::size_t>(edge.phase)].observe(
          edge.duration());
    }
  }

  if (analysis.paths.empty()) return out.str();
  out << "  phase                   count      mean_ms       p50_ms"
         "       p90_ms       p99_ms       max_ms\n";
  for (std::size_t p = 0; p < static_cast<std::size_t>(Phase::kCount); ++p) {
    if (per_phase[p].stats().count() == 0) continue;
    append_row(out, to_string(static_cast<Phase>(p)), per_phase[p]);
  }
  append_row(out, "total", totals);
  return out.str();
}

std::string render_blame(const CriticalPathAnalysis& analysis,
                         std::size_t top_k) {
  std::vector<const CriticalEdge*> edges;
  for (const EpisodePath& path : analysis.paths) {
    for (const CriticalEdge& edge : path.edges) edges.push_back(&edge);
  }
  std::sort(edges.begin(), edges.end(),
            [](const CriticalEdge* a, const CriticalEdge* b) {
              if (a->duration() != b->duration()) {
                return a->duration() > b->duration();
              }
              if (a->episode != b->episode) return a->episode < b->episode;
              return a->from_time < b->from_time;
            });
  if (edges.size() > top_k) edges.resize(top_k);

  std::ostringstream out;
  out.imbue(std::locale::classic());  // no grouping under exotic globals
  out << "blame: top " << edges.size() << " slowest edges\n";
  char row[224];
  for (const CriticalEdge* edge : edges) {
    char dur[32], from_t[40], to_t[40];
    format_double(dur, sizeof dur, "%.3f", edge->duration() * 1e3);
    format_double(from_t, sizeof from_t, "%.6f", edge->from_time);
    format_double(to_t, sizeof to_t, "%.6f", edge->to_time);
    std::snprintf(row, sizeof(row),
                  "  %10s ms  ep %-6llu %-18s %s@%u t=%s -> %s@%u "
                  "t=%s\n",
                  dur, static_cast<unsigned long long>(edge->episode),
                  to_string(edge->phase), to_string(edge->from_kind),
                  edge->from_node, from_t, to_string(edge->to_kind),
                  edge->to_node, to_t);
    out << row;
  }
  return out.str();
}

std::vector<std::string> check_critical_paths(
    const CriticalPathAnalysis& analysis) {
  std::vector<std::string> violations;
  char buf[192];
  for (const EpisodePath& path : analysis.paths) {
    double edge_sum = 0.0;
    for (std::size_t i = 0; i < path.edges.size(); ++i) {
      const CriticalEdge& edge = path.edges[i];
      if (edge.to_time < edge.from_time) {
        std::snprintf(buf, sizeof(buf),
                      "episode %llu: edge %zu runs backward in time",
                      static_cast<unsigned long long>(path.episode), i);
        violations.emplace_back(buf);
      }
      if (i > 0 && edge.from_time != path.edges[i - 1].to_time) {
        std::snprintf(buf, sizeof(buf),
                      "episode %llu: edge %zu is not contiguous with its "
                      "predecessor",
                      static_cast<unsigned long long>(path.episode), i);
        violations.emplace_back(buf);
      }
      edge_sum += edge.duration();
    }
    if (std::abs(edge_sum - (path.end - path.start)) > 1e-9) {
      char sum[40], span[40];
      format_double(sum, sizeof sum, "%.9f", edge_sum);
      format_double(span, sizeof span, "%.9f", path.end - path.start);
      std::snprintf(buf, sizeof(buf),
                    "episode %llu: edge durations sum to %s, span is %s",
                    static_cast<unsigned long long>(path.episode), sum,
                    span);
      violations.emplace_back(buf);
    }
    if (path.backoff < 0.0) {
      std::snprintf(buf, sizeof(buf), "episode %llu: negative backoff",
                    static_cast<unsigned long long>(path.episode));
      violations.emplace_back(buf);
    }
  }
  return violations;
}

}  // namespace realtor::obs
