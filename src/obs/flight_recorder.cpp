#include "obs/flight_recorder.hpp"

#include <bit>
#include <cstddef>
#include <cstdio>

#include "common/assert.hpp"

namespace realtor::obs {

std::uint16_t NameTable::intern(const char* text) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  REALTOR_ASSERT_MSG(names_.size() < 0xFFFF, "flight name table overflow");
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(text != nullptr ? text : "");
  ids_.emplace(text, id);
  return id;
}

std::vector<std::string> NameTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_;
}

FlightRing::FlightRing(std::uint64_t source, std::size_t capacity,
                       NameTable& names, bool thread_safe)
    : source_(source),
      names_(names),
      slots_(capacity == 0 ? 1 : capacity),
      thread_safe_(thread_safe) {}

namespace {

// The entire hot path: copy the event header plus only the fields it
// carries into the slot. Two compile-time sizes (≤3 fields covers nearly
// every emission site) so the copies inline to straight wide moves — a
// runtime-length memcpy would cost a libc dispatch per event. Bytes past
// the copy keep a previous occupant's data; snapshot() never reads past
// field_count.
inline void copy_event(const TraceEvent& event, TraceEvent& slot) {
  constexpr std::size_t kSmall =
      offsetof(TraceEvent, fields) + 3 * sizeof(TraceField);
  if (event.field_count <= 3) {
    std::memcpy(static_cast<void*>(&slot), &event, kSmall);
  } else {
    std::memcpy(static_cast<void*>(&slot), &event, sizeof(TraceEvent));
  }
}

}  // namespace

void FlightRing::on_event(const TraceEvent& event) {
  // cursor_ == head_ mod capacity, maintained by wrapping instead of the
  // u64 division a `head % size` would cost on every event.
  if (thread_safe_) {
    std::lock_guard<std::mutex> lock(mutex_);
    copy_event(event, slots_[cursor_]);
    if (++cursor_ == slots_.size()) cursor_ = 0;
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    return;
  }
  copy_event(event, slots_[cursor_]);
  if (++cursor_ == slots_.size()) cursor_ = 0;
  head_.store(head_.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
}

void FlightRing::pack(const TraceEvent& event, FlightRecord& out) const {
  out.time = event.time;
  out.node = event.node;
  out.kind = static_cast<std::uint8_t>(event.kind);
  out.field_count = static_cast<std::uint8_t>(event.field_count);
  for (std::uint32_t i = 0; i < event.field_count; ++i) {
    const TraceField& field = event.fields[i];
    FlightField& packed = out.fields[i];
    packed.key = names_.intern(field.key);
    packed.type = static_cast<std::uint8_t>(field.type);
    switch (field.type) {
      case TraceField::Type::kUint:
        packed.bits = field.u;
        // Lift the episode id into the header for cheap episode scans;
        // the payload keeps the field so round trips stay exact.
        if (field.key != nullptr && field.key[0] == 'e' &&
            std::strcmp(field.key, "episode") == 0) {
          out.episode = field.u;
        }
        break;
      case TraceField::Type::kDouble:
        packed.bits = std::bit_cast<std::uint64_t>(field.d);
        break;
      case TraceField::Type::kString:
        packed.bits = names_.intern(field.s != nullptr ? field.s : "");
        break;
      case TraceField::Type::kBool:
        packed.bits = field.b ? 1 : 0;
        break;
      case TraceField::Type::kNone:
        packed.bits = 0;
        break;
    }
  }
}

FlightRingInfo FlightRing::snapshot(std::vector<FlightRecord>& out) const {
  std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
  if (thread_safe_) lock.lock();
  FlightRingInfo info;
  info.source = source_;
  info.recorded = head_.load(std::memory_order_relaxed);
  const std::uint64_t capacity = slots_.size();
  info.stored = info.recorded < capacity ? info.recorded : capacity;
  info.dropped = info.recorded - info.stored;
  out.clear();
  out.reserve(info.stored);
  for (std::uint64_t i = info.recorded - info.stored; i < info.recorded;
       ++i) {
    // Value-initialized record: unused field slots and padding come out
    // zero, so dumps of identical runs stay byte-identical and never leak
    // a previous slot occupant's bytes.
    FlightRecord record{};
    pack(slots_[i % capacity], record);
    out.push_back(record);
  }
  return info;
}

FlightRing& FlightRecorder::ring(std::uint64_t source, bool thread_safe) {
  for (const auto& ring : rings_) {
    if (ring->source() == source) return *ring;
  }
  rings_.push_back(std::make_unique<FlightRing>(source, capacity_, names_,
                                                thread_safe));
  return *rings_.back();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->recorded();
  return total;
}

std::uint64_t FlightRecorder::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

namespace {

template <typename T>
void write_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* bytes = reinterpret_cast<const char*>(&value);
  out.append(bytes, sizeof(T));
}

}  // namespace

bool FlightRecorder::dump(const std::string& path, std::string* error) const {
  // Serialize into memory first so a mid-flight dump (attack trigger)
  // costs one buffered write, then swap the file in atomically enough for
  // our single-process uses (plain truncate + write).
  // Snapshot every ring BEFORE serializing the name table: packing is
  // what interns keys, so the table is only complete afterwards.
  std::vector<FlightRingInfo> infos(rings_.size());
  std::vector<std::vector<FlightRecord>> records(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    infos[i] = rings_[i]->snapshot(records[i]);
  }

  std::string buffer;
  buffer.append(kFlightMagic, sizeof(kFlightMagic));

  const std::vector<std::string> names = names_.snapshot();
  write_pod(buffer, static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    REALTOR_ASSERT_MSG(name.size() <= 0xFFFF, "flight name too long");
    write_pod(buffer, static_cast<std::uint16_t>(name.size()));
    buffer.append(name);
  }

  write_pod(buffer, static_cast<std::uint32_t>(rings_.size()));
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    write_pod(buffer, infos[i]);
    for (const FlightRecord& record : records[i]) {
      write_pod(buffer, record);
    }
  }

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  const std::size_t written =
      std::fwrite(buffer.data(), 1, buffer.size(), file);
  const bool ok = written == buffer.size() && std::fclose(file) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

FlightDumpSink::FlightDumpSink(std::string path, std::size_t capacity)
    : path_(std::move(path)), recorder_(capacity) {
  recorder_.ring(0);  // create up front: on_event must not mutate rings_
}

void FlightDumpSink::flush() {
  dumped_ = true;
  recorder_.dump(path_);
}

FlightDumpSink::~FlightDumpSink() {
  if (!dumped_) recorder_.dump(path_);
}

}  // namespace realtor::obs
