// Always-on binary flight recorder.
//
// JSONL tracing makes every run inspectable but costs a string format and
// a stream write per event — far too much to leave enabled at the 10k-node
// scale. The flight recorder is the cheap alternative that can stay on:
// each source (one per simulation, one per agile host) copies raw trace
// events into a bounded ring that overwrites its oldest entries, so
// steady-state cost is one bounded memcpy per event (header plus only the
// fields the event carries) and memory stays capped at capacity × slot
// size. When something interesting happens (an attack wave, end of run)
// the rings are packed into canonical fixed-width records and dumped to a
// compact binary file that flight_reader.hpp converts back into the exact
// event model the JSONL pipeline produces — realtor_trace, the span
// builder and the invariant checker run unchanged on dumps.
//
// No strings and no hashing on the hot path: payload keys and string
// values are const char* pointers to static storage (the TraceField
// contract), so the ring stores the pointers as-is and defers interning
// them into the dump's shared name table (16-bit ids, written once into
// the header) to dump time.
//
// Record layout (native-endian, fixed width):
//   FileHeader   magic "RLTRFLT1", name table, ring count
//   per ring     source id, recorded / dropped / stored counters,
//                `stored` Records oldest → newest
//   Record       {f64 time, u64 episode, u32 node, u8 kind,
//                 u8 field_count, u16 pad, 8 × Field} — 152 bytes
//   Field        {u64 bits, u16 key id, u8 type, 5 pad bytes} — 16 bytes
//
// The episode header slot duplicates the "episode" payload field (when the
// event carries one) so scans can filter by episode without touching the
// payload; the reader reconstructs events from the payload alone, keeping
// binary → JSONL round trips field-for-field identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace realtor::obs {

inline constexpr char kFlightMagic[8] = {'R', 'L', 'T', 'R',
                                         'F', 'L', 'T', '1'};
inline constexpr std::size_t kDefaultFlightCapacity = 65536;

/// Interns const char* → dense u16 id, first-encounter order. Two pointers
/// with equal content get distinct ids (only content matters to the
/// reader, which maps ids back to the stored bytes). Thread-safe with a
/// plain mutex — interning only happens at snapshot()/dump() time, never
/// on the event hot path.
class NameTable {
 public:
  std::uint16_t intern(const char* text);
  /// Stable snapshot of the interned strings, id order.
  std::vector<std::string> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<const char*, std::uint16_t> ids_;
  std::vector<std::string> names_;
};

/// One packed payload entry: the value's raw bits plus the interned key.
/// u64 alignment pads the tail; the padding is zero-initialized so dumps
/// of one run are byte-identical.
struct FlightField {
  std::uint64_t bits = 0;
  std::uint16_t key = 0;
  std::uint8_t type = 0;  // TraceField::Type
  std::array<std::uint8_t, 5> pad{};
};
static_assert(sizeof(FlightField) == 16);

/// One packed trace record. kInvalidNode is stored as 0xFFFFFFFF.
struct FlightRecord {
  double time = 0.0;
  std::uint64_t episode = 0;
  std::uint32_t node = 0;
  std::uint8_t kind = 0;
  std::uint8_t field_count = 0;
  std::uint16_t pad = 0;
  std::array<FlightField, kMaxTraceFields> fields{};
};
static_assert(sizeof(FlightRecord) == 24 + 16 * kMaxTraceFields);

/// Per-ring counters as serialized into a dump.
struct FlightRingInfo {
  std::uint64_t source = 0;
  std::uint64_t recorded = 0;  // total on_event() calls
  std::uint64_t dropped = 0;   // overwritten by wrap-around
  std::uint64_t stored = 0;    // records present in the dump
};

/// Fixed-capacity overwrite-oldest ring behind the TraceSink interface.
/// The hot path is "record now, understand later": on_event() copies the
/// raw TraceEvent (header plus the fields it actually carries — pointers
/// to static strings stay pointers) into the next slot and bumps a
/// counter. Interning, episode lifting and canonical FlightRecord packing
/// all happen at snapshot()/dump() time, which runs once per attack or
/// exit rather than once per event. Single-writer by default (the
/// deterministic simulation); pass thread_safe=true when the writer and
/// the dumper are different threads (agile: reactor threads write, the
/// driver dumps).
class FlightRing final : public TraceSink {
 public:
  FlightRing(std::uint64_t source, std::size_t capacity, NameTable& names,
             bool thread_safe = false);

  void on_event(const TraceEvent& event) override;

  std::uint64_t source() const { return source_; }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t head = recorded();
    return head > slots_.size() ? head - slots_.size() : 0;
  }

  /// Current content oldest → newest packed into canonical FlightRecords,
  /// plus the counters at snapshot time.
  FlightRingInfo snapshot(std::vector<FlightRecord>& out) const;

 private:
  void pack(const TraceEvent& event, FlightRecord& out) const;

  std::uint64_t source_;
  NameTable& names_;
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::size_t cursor_ = 0;  // head_ mod capacity, wrap-maintained
  bool thread_safe_;
  mutable std::mutex mutex_;  // used only when thread_safe_
};

/// A set of rings sharing one name table, dumpable as one file.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity_per_ring =
                              kDefaultFlightCapacity)
      : capacity_(capacity_per_ring == 0 ? 1 : capacity_per_ring) {}

  /// Creates (first call) or returns the ring for `source`. Rings live as
  /// long as the recorder; creation is not thread-safe — make every ring
  /// before the writers start.
  FlightRing& ring(std::uint64_t source, bool thread_safe = false);

  std::size_t capacity_per_ring() const { return capacity_; }
  std::size_t ring_count() const { return rings_.size(); }
  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

  /// Writes every ring's current content to `path`. Safe to call
  /// mid-flight (attack dumps) and again later (exit dump).
  bool dump(const std::string& path, std::string* error = nullptr) const;

 private:
  std::size_t capacity_;
  NameTable names_;
  std::vector<std::unique_ptr<FlightRing>> rings_;
};

/// Owning single-ring recorder that dumps to a fixed path on flush() (and
/// on destruction when never flushed) — the per-run sink shape sweeps
/// need: experiment::run_one flushes after the run and destroys the sink.
class FlightDumpSink final : public TraceSink {
 public:
  FlightDumpSink(std::string path, std::size_t capacity);

  void on_event(const TraceEvent& event) override {
    recorder_.ring(0).on_event(event);
  }
  void flush() override;
  ~FlightDumpSink() override;

  const FlightRecorder& recorder() const { return recorder_; }

 private:
  std::string path_;
  FlightRecorder recorder_;
  bool dumped_ = false;
};

}  // namespace realtor::obs
