// Reader for JSONL traces written by JsonlSink.
//
// A deliberately small flat-object JSON parser: every line the sink emits
// is one object whose values are numbers, strings, booleans or null. The
// reader is what `realtor_trace` and the tests build on, and it rejects
// malformed lines with a positioned error instead of guessing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace realtor::obs {

struct JsonValue {
  enum class Type : std::uint8_t { kNull = 0, kNumber, kString, kBool };
  Type type = Type::kNull;
  double number = 0.0;
  std::string text;
  bool boolean = false;
};

/// One parsed trace record. "t", "node" and "kind" are lifted out of the
/// payload; everything else stays in `fields` in line order.
struct ParsedEvent {
  double time = 0.0;
  NodeId node = kInvalidNode;  // absent for system-wide records
  std::string kind;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(std::string_view key) const;
  /// Numeric field access; `fallback` when missing or non-numeric.
  double number(std::string_view key, double fallback = 0.0) const;
};

/// Parses one JSONL line. On failure returns false and, when `error` is
/// non-null, stores a description including the byte offset.
bool parse_jsonl_line(std::string_view line, ParsedEvent& out,
                      std::string* error = nullptr);

/// Reads a whole trace file; stops at the first malformed line. `error`
/// (when non-null) reports "<line-number>: <reason>" on failure; an
/// unreadable path is also a failure.
bool load_trace_file(const std::string& path, std::vector<ParsedEvent>& out,
                     std::string* error = nullptr);

/// What tolerant loading saw: non-empty lines that failed to parse are
/// skipped but counted, never silently dropped — realtor_trace reports
/// the count and --check fails when it is nonzero.
struct TraceLoadStats {
  std::size_t lines = 0;      // non-empty lines seen
  std::size_t events = 0;     // lines parsed into events
  std::size_t malformed = 0;  // lines skipped (lines - events)
  std::size_t first_malformed_line = 0;  // 1-based; 0 = none
  std::string first_error;
};

/// Tolerant variant: malformed lines are counted in `stats` and skipped
/// instead of aborting the load. Returns false only when the path cannot
/// be read.
bool load_trace_file(const std::string& path, std::vector<ParsedEvent>& out,
                     TraceLoadStats& stats, std::string* error = nullptr);

}  // namespace realtor::obs
