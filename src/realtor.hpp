// Umbrella header: the public surface of the REALTOR reproduction.
//
//   #include "realtor.hpp"
//
// pulls in everything a downstream user needs to run discovery
// experiments (discrete-event) or the threaded Agile Objects cluster.
// Individual headers remain includable on their own; prefer them in code
// that cares about compile times.
#pragma once

// Core contribution: the discovery protocols.
#include "proto/config.hpp"            // IWYU pragma: export
#include "proto/discovery_protocol.hpp"  // IWYU pragma: export
#include "proto/factory.hpp"           // IWYU pragma: export
#include "proto/message.hpp"           // IWYU pragma: export

// Experiment harness (the paper's §5 evaluation).
#include "experiment/figures.hpp"      // IWYU pragma: export
#include "experiment/report.hpp"       // IWYU pragma: export
#include "experiment/scenario.hpp"     // IWYU pragma: export
#include "experiment/simulation.hpp"   // IWYU pragma: export
#include "experiment/sweep.hpp"        // IWYU pragma: export

// Threaded Agile Objects runtime (the paper's §6 measurement).
#include "agile/cluster.hpp"           // IWYU pragma: export

// Workload trace tooling.
#include "trace/workload_csv.hpp"      // IWYU pragma: export
