#include "node/monitor.hpp"

namespace realtor::node {

void UtilizationMonitor::sample(SimTime now, const Host& host) {
  const double occ = host.occupancy();
  occupancy_.update(now, occ);
  busy_.update(now, host.busy() ? 1.0 : 0.0);
  samples_.add(occ);
}

void UtilizationMonitor::reset() {
  occupancy_.reset();
  busy_.reset();
  samples_.reset();
}

}  // namespace realtor::node
