// Threshold-crossing detector.
//
// Both Algorithm H ("resource usage would exceed a threshold level") and
// Algorithm P ("whenever the resource availability changes across the
// threshold level") are driven by the occupancy signal crossing a fixed
// level. The detector is edge-triggered: it reports a crossing only when
// the side of the threshold changes between consecutive samples, which is
// what keeps adaptive-PUSH traffic proportional to status *changes* rather
// than to load itself.
#pragma once

#include <cstdint>

namespace realtor::node {

enum class Crossing {
  kNone,  // same side as the previous sample
  kUp,    // below -> at-or-above threshold
  kDown,  // at-or-above -> below threshold
};

class ThresholdDetector {
 public:
  explicit ThresholdDetector(double threshold);

  /// Feeds the next occupancy sample; the first sample sets the initial
  /// side and never reports a crossing.
  Crossing update(double value);

  double threshold() const { return threshold_; }
  /// Side of the last sample (false until the first sample arrives).
  bool above() const { return above_; }
  bool primed() const { return primed_; }

  /// Lifetime crossing tallies (telemetry; reset() does not clear them —
  /// a killed node's history of crossings is still history).
  std::uint64_t up_count() const { return up_count_; }
  std::uint64_t down_count() const { return down_count_; }

  void reset();

 private:
  double threshold_;
  bool primed_ = false;
  bool above_ = false;
  std::uint64_t up_count_ = 0;
  std::uint64_t down_count_ = 0;
};

}  // namespace realtor::node
