#include "node/host.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::node {
namespace {
// Double sums drift by ulps over millions of enqueues; a fixed slack keeps
// "exactly full" admissible without ever letting a real overload through.
constexpr double kCapacitySlack = 1e-9;
}  // namespace

Host::Host(sim::Engine& engine, NodeId id, double capacity_seconds,
           const HostResources& resources)
    : engine_(engine), id_(id), capacity_(capacity_seconds),
      resources_(resources) {
  REALTOR_ASSERT(capacity_ > 0.0);
  REALTOR_ASSERT(resources_.bandwidth_capacity > 0.0);
}

double Host::backlog_seconds() const {
  double backlog = queued_work_;
  if (busy_) {
    backlog += completion_time_ - engine_.now();
  }
  return backlog > 0.0 ? backlog : 0.0;
}

bool Host::would_fit(double size_seconds) const {
  REALTOR_ASSERT(size_seconds > 0.0);
  return backlog_seconds() + size_seconds <= capacity_ + kCapacitySlack;
}

bool Host::can_accept(const Task& task) const {
  if (!would_fit(task.size_seconds)) return false;
  if (task.min_security > resources_.security_level) return false;
  if (task.bandwidth_share > 0.0 &&
      bandwidth_in_use_ + task.bandwidth_share >
          resources_.bandwidth_capacity + kCapacitySlack) {
    return false;
  }
  return true;
}

double Host::bandwidth_utilization() const {
  return bandwidth_in_use_ / resources_.bandwidth_capacity;
}

double Host::bottleneck_occupancy() const {
  const double cpu = occupancy();
  const double bw = bandwidth_utilization();
  return cpu > bw ? cpu : bw;
}

bool Host::try_enqueue(const Task& task) {
  if (!can_accept(task)) return false;
  bandwidth_in_use_ += task.bandwidth_share;
  if (!busy_) {
    REALTOR_ASSERT(queue_.empty());
    busy_ = true;
    in_service_ = task;
    completion_time_ = engine_.now() + task.size_seconds;
    completion_event_ =
        engine_.schedule_at(completion_time_, [this] { on_completion(); });
  } else {
    queue_.push_back(task);
    queued_work_ += task.size_seconds;
  }
  notify_status();
  return true;
}

std::size_t Host::clear() { return drain().size(); }

std::vector<Task> Host::drain() {
  std::vector<Task> out;
  out.reserve(queue_.size() + 1);
  if (busy_) {
    engine_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
    busy_ = false;
    Task partial = in_service_;
    partial.size_seconds = completion_time_ - engine_.now();
    // A task at its exact completion instant has no remaining state to move.
    if (partial.size_seconds > 0.0) {
      out.push_back(partial);
    }
  }
  for (const Task& task : queue_) {
    out.push_back(task);
  }
  queue_.clear();
  queued_work_ = 0.0;
  bandwidth_in_use_ = 0.0;  // every resident task leaves with its share
  notify_status();
  return out;
}

std::optional<Task> Host::pop_newest_queued() {
  if (queue_.empty()) return std::nullopt;
  Task task = queue_.back();
  queue_.pop_back();
  queued_work_ -= task.size_seconds;
  if (queued_work_ < 0.0) queued_work_ = 0.0;
  bandwidth_in_use_ -= task.bandwidth_share;
  if (bandwidth_in_use_ < 0.0) bandwidth_in_use_ = 0.0;
  notify_status();
  return task;
}

void Host::set_status_listener(StatusListener listener) {
  status_listener_ = std::move(listener);
}

void Host::set_completion_listener(CompletionListener listener) {
  completion_listener_ = std::move(listener);
}

void Host::start_next() {
  REALTOR_ASSERT(!busy_);
  REALTOR_ASSERT(!queue_.empty());
  busy_ = true;
  in_service_ = queue_.front();
  queue_.pop_front();
  queued_work_ -= in_service_.size_seconds;
  if (queued_work_ < 0.0) queued_work_ = 0.0;  // absorb rounding residue
  completion_time_ = engine_.now() + in_service_.size_seconds;
  completion_event_ =
      engine_.schedule_at(completion_time_, [this] { on_completion(); });
}

void Host::on_completion() {
  REALTOR_ASSERT(busy_);
  completion_event_ = kInvalidEvent;
  busy_ = false;
  ++completed_count_;
  completed_work_ += in_service_.size_seconds;
  bandwidth_in_use_ -= in_service_.bandwidth_share;
  if (bandwidth_in_use_ < 0.0) bandwidth_in_use_ = 0.0;
  const Task finished = in_service_;
  if (tracer_ != nullptr && tracer_->active()) {
    tracer_->emit(
        obs::TraceEvent(engine_.now(), id_, obs::EventKind::kTaskCompleted)
            .with("task", finished.id)
            .with("size", finished.size_seconds)
            .with("response", engine_.now() - finished.arrival_time)
            .with("migrations", finished.migrations));
  }
  if (!queue_.empty()) {
    start_next();
  }
  notify_status();
  if (completion_listener_) {
    completion_listener_(*this, finished);
  }
}

void Host::notify_status() {
  if (status_listener_) {
    status_listener_(*this);
  }
}

}  // namespace realtor::node
