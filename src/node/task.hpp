// The unit of work. §5: "Task lengths are defined in seconds ... a task with
// value 2 holds the CPU on the node for 2 seconds."
#pragma once

#include "common/types.hpp"

namespace realtor::node {

struct Task {
  TaskId id = 0;
  /// CPU seconds the task holds the (unit-rate) server.
  double size_seconds = 0.0;
  /// System arrival instant (before any migration).
  SimTime arrival_time = 0.0;
  /// Node the workload generator originally assigned the task to.
  NodeId origin = kInvalidNode;
  /// How many times this task has been migrated (0 = admitted locally).
  std::uint32_t migrations = 0;

  // --- multi-resource extension (paper §5 footnote 3) -------------------
  /// Fraction of the host NIC held while the task is resident (queued or
  /// in service). 0 disables the bandwidth dimension for this task.
  double bandwidth_share = 0.0;
  /// Minimum host security level required; 0 accepts any host.
  std::uint8_t min_security = 0;
};

}  // namespace realtor::node
