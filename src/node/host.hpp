// Single-server host with a bounded work queue.
//
// §5: each node has "a single queue of 100 seconds to process tasks"; the
// queue is measured in seconds of unfinished work (including the remaining
// service of the task holding the CPU). A task fits iff the backlog plus
// its own length stays within capacity. Occupancy fraction backlog/capacity
// is the "resource usage" that Algorithms H and P compare against their
// thresholds.
//
// Multi-resource extension (§5 footnote 3): the host additionally owns a
// bandwidth capacity (shares held by every resident task, released on
// completion) and a security level (tasks demanding a higher level are
// refused). Defaults disable both, reproducing the paper's CPU-only model
// exactly.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "node/task.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace realtor::node {

/// Non-CPU resources of a host; defaults reproduce the CPU-only model.
struct HostResources {
  /// Total NIC capacity in task shares (1.0 = whole NIC).
  double bandwidth_capacity = 1.0;
  /// Security level offered to components (tasks require >= their min).
  std::uint8_t security_level = 255;
};

class Host {
 public:
  /// Fired after any backlog change (admission, completion, clear).
  using StatusListener = std::function<void(const Host&)>;
  /// Fired when a task finishes service.
  using CompletionListener = std::function<void(const Host&, const Task&)>;

  Host(sim::Engine& engine, NodeId id, double capacity_seconds,
       const HostResources& resources = HostResources{});
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  NodeId id() const { return id_; }
  double capacity_seconds() const { return capacity_; }

  /// Unfinished work: queued sizes plus the in-service remainder.
  double backlog_seconds() const;

  /// backlog / capacity, in [0, 1].
  double occupancy() const { return backlog_seconds() / capacity_; }

  /// True iff `size_seconds` of additional CPU work fits right now
  /// (CPU dimension only).
  bool would_fit(double size_seconds) const;

  /// Full multi-resource admission test: CPU fit, bandwidth fit, and
  /// security clearance.
  bool can_accept(const Task& task) const;

  /// Admits the task if can_accept(); starts service if the server is
  /// idle and holds its bandwidth share until completion.
  bool try_enqueue(const Task& task);

  bool busy() const { return busy_; }
  std::size_t queued_count() const { return queue_.size(); }

  /// Bandwidth shares held by resident tasks, over capacity, in [0, 1].
  double bandwidth_utilization() const;
  std::uint8_t security_level() const { return resources_.security_level; }
  const HostResources& resources() const { return resources_; }

  /// Occupancy of the binding resource dimension: max of CPU occupancy
  /// and bandwidth utilization. Equals occupancy() in the CPU-only model.
  double bottleneck_occupancy() const;

  std::uint64_t completed_count() const { return completed_count_; }
  double completed_work_seconds() const { return completed_work_; }

  /// Drops all work (queued and in service) — models the node being killed
  /// by an attack. Returns the number of tasks lost.
  std::size_t clear();

  /// Removes all work and returns it for evacuation to other hosts. The
  /// in-service task comes back with its size reduced to the remaining
  /// service time — exactly the paper's migratable-component state, "the
  /// current value of un-expired time" (§6).
  std::vector<Task> drain();

  /// Removes and returns the newest *queued* task (never the one in
  /// service) — the cheapest component to relocate for location
  /// elusiveness (§3: application-triggered migration). nullopt when
  /// nothing is queued.
  std::optional<Task> pop_newest_queued();

  void set_status_listener(StatusListener listener);
  void set_completion_listener(CompletionListener listener);

  /// Attaches a borrowed tracer for task_completed records (nullptr
  /// detaches — the zero-overhead default).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  sim::Engine& engine() const { return engine_; }

 private:
  void start_next();
  void on_completion();
  void notify_status();

  sim::Engine& engine_;
  NodeId id_;
  double capacity_;
  HostResources resources_;
  double bandwidth_in_use_ = 0.0;

  std::deque<Task> queue_;
  double queued_work_ = 0.0;

  bool busy_ = false;
  Task in_service_{};
  SimTime completion_time_ = 0.0;
  EventId completion_event_ = kInvalidEvent;

  std::uint64_t completed_count_ = 0;
  double completed_work_ = 0.0;

  StatusListener status_listener_;
  CompletionListener completion_listener_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace realtor::node
