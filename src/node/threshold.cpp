#include "node/threshold.hpp"

#include "common/assert.hpp"

namespace realtor::node {

ThresholdDetector::ThresholdDetector(double threshold)
    : threshold_(threshold) {
  REALTOR_ASSERT(threshold_ > 0.0);
}

Crossing ThresholdDetector::update(double value) {
  const bool now_above = value >= threshold_;
  if (!primed_) {
    primed_ = true;
    above_ = now_above;
    return Crossing::kNone;
  }
  if (now_above == above_) return Crossing::kNone;
  above_ = now_above;
  if (now_above) {
    ++up_count_;
    return Crossing::kUp;
  }
  ++down_count_;
  return Crossing::kDown;
}

void ThresholdDetector::reset() {
  primed_ = false;
  above_ = false;
}

}  // namespace realtor::node
