// Per-host utilization / occupancy telemetry for the experiment reports.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"
#include "node/host.hpp"

namespace realtor::node {

class UtilizationMonitor {
 public:
  /// Samples `host` on every status change; call attach() once after the
  /// host's other listeners are wired (the monitor chains, it does not
  /// replace them).
  UtilizationMonitor() = default;

  /// Records the current occupancy and busy state at time `now`.
  void sample(SimTime now, const Host& host);

  /// Time-average occupancy fraction over the observation window ending at
  /// `now`.
  double average_occupancy(SimTime now) const {
    return occupancy_.average(now);
  }

  /// Fraction of time the server was busy (utilization).
  double utilization(SimTime now) const { return busy_.average(now); }

  /// Distribution of occupancy values seen at status changes.
  const OnlineStats& occupancy_samples() const { return samples_; }

  void reset();

 private:
  TimeWeightedStats occupancy_;
  TimeWeightedStats busy_;
  OnlineStats samples_;
};

}  // namespace realtor::node
