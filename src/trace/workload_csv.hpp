// Workload trace persistence: save a generated arrival stream to CSV and
// replay it later — byte-identical workloads across machines, protocol
// configurations, and the two runtimes (discrete-event and threaded).
//
// Format: header line `id,time,size_seconds,node,bandwidth,min_security`
// followed by one row per arrival, times in seconds with full double
// precision.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/arrivals.hpp"

namespace realtor::trace {

/// Arrival extended with the multi-resource demand fields so traces are
/// self-contained.
struct TraceRecord {
  sim::Arrival arrival;
  double bandwidth_share = 0.0;
  std::uint8_t min_security = 0;
};

/// Outcome of a load attempt: the records, or an error description.
struct LoadResult {
  std::vector<TraceRecord> records;
  bool ok = false;
  std::string error;  // empty on success
};

void save_csv(std::ostream& os, const std::vector<TraceRecord>& records);

/// Returns false on I/O failure.
bool save_csv_file(const std::string& path,
                   const std::vector<TraceRecord>& records);

/// Parses a trace; rejects malformed rows, unsorted timestamps, and
/// negative sizes with a line-numbered error.
LoadResult load_csv(std::istream& is);
LoadResult load_csv_file(const std::string& path);

/// Convenience: wraps plain arrivals as trace records.
std::vector<TraceRecord> from_arrivals(const std::vector<sim::Arrival>& a);
std::vector<sim::Arrival> to_arrivals(const std::vector<TraceRecord>& r);

}  // namespace realtor::trace
