#include "trace/workload_csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/format.hpp"

namespace realtor::trace {
namespace {

constexpr const char* kHeader = "id,time,size_seconds,node,bandwidth,min_security";

bool parse_double(const std::string& field, double& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(const std::string& field, std::uint64_t& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

LoadResult fail(std::size_t line, const std::string& what) {
  LoadResult result;
  result.ok = false;
  result.error = "line " + std::to_string(line) + ": " + what;
  return result;
}

}  // namespace

void save_csv(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << kHeader << '\n';
  char buffer[192];
  for (const TraceRecord& r : records) {
    // %.17g round-trips doubles exactly. format_double keeps the radix a
    // '.' whatever LC_NUMERIC says — load_csv parses with from_chars,
    // which only accepts '.'.
    char time[40], size[40], bandwidth[40];
    format_double(time, sizeof time, "%.17g", r.arrival.time);
    format_double(size, sizeof size, "%.17g", r.arrival.size_seconds);
    format_double(bandwidth, sizeof bandwidth, "%.17g", r.bandwidth_share);
    std::snprintf(buffer, sizeof(buffer), "%llu,%s,%s,%u,%s,%u\n",
                  static_cast<unsigned long long>(r.arrival.id),
                  time, size, r.arrival.node, bandwidth,
                  static_cast<unsigned>(r.min_security));
    os << buffer;
  }
}

bool save_csv_file(const std::string& path,
                   const std::vector<TraceRecord>& records) {
  std::ofstream file(path);
  if (!file) return false;
  save_csv(file, records);
  return static_cast<bool>(file);
}

LoadResult load_csv(std::istream& is) {
  LoadResult result;
  std::string line;
  std::size_t line_number = 0;

  if (!std::getline(is, line)) {
    return fail(1, "empty input");
  }
  ++line_number;
  if (line != kHeader) {
    return fail(1, "unexpected header '" + line + "'");
  }

  SimTime previous_time = -1.0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string fields[6];
    for (int i = 0; i < 6; ++i) {
      if (!std::getline(row, fields[i], ',')) {
        return fail(line_number, "expected 6 fields");
      }
    }
    std::string excess;
    if (std::getline(row, excess, ',')) {
      return fail(line_number, "too many fields");
    }

    TraceRecord record;
    std::uint64_t id = 0, node = 0, security = 0;
    if (!parse_u64(fields[0], id)) return fail(line_number, "bad id");
    if (!parse_double(fields[1], record.arrival.time)) {
      return fail(line_number, "bad time");
    }
    if (!parse_double(fields[2], record.arrival.size_seconds)) {
      return fail(line_number, "bad size");
    }
    if (!parse_u64(fields[3], node)) return fail(line_number, "bad node");
    if (!parse_double(fields[4], record.bandwidth_share)) {
      return fail(line_number, "bad bandwidth");
    }
    if (!parse_u64(fields[5], security) || security > 255) {
      return fail(line_number, "bad security level");
    }
    if (record.arrival.size_seconds <= 0.0) {
      return fail(line_number, "non-positive size");
    }
    if (record.arrival.time < previous_time) {
      return fail(line_number, "timestamps not sorted");
    }
    previous_time = record.arrival.time;
    record.arrival.id = id;
    record.arrival.node = static_cast<NodeId>(node);
    record.min_security = static_cast<std::uint8_t>(security);
    result.records.push_back(record);
  }
  result.ok = true;
  return result;
}

LoadResult load_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    LoadResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  return load_csv(file);
}

std::vector<TraceRecord> from_arrivals(const std::vector<sim::Arrival>& a) {
  std::vector<TraceRecord> out;
  out.reserve(a.size());
  for (const sim::Arrival& arrival : a) {
    TraceRecord record;
    record.arrival = arrival;
    out.push_back(record);
  }
  return out;
}

std::vector<sim::Arrival> to_arrivals(const std::vector<TraceRecord>& r) {
  std::vector<sim::Arrival> out;
  out.reserve(r.size());
  for (const TraceRecord& record : r) {
    out.push_back(record.arrival);
  }
  return out;
}

}  // namespace realtor::trace
