// Utilization-based admission accounting.
//
// §3: with guaranteed-rate scheduling "the admission control overhead ...
// becomes a simple utilization test, and available CPU resource can be
// directly measured in terms of unallocated utilization." Each host keeps
// one UtilizationAccount; admitting a component reserves its server
// utilization, a migration away releases it.
#pragma once

#include <cstdint>

namespace realtor::sched {

class UtilizationAccount {
 public:
  /// `bound` is the schedulable utilization (1.0 for EDF on one CPU).
  explicit UtilizationAccount(double bound = 1.0);

  double bound() const { return bound_; }
  double reserved() const { return reserved_; }
  double headroom() const { return bound_ - reserved_; }

  /// True iff a reservation of `utilization` would pass the test.
  bool would_admit(double utilization) const;

  /// Reserves if admissible; returns success.
  bool try_reserve(double utilization);

  /// Releases a prior reservation.
  void release(double utilization);

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  double bound_;
  double reserved_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace realtor::sched
