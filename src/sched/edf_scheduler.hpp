// Preemptive single-CPU scheduler: static priority tiers with EDF inside a
// tier (the paper's Agile Objects job scheduler). Runs on the simulation
// clock; the Agile runtime drives one instance per host.
#pragma once

#include <functional>
#include <optional>
#include <set>

#include "common/types.hpp"
#include "sched/job.hpp"
#include "sim/engine.hpp"

namespace realtor::sched {

class EdfScheduler {
 public:
  /// (job, finish_time, met_deadline)
  using CompletionFn = std::function<void(const Job&, SimTime, bool)>;

  explicit EdfScheduler(sim::Engine& engine);
  EdfScheduler(const EdfScheduler&) = delete;
  EdfScheduler& operator=(const EdfScheduler&) = delete;

  void set_completion_handler(CompletionFn fn);

  /// Releases a job now; preempts the running job if this one dispatches
  /// ahead of it.
  void submit(Job job);

  /// Jobs released but not yet finished (including the running one).
  std::size_t pending() const;

  bool idle() const { return !running_.has_value() && ready_.empty(); }

  /// Remaining execution time of the running job (0 when idle).
  double running_remaining() const;

  /// Sum of remaining costs of all pending jobs.
  double backlog_seconds() const;

  std::uint64_t completed() const { return completed_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }

  /// Drops all pending work (host killed); returns number of jobs dropped.
  std::size_t clear();

 private:
  struct ActiveJob {
    Job job;
    double remaining = 0.0;
  };
  struct ActiveOrder {
    bool operator()(const ActiveJob& a, const ActiveJob& b) const {
      return JobOrder{}(a.job, b.job);
    }
  };

  void dispatch();
  void preempt_running();
  void on_finish();

  sim::Engine& engine_;
  CompletionFn completion_;
  std::multiset<ActiveJob, ActiveOrder> ready_;
  std::optional<ActiveJob> running_;
  SimTime run_started_ = 0.0;
  EventId finish_event_ = kInvalidEvent;
  std::uint64_t completed_ = 0;
  std::uint64_t deadline_misses_ = 0;
};

}  // namespace realtor::sched
