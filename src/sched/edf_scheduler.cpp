#include "sched/edf_scheduler.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::sched {

EdfScheduler::EdfScheduler(sim::Engine& engine) : engine_(engine) {}

void EdfScheduler::set_completion_handler(CompletionFn fn) {
  completion_ = std::move(fn);
}

void EdfScheduler::submit(Job job) {
  REALTOR_ASSERT(job.cost > 0.0);
  ready_.insert(ActiveJob{job, job.cost});
  if (!running_) {
    dispatch();
    return;
  }
  // Preempt iff the best ready job dispatches ahead of the running one.
  const ActiveJob& best = *ready_.begin();
  if (ActiveOrder{}(best, *running_)) {
    preempt_running();
    dispatch();
  }
}

std::size_t EdfScheduler::pending() const {
  return ready_.size() + (running_ ? 1u : 0u);
}

double EdfScheduler::running_remaining() const {
  if (!running_) return 0.0;
  const double executed = engine_.now() - run_started_;
  const double remaining = running_->remaining - executed;
  return remaining > 0.0 ? remaining : 0.0;
}

double EdfScheduler::backlog_seconds() const {
  double total = running_remaining();
  for (const ActiveJob& a : ready_) {
    total += a.remaining;
  }
  return total;
}

std::size_t EdfScheduler::clear() {
  std::size_t dropped = ready_.size();
  ready_.clear();
  if (running_) {
    engine_.cancel(finish_event_);
    finish_event_ = kInvalidEvent;
    running_.reset();
    ++dropped;
  }
  return dropped;
}

void EdfScheduler::dispatch() {
  REALTOR_ASSERT(!running_);
  if (ready_.empty()) return;
  running_ = *ready_.begin();
  ready_.erase(ready_.begin());
  run_started_ = engine_.now();
  finish_event_ =
      engine_.schedule_in(running_->remaining, [this] { on_finish(); });
}

void EdfScheduler::preempt_running() {
  REALTOR_ASSERT(running_.has_value());
  engine_.cancel(finish_event_);
  finish_event_ = kInvalidEvent;
  ActiveJob paused = *running_;
  paused.remaining = running_remaining();
  running_.reset();
  if (paused.remaining > 0.0) {
    ready_.insert(paused);
  } else {
    // Preempted at the exact finish instant: treat as complete.
    ++completed_;
    if (completion_) {
      completion_(paused.job, engine_.now(),
                  engine_.now() <= paused.job.deadline);
    }
  }
}

void EdfScheduler::on_finish() {
  REALTOR_ASSERT(running_.has_value());
  finish_event_ = kInvalidEvent;
  const Job finished = running_->job;
  running_.reset();
  ++completed_;
  const bool met = engine_.now() <= finished.deadline;
  if (!met) ++deadline_misses_;
  dispatch();
  if (completion_) {
    completion_(finished, engine_.now(), met);
  }
}

}  // namespace realtor::sched
