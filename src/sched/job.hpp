// Real-time job model for the Agile Objects substrate.
//
// §6: "Job Scheduler provides a simple form of real-time task scheduler
// with static priority and EDF (Earliest Deadline First) in the same
// priority."
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace realtor::sched {

using JobId = std::uint64_t;

struct Job {
  JobId id = 0;
  /// CPU seconds the job needs.
  double cost = 0.0;
  /// Instant the job became ready.
  SimTime release = 0.0;
  /// Absolute deadline; kNeverTime for best-effort jobs.
  SimTime deadline = kNeverTime;
  /// Static priority; larger values run first. EDF breaks ties within a
  /// priority level.
  int priority = 0;
};

/// Dispatch order: static priority first, then EDF, then FIFO by id.
struct JobOrder {
  bool operator()(const Job& a, const Job& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.id < b.id;
  }
};

}  // namespace realtor::sched
