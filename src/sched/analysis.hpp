// Schedulability analysis for periodic task sets.
//
// The Agile Objects design (§3) relies on "guaranteed-rate scheduling at
// the nodes [allowing] an accurate definition of resource requirements
// during design and deployment time". These are the classical tests a
// deployment-time tool runs before placing a periodic component:
//   * utilization bounds (Liu & Layland for rate-monotonic, 1.0 for EDF),
//   * exact response-time analysis for fixed-priority scheduling
//     (Joseph & Pandya / Audsley iteration), and
//   * the processor-demand criterion for EDF with constrained deadlines
//     (Baruah, Rosier & Howell).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace realtor::sched {

struct PeriodicTask {
  /// Worst-case execution time (seconds).
  double cost = 0.0;
  /// Minimum inter-arrival time.
  double period = 0.0;
  /// Relative deadline; must satisfy 0 < deadline <= period here.
  double deadline = 0.0;
  /// Static priority; larger runs first (ties broken by index).
  int priority = 0;
};

/// Sum of cost/period.
double total_utilization(const std::vector<PeriodicTask>& tasks);

/// Liu & Layland bound n(2^{1/n} - 1): utilization at or below it
/// guarantees rate-monotonic schedulability (sufficient, not necessary).
double liu_layland_bound(std::size_t n);

/// Assigns rate-monotonic priorities (shorter period = higher priority)
/// into the tasks' priority fields.
void assign_rate_monotonic_priorities(std::vector<PeriodicTask>& tasks);

struct ResponseTimeResult {
  bool schedulable = false;
  /// Worst-case response time per task (same order as the input); entries
  /// for tasks whose iteration exceeded the deadline hold the last
  /// iterate.
  std::vector<double> response_times;
};

/// Exact fixed-priority response-time analysis with synchronous release:
///   R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
/// iterated to a fixed point. Valid for deadline <= period.
ResponseTimeResult response_time_analysis(
    const std::vector<PeriodicTask>& tasks);

/// EDF processor-demand criterion for constrained deadlines: for every
/// absolute deadline d up to the analysis bound,
///   sum_i max(0, floor((d - D_i) / T_i) + 1) * C_i <= d.
/// Exact for U < 1 (checks up to the busy-period/hyperperiod bound).
bool edf_demand_test(const std::vector<PeriodicTask>& tasks);

}  // namespace realtor::sched
