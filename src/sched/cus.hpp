// Constant Utilization Server (Deng–Liu–Sun style).
//
// §3: "The current implementation uses a Constant Utilization Server" so
// that "available CPU resource can be directly measured in terms of
// unallocated utilization" and admission control "becomes a simple
// utilization test".
//
// The server reserves a fixed utilization U for one migratable component.
// When a request with execution time e becomes eligible at time t the
// server assigns it the deadline
//     d_new = max(t, d_prev) + e / U,
// which guarantees the component never demands more than U of the CPU in
// any interval when scheduled under EDF alongside other servers whose
// utilizations sum to at most 1.
#pragma once

#include "common/types.hpp"

namespace realtor::sched {

class ConstantUtilizationServer {
 public:
  explicit ConstantUtilizationServer(double utilization);

  double utilization() const { return utilization_; }

  /// Assigns the EDF deadline for a request of `exec_time` CPU seconds
  /// eligible at `now`, advancing the server's deadline state.
  SimTime assign_deadline(SimTime now, double exec_time);

  /// Deadline of the most recent request (0 before the first).
  SimTime current_deadline() const { return deadline_; }

  /// Total execution time budgeted through this server.
  double budgeted_work() const { return budgeted_work_; }

  /// Forgets history (component migrated away and back, or host restarted).
  void reset();

 private:
  double utilization_;
  SimTime deadline_ = 0.0;
  double budgeted_work_ = 0.0;
};

}  // namespace realtor::sched
