#include "sched/cus.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace realtor::sched {

ConstantUtilizationServer::ConstantUtilizationServer(double utilization)
    : utilization_(utilization) {
  REALTOR_ASSERT(utilization_ > 0.0 && utilization_ <= 1.0);
}

SimTime ConstantUtilizationServer::assign_deadline(SimTime now,
                                                   double exec_time) {
  REALTOR_ASSERT(exec_time > 0.0);
  deadline_ = std::max(now, deadline_) + exec_time / utilization_;
  budgeted_work_ += exec_time;
  return deadline_;
}

void ConstantUtilizationServer::reset() {
  deadline_ = 0.0;
  budgeted_work_ = 0.0;
}

}  // namespace realtor::sched
