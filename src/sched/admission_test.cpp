#include "sched/admission_test.hpp"

#include "common/assert.hpp"

namespace realtor::sched {
namespace {
constexpr double kSlack = 1e-9;  // absorbs reserve/release rounding drift
}

UtilizationAccount::UtilizationAccount(double bound) : bound_(bound) {
  REALTOR_ASSERT(bound_ > 0.0);
}

bool UtilizationAccount::would_admit(double utilization) const {
  REALTOR_ASSERT(utilization > 0.0);
  return reserved_ + utilization <= bound_ + kSlack;
}

bool UtilizationAccount::try_reserve(double utilization) {
  if (!would_admit(utilization)) {
    ++rejected_;
    return false;
  }
  reserved_ += utilization;
  ++admitted_;
  return true;
}

void UtilizationAccount::release(double utilization) {
  REALTOR_ASSERT(utilization > 0.0);
  reserved_ -= utilization;
  if (reserved_ < 0.0) reserved_ = 0.0;  // rounding residue
}

}  // namespace realtor::sched
