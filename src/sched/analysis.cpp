#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace realtor::sched {
namespace {

void validate(const std::vector<PeriodicTask>& tasks) {
  for (const PeriodicTask& task : tasks) {
    REALTOR_ASSERT(task.cost > 0.0);
    REALTOR_ASSERT(task.period > 0.0);
    REALTOR_ASSERT(task.deadline > 0.0);
    REALTOR_ASSERT_MSG(task.deadline <= task.period + 1e-12,
                       "analysis assumes constrained deadlines");
  }
}

}  // namespace

double total_utilization(const std::vector<PeriodicTask>& tasks) {
  double u = 0.0;
  for (const PeriodicTask& task : tasks) {
    u += task.cost / task.period;
  }
  return u;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 0.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

void assign_rate_monotonic_priorities(std::vector<PeriodicTask>& tasks) {
  // Rank periods: the shortest period gets the largest priority value.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].period != tasks[b].period) {
      return tasks[a].period > tasks[b].period;
    }
    return a > b;
  });
  int priority = 0;
  for (const std::size_t idx : order) {
    tasks[idx].priority = priority++;
  }
}

ResponseTimeResult response_time_analysis(
    const std::vector<PeriodicTask>& tasks) {
  validate(tasks);
  ResponseTimeResult result;
  result.schedulable = true;
  result.response_times.assign(tasks.size(), 0.0);

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const PeriodicTask& task = tasks[i];
    // Higher-priority set: larger priority value; ties by index (lower
    // index wins), matching JobOrder.
    double response = task.cost;
    for (int iteration = 0; iteration < 1000; ++iteration) {
      double demand = task.cost;
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (j == i) continue;
        const bool higher = tasks[j].priority > task.priority ||
                            (tasks[j].priority == task.priority && j < i);
        if (!higher) continue;
        demand += std::ceil(response / tasks[j].period - 1e-12) *
                  tasks[j].cost;
      }
      if (std::abs(demand - response) < 1e-12) {
        response = demand;
        break;
      }
      response = demand;
      if (response > task.deadline + 1e-9) break;  // already failed
    }
    result.response_times[i] = response;
    if (response > task.deadline + 1e-9) {
      result.schedulable = false;
    }
  }
  return result;
}

bool edf_demand_test(const std::vector<PeriodicTask>& tasks) {
  validate(tasks);
  const double utilization = total_utilization(tasks);
  if (utilization > 1.0 + 1e-12) return false;

  // Analysis horizon: for U < 1 the demand criterion needs checking only
  // up to L = max(D_i, U/(1-U) * max(T_i - D_i)); cap by the synchronous
  // busy period approximation. Use a robust bound: the larger of the
  // longest deadline and the classic La bound, clipped to a sane window.
  double max_deadline = 0.0;
  double la_numerator = 0.0;
  for (const PeriodicTask& task : tasks) {
    max_deadline = std::max(max_deadline, task.deadline);
    la_numerator += (task.period - task.deadline) * (task.cost / task.period);
  }
  double horizon = max_deadline;
  if (utilization < 1.0 - 1e-12) {
    horizon = std::max(horizon, la_numerator / (1.0 - utilization));
  } else {
    // U == 1 with constrained deadlines: fall back to one hyper-ish window
    // (sum of periods is a safe practical cap for the task sets the tests
    // and tools feed in; exact hyperperiods of real-valued periods are
    // ill-defined).
    double period_sum = 0.0;
    for (const PeriodicTask& task : tasks) period_sum += task.period;
    horizon = std::max(horizon, period_sum);
  }

  // Candidate deadlines: every absolute deadline D_i + k*T_i within the
  // horizon.
  std::vector<double> checkpoints;
  for (const PeriodicTask& task : tasks) {
    for (double d = task.deadline; d <= horizon + 1e-9; d += task.period) {
      checkpoints.push_back(d);
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());

  for (const double d : checkpoints) {
    double demand = 0.0;
    for (const PeriodicTask& task : tasks) {
      if (d + 1e-12 < task.deadline) continue;
      const double jobs =
          std::floor((d - task.deadline) / task.period + 1e-12) + 1.0;
      demand += jobs * task.cost;
    }
    if (demand > d + 1e-9) return false;
  }
  return true;
}

}  // namespace realtor::sched
