#include "experiment/warm_start.hpp"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/parallel.hpp"

#if defined(__linux__)
#define REALTOR_WARM_START_FORK 1
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <semaphore.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#endif

namespace realtor::experiment {

namespace {

/// Canonical serialization sink. Doubles are written as exact bit patterns
/// so two configs compare equal iff every field is bit-identical — no
/// formatting precision can merge distinct prefixes.
class PrefixWriter {
 public:
  void field(const char* key, double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    out_ << key << "=x" << std::hex << bits << std::dec << ';';
  }
  void field(const char* key, std::uint64_t value) {
    out_ << key << '=' << value << ';';
  }
  void field(const char* key, bool value) {
    out_ << key << '=' << (value ? 1 : 0) << ';';
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// First simulated instant at which `config` can diverge from a run that
/// shares its canonical prefix: the earliest attack wave (a point without
/// waves never diverges before the end of the run).
SimTime first_divergence(const ScenarioConfig& config) {
  SimTime first = config.duration;
  for (const AttackWave& wave : config.attacks) {
    first = std::min(first, wave.time);
  }
  return first;
}

PointResult run_point_inprocess(const ScenarioConfig& config,
                                const WarmStartOptions& options,
                                std::size_t point) {
  PointResult result;
  std::unique_ptr<obs::TraceSink> sink;
  if (options.make_sink) sink = options.make_sink(point);
  Simulation simulation(config);
  if (sink) simulation.set_trace_sink(sink.get());
  result.metrics = simulation.run();
  result.timeline = simulation.timeline();
  if (sink) sink->flush();
  result.ok = true;
  return result;
}

}  // namespace

std::optional<SweepExec> parse_exec(const std::string& name) {
  if (name == "thread") return SweepExec::kThread;
  if (name == "fork") return SweepExec::kFork;
  return std::nullopt;
}

const char* to_string(SweepExec exec) {
  return exec == SweepExec::kFork ? "fork" : "thread";
}

bool fork_exec_supported() {
#if defined(REALTOR_WARM_START_FORK)
  return true;
#else
  return false;
#endif
}

std::string canonical_prefix(const ScenarioConfig& config) {
  PrefixWriter w;
  w.field("topo.kind", static_cast<std::uint64_t>(config.topology.kind));
  w.field("topo.width", static_cast<std::uint64_t>(config.topology.width));
  w.field("topo.height", static_cast<std::uint64_t>(config.topology.height));
  w.field("topo.nodes", static_cast<std::uint64_t>(config.topology.nodes));
  w.field("topo.links", static_cast<std::uint64_t>(config.topology.links));
  w.field("topo.seed", config.topology.seed);
  w.field("lambda", config.lambda);
  w.field("task_size", config.mean_task_size);
  w.field("queue", config.queue_capacity);
  w.field("duration", config.duration);
  w.field("warmup", config.warmup);
  w.field("seed", config.seed);
  w.field("proto.kind", static_cast<std::uint64_t>(config.protocol_kind));
  const proto::ProtocolConfig& p = config.protocol;
  w.field("proto.help_threshold", p.help_threshold);
  w.field("proto.initial_help_interval", p.initial_help_interval);
  w.field("proto.help_upper_limit", p.help_upper_limit);
  w.field("proto.help_interval_floor", p.help_interval_floor);
  w.field("proto.alpha", p.alpha);
  w.field("proto.beta", p.beta);
  w.field("proto.help_timeout", p.help_timeout);
  w.field("proto.reward", static_cast<std::uint64_t>(p.reward_policy));
  w.field("proto.pledge_threshold", p.pledge_threshold);
  w.field("proto.max_communities",
          static_cast<std::uint64_t>(p.max_communities));
  w.field("proto.push_interval", p.push_interval);
  w.field("proto.gossip_interval", p.gossip_interval);
  w.field("proto.gossip_fanout", static_cast<std::uint64_t>(p.gossip_fanout));
  w.field("proto.soft_state_ttl", p.soft_state_ttl);
  w.field("proto.availability_floor", p.availability_floor);
  w.field("migration.tries",
          static_cast<std::uint64_t>(config.migration.max_tries));
  w.field("migration.negotiation", config.migration.negotiation_messages);
  w.field("migration.transfer", config.migration.migration_messages);
  w.field("cost_mode", static_cast<std::uint64_t>(config.cost_mode));
  w.field("unicast.fixed", config.fixed_unicast_cost.has_value());
  w.field("unicast.cost", config.fixed_unicast_cost.value_or(0.0));
  w.field("flood_mode", static_cast<std::uint64_t>(config.flood_mode));
  w.field("approx_paths", config.approx_path_stats);
  w.field("network_delay", config.network_delay);
  const MultiResourceConfig& mr = config.multi_resource;
  w.field("mr.enabled", mr.enabled);
  w.field("mr.bw_mean", mr.mean_bandwidth_share);
  w.field("mr.bw_capacity", mr.bandwidth_capacity);
  w.field("mr.levels", static_cast<std::uint64_t>(mr.security_levels));
  w.field("mr.secure_fraction", mr.secure_task_fraction);
  const FederationConfig& fed = config.federation;
  w.field("fed.enabled", fed.enabled);
  w.field("fed.block_width", static_cast<std::uint64_t>(fed.block_width));
  w.field("fed.block_height", static_cast<std::uint64_t>(fed.block_height));
  w.field("fed.group_size", static_cast<std::uint64_t>(fed.group_size));
  w.field("fed.escalation_window", fed.escalation_window);
  w.field("elusive.enabled", config.elusiveness.enabled);
  w.field("elusive.period", config.elusiveness.period);
  w.field("timeline_interval", config.timeline_interval);
  w.field("sample_interval", config.sample_interval);
  w.field("engine_sample_every", config.engine_sample_every);
  w.field("live_cadence", config.live_cadence);
  w.field("external_arrivals", config.external_arrivals);
  return w.str();
}

std::uint64_t prefix_hash(const ScenarioConfig& config) {
  return fnv1a(canonical_prefix(config));
}

std::vector<WarmStartClass> plan_warm_start(
    const std::vector<ScenarioConfig>& points) {
  std::vector<WarmStartClass> classes;
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScenarioConfig& config = points[i];
    const SimTime divergence = first_divergence(config);
    // Non-groupable points get a singleton class each: the engine observer
    // reports pending-event counts (which see deferred attack events),
    // externally driven arrivals live outside the config, and a wave at
    // t <= 0 leaves no prefix to share.
    const bool groupable = divergence > 0.0 &&
                           config.engine_sample_every == 0 &&
                           !config.external_arrivals;
    if (!groupable) {
      WarmStartClass cls;
      cls.hash = prefix_hash(config);
      cls.prefix_end = std::max(0.0, divergence);
      cls.members = {i};
      classes.push_back(std::move(cls));
      continue;
    }
    const std::string key = canonical_prefix(config);
    const auto found = index.find(key);
    if (found == index.end()) {
      index.emplace(key, classes.size());
      WarmStartClass cls;
      cls.hash = fnv1a(key);
      cls.prefix_end = divergence;
      cls.members = {i};
      classes.push_back(std::move(cls));
    } else {
      WarmStartClass& cls = classes[found->second];
      cls.members.push_back(i);
      cls.prefix_end = std::min(cls.prefix_end, divergence);
    }
  }
  for (WarmStartClass& cls : classes) {
    cls.forkable = cls.members.size() >= 2 && cls.prefix_end > 0.0;
  }
  return classes;
}

bool WarmStartOutcome::all_ok() const {
  for (const PointResult& result : results) {
    if (!result.ok) return false;
  }
  return true;
}

std::vector<std::string> WarmStartOutcome::failures() const {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok) continue;
    std::ostringstream os;
    os << "point " << i << ": " << results[i].error;
    lines.push_back(os.str());
  }
  return lines;
}

#if defined(REALTOR_WARM_START_FORK)

namespace {

static_assert(std::is_trivially_copyable_v<RunMetrics>,
              "RunMetrics crosses the child pipe as raw bytes");
static_assert(std::is_trivially_copyable_v<TimelineSample>,
              "TimelineSample crosses the child pipe as raw bytes");

constexpr std::uint64_t kResultMagic = 0x52544c5257534d52ULL;
constexpr std::uint64_t kResultTrailer = 0x444e4557534d52ULL;

/// Leads every child's result record; the trailer guards against a record
/// truncated at an otherwise plausible length.
struct ResultHeader {
  std::uint64_t magic;
  std::uint64_t point;
};

/// Written by the snapshot parent as it reaps each child. `status` is the
/// normalized exit status (128+signal for signal deaths, -1 when the
/// child could not be forked at all).
struct StatusRecord {
  std::uint64_t point;
  std::int64_t status;
};

int normalize_status(int wait_status) {
  if (WIFEXITED(wait_status)) return WEXITSTATUS(wait_status);
  if (WIFSIGNALED(wait_status)) return 128 + WTERMSIG(wait_status);
  return -1;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd, cursor, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

void append_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

/// Crash-dump guard for forked children: a REALTOR_ASSERT aborts without
/// unwinding, so a dying child would otherwise lose its flight ring. The
/// handler is best-effort (the child is single-threaded and about to die
/// anyway) and the sink's path is point-unique, so even a partial dump can
/// never clobber a sibling's file.
obs::TraceSink* g_crash_sink = nullptr;

extern "C" void warm_start_abort_handler(int) {
  if (g_crash_sink != nullptr) g_crash_sink->flush();
  ::_exit(128 + SIGABRT);
}

/// Child side: arm the divergent waves into the reserved block, replay the
/// buffered prefix trace into the child's own sink, finish the run, and
/// stream the result record back. Never returns to the caller's frame with
/// work pending — the caller _exit()s right after.
void run_cow_child(Simulation& simulation, const obs::MemorySink& prefix_trace,
                   const std::vector<ScenarioConfig>& points,
                   const WarmStartOptions& options, std::size_t point,
                   int fd) {
  if (options.child_hook) options.child_hook(point);
  std::unique_ptr<obs::TraceSink> sink;
  if (options.make_sink) {
    sink = options.make_sink(point);
    if (sink) {
      for (const obs::TraceEvent& event : prefix_trace.events()) {
        sink->on_event(event);
      }
      simulation.set_trace_sink(sink.get());
      g_crash_sink = sink.get();
      std::signal(SIGABRT, warm_start_abort_handler);
    } else {
      simulation.set_trace_sink(nullptr);
    }
  }
  simulation.arm_attacks(points[point].attacks);
  const RunMetrics& metrics = simulation.finish_run();
  if (sink) sink->flush();
  g_crash_sink = nullptr;

  std::string payload;
  const ResultHeader header{kResultMagic, static_cast<std::uint64_t>(point)};
  append_bytes(payload, &header, sizeof header);
  append_bytes(payload, &metrics, sizeof metrics);
  const std::uint64_t samples = simulation.timeline().size();
  append_bytes(payload, &samples, sizeof samples);
  if (samples > 0) {
    append_bytes(payload, simulation.timeline().data(),
                 samples * sizeof(TimelineSample));
  }
  append_bytes(payload, &kResultTrailer, sizeof kResultTrailer);
  if (!write_all(fd, payload.data(), payload.size())) ::_exit(3);
  ::close(fd);
}

/// Snapshot parent: one forked process per class. Runs the shared prefix
/// once (single-threaded), then forks one COW child per member, bounded by
/// the shared `slots` semaphore, reaps them in member order and reports
/// each exit status over the status pipe.
[[noreturn]] void run_snapshot_parent(const std::vector<ScenarioConfig>& points,
                                      const WarmStartOptions& options,
                                      const WarmStartClass& cls, sem_t* slots,
                                      const std::vector<int>& member_write_fds,
                                      int status_fd) {
  sem_wait(slots);
  // The reservation must fit the largest member: every child draws its own
  // wave set from the same block, so the block is sized for the worst one.
  std::uint32_t reserve = 0;
  for (const std::size_t point : cls.members) {
    reserve = std::max(reserve, Simulation::attack_event_count(
                                    points[point].attacks, false));
  }
  ScenarioConfig prefix_config = points[cls.members[0]];
  prefix_config.attacks.clear();
  Simulation simulation(prefix_config);
  simulation.defer_attacks(reserve);
  // Traced classes buffer the prefix in memory; each child replays it into
  // its own sink so per-point trace files cover the whole run.
  obs::MemorySink prefix_trace;
  if (options.make_sink) simulation.set_trace_sink(&prefix_trace);
  simulation.begin_run();
  simulation.run_prefix(cls.prefix_end);

  constexpr std::int64_t kUnreaped = -2;
  std::vector<pid_t> children(cls.members.size(), -1);
  std::vector<std::int64_t> statuses(cls.members.size(), kUnreaped);
  const auto record_exit = [&](pid_t pid, int wait_status) {
    for (std::size_t j = 0; j < children.size(); ++j) {
      if (children[j] == pid) {
        statuses[j] = normalize_status(wait_status);
        break;
      }
    }
    sem_post(slots);
  };
  // Slot acquisition must not block while our own finished children sit
  // unreaped: their slots are only posted at reap time, and with more
  // classes than slots a blocking sem_wait here deadlocks the whole pool.
  // So: try the semaphore, and when it is empty reap one of our children
  // (freeing its slot) before retrying. Only when we have no children at
  // all — every slot is held by other classes — is blocking safe.
  const auto acquire_slot = [&] {
    for (;;) {
      if (sem_trywait(slots) == 0) return;
      if (errno == EINTR) continue;
      int wait_status = 0;
      const pid_t reaped = ::waitpid(-1, &wait_status, 0);
      if (reaped > 0) {
        record_exit(reaped, wait_status);
        continue;  // a slot is free now (may be raced away; retry)
      }
      if (errno == ECHILD) {
        sem_wait(slots);
        return;
      }
    }
  };
  for (std::size_t i = 0; i < cls.members.size(); ++i) {
    if (i > 0) acquire_slot();  // child 0 inherits the prefix's slot
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(status_fd);
      for (std::size_t j = 0; j < member_write_fds.size(); ++j) {
        if (j != i) ::close(member_write_fds[j]);
      }
      run_cow_child(simulation, prefix_trace, points, options,
                    cls.members[i], member_write_fds[i]);
      ::_exit(0);
    }
    children[i] = pid;
    ::close(member_write_fds[i]);
    if (pid < 0) sem_post(slots);  // fork failed: return the unused slot
  }
  for (std::size_t i = 0; i < cls.members.size(); ++i) {
    if (children[i] >= 0 && statuses[i] == kUnreaped) {
      int wait_status = 0;
      ::waitpid(children[i], &wait_status, 0);
      statuses[i] = normalize_status(wait_status);
      sem_post(slots);
    }
    StatusRecord record{static_cast<std::uint64_t>(cls.members[i]),
                        children[i] < 0 ? -1 : statuses[i]};
    write_all(status_fd, &record, sizeof record);
  }
  ::close(status_fd);
  ::_exit(0);
}

/// One pipe the orchestrator drains to EOF.
struct DrainTarget {
  int fd = -1;
  std::string buf;
};

/// Reads every target to EOF concurrently. poll()-driven so a child
/// blocked on a full pipe never deadlocks against the serial merge — all
/// buffers fill as data arrives, in any order.
void drain_pipes(std::vector<DrainTarget*>& targets) {
  std::vector<pollfd> fds(targets.size());
  std::size_t open_count = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    fds[i].fd = targets[i]->fd;
    fds[i].events = POLLIN;
    if (fds[i].fd >= 0) {
      ::fcntl(fds[i].fd, F_SETFL, O_NONBLOCK);
      ++open_count;
    }
  }
  while (open_count > 0) {
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].fd < 0 || fds[i].revents == 0) continue;
      for (;;) {
        char chunk[4096];
        const ssize_t n = ::read(fds[i].fd, chunk, sizeof chunk);
        if (n > 0) {
          targets[i]->buf.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        ::close(fds[i].fd);  // EOF or unrecoverable error
        fds[i].fd = -1;
        --open_count;
        break;
      }
    }
  }
  for (const pollfd& pfd : fds) {
    if (pfd.fd >= 0) ::close(pfd.fd);
  }
}

/// Parses one child's result record into `result`; false on any size,
/// magic, point or trailer mismatch (a truncated or corrupt record).
bool parse_result(const std::string& buf, std::size_t point,
                  PointResult& result) {
  const std::size_t fixed =
      sizeof(ResultHeader) + sizeof(RunMetrics) + 2 * sizeof(std::uint64_t);
  if (buf.size() < fixed) return false;
  ResultHeader header;
  std::memcpy(&header, buf.data(), sizeof header);
  if (header.magic != kResultMagic || header.point != point) return false;
  std::size_t offset = sizeof header;
  std::memcpy(&result.metrics, buf.data() + offset, sizeof(RunMetrics));
  offset += sizeof(RunMetrics);
  std::uint64_t samples = 0;
  std::memcpy(&samples, buf.data() + offset, sizeof samples);
  offset += sizeof samples;
  if (buf.size() != fixed + samples * sizeof(TimelineSample)) return false;
  result.timeline.resize(samples);
  if (samples > 0) {
    std::memcpy(result.timeline.data(), buf.data() + offset,
                samples * sizeof(TimelineSample));
    offset += samples * sizeof(TimelineSample);
  }
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, buf.data() + offset, sizeof trailer);
  return trailer == kResultTrailer;
}

/// One launched class: the snapshot parent's pid plus the pipes the
/// orchestrator still has to drain.
struct ClassLaunch {
  const WarmStartClass* cls = nullptr;
  pid_t parent = -1;
  DrainTarget status;
  std::vector<DrainTarget> members;  // aligned with cls->members
};

void run_fork_phase(const std::vector<ScenarioConfig>& points,
                    const WarmStartOptions& options,
                    const std::vector<const WarmStartClass*>& fork_classes,
                    unsigned jobs, WarmStartOutcome& outcome) {
  // One process-shared counting semaphore bounds live children across all
  // classes at --jobs, exactly like the thread pool bounds workers.
  sem_t* slots = static_cast<sem_t*>(
      ::mmap(nullptr, sizeof(sem_t), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  const bool have_slots =
      slots != MAP_FAILED && sem_init(slots, /*pshared=*/1, jobs) == 0;
  std::vector<ClassLaunch> launches;
  launches.reserve(fork_classes.size());
  for (const WarmStartClass* cls : fork_classes) {
    if (!have_slots) {
      // Could not build the process pool: run the class in-process.
      for (const std::size_t point : cls->members) {
        outcome.results[point] =
            run_point_inprocess(points[point], options, point);
      }
      continue;
    }
    ClassLaunch launch;
    launch.cls = cls;
    int status_pipe[2] = {-1, -1};
    std::vector<int> write_fds;
    bool pipes_ok = ::pipe(status_pipe) == 0;
    for (std::size_t i = 0; pipes_ok && i < cls->members.size(); ++i) {
      int fds[2] = {-1, -1};
      pipes_ok = ::pipe(fds) == 0;
      if (pipes_ok) {
        DrainTarget target;
        target.fd = fds[0];
        launch.members.push_back(std::move(target));
        write_fds.push_back(fds[1]);
      }
    }
    if (pipes_ok) {
      std::cout.flush();
      std::cerr.flush();
    }
    const pid_t pid = pipes_ok ? ::fork() : -1;
    if (pid == 0) {
      // Snapshot parent: the orchestrator keeps the read ends.
      ::close(status_pipe[0]);
      for (const DrainTarget& target : launch.members) ::close(target.fd);
      run_snapshot_parent(points, options, *cls, slots, write_fds,
                          status_pipe[1]);
    }
    if (status_pipe[1] >= 0) ::close(status_pipe[1]);
    for (const int fd : write_fds) ::close(fd);
    if (pid < 0) {
      // fork (or a pipe) failed: fall back to in-process for this class.
      if (status_pipe[0] >= 0) ::close(status_pipe[0]);
      for (const DrainTarget& target : launch.members) {
        if (target.fd >= 0) ::close(target.fd);
      }
      for (const std::size_t point : cls->members) {
        outcome.results[point] =
            run_point_inprocess(points[point], options, point);
      }
      continue;
    }
    launch.parent = pid;
    launch.status.fd = status_pipe[0];
    outcome.forked_points += cls->members.size();
    launches.push_back(std::move(launch));
  }

  std::vector<DrainTarget*> targets;
  for (ClassLaunch& launch : launches) {
    targets.push_back(&launch.status);
    for (DrainTarget& target : launch.members) targets.push_back(&target);
  }
  drain_pipes(targets);

  for (ClassLaunch& launch : launches) {
    int parent_status = 0;
    ::waitpid(launch.parent, &parent_status, 0);
    const int parent_exit = normalize_status(parent_status);
    std::unordered_map<std::uint64_t, std::int64_t> statuses;
    const std::string& status_buf = launch.status.buf;
    for (std::size_t offset = 0;
         offset + sizeof(StatusRecord) <= status_buf.size();
         offset += sizeof(StatusRecord)) {
      StatusRecord record;
      std::memcpy(&record, status_buf.data() + offset, sizeof record);
      statuses[record.point] = record.status;
    }
    for (std::size_t i = 0; i < launch.cls->members.size(); ++i) {
      const std::size_t point = launch.cls->members[i];
      PointResult& result = outcome.results[point];
      result.forked = true;
      const auto found = statuses.find(point);
      const bool parsed = parse_result(launch.members[i].buf, point, result);
      std::ostringstream error;
      if (found == statuses.end()) {
        result.exit_status = parent_exit != 0 ? parent_exit : -1;
        error << "child was never reaped (snapshot parent "
              << (parent_exit != 0 ? "died" : "lost it") << ", exit status "
              << parent_exit << ")";
      } else if (found->second == -1) {
        result.exit_status = -1;
        error << "could not fork child";
      } else if (found->second != 0) {
        result.exit_status = static_cast<int>(found->second);
        error << "child exited with status " << found->second;
      } else if (!parsed) {
        result.exit_status = 0;
        error << "truncated result record (" << launch.members[i].buf.size()
              << " bytes)";
      } else {
        result.ok = true;
        result.exit_status = 0;
        continue;
      }
      result.ok = false;
      result.error = error.str();
    }
  }
  if (have_slots) sem_destroy(slots);
  if (slots != MAP_FAILED) ::munmap(slots, sizeof(sem_t));
}

}  // namespace

#endif  // REALTOR_WARM_START_FORK

WarmStartOutcome run_warm_start(const std::vector<ScenarioConfig>& points,
                                const WarmStartOptions& options) {
  WarmStartOutcome outcome;
  outcome.results.resize(points.size());
  outcome.classes = plan_warm_start(points);

  const bool forking =
      options.exec == SweepExec::kFork && fork_exec_supported();
  std::vector<std::size_t> inprocess;
  std::vector<const WarmStartClass*> fork_classes;
  for (const WarmStartClass& cls : outcome.classes) {
    if (forking && cls.forkable) {
      fork_classes.push_back(&cls);
    } else {
      inprocess.insert(inprocess.end(), cls.members.begin(),
                       cls.members.end());
    }
  }
  std::sort(inprocess.begin(), inprocess.end());

  // In-process batch first: parallel_for joins its workers before
  // returning, so the fork phase below starts from a single-threaded
  // process (fork() and threads do not mix).
  const unsigned jobs = resolve_jobs(options.jobs);
  parallel_for(inprocess.size(), jobs, [&](std::size_t i) {
    const std::size_t point = inprocess[i];
    outcome.results[point] = run_point_inprocess(points[point], options, point);
  });

#if defined(REALTOR_WARM_START_FORK)
  if (!fork_classes.empty()) {
    run_fork_phase(points, options, fork_classes, jobs, outcome);
  }
#else
  REALTOR_ASSERT(fork_classes.empty());
#endif
  return outcome;
}

}  // namespace realtor::experiment
