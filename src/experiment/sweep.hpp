// Replicated parameter sweeps with common random numbers.
//
// The paper overlays five protocol curves at identical arrival rates; the
// sweep gives each (lambda, replication) cell one workload seed shared by
// every protocol, so curve differences are protocol differences.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "experiment/metrics.hpp"
#include "experiment/scenario.hpp"

namespace realtor::experiment {

/// Aggregated results of one (protocol, lambda) cell across replications.
struct SweepCell {
  proto::ProtocolKind kind = proto::ProtocolKind::kRealtor;
  double lambda = 0.0;
  OnlineStats admission_probability;
  OnlineStats total_messages;
  OnlineStats messages_per_admitted;
  OnlineStats migration_rate;
  OnlineStats mean_occupancy;
  OnlineStats evacuation_success;
  RunMetrics summed;  // raw counters summed across replications
};

struct SweepOptions {
  std::vector<double> lambdas;
  std::vector<proto::ProtocolKind> protocols;
  std::uint32_t replications = 10;
  /// Called after each completed run (progress reporting); may be empty.
  std::function<void(const SweepCell&, std::uint32_t rep)> on_run;
};

/// Runs `base` across options.lambdas x options.protocols x replications.
/// Results are ordered protocol-major, lambda-minor.
std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options);

/// Convenience: sweep all five paper protocols at the given lambdas.
SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications);

}  // namespace realtor::experiment
