// Replicated parameter sweeps with common random numbers.
//
// The paper overlays five protocol curves at identical arrival rates; the
// sweep gives each (lambda, replication) cell one workload seed shared by
// every protocol, so curve differences are protocol differences.
//
// Execution model: every (protocol, lambda, attack set, replication) run
// is an independent simulation with a seed derived from (base seed,
// lambda, rep) alone, so the grid fans out across `jobs` workers and the
// per-run metrics are merged back in the fixed serial order
// (protocol-major, lambda, attack set, then replication). Two backends
// share that merge:
//
//   - SweepExec::kThread — in-process worker threads (the portable
//     reference path).
//   - SweepExec::kFork — warm-start execution: points sharing a
//     pre-attack prefix are grouped by the planner in warm_start.hpp, the
//     prefix simulates once per class and each point finishes in a forked
//     copy-on-write child. Linux only; other platforms and non-forkable
//     points fall back to thread execution.
//
// Aggregates, confidence intervals and report tables are byte-identical
// for every jobs value and both exec modes — parallelism and snapshotting
// change wall-clock time only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "experiment/metrics.hpp"
#include "experiment/scenario.hpp"
#include "experiment/warm_start.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace realtor::experiment {

/// Identity of one sweep run in the grid. attack_set indexes
/// SweepOptions::attack_sets (always 0 when no sets are configured).
struct RunId {
  proto::ProtocolKind kind = proto::ProtocolKind::kRealtor;
  double lambda = 0.0;
  std::size_t attack_set = 0;
  std::uint32_t rep = 0;
};

/// Aggregated results of one (protocol, lambda, attack set) cell across
/// replications.
struct SweepCell {
  proto::ProtocolKind kind = proto::ProtocolKind::kRealtor;
  double lambda = 0.0;
  std::size_t attack_set = 0;
  OnlineStats admission_probability;
  OnlineStats total_messages;
  OnlineStats messages_per_admitted;
  OnlineStats migration_rate;
  OnlineStats mean_occupancy;
  OnlineStats evacuation_success;
  RunMetrics summed;  // raw counters summed across replications
};

struct SweepOptions {
  std::vector<double> lambdas;
  std::vector<proto::ProtocolKind> protocols;
  std::uint32_t replications = 10;

  /// Attack schedules to sweep over. Empty (the default) keeps the base
  /// config's attack list untouched; otherwise each set replaces
  /// base.attacks for its slice of the grid. The run seed does not depend
  /// on the set, so all sets of a (lambda, rep) cell share one workload —
  /// and one warm-start prefix, which is what the fork executor snapshots.
  std::vector<std::vector<AttackWave>> attack_sets;

  /// Execution backend; kFork needs fork_exec_supported() and otherwise
  /// falls back to threads. Results are identical either way.
  SweepExec exec = SweepExec::kThread;

  /// Worker bound for the run fan-out (threads or live forked children):
  /// 0 (the default) uses one per hardware thread, 1 runs the serial
  /// reference path on the calling thread. Results are identical for
  /// every value.
  unsigned jobs = 0;

  /// Optional per-run trace-sink factory, called once per run before its
  /// simulation starts; return nullptr to leave that run untraced. With
  /// jobs > 1 the factory runs on worker threads — and under kFork inside
  /// forked children — so every run must get its *own* sink with a
  /// run-unique path (e.g. one suffixed JSONL file per run).
  std::function<std::unique_ptr<obs::TraceSink>(const RunId& id)>
      make_trace_sink;

  /// Called after each completed run (progress reporting); may be empty.
  /// Invocation order is always the serial cell order. With jobs > 1 or
  /// exec=fork the callbacks fire during the deterministic merge after
  /// the execution phase, so they report completion, not live progress.
  std::function<void(const SweepCell&, std::uint32_t rep)> on_run;

  /// Test hook forwarded to WarmStartOptions::child_hook: runs inside
  /// each forked child before its suffix resumes. Lets tests inject
  /// child failures; never called on the thread path.
  std::function<void(std::size_t point)> child_hook;
};

/// The sweep grid in serial order (protocol-major, lambda, attack set,
/// then replication). run_sweep executes exactly this sequence.
std::vector<RunId> sweep_run_ids(const SweepOptions& options);

/// Fully resolved per-run configs, aligned with sweep_run_ids(). This is
/// what the warm-start planner consumes; exposed for --plan dry runs.
std::vector<ScenarioConfig> sweep_point_configs(const ScenarioConfig& base,
                                                const SweepOptions& options);

/// "realtor lambda=6 set=2 rep=0" — human label for plan listings.
std::string run_label(const RunId& id);

/// Runs `base` across the grid. Cells are ordered protocol-major, lambda,
/// then attack set. Throws std::runtime_error listing every failed point
/// if a forked child dies or returns a truncated record.
std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options);

/// Convenience: sweep all five paper protocols at the given lambdas.
SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications);

/// Shape of SweepOptions::make_trace_sink, exposed so the shared factory
/// below can be passed around by the CLI and the benches.
using RunSinkFactory =
    std::function<std::unique_ptr<obs::TraceSink>(const RunId& id)>;

/// What make_run_sink_factory() should build per run. At most one of the
/// prefixes may be non-empty (a run gets one sink).
struct RunSinkOptions {
  /// JSONL: one file per run named prefix.<proto>.lambda<L>.rep<R>.jsonl.
  std::string jsonl_prefix;
  /// JsonlSink batching (0 = write-through; see JsonlSink's guarantee).
  std::size_t jsonl_flush_every = 0;
  /// Flight recorder: one binary ring per run, dumped to
  /// prefix.<proto>.lambda<L>.rep<R>.bin when the run flushes the sink.
  std::string flight_prefix;
  /// Ring capacity in records for flight sinks.
  std::size_t flight_capacity = obs::kDefaultFlightCapacity;
  /// Attack-parameter sweeps set this so names gain an .att<K> infix
  /// (prefix.<proto>.lambda<L>.att<K>.rep<R>.*) — without it two attack
  /// sets of the same cell would clobber one file. Single-schedule sweeps
  /// leave it off and keep the legacy names.
  bool attack_suffix = false;
  /// Live telemetry plane: non-empty wraps each run's sink in an
  /// obs::live::LivePlane whose buffered exposition history is written to
  /// prefix.<proto>.lambda<L>[.att<K>].rep<R>.prom when the run flushes.
  /// The plane owns the run's JSONL/flight sink (when one is configured)
  /// as its downstream, so alert_firing/alert_cleared events land in the
  /// trace files too; it also composes with no downstream (exposition
  /// only). Requires ScenarioConfig::live_cadence > 0 for the ticks that
  /// drive snapshots.
  std::string live_prefix;
  /// Alert-rule specs for live runs (empty = the default rule set).
  std::vector<std::string> live_rules;
  /// LiveConfig window defaults for live runs.
  double live_window = 30.0;
  /// Topology size hint for the nodes_alive gauge in live runs.
  std::uint64_t live_nodes = 0;
};

/// The per-run sink factory shared by realtor_sim --sweep and the bench
/// harness: builds a JsonlSink or FlightDumpSink per run, suffix-named so
/// parallel workers (and forked children) never share a file. Both
/// prefixes empty -> an empty function (sweep runs untraced). A file that
/// cannot be opened is reported to stderr and that run is untraced.
RunSinkFactory make_run_sink_factory(RunSinkOptions options);

}  // namespace realtor::experiment
