// Replicated parameter sweeps with common random numbers.
//
// The paper overlays five protocol curves at identical arrival rates; the
// sweep gives each (lambda, replication) cell one workload seed shared by
// every protocol, so curve differences are protocol differences.
//
// Execution model: every (protocol, lambda, replication) run is an
// independent simulation with a seed derived from (base seed, lambda, rep)
// alone, so the grid fans out across `jobs` worker threads and the
// per-run metrics are merged back in the fixed serial order
// (protocol-major, lambda, then replication). Aggregates, confidence
// intervals and report tables are therefore byte-identical for every jobs
// value — parallelism changes wall-clock time only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "experiment/metrics.hpp"
#include "experiment/scenario.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace realtor::experiment {

/// Aggregated results of one (protocol, lambda) cell across replications.
struct SweepCell {
  proto::ProtocolKind kind = proto::ProtocolKind::kRealtor;
  double lambda = 0.0;
  OnlineStats admission_probability;
  OnlineStats total_messages;
  OnlineStats messages_per_admitted;
  OnlineStats migration_rate;
  OnlineStats mean_occupancy;
  OnlineStats evacuation_success;
  RunMetrics summed;  // raw counters summed across replications
};

struct SweepOptions {
  std::vector<double> lambdas;
  std::vector<proto::ProtocolKind> protocols;
  std::uint32_t replications = 10;

  /// Worker threads for the run fan-out: 0 (the default) uses one worker
  /// per hardware thread, 1 runs the serial reference path on the calling
  /// thread, N uses exactly N. Results are identical for every value.
  unsigned jobs = 0;

  /// Optional per-run trace-sink factory, called once per (protocol,
  /// lambda, replication) run before its simulation starts; return
  /// nullptr to leave that run untraced. With jobs > 1 the factory runs
  /// on worker threads and every run must get its *own* sink (e.g. one
  /// suffixed JSONL file per run) — handing out one shared file would
  /// interleave records across threads.
  std::function<std::unique_ptr<obs::TraceSink>(
      proto::ProtocolKind kind, double lambda, std::uint32_t rep)>
      make_trace_sink;

  /// Called after each completed run (progress reporting); may be empty.
  /// Invocation order is always the serial cell order. With jobs > 1 the
  /// callbacks fire during the deterministic merge after the parallel
  /// phase, so they report completion, not live progress.
  std::function<void(const SweepCell&, std::uint32_t rep)> on_run;
};

/// Runs `base` across options.lambdas x options.protocols x replications.
/// Results are ordered protocol-major, lambda-minor.
std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options);

/// Convenience: sweep all five paper protocols at the given lambdas.
SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications);

/// Shape of SweepOptions::make_trace_sink, exposed so the shared factory
/// below can be passed around by the CLI and the benches.
using RunSinkFactory = std::function<std::unique_ptr<obs::TraceSink>(
    proto::ProtocolKind kind, double lambda, std::uint32_t rep)>;

/// What make_run_sink_factory() should build per run. At most one of the
/// prefixes may be non-empty (a run gets one sink).
struct RunSinkOptions {
  /// JSONL: one file per run named prefix.<proto>.lambda<L>.rep<R>.jsonl.
  std::string jsonl_prefix;
  /// JsonlSink batching (0 = write-through; see JsonlSink's guarantee).
  std::size_t jsonl_flush_every = 0;
  /// Flight recorder: one binary ring per run, dumped to
  /// prefix.<proto>.lambda<L>.rep<R>.bin when run_one flushes the sink.
  std::string flight_prefix;
  /// Ring capacity in records for flight sinks.
  std::size_t flight_capacity = obs::kDefaultFlightCapacity;
};

/// The per-run sink factory shared by realtor_sim --sweep and the bench
/// harness: builds a JsonlSink or FlightDumpSink per (protocol, lambda,
/// replication) run, suffix-named so parallel workers never share a file.
/// Both prefixes empty -> an empty function (sweep runs untraced). A file
/// that cannot be opened is reported to stderr and that run is untraced.
RunSinkFactory make_run_sink_factory(RunSinkOptions options);

}  // namespace realtor::experiment
