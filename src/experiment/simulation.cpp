#include "experiment/simulation.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/profile.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {

NodeId TopologySpec::node_count() const {
  switch (kind) {
    case TopologyKind::kMesh:
    case TopologyKind::kTorus:
      return width * height;
    case TopologyKind::kRing:
    case TopologyKind::kStar:
    case TopologyKind::kComplete:
    case TopologyKind::kRandom:
      return nodes;
  }
  return 0;
}

net::Topology build_topology(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::kMesh:
      return net::make_mesh(spec.width, spec.height);
    case TopologyKind::kTorus:
      return net::make_torus(spec.width, spec.height);
    case TopologyKind::kRing:
      return net::make_ring(spec.nodes);
    case TopologyKind::kStar:
      return net::make_star(spec.nodes);
    case TopologyKind::kComplete:
      return net::make_complete(spec.nodes);
    case TopologyKind::kRandom:
      return net::make_random_connected(spec.nodes, spec.links, spec.seed);
  }
  REALTOR_ASSERT_MSG(false, "unknown topology kind");
  return net::make_mesh(1, 1);
}

Simulation::Simulation(const ScenarioConfig& config)
    : config_(config),
      topology_(build_topology(config.topology)),
      cost_model_(topology_, config.cost_mode, config.fixed_unicast_cost,
                  config.flood_mode),
      transport_(engine_, topology_, cost_model_, metrics_.ledger,
                 config.network_delay,
                 [this](NodeId to, NodeId from, const proto::Message& msg) {
                   protocols_[to]->on_message(from, msg);
                 }),
      admission_(config.migration, topology_, cost_model_, metrics_.ledger,
                 [this](NodeId id) { return hosts_[id].get(); }),
      arrivals_(engine_, config.seed, config.lambda, config.mean_task_size,
                topology_.num_nodes(),
                [this](const sim::Arrival& a) { handle_arrival(a); }),
      injector_(engine_, topology_),
      attack_rng_(config.seed, "attack-victims"),
      multires_rng_(config.seed, "multi-resource") {
  if (config_.approx_path_stats) {
    cost_model_.set_approx_path_stats(true);
  }
  transport_.set_tracer(&tracer_);
  const NodeId n = topology_.num_nodes();
  hosts_.reserve(n);
  protocols_.reserve(n);
  monitors_.resize(n);

  if (config_.federation.enabled) {
    const FederationConfig& fed = config_.federation;
    if (fed.block_width > 0 && fed.block_height > 0 &&
        config_.topology.kind == TopologyKind::kMesh) {
      groups_ = federation::GroupMap::mesh_blocks(
          config_.topology.width, config_.topology.height, fed.block_width,
          fed.block_height);
    } else {
      groups_ = federation::GroupMap::chunks(n, fed.group_size);
    }
    transport_.set_group_map(&*groups_);
    last_escalation_.assign(n, -kNeverTime);
  }

  const MultiResourceConfig& mr = config_.multi_resource;
  for (NodeId id = 0; id < n; ++id) {
    node::HostResources resources;
    if (mr.enabled) {
      resources.bandwidth_capacity = mr.bandwidth_capacity;
      // Round-robin security levels spread clearance uniformly over the
      // mesh (the paper's "locations that run at higher security levels").
      resources.security_level =
          static_cast<std::uint8_t>(id % mr.security_levels);
    }
    hosts_.push_back(std::make_unique<node::Host>(
        engine_, id, config_.queue_capacity, resources));
  }
  for (NodeId id = 0; id < n; ++id) {
    proto::ProtocolEnv env;
    env.engine = &engine_;
    env.topology = &topology_;
    env.transport = &transport_;
    // With multiple resources the protocols reason about the binding
    // dimension; in the CPU-only model this is plain queue occupancy.
    env.local_occupancy = mr.enabled
        ? std::function<double()>(
              [this, id] { return hosts_[id]->bottleneck_occupancy(); })
        : std::function<double()>(
              [this, id] { return hosts_[id]->occupancy(); });
    if (mr.enabled) {
      env.local_security = [this, id] {
        return hosts_[id]->security_level();
      };
    }
    env.seed = config_.seed;
    env.tracer = &tracer_;
    env.episodes = &episodes_;
    protocols_.push_back(proto::make_protocol(config_.protocol_kind, id,
                                              config_.protocol,
                                              std::move(env)));
  }
  admission_.set_tracer(&tracer_, &engine_);
  for (NodeId id = 0; id < n; ++id) {
    hosts_[id]->set_tracer(&tracer_);
    hosts_[id]->set_status_listener([this, id](const node::Host& h) {
      monitors_[id].sample(engine_.now(), h);
      protocols_[id]->on_status_change(h.occupancy());
    });
    hosts_[id]->set_completion_listener(
        [this](const node::Host&, const node::Task& task) {
          ++metrics_.completed;
          metrics_.completed_work_seconds += task.size_seconds;
          metrics_.response_time.add(engine_.now() - task.arrival_time);
        });
  }
  injector_.add_listener([this](NodeId nodeid, bool alive) {
    on_liveness_change(nodeid, alive);
  });
  if (config_.sample_interval > 0.0) {
    sampler_.emplace(engine_, config_.sample_interval, tracer_, &registry_);
    sampler_->add_probe([this](SimTime now) { sample_observability(now); });
  }
}

void Simulation::handle_arrival(const sim::Arrival& arrival) {
  double bandwidth_share = 0.0;
  std::uint8_t min_security = 0;
  if (config_.multi_resource.enabled) {
    const MultiResourceConfig& mr = config_.multi_resource;
    bandwidth_share = std::min(
        0.5, multires_rng_.exponential(mr.mean_bandwidth_share));
    if (mr.security_levels > 1 &&
        multires_rng_.bernoulli(mr.secure_task_fraction)) {
      min_security = static_cast<std::uint8_t>(
          1 + multires_rng_.uniform_index(mr.security_levels - 1));
    }
  }
  process_arrival(arrival, bandwidth_share, min_security);
}

void Simulation::inject(const sim::Arrival& arrival, double bandwidth_share,
                        std::uint8_t min_security) {
  process_arrival(arrival, bandwidth_share, min_security);
}

void Simulation::process_arrival(const sim::Arrival& arrival,
                                 double bandwidth_share,
                                 std::uint8_t min_security) {
  ++metrics_.generated;
  if (!topology_.alive(arrival.node)) {
    ++metrics_.arrivals_at_dead_nodes;
    return;
  }

  node::Host& host = *hosts_[arrival.node];
  node::Task task;
  task.id = arrival.id;
  task.size_seconds = arrival.size_seconds;
  task.arrival_time = arrival.time;
  task.origin = arrival.node;
  task.bandwidth_share = bandwidth_share;
  task.min_security = min_security;
  if (tracing()) {
    tracer_.emit(obs::TraceEvent(engine_.now(), arrival.node,
                                 obs::EventKind::kTaskArrival)
                     .with("task", task.id)
                     .with("size", task.size_seconds));
  }

  // Algorithm H's trigger signal: how far the *binding* resource dimension
  // would be pushed by this task. CPU-only runs reduce to queue occupancy;
  // with multiple resources a NIC-bound or security-refused task counts as
  // full demand even when the CPU queue has room.
  double occupancy_with_task =
      (host.backlog_seconds() + task.size_seconds) / host.capacity_seconds();
  if (config_.multi_resource.enabled) {
    if (task.bandwidth_share > 0.0) {
      occupancy_with_task = std::max(
          occupancy_with_task,
          host.bandwidth_utilization() +
              task.bandwidth_share / host.resources().bandwidth_capacity);
    }
    if (task.min_security > host.security_level()) {
      occupancy_with_task = std::max(occupancy_with_task, 1.0);
    }
  }

  if (host.try_enqueue(task)) {
    ++metrics_.admitted_local;
    if (tracing()) {
      tracer_.emit(obs::TraceEvent(engine_.now(), arrival.node,
                                   obs::EventKind::kTaskAdmitLocal)
                       .with("task", task.id)
                       .with("occupancy", host.occupancy()));
    }
  } else {
    const auto outcome =
        admission_.try_migrate(task, arrival.node, *protocols_[arrival.node]);
    metrics_.migration_attempts += outcome.attempts;
    if (outcome.admitted) {
      ++metrics_.admitted_migrated;
      metrics_.migration_aborts += outcome.attempts - 1;
      if (tracing()) {
        tracer_.emit(obs::TraceEvent(engine_.now(), arrival.node,
                                     obs::EventKind::kTaskAdmitMigrated)
                         .with("task", task.id)
                         .with("target", outcome.target)
                         .with("attempts", outcome.attempts)
                         .with("episode",
                               protocols_[arrival.node]->current_episode())
                         .with("id", tracer_.issue_id())
                         .with("cause", outcome.last_event));
      }
    } else {
      ++metrics_.rejected;
      metrics_.migration_aborts += outcome.attempts;
      if (tracing()) {
        tracer_.emit(obs::TraceEvent(engine_.now(), arrival.node,
                                     obs::EventKind::kTaskRejected)
                         .with("task", task.id)
                         .with("attempts", outcome.attempts)
                         .with("episode",
                               protocols_[arrival.node]->current_episode())
                         .with("id", tracer_.issue_id())
                         .with("cause", outcome.last_event));
      }
      if (outcome.attempts == 0) {
        // Local group had nothing to offer: solicit the neighbor groups
        // so future arrivals can migrate out (§7 extension).
        maybe_escalate(arrival.node);
      }
    }
  }

  // Algorithm H's trigger runs after the decision: the candidate list a
  // PULL scheme consulted above was gathered by *earlier* solicitations.
  protocols_[arrival.node]->on_task_arrival(occupancy_with_task);
}

void Simulation::maybe_escalate(NodeId origin) {
  if (!groups_) return;
  const SimTime now = engine_.now();
  if (now - last_escalation_[origin] < config_.federation.escalation_window) {
    return;
  }
  last_escalation_[origin] = now;
  proto::HelpMsg help;
  help.origin = origin;
  help.urgency = 1.0;  // escalations only happen once the group is dry
  const federation::GroupId own = groups_->group_of(origin);
  std::uint32_t notified = 0;
  for (const federation::GroupId neighbor :
       groups_->adjacent_groups(own, topology_)) {
    transport_.escalate(origin, neighbor, proto::Message{help});
    ++metrics_.escalations;
    ++notified;
  }
  if (notified > 0 && tracing()) {
    tracer_.emit(
        obs::TraceEvent(now, origin, obs::EventKind::kEscalation)
            .with("groups", notified));
  }
}

void Simulation::elusive_round() {
  engine_.schedule_in(config_.elusiveness.period, [this] { elusive_round(); });
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    if (!topology_.alive(id)) continue;
    auto component = hosts_[id]->pop_newest_queued();
    if (!component) continue;
    const auto outcome = admission_.try_migrate(*component, id, *protocols_[id]);
    metrics_.migration_attempts += outcome.attempts;
    if (outcome.admitted) {
      ++metrics_.elusive_moves;
      metrics_.migration_aborts += outcome.attempts - 1;
    } else {
      // Nowhere better to hide: the component stays put. Re-admission
      // cannot fail — its own capacity was just freed.
      const bool readmitted = hosts_[id]->try_enqueue(*component);
      REALTOR_ASSERT(readmitted);
      ++metrics_.elusive_stays;
      metrics_.migration_aborts += outcome.attempts;
    }
  }
}

void Simulation::evacuate(NodeId victim) {
  if (!topology_.alive(victim)) return;
  std::vector<node::Task> resident = hosts_[victim]->drain();
  metrics_.evacuation_candidates += resident.size();
  std::size_t saved = 0;
  for (node::Task& task : resident) {
    const auto outcome =
        admission_.try_migrate(task, victim, *protocols_[victim]);
    metrics_.migration_attempts += outcome.attempts;
    if (outcome.admitted) {
      ++metrics_.evacuated;
      ++saved;
    } else {
      // Nowhere to go before the node dies: the work perishes with it.
      ++metrics_.lost_to_attack;
      metrics_.migration_aborts += outcome.attempts;
    }
  }
  if (tracing()) {
    tracer_.emit(
        obs::TraceEvent(engine_.now(), victim, obs::EventKind::kEvacuation)
            .with("resident", resident.size())
            .with("saved", saved));
  }
}

void Simulation::on_liveness_change(NodeId nodeid, bool alive) {
  if (!alive) {
    const std::size_t lost = hosts_[nodeid]->clear();
    metrics_.lost_to_attack += lost;
    protocols_[nodeid]->on_self_killed();
    if (tracing()) {
      tracer_.emit(obs::TraceEvent(engine_.now(), nodeid,
                                   obs::EventKind::kNodeKilled)
                       .with("lost", lost));
    }
  } else {
    protocols_[nodeid]->on_self_restored();
    if (tracing()) {
      tracer_.emit(obs::TraceEvent(engine_.now(), nodeid,
                                   obs::EventKind::kNodeRestored));
    }
  }
}

void Simulation::schedule_attacks(const std::vector<AttackWave>& waves) {
  std::size_t wave_index = 0;
  for (const AttackWave& wave : waves) {
    REALTOR_ASSERT(wave.count <= topology_.num_nodes());
    // Victims are drawn up-front from the full population — the attacker
    // does not care whom we consider alive later.
    std::vector<NodeId> victims;
    std::vector<char> chosen(topology_.num_nodes(), 0);
    while (victims.size() < wave.count) {
      const NodeId v = static_cast<NodeId>(
          attack_rng_.uniform_index(topology_.num_nodes()));
      if (chosen[v]) continue;
      chosen[v] = 1;
      victims.push_back(v);
    }
    const SimTime kill_time = wave.time + wave.grace;
    for (const NodeId victim : victims) {
      if (wave.grace > 0.0) {
        // The attack warning first triggers an emergency solicitation (§3:
        // security enforcers forward the request to REALTOR); pledges come
        // back and the actual evacuation runs mid-grace on fresh state.
        engine_.schedule_at(wave.time, [this, victim] {
          if (topology_.alive(victim)) {
            protocols_[victim]->solicit();
          }
        });
        engine_.schedule_at(wave.time + wave.grace * 0.5,
                            [this, victim] { evacuate(victim); });
      }
      injector_.schedule_kill(victim, kill_time);
      if (wave.outage > 0.0) {
        injector_.schedule_restore(victim, kill_time + wave.outage);
      }
    }
    // The wave listener (flight-recorder dump-on-attack) fires after the
    // kills land: kills are scheduled above with earlier sequence numbers
    // at the same timestamp, so the FIFO tie-break runs them first and the
    // listener sees the post-attack state. Scheduled only when a listener
    // is attached, so untraced runs stay event-for-event identical.
    if (attack_wave_listener_) {
      const std::size_t index = wave_index;
      engine_.schedule_at(kill_time, [this, index, kill_time] {
        attack_wave_listener_(index, kill_time);
      });
    }
    ++wave_index;
  }
}

std::uint32_t Simulation::attack_event_count(
    const std::vector<AttackWave>& waves, bool with_listener) {
  std::uint64_t events = 0;
  for (const AttackWave& wave : waves) {
    // Per victim: solicit + evacuate under a grace period, the kill, and
    // the restore when an outage ends. Plus one wave-listener event.
    const std::uint64_t per_victim = (wave.grace > 0.0 ? 2u : 0u) + 1u +
                                     (wave.outage > 0.0 ? 1u : 0u);
    events += per_victim * wave.count + (with_listener ? 1u : 0u);
  }
  return static_cast<std::uint32_t>(events);
}

void Simulation::defer_attacks(std::uint32_t reserved_events) {
  REALTOR_ASSERT_MSG(!begun_, "defer_attacks must precede begin_run");
  REALTOR_ASSERT_MSG(config_.attacks.empty(),
                     "defer_attacks replaces configured attacks");
  attacks_deferred_ = true;
  deferred_reserve_ = reserved_events;
}

void Simulation::arm_attacks(const std::vector<AttackWave>& waves) {
  REALTOR_ASSERT_MSG(attacks_deferred_ && begun_ && !finished_,
                     "arm_attacks needs a deferred block and a begun run");
  const std::uint32_t needed =
      attack_event_count(waves, attack_wave_listener_ != nullptr);
  REALTOR_ASSERT_MSG(needed <= deferred_reserve_,
                     "reserved attack block too small for these waves");
  engine_.use_reserved_seqs(reserved_first_, needed);
  schedule_attacks(waves);
  engine_.end_reserved_seqs();
  attacks_deferred_ = false;
}

const RunMetrics& Simulation::run() {
  begin_run();
  return finish_run();
}

void Simulation::begin_run() {
  REALTOR_ASSERT_MSG(!begun_, "Simulation::run() is one-shot");
  begun_ = true;

  for (auto& protocol : protocols_) {
    protocol->start();
  }
  if (attacks_deferred_) {
    // Hold the attack events' tie-break positions open; arm_attacks()
    // fills them in later. Every allocation after this point shifts by the
    // same amount relative to an unforked run, so relative order — the
    // only thing the tie-break consumes — is preserved.
    reserved_first_ = engine_.reserve_seqs(deferred_reserve_);
  } else {
    schedule_attacks(config_.attacks);
  }
  if (config_.elusiveness.enabled) {
    engine_.schedule_in(config_.elusiveness.period,
                        [this] { elusive_round(); });
  }
  if (config_.warmup > 0.0) {
    engine_.schedule_at(config_.warmup, [this] { metrics_.reset(); });
  }
  if (config_.timeline_interval > 0.0) {
    engine_.schedule_in(config_.timeline_interval,
                        [this] { take_timeline_sample(); });
  }
  if (sampler_) {
    sampler_->start();
  }
  if (config_.live_cadence > 0.0) {
    engine_.schedule_in(config_.live_cadence, [this] { live_tick(); });
  }
  if (config_.engine_sample_every > 0) {
    engine_.set_observer(
        config_.engine_sample_every,
        [this](SimTime now, std::uint64_t processed, std::size_t pending) {
          if (!tracing()) return;
          tracer_.emit(obs::TraceEvent(now, kInvalidNode,
                                       obs::EventKind::kEngineStep)
                           .with("processed", processed)
                           .with("pending", pending));
        });
  }
  if (!config_.external_arrivals) {
    arrivals_.start();
  }
}

void Simulation::run_prefix(SimTime t) {
  REALTOR_ASSERT(begun_ && !finished_);
  engine_.run_until_before(t);
}

const RunMetrics& Simulation::finish_run() {
  REALTOR_ASSERT(begun_ && !finished_);
  finished_ = true;

  engine_.run_until(config_.duration);
  arrivals_.stop();

  finalize_telemetry();
  tracer_.flush();

  REALTOR_ASSERT(metrics_.generated ==
                 metrics_.admitted_local + metrics_.admitted_migrated +
                     metrics_.rejected + metrics_.arrivals_at_dead_nodes);
  return metrics_;
}

void Simulation::take_timeline_sample() {
  engine_.schedule_in(config_.timeline_interval,
                      [this] { take_timeline_sample(); });
  TimelineSample sample;
  sample.time = engine_.now();
  sample.generated = metrics_.generated;
  sample.admitted = metrics_.admitted_total();
  sample.rejected = metrics_.rejected;
  sample.overhead_cost = metrics_.ledger.overhead_cost();
  sample.alive_nodes = topology_.alive_count();
  double occupancy_sum = 0.0;
  topology_.for_each_alive_node(
      [&](NodeId node) { occupancy_sum += hosts_[node]->occupancy(); });
  sample.mean_occupancy =
      sample.alive_nodes > 0
          ? occupancy_sum / static_cast<double>(sample.alive_nodes)
          : 0.0;
  if (!timeline_.empty()) {
    // Window admission over the tasks decided since the previous sample
    // (dead-origin arrivals never reach a decision and drop out).
    const TimelineSample& prev = timeline_.back();
    const std::uint64_t new_admitted = sample.admitted - prev.admitted;
    const std::uint64_t new_rejected = sample.rejected - prev.rejected;
    const std::uint64_t decided = new_admitted + new_rejected;
    sample.window_admission =
        decided > 0
            ? static_cast<double>(new_admitted) / static_cast<double>(decided)
            : 1.0;
  }
  timeline_.push_back(sample);
}

void Simulation::live_tick() {
  // Always re-arm before emitting so the engine schedule is identical
  // whether or not a sink is attached (same contract as the sampler).
  engine_.schedule_in(config_.live_cadence, [this] { live_tick(); });
  const SimTime now = engine_.now();
  live_last_tick_ = now;
  if (!tracing()) return;
  tracer_.emit(obs::TraceEvent(now, kInvalidNode, obs::EventKind::kLiveTick));
}

void Simulation::sample_observability(SimTime now) {
  const std::size_t alive = topology_.alive_count();
  double occupancy_sum = 0.0;
  topology_.for_each_alive_node([&](NodeId id) {
    const node::Host& host = *hosts_[id];
    occupancy_sum += host.occupancy();
    if (!tracing()) return;
    const proto::ProtocolProbe probe = protocols_[id]->probe(now);
    obs::TraceEvent event(now, id, obs::EventKind::kNodeSample);
    event.with("occupancy", host.occupancy())
        .with("utilization", monitors_[id].utilization(now))
        .with("table_size", probe.table_size);
    if (probe.communities > 0) event.with("communities", probe.communities);
    if (probe.help_interval > 0.0) {
      event.with("help_interval", probe.help_interval);
    }
    tracer_.emit(event);
  });
  registry_.gauge("nodes.alive").set(static_cast<double>(alive));
  registry_.gauge("occupancy.mean")
      .set(alive > 0 ? occupancy_sum / static_cast<double>(alive) : 0.0);
  registry_.gauge("messages.cost").set(metrics_.ledger.overhead_cost());
  registry_.gauge("tasks.generated")
      .set(static_cast<double>(metrics_.generated));
  registry_.gauge("tasks.admitted")
      .set(static_cast<double>(metrics_.admitted_total()));
  registry_.gauge("tasks.rejected")
      .set(static_cast<double>(metrics_.rejected));
}

void Simulation::finalize_telemetry() {
  const SimTime now = engine_.now();
  // Last-sample-at-end: close the sampled time series at the run's final
  // instant, then close the live plane with a final tick so its last
  // snapshot covers everything (including the samples just emitted).
  if (sampler_) {
    sampler_->finish(now);
  }
  if (config_.live_cadence > 0.0 && live_last_tick_ < now && tracing()) {
    live_last_tick_ = now;
    tracer_.emit(obs::TraceEvent(now, kInvalidNode, obs::EventKind::kLiveTick)
                     .with("final", true));
  }
  double occupancy_sum = 0.0;
  double utilization_sum = 0.0;
  for (const auto& monitor : monitors_) {
    occupancy_sum += monitor.average_occupancy(now);
    utilization_sum += monitor.utilization(now);
  }
  const double n = static_cast<double>(monitors_.size());
  metrics_.mean_occupancy = occupancy_sum / n;
  metrics_.mean_utilization = utilization_sum / n;

  // Fold the self-profiler's scope totals into the registry so profiled
  // runs export them alongside the simulation gauges. The process-wide
  // profiler outlives this Simulation, so the totals cover everything
  // recorded since its last reset (the harness resets between runs).
  if (obs::Profiler::instance().enabled()) {
    for (const obs::ProfileEntry& entry : obs::Profiler::instance().snapshot()) {
      registry_.gauge("profile." + entry.path + ".calls")
          .set(static_cast<double>(entry.calls));
      registry_.gauge("profile." + entry.path + ".ms")
          .set(static_cast<double>(entry.ns) / 1e6);
    }
  }
}

}  // namespace realtor::experiment
