// Table emitters: turn sweep results into the series the paper plots, one
// column per protocol curve, one row per arrival rate.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "experiment/sweep.hpp"

namespace realtor::experiment {

/// Which aggregated statistic of a cell a figure plots.
using CellMetric = std::function<const OnlineStats&(const SweepCell&)>;

/// Builds a lambda-by-protocol table of `metric` means (and 95% CI
/// half-widths when `with_ci`).
Table figure_table(const std::vector<SweepCell>& cells, const CellMetric& metric,
                   int precision, bool with_ci = false);

Table fig5_admission_probability(const std::vector<SweepCell>& cells);
Table fig6_message_overhead(const std::vector<SweepCell>& cells);
Table fig7_cost_per_admitted(const std::vector<SweepCell>& cells);
Table fig8_migration_rate(const std::vector<SweepCell>& cells);

/// Prints the table plus a one-line provenance header; optionally saves
/// CSV next to it.
void emit_figure(const std::string& title, const Table& table,
                 const std::string& csv_path = "");

}  // namespace realtor::experiment
