// Transport implementation for the discrete-event harness: delivers
// protocol messages across the overlay and charges the ledger using the
// paper's accounting (flood = alive links; unicast = average path length).
#pragma once

#include <functional>

#include "federation/group_map.hpp"
#include "net/cost_model.hpp"
#include "net/message_ledger.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "proto/transport.hpp"
#include "sim/engine.hpp"

namespace realtor::experiment {

class SimTransport final : public proto::Transport {
 public:
  /// Routes a delivered message to the destination protocol instance.
  using Deliver = std::function<void(NodeId to, NodeId from,
                                     const proto::Message&)>;

  SimTransport(sim::Engine& engine, const net::Topology& topology,
               const net::CostModel& cost_model, net::MessageLedger& ledger,
               SimTime delay, Deliver deliver);

  /// Federation: restricts flood() to the origin's neighbor group (the §7
  /// extension). Pass nullptr (default) for the paper's flat overlay.
  /// The map must outlive the transport.
  void set_group_map(const federation::GroupMap* groups) { groups_ = groups; }

  void flood(NodeId origin, const proto::Message& msg) override;
  void unicast(NodeId from, NodeId to, const proto::Message& msg) override;

  /// Inter-group escalation: floods `msg` into `target_group` on behalf of
  /// `origin`, charged as the target group's intra links plus a
  /// gateway-to-gateway transit (2 unicasts). Requires a group map.
  void escalate(NodeId origin, federation::GroupId target_group,
                const proto::Message& msg);

 private:
  static net::MessageKind kind_of(const proto::Message& msg);
  /// Schedules delivery after `hops` propagation legs (delay per hop; a
  /// zero-delay transport still defers by one event for FIFO causality).
  void deliver_later(NodeId dest, NodeId origin, const proto::Message& msg,
                     std::uint32_t hops = 1);
  std::uint32_t hop_distance(NodeId from, NodeId to) const;

  sim::Engine& engine_;
  const net::Topology& topology_;
  const net::CostModel& cost_model_;
  net::MessageLedger& ledger_;
  SimTime delay_;
  Deliver deliver_;
  const federation::GroupMap* groups_ = nullptr;
  mutable net::ShortestPaths paths_;
};

}  // namespace realtor::experiment
