// Transport implementation for the discrete-event harness: delivers
// protocol messages across the overlay and charges the ledger using the
// paper's accounting (flood = alive links; unicast = average path length).
//
// Fan-out data path: a flood wraps the message once in a ref-counted
// immutable payload (one allocation per flood, counted by the
// payload_allocations() test hook) and either walks all destinations in
// id order inside a single scheduled event (batched mode, the zero-delay
// default) or schedules one 32-byte {dest, origin, payload} event per
// destination with hop-accurate delays (per-destination mode). Both fit
// the engine's inline EventFn buffer — no per-event heap traffic. The two
// modes are observably equivalent under the engine's time-then-FIFO
// ordering: per-destination deliveries get consecutive sequence numbers
// at schedule time, so no other event can interleave them, and liveness
// flips at the same timestamp always carry smaller sequence numbers (they
// are scheduled at t=0), so they are visible to both modes alike.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "federation/group_map.hpp"
#include "net/cost_model.hpp"
#include "net/message_ledger.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "proto/transport.hpp"
#include "sim/engine.hpp"

namespace realtor::experiment {

class SimTransport final : public proto::Transport {
 public:
  /// Routes a delivered message to the destination protocol instance.
  using Deliver = std::function<void(NodeId to, NodeId from,
                                     const proto::Message&)>;

  /// Shared immutable fan-out payload: allocated once per flood, then
  /// ref-counted by every pending delivery event.
  using Payload = std::shared_ptr<const proto::Message>;

  /// How flood fan-out is scheduled. kAuto picks batched when the
  /// per-hop delay is zero (deliveries would all fire at the same time in
  /// id order anyway) and per-destination otherwise.
  enum class DeliveryMode { kAuto, kPerDestination, kBatched };

  SimTransport(sim::Engine& engine, const net::Topology& topology,
               const net::CostModel& cost_model, net::MessageLedger& ledger,
               SimTime delay, Deliver deliver);

  /// Federation: restricts flood() to the origin's neighbor group (the §7
  /// extension). Pass nullptr (default) for the paper's flat overlay.
  /// The map must outlive the transport.
  void set_group_map(const federation::GroupMap* groups) { groups_ = groups; }

  /// Overrides the fan-out scheduling strategy (kAuto by default). The
  /// equivalence test pins each mode explicitly and diffs the traces.
  void set_delivery_mode(DeliveryMode mode) { mode_ = mode; }
  DeliveryMode delivery_mode() const { return mode_; }

  void flood(NodeId origin, const proto::Message& msg) override;
  void unicast(NodeId from, NodeId to, const proto::Message& msg) override;

  /// Inter-group escalation: floods `msg` into `target_group` on behalf of
  /// `origin`, charged as the target group's intra links plus a
  /// gateway-to-gateway transit (2 unicasts). Requires a group map.
  void escalate(NodeId origin, federation::GroupId target_group,
                const proto::Message& msg);

  /// Test hook: payload envelopes allocated so far — exactly one per
  /// flood/escalate regardless of destination count.
  std::uint64_t payload_allocations() const { return payload_allocations_; }

  /// Unicasts charged to the ledger but dropped because the endpoints sat
  /// in different partitions of the alive subgraph (record-and-drop: the
  /// message dies at the partition edge; the paper's accounting still
  /// counts the send attempt).
  std::uint64_t dropped_unreachable() const { return dropped_unreachable_; }

  /// Borrowed tracer for unreachable_drop records (the scorecard's
  /// per-episode drop attribution); nullptr (default) stays silent.
  /// Tracing never changes delivery decisions.
  void set_tracer(const obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  static net::MessageKind kind_of(const proto::Message& msg);

  /// True when fan-out should batch all destinations into one event.
  bool batched() const {
    return mode_ == DeliveryMode::kBatched ||
           (mode_ == DeliveryMode::kAuto && delay_ == 0.0);
  }

  /// Wraps a message into its shared fan-out envelope (the one allocation
  /// per flood).
  Payload wrap(const proto::Message& msg) {
    ++payload_allocations_;
    return std::make_shared<const proto::Message>(msg);
  }

  /// Clamps a raw BFS distance to a schedulable leg count: disconnected
  /// pairs cannot exchange messages anyway; charge one leg so the event
  /// still fires and liveness is re-checked at delivery time.
  static std::uint32_t clamp_hops(std::uint32_t d) {
    return d == net::kUnreachable || d == 0 ? 1 : d;
  }

  /// Schedules delivery of a shared payload after `hops` propagation legs.
  void deliver_later(NodeId dest, NodeId origin, Payload payload,
                     std::uint32_t hops);
  /// Single-destination variant: moves `msg` straight into the event's
  /// inline buffer (exactly one copy, no envelope allocation).
  void deliver_later(NodeId dest, NodeId origin, proto::Message msg,
                     std::uint32_t hops = 1);
  std::uint32_t hop_distance(NodeId from, NodeId to) const;

  /// Fans `payload` out to every alive member of `group` except `origin`
  /// (the flat-overlay sentinel addresses all nodes), batched or
  /// per-destination per the current mode. `hop_accurate` spaces the
  /// deliveries by BFS distance (floods with a positive delay); otherwise
  /// every destination is one uniform leg away.
  void fan_out(NodeId origin, federation::GroupId group, Payload payload,
               bool hop_accurate);

  sim::Engine& engine_;
  const net::Topology& topology_;
  const net::CostModel& cost_model_;
  net::MessageLedger& ledger_;
  SimTime delay_;
  Deliver deliver_;
  const federation::GroupMap* groups_ = nullptr;
  const obs::Tracer* tracer_ = nullptr;
  DeliveryMode mode_ = DeliveryMode::kAuto;
  std::uint64_t payload_allocations_ = 0;
  std::uint64_t dropped_unreachable_ = 0;
  mutable net::ShortestPaths paths_;
};

}  // namespace realtor::experiment
