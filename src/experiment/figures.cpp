#include "experiment/figures.hpp"

#include <algorithm>
#include <iostream>

#include "common/assert.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {
namespace {

std::vector<double> distinct_lambdas(const std::vector<SweepCell>& cells) {
  std::vector<double> lambdas;
  for (const SweepCell& cell : cells) {
    if (std::find(lambdas.begin(), lambdas.end(), cell.lambda) ==
        lambdas.end()) {
      lambdas.push_back(cell.lambda);
    }
  }
  std::sort(lambdas.begin(), lambdas.end());
  return lambdas;
}

std::vector<proto::ProtocolKind> distinct_protocols(
    const std::vector<SweepCell>& cells) {
  std::vector<proto::ProtocolKind> kinds;
  for (const SweepCell& cell : cells) {
    if (std::find(kinds.begin(), kinds.end(), cell.kind) == kinds.end()) {
      kinds.push_back(cell.kind);
    }
  }
  return kinds;
}

const SweepCell* find_cell(const std::vector<SweepCell>& cells,
                           proto::ProtocolKind kind, double lambda) {
  for (const SweepCell& cell : cells) {
    if (cell.kind == kind && cell.lambda == lambda) return &cell;
  }
  return nullptr;
}

}  // namespace

Table figure_table(const std::vector<SweepCell>& cells,
                   const CellMetric& metric, int precision, bool with_ci) {
  const auto lambdas = distinct_lambdas(cells);
  const auto kinds = distinct_protocols(cells);
  REALTOR_ASSERT(!lambdas.empty());
  REALTOR_ASSERT(!kinds.empty());

  std::vector<std::string> headers{"lambda"};
  for (const auto kind : kinds) {
    headers.emplace_back(proto::paper_label(kind));
    if (with_ci) headers.emplace_back("+-95%");
  }
  Table table(std::move(headers));
  for (const double lambda : lambdas) {
    table.row().cell(lambda, 1);
    for (const auto kind : kinds) {
      const SweepCell* cell = find_cell(cells, kind, lambda);
      REALTOR_ASSERT_MSG(cell != nullptr, "sweep grid has holes");
      table.cell(metric(*cell).mean(), precision);
      if (with_ci) table.cell(metric(*cell).ci95_halfwidth(), precision);
    }
  }
  return table;
}

Table fig5_admission_probability(const std::vector<SweepCell>& cells) {
  return figure_table(
      cells,
      [](const SweepCell& c) -> const OnlineStats& {
        return c.admission_probability;
      },
      4);
}

Table fig6_message_overhead(const std::vector<SweepCell>& cells) {
  return figure_table(
      cells,
      [](const SweepCell& c) -> const OnlineStats& { return c.total_messages; },
      0);
}

Table fig7_cost_per_admitted(const std::vector<SweepCell>& cells) {
  return figure_table(
      cells,
      [](const SweepCell& c) -> const OnlineStats& {
        return c.messages_per_admitted;
      },
      2);
}

Table fig8_migration_rate(const std::vector<SweepCell>& cells) {
  return figure_table(
      cells,
      [](const SweepCell& c) -> const OnlineStats& { return c.migration_rate; },
      4);
}

void emit_figure(const std::string& title, const Table& table,
                 const std::string& csv_path) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  if (!csv_path.empty()) {
    if (table.save_csv(csv_path)) {
      std::cout << "(csv: " << csv_path << ")\n";
    } else {
      std::cout << "(csv write failed: " << csv_path << ")\n";
    }
  }
  std::cout.flush();
}

}  // namespace realtor::experiment
