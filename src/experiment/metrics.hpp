// Per-run metrics and the derived quantities the paper plots.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "net/message_ledger.hpp"

namespace realtor::experiment {

struct RunMetrics {
  // Task accounting.
  std::uint64_t generated = 0;
  std::uint64_t admitted_local = 0;
  std::uint64_t admitted_migrated = 0;
  std::uint64_t rejected = 0;
  /// Arrivals addressed to a node that was dead at the instant of arrival
  /// (excluded from the admission-probability denominator; see DESIGN.md).
  std::uint64_t arrivals_at_dead_nodes = 0;

  // Completion accounting.
  std::uint64_t completed = 0;
  double completed_work_seconds = 0.0;
  OnlineStats response_time;

  // Attack / evacuation accounting (survivability experiments).
  std::uint64_t evacuation_candidates = 0;  // tasks resident on victims
  std::uint64_t evacuated = 0;              // successfully moved off
  std::uint64_t lost_to_attack = 0;         // dropped with the node

  // Discovery / migration accounting.
  std::uint64_t migration_attempts = 0;
  std::uint64_t migration_aborts = 0;
  /// Inter-group solicitations sent (federation runs only).
  std::uint64_t escalations = 0;
  /// Proactive location-elusiveness relocations (moved / kept in place).
  std::uint64_t elusive_moves = 0;
  std::uint64_t elusive_stays = 0;
  net::MessageLedger ledger;

  // System telemetry.
  double mean_occupancy = 0.0;   // time-averaged, across nodes
  double mean_utilization = 0.0; // server busy fraction, across nodes

  std::uint64_t admitted_total() const {
    return admitted_local + admitted_migrated;
  }

  /// Fig. 5 / Fig. 9 y-axis: admitted / offered.
  double admission_probability() const;

  /// Fig. 6 y-axis: total message exchanges — flooding plus
  /// admission-control negotiation, per the paper's counting rule.
  double total_messages() const { return ledger.overhead_cost(); }

  /// Fig. 7 y-axis: message cost per admitted task.
  double messages_per_admitted() const;

  /// Fig. 8 y-axis: migrations per admitted task.
  double migration_rate() const;

  /// Survivability: fraction of attacked-resident work rescued.
  double evacuation_success_rate() const;

  /// Zeroes all counters (warmup boundary).
  void reset();
};

}  // namespace realtor::experiment
