// Human-readable report tables for a finished run — what the CLI and the
// examples print.
#pragma once

#include <iosfwd>
#include <string>

#include "common/table.hpp"
#include "experiment/simulation.hpp"

namespace realtor::experiment {

/// Headline counters and derived quantities of a run.
Table summary_table(const RunMetrics& metrics);

/// Message accounting broken down by kind (sends + cost units).
Table ledger_table(const RunMetrics& metrics);

/// Per-node view: completions, utilization, time-average occupancy,
/// residual backlog, liveness. Requires the Simulation that produced the
/// metrics (for hosts and monitors).
Table per_node_table(Simulation& simulation);

/// Run timeline (empty table when sampling was disabled).
Table timeline_table(const Simulation& simulation);

/// Prints summary + ledger (+ per-node when `verbose`) with a title.
void print_report(std::ostream& os, const std::string& title,
                  Simulation& simulation, bool verbose);

}  // namespace realtor::experiment
