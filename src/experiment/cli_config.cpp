#include "experiment/cli_config.hpp"

#include <cstdio>
#include <sstream>

#include "proto/factory.hpp"

namespace realtor::experiment {

TopologyKind parse_topology_kind(const std::string& name) {
  if (name == "torus") return TopologyKind::kTorus;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "star") return TopologyKind::kStar;
  if (name == "complete") return TopologyKind::kComplete;
  if (name == "random") return TopologyKind::kRandom;
  return TopologyKind::kMesh;
}

void apply_topology_flags(const Flags& flags, ScenarioConfig& config) {
  config.topology.kind =
      parse_topology_kind(flags.get_string("topology", "mesh"));
  config.topology.width =
      static_cast<NodeId>(flags.get_int("width", config.topology.width));
  config.topology.height =
      static_cast<NodeId>(flags.get_int("height", config.topology.height));
  config.topology.nodes =
      static_cast<NodeId>(flags.get_int("nodes", config.topology.nodes));
  config.topology.links = static_cast<std::size_t>(
      flags.get_int("links", static_cast<std::int64_t>(config.topology.links)));
  config.topology.seed = static_cast<std::uint64_t>(flags.get_int(
      "topo-seed", static_cast<std::int64_t>(config.topology.seed)));
  if (config.topology.kind != TopologyKind::kMesh) {
    config.fixed_unicast_cost.reset();  // 4 is only right for the 5x5 mesh
  }
  config.approx_path_stats = flags.get_bool("approx-paths", false);
}

std::vector<AttackWave> parse_attack_waves(const std::string& spec) {
  // "time:count:grace:outage" entries separated by commas.
  std::vector<AttackWave> waves;
  std::istringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    AttackWave wave;
    unsigned long long count = 0;
    if (std::sscanf(entry.c_str(), "%lf:%llu:%lf:%lf", &wave.time, &count,
                    &wave.grace, &wave.outage) == 4) {
      wave.count = static_cast<std::size_t>(count);
      waves.push_back(wave);
    }
  }
  return waves;
}

ScenarioConfig scenario_from_flags(const Flags& flags) {
  ScenarioConfig config;

  // Workload.
  config.lambda = flags.get_double("lambda", config.lambda);
  config.duration = flags.get_double("duration", 600.0);
  config.warmup = flags.get_double("warmup", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.queue_capacity = flags.get_double("queue", config.queue_capacity);
  config.mean_task_size =
      flags.get_double("task-size", config.mean_task_size);

  // Topology.
  apply_topology_flags(flags, config);

  // Protocol.
  if (const auto kind =
          proto::parse_protocol(flags.get_string("protocol", "realtor"))) {
    config.protocol_kind = *kind;
  }
  proto::ProtocolConfig& p = config.protocol;
  p.help_threshold = flags.get_double("help-threshold", p.help_threshold);
  p.pledge_threshold =
      flags.get_double("pledge-threshold", p.pledge_threshold);
  p.alpha = flags.get_double("alpha", p.alpha);
  p.beta = flags.get_double("beta", p.beta);
  p.help_upper_limit = flags.get_double("upper-limit", p.help_upper_limit);
  p.help_timeout = flags.get_double("help-timeout", p.help_timeout);
  p.push_interval = flags.get_double("push-interval", p.push_interval);
  p.soft_state_ttl = flags.get_double("ttl", p.soft_state_ttl);
  p.max_communities = static_cast<std::uint32_t>(
      flags.get_int("max-communities", p.max_communities));
  p.gossip_interval = flags.get_double("gossip-interval", p.gossip_interval);
  p.gossip_fanout = static_cast<std::uint32_t>(
      flags.get_int("gossip-fanout", p.gossip_fanout));
  if (flags.get_string("reward", "migration") == "pledge") {
    p.reward_policy = proto::HelpRewardPolicy::kOnFirstUsefulPledge;
  }

  // Migration policy.
  config.migration.max_tries =
      static_cast<std::uint32_t>(flags.get_int("tries", 1));

  // Accounting.
  if (flags.get_string("cost", "paper") == "exact") {
    config.cost_mode = net::CostMode::kExactHops;
    config.fixed_unicast_cost.reset();
  }
  if (flags.get_string("flood", "links") == "spanning") {
    config.flood_mode = net::FloodMode::kSpanningTree;
  }
  if (flags.has("unicast")) {
    config.fixed_unicast_cost = flags.get_double("unicast", 4.0);
  }

  // Attacks.
  if (flags.has("attack")) {
    config.attacks = parse_attack_waves(flags.get_string("attack", ""));
  }

  // Extensions.
  if (flags.get_bool("multires", false)) {
    config.multi_resource.enabled = true;
    config.multi_resource.mean_bandwidth_share = flags.get_double(
        "bw-mean", config.multi_resource.mean_bandwidth_share);
    config.multi_resource.secure_task_fraction = flags.get_double(
        "secure-fraction", config.multi_resource.secure_task_fraction);
  }
  const std::string federate = flags.get_string("federate", "");
  if (!federate.empty()) {
    config.federation.enabled = true;
    unsigned w = 0, h = 0;
    if (std::sscanf(federate.c_str(), "%ux%u", &w, &h) == 2) {
      config.federation.block_width = static_cast<NodeId>(w);
      config.federation.block_height = static_cast<NodeId>(h);
    } else {
      config.federation.group_size = static_cast<NodeId>(
          flags.get_int("group-size", config.federation.group_size));
    }
    config.federation.escalation_window = flags.get_double(
        "escalation-window", config.federation.escalation_window);
  }
  if (flags.has("elusive")) {
    config.elusiveness.enabled = true;
    config.elusiveness.period = flags.get_double("elusive", 20.0);
  }

  // Output probes.
  config.timeline_interval = flags.get_double("timeline", 0.0);
  config.sample_interval = flags.get_double("sample-interval", 0.0);
  config.engine_sample_every = static_cast<std::uint64_t>(
      flags.get_int("engine-sample", 0));
  config.live_cadence = flags.get_double("live-cadence", 0.0);
  return config;
}

}  // namespace realtor::experiment
