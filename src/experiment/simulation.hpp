// The §5 experiment: wires topology, hosts, one discovery-protocol
// instance per host, admission control, the Poisson workload and optional
// attack waves onto one deterministic event engine.
//
// Per-arrival sequence (matching the paper's model):
//   1. The task lands on its randomly assigned node.
//   2. If it fits the local queue it is admitted locally.
//   3. Otherwise the admission controller asks the local protocol instance
//      for candidates and performs the (default one-try) migration
//      negotiation; failure rejects the task.
//   4. The protocol observes the arrival (Algorithm H may emit HELP) —
//      after the decision, so pull-based schemes act on previously
//      gathered, possibly stale information, as the paper discusses.
#pragma once

#include <memory>
#include <vector>

#include <optional>

#include "admission/admission_controller.hpp"
#include "experiment/metrics.hpp"
#include "federation/group_map.hpp"
#include "experiment/scenario.hpp"
#include "experiment/sim_transport.hpp"
#include "net/cost_model.hpp"
#include "net/failure.hpp"
#include "net/topology.hpp"
#include "node/host.hpp"
#include "node/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "proto/discovery_protocol.hpp"
#include "sim/arrivals.hpp"
#include "sim/engine.hpp"

namespace realtor::experiment {

/// One point of the run timeline (enabled by
/// ScenarioConfig::timeline_interval). Counters are cumulative;
/// window_admission is the admission probability within the last interval.
struct TimelineSample {
  SimTime time = 0.0;
  std::uint64_t generated = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  double window_admission = 1.0;
  double mean_occupancy = 0.0;   // instantaneous, across alive nodes
  double overhead_cost = 0.0;    // cumulative message units
  std::size_t alive_nodes = 0;
};

class Simulation {
 public:
  explicit Simulation(const ScenarioConfig& config);
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs the configured duration and returns the collected metrics.
  const RunMetrics& run();

  /// Phased execution for the warm-start executor; run() is exactly
  /// begin_run() + finish_run(). begin_run() performs the full t=0
  /// schedule (protocols, attacks, samplers, arrivals); run_prefix(t)
  /// advances the world to just before `t` (the snapshot barrier — events
  /// at exactly `t` stay pending); finish_run() runs the remainder and
  /// finalizes metrics. Splitting a run this way is observationally
  /// identical to run(): the engine fires the same events in the same
  /// order either way.
  void begin_run();
  void run_prefix(SimTime t);
  const RunMetrics& finish_run();

  /// Warm-start support: instead of scheduling config().attacks (which
  /// must be empty), begin_run() reserves `reserved_events` engine
  /// sequence numbers at the point where the attack events would have been
  /// scheduled. arm_attacks() later (typically after fork, before
  /// finish_run()) schedules a divergent wave set into that block, so the
  /// armed events land in exactly the equal-time tie-break positions an
  /// unforked run of those waves would have used. Call before begin_run().
  void defer_attacks(std::uint32_t reserved_events);

  /// Schedules `waves` into the block reserved by defer_attacks(). The
  /// block must hold at least attack_event_count(waves, ...) sequences.
  void arm_attacks(const std::vector<AttackWave>& waves);

  /// Engine events schedule_attacks() creates for `waves`; `with_listener`
  /// accounts for the per-wave attack_wave_listener event. This is the
  /// reservation size defer_attacks() needs (maximized over a warm-start
  /// class's members).
  static std::uint32_t attack_event_count(const std::vector<AttackWave>& waves,
                                          bool with_listener);

  /// Feeds one externally generated arrival (trace replay); pair with
  /// ScenarioConfig::external_arrivals. The multi-resource demand fields
  /// come from the trace instead of the internal draw.
  void inject(const sim::Arrival& arrival, double bandwidth_share = 0.0,
              std::uint8_t min_security = 0);

  /// Samples recorded at timeline_interval (empty when disabled).
  const std::vector<TimelineSample>& timeline() const { return timeline_; }

  /// Attaches a borrowed trace sink; every instrumented layer (protocols,
  /// hosts, admission, lifecycle, sampler) starts emitting through it.
  /// nullptr detaches. Tracing never changes decisions: a traced run of a
  /// seed is event-for-event identical to the untraced run.
  void set_trace_sink(obs::TraceSink* sink) { tracer_.set_sink(sink); }

  /// Called right after each attack wave's kills land (same timestamp,
  /// later FIFO order) with the wave index and kill time. The flight
  /// recorder hooks this to snapshot its rings while the pre-attack
  /// window is still in memory. Set before run(); unset (default) adds
  /// no events to the schedule.
  using AttackWaveListener =
      std::function<void(std::size_t wave, SimTime kill_time)>;
  void set_attack_wave_listener(AttackWaveListener listener) {
    attack_wave_listener_ = std::move(listener);
  }

  obs::Tracer& tracer() { return tracer_; }
  /// Discovery-episode ids handed out so far (shared across all protocol
  /// instances of this run; see obs::EpisodeSource).
  const obs::EpisodeSource& episodes() const { return episodes_; }
  /// Gauges refreshed at each sampler tick (sample_interval > 0).
  const obs::Registry& registry() const { return registry_; }

  /// Valid after run() as well as before (for tests that drive the engine
  /// manually via engine()).
  const RunMetrics& metrics() const { return metrics_; }

  sim::Engine& engine() { return engine_; }
  const net::Topology& topology() const { return topology_; }
  /// The run's transport (payload-allocation and partition-drop counters).
  const SimTransport& transport() const { return transport_; }
  SimTransport& transport() { return transport_; }
  node::Host& host(NodeId id) { return *hosts_[id]; }
  proto::DiscoveryProtocol& protocol(NodeId id) { return *protocols_[id]; }
  const node::UtilizationMonitor& monitor(NodeId id) const {
    return monitors_[id];
  }
  const ScenarioConfig& config() const { return config_; }

 private:
  void handle_arrival(const sim::Arrival& arrival);
  void process_arrival(const sim::Arrival& arrival, double bandwidth_share,
                       std::uint8_t min_security);
  void maybe_escalate(NodeId origin);
  void evacuate(NodeId victim);
  void elusive_round();
  void take_timeline_sample();
  void live_tick();
  void on_liveness_change(NodeId nodeid, bool alive);
  void schedule_attacks(const std::vector<AttackWave>& waves);
  void finalize_telemetry();
  void sample_observability(SimTime now);
  bool tracing() const { return tracer_.active(); }

  ScenarioConfig config_;
  sim::Engine engine_;
  net::Topology topology_;
  net::CostModel cost_model_;
  RunMetrics metrics_;
  SimTransport transport_;
  std::optional<federation::GroupMap> groups_;
  std::vector<SimTime> last_escalation_;
  std::vector<std::unique_ptr<node::Host>> hosts_;
  std::vector<std::unique_ptr<proto::DiscoveryProtocol>> protocols_;
  std::vector<node::UtilizationMonitor> monitors_;
  admission::AdmissionController admission_;
  sim::PoissonArrivals arrivals_;
  net::FailureInjector injector_;
  RngStream attack_rng_;
  RngStream multires_rng_;
  AttackWaveListener attack_wave_listener_;
  std::vector<TimelineSample> timeline_;
  obs::Tracer tracer_;
  obs::EpisodeSource episodes_;
  obs::Registry registry_;
  std::optional<obs::Sampler> sampler_;
  /// Time of the newest live_tick boundary; negative before the first.
  SimTime live_last_tick_ = -1.0;
  bool begun_ = false;
  bool finished_ = false;
  /// defer_attacks() state: reservation size requested, the first sequence
  /// of the reserved block (valid after begin_run), and whether the block
  /// is still waiting for arm_attacks().
  std::uint32_t deferred_reserve_ = 0;
  std::uint32_t reserved_first_ = 0;
  bool attacks_deferred_ = false;
};

}  // namespace realtor::experiment
