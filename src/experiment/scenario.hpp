// Experiment configuration. Defaults reproduce the paper's §5 setup:
// 5x5 mesh, Poisson arrivals, exp(5 s) task sizes, 100 s queues,
// thresholds 0.9, push interval 1 s, Upper_limit / window 100, PLEDGE cost
// pinned at 4 (the paper's average-shortest-path figure), one migration try.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "admission/admission_controller.hpp"
#include "common/types.hpp"
#include "net/cost_model.hpp"
#include "net/topology.hpp"
#include "proto/config.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {

enum class TopologyKind { kMesh, kTorus, kRing, kStar, kComplete, kRandom };

struct TopologySpec {
  TopologyKind kind = TopologyKind::kMesh;
  NodeId width = 5;    // mesh/torus
  NodeId height = 5;   // mesh/torus
  NodeId nodes = 25;   // ring/star/complete/random
  std::size_t links = 40;  // random
  std::uint64_t seed = 1;  // random

  NodeId node_count() const;
};

net::Topology build_topology(const TopologySpec& spec);

/// One attack wave: `count` random nodes die at `time`; a grace period lets
/// victims evacuate resident work through the discovery protocol before
/// the cut; they recover after `outage` (0 = never).
struct AttackWave {
  SimTime time = 0.0;
  std::size_t count = 0;
  SimTime grace = 0.0;
  SimTime outage = 0.0;
};

/// Multi-resource extension (§5 footnote 3): give tasks a bandwidth share
/// and a minimum security level, and hosts a NIC capacity and a security
/// level, so discovery/admission negotiate over more than CPU. Disabled by
/// default (the paper's main experiments are CPU-only).
struct MultiResourceConfig {
  bool enabled = false;
  /// Mean of the exponential per-task NIC share (clamped to [0, 0.5]).
  double mean_bandwidth_share = 0.1;
  /// Per-host NIC capacity in shares.
  double bandwidth_capacity = 1.0;
  /// Hosts are assigned security levels 0..security_levels-1 round-robin.
  std::uint8_t security_levels = 4;
  /// Probability a task demands an elevated (uniform >=1) security level.
  double secure_task_fraction = 0.3;
};

/// Inter-neighbor-group discovery (§7 future work): floods stay inside a
/// node's neighbor group; when local discovery yields no candidate, the
/// harness escalates a solicitation through the group gateway into every
/// adjacent group (rate-limited per node).
struct FederationConfig {
  bool enabled = false;
  /// Mesh-block group dimensions; 0 x 0 falls back to id-chunk groups of
  /// `group_size` nodes (for non-mesh topologies).
  NodeId block_width = 0;
  NodeId block_height = 0;
  NodeId group_size = 25;
  /// Minimum seconds between two escalations by the same node.
  SimTime escalation_window = 10.0;
};

/// Location elusiveness (§3): components "are capable of migrating
/// frequently, which provides them with location elusiveness ... the
/// location and tracking of critical components become significantly more
/// difficult for an attacker." Every `period`, each host proactively
/// relocates its newest queued component through the discovery protocol;
/// a failed relocation keeps the component where it was.
struct ElusivenessConfig {
  bool enabled = false;
  SimTime period = 20.0;
};

struct ScenarioConfig {
  TopologySpec topology;

  /// System-wide Poisson arrival rate (tasks/second).
  double lambda = 5.0;
  /// Mean of the exponential task-size distribution (seconds).
  double mean_task_size = 5.0;
  /// Per-node queue capacity in seconds of work.
  double queue_capacity = 100.0;

  /// Simulated duration. The paper's admission curves (~0.95 at lambda=6,
  /// ~0.85 at lambda=8) are transient-regime numbers: with 100 s queues an
  /// overloaded 25-node system absorbs excess work for a few hundred
  /// seconds before rejections dominate. Durations of 250-600 s reproduce
  /// that regime; the figure benches default to 600 s.
  SimTime duration = 250.0;
  /// Metrics (not system state) reset at this instant.
  SimTime warmup = 0.0;

  std::uint64_t seed = 42;

  proto::ProtocolKind protocol_kind = proto::ProtocolKind::kRealtor;
  proto::ProtocolConfig protocol;
  admission::MigrationPolicy migration;

  net::CostMode cost_mode = net::CostMode::kPaperAverage;
  /// Pin the unicast cost (paper: 4 on the 5x5 mesh); nullopt = use the
  /// computed average path length.
  std::optional<double> fixed_unicast_cost = 4.0;
  /// How floods are charged (paper: number of links).
  net::FloodMode flood_mode = net::FloodMode::kLinks;

  /// Estimate average-path-length/diameter from a sampled subset of BFS
  /// sources on topologies of >= ~2500 alive nodes instead of the exact
  /// all-sources scan. Off by default; paper-config runs (and every
  /// golden/figure test) stay exact. Only observable when the cost model
  /// actually consults path statistics (no pinned unicast cost).
  bool approx_path_stats = false;

  /// One-way protocol-message delay (seconds); 0 keeps the paper's
  /// instantaneous-delivery accounting model.
  SimTime network_delay = 0.0;

  std::vector<AttackWave> attacks;

  MultiResourceConfig multi_resource;
  FederationConfig federation;
  ElusivenessConfig elusiveness;

  /// Sampling period for the run timeline (Simulation::timeline()); 0
  /// disables sampling.
  SimTime timeline_interval = 0.0;

  /// Period of the observability sampler (per-node node_sample trace
  /// records plus the registry flattened into system_sample records); 0
  /// disables it. Only useful together with Simulation::set_trace_sink().
  SimTime sample_interval = 0.0;
  /// Emit one sampled engine_step trace record every N processed engine
  /// events (0 = off; disabled costs one integer test per event).
  std::uint64_t engine_sample_every = 0;
  /// Period of live_tick trace records — the window-advancement and
  /// alert-evaluation boundaries the live telemetry plane (obs/live)
  /// reacts to; 0 disables them. The recurring engine event is scheduled
  /// whether or not a sink is attached (only the emission is gated on
  /// tracing), so live-enabled and live-disabled runs of a seed stay
  /// event-for-event identical. A final tick is emitted at the run's end
  /// when the last periodic one landed earlier.
  SimTime live_cadence = 0.0;

  /// When true the internal Poisson generator stays off and the caller
  /// drives the workload through Simulation::inject() (trace replay).
  bool external_arrivals = false;
};

}  // namespace realtor::experiment
