#include "experiment/sim_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/profile.hpp"

namespace realtor::experiment {

namespace {
/// fan_out() group argument addressing the whole flat overlay.
constexpr federation::GroupId kFlatOverlay = ~federation::GroupId{0};
}  // namespace

SimTransport::SimTransport(sim::Engine& engine, const net::Topology& topology,
                           const net::CostModel& cost_model,
                           net::MessageLedger& ledger, SimTime delay,
                           Deliver deliver)
    : engine_(engine),
      topology_(topology),
      cost_model_(cost_model),
      ledger_(ledger),
      delay_(delay),
      deliver_(std::move(deliver)),
      paths_(topology) {
  REALTOR_ASSERT(delay_ >= 0.0);
  REALTOR_ASSERT(static_cast<bool>(deliver_));
}

std::uint32_t SimTransport::hop_distance(NodeId from, NodeId to) const {
  return clamp_hops(paths_.hops(from, to));
}

net::MessageKind SimTransport::kind_of(const proto::Message& msg) {
  if (std::holds_alternative<proto::HelpMsg>(msg)) {
    return net::MessageKind::kHelp;
  }
  if (std::holds_alternative<proto::PledgeMsg>(msg)) {
    return net::MessageKind::kPledge;
  }
  if (std::holds_alternative<proto::GossipMsg>(msg)) {
    return net::MessageKind::kGossip;
  }
  return net::MessageKind::kPushAdvert;
}

void SimTransport::deliver_later(NodeId dest, NodeId origin, Payload payload,
                                 std::uint32_t hops) {
  // Delivery is a separate event even at delay 0 so that receivers run
  // after the sender's current handler completes (FIFO at equal times).
  // With a positive per-hop delay, propagation is hop-accurate: a flood
  // reaches near neighbors before far ones, a unicast takes its path
  // length in legs.
  engine_.schedule_in(delay_ * static_cast<double>(hops),
                      [this, dest, origin, payload = std::move(payload)] {
                        if (topology_.alive(dest)) {
                          deliver_(dest, origin, *payload);
                        }
                      });
}

void SimTransport::deliver_later(NodeId dest, NodeId origin,
                                 proto::Message msg, std::uint32_t hops) {
  engine_.schedule_in(delay_ * static_cast<double>(hops),
                      [this, dest, origin, msg = std::move(msg)] {
                        if (topology_.alive(dest)) {
                          deliver_(dest, origin, msg);
                        }
                      });
}

void SimTransport::fan_out(NodeId origin, federation::GroupId group,
                           Payload payload, bool hop_accurate) {
  obs::ProfileScope scope("transport/fan_out");
  // Hop-accurate propagation (positive delay, flood semantics) needs a
  // distinct firing time per destination and therefore one event per
  // destination; all other fan-outs fire at a single uniform time and can
  // walk the destinations inside one batched event. Batched and
  // per-destination schedules are observably equivalent (header comment);
  // batching turns N-1 heap pushes into one.
  const bool flat = group == kFlatOverlay;
  if (batched() && !hop_accurate) {
    engine_.schedule_in(delay_, [this, origin, group, payload =
                                     std::move(payload)] {
      if (group == kFlatOverlay) {
        const NodeId n = topology_.num_nodes();
        for (NodeId dest = 0; dest < n; ++dest) {
          if (dest == origin || !topology_.alive(dest)) continue;
          deliver_(dest, origin, *payload);
        }
      } else {
        for (const NodeId dest : groups_->members(group)) {
          if (dest == origin || !topology_.alive(dest)) continue;
          deliver_(dest, origin, *payload);
        }
      }
    });
    return;
  }

  // One staleness resolution per flood, not per destination: the row
  // pointer stays valid for the whole loop because nothing below touches
  // the path cache.
  const std::uint32_t* row = hop_accurate ? paths_.row(origin) : nullptr;
  const auto leg = [&](NodeId dest) {
    return row != nullptr ? clamp_hops(row[dest]) : 1u;
  };
  if (flat) {
    const NodeId n = topology_.num_nodes();
    for (NodeId dest = 0; dest < n; ++dest) {
      if (dest == origin || !topology_.alive(dest)) continue;
      deliver_later(dest, origin, payload, leg(dest));
    }
  } else {
    for (const NodeId dest : groups_->members(group)) {
      if (dest == origin || !topology_.alive(dest)) continue;
      deliver_later(dest, origin, payload, leg(dest));
    }
  }
}

void SimTransport::flood(NodeId origin, const proto::Message& msg) {
  if (groups_ != nullptr) {
    // Federated overlay: the flood stays inside the origin's neighbor
    // group and costs only that group's links.
    const federation::GroupId group = groups_->group_of(origin);
    ledger_.record(kind_of(msg), static_cast<double>(
        groups_->intra_group_alive_links(group, topology_)));
    fan_out(origin, group, wrap(msg), delay_ > 0.0);
    return;
  }
  ledger_.record(kind_of(msg), cost_model_.flood_cost());
  fan_out(origin, kFlatOverlay, wrap(msg), delay_ > 0.0);
}

void SimTransport::escalate(NodeId origin, federation::GroupId target_group,
                            const proto::Message& msg) {
  REALTOR_ASSERT_MSG(groups_ != nullptr, "escalate() needs a group map");
  const NodeId gateway = groups_->gateway(target_group, topology_);
  if (gateway == kInvalidNode) return;  // whole group is down
  // Transit to the remote gateway (2 unicast legs: origin -> own gateway
  // -> remote gateway) plus the remote group's internal flood.
  const double transit = 2.0 * cost_model_.unicast_cost(origin, gateway);
  const double remote_flood = static_cast<double>(
      groups_->intra_group_alive_links(target_group, topology_));
  ledger_.record(kind_of(msg), transit + remote_flood);
  // Escalated floods are charged a flat transit and delivered after one
  // uniform leg (matching the original per-destination schedule).
  fan_out(origin, target_group, wrap(msg), /*hop_accurate=*/false);
}

void SimTransport::unicast(NodeId from, NodeId to, const proto::Message& msg) {
  obs::ProfileScope scope("transport/unicast");
  ledger_.record(kind_of(msg), cost_model_.unicast_cost(from, to));
  // Record-and-drop: a unicast between alive endpoints in different
  // partitions of the alive subgraph is charged (the sender pays for the
  // attempt) but the message dies at the partition edge instead of
  // teleporting across it. connected() short-circuits the per-pair check
  // whenever the alive subgraph has no partitions at all.
  if (topology_.alive(from) && topology_.alive(to) && !paths_.connected() &&
      !paths_.reachable(from, to)) {
    ++dropped_unreachable_;
    if (tracer_ != nullptr && tracer_->active()) {
      obs::TraceEvent event(engine_.now(), from,
                            obs::EventKind::kUnreachableDrop);
      event.with("to", to).with("msg", net::to_string(kind_of(msg)));
      // HELP and PLEDGE carry the discovery-episode id; attribute the
      // drop so the scorecard can charge it to the right episode.
      if (const auto* help = std::get_if<proto::HelpMsg>(&msg)) {
        event.with("episode", help->episode).with("cause", help->cause);
      } else if (const auto* pledge = std::get_if<proto::PledgeMsg>(&msg)) {
        event.with("episode", pledge->episode).with("cause", pledge->cause);
      }
      tracer_->emit(event);
    }
    return;
  }
  deliver_later(to, from, proto::Message(msg),
                delay_ > 0.0 ? hop_distance(from, to) : 1);
}

}  // namespace realtor::experiment
