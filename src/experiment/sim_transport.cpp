#include "experiment/sim_transport.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::experiment {

SimTransport::SimTransport(sim::Engine& engine, const net::Topology& topology,
                           const net::CostModel& cost_model,
                           net::MessageLedger& ledger, SimTime delay,
                           Deliver deliver)
    : engine_(engine),
      topology_(topology),
      cost_model_(cost_model),
      ledger_(ledger),
      delay_(delay),
      deliver_(std::move(deliver)),
      paths_(topology) {
  REALTOR_ASSERT(delay_ >= 0.0);
  REALTOR_ASSERT(static_cast<bool>(deliver_));
}

std::uint32_t SimTransport::hop_distance(NodeId from, NodeId to) const {
  if (paths_.version() != topology_.version()) {
    paths_.refresh();
  }
  const std::uint32_t d = paths_.hops(from, to);
  // Disconnected pairs cannot exchange messages anyway; charge one leg so
  // the event still fires and liveness is re-checked at delivery time.
  return d == net::kUnreachable || d == 0 ? 1 : d;
}

net::MessageKind SimTransport::kind_of(const proto::Message& msg) {
  if (std::holds_alternative<proto::HelpMsg>(msg)) {
    return net::MessageKind::kHelp;
  }
  if (std::holds_alternative<proto::PledgeMsg>(msg)) {
    return net::MessageKind::kPledge;
  }
  if (std::holds_alternative<proto::GossipMsg>(msg)) {
    return net::MessageKind::kGossip;
  }
  return net::MessageKind::kPushAdvert;
}

void SimTransport::deliver_later(NodeId dest, NodeId origin,
                                 const proto::Message& msg,
                                 std::uint32_t hops) {
  // Delivery is a separate event even at delay 0 so that receivers run
  // after the sender's current handler completes (FIFO at equal times).
  // With a positive per-hop delay, propagation is hop-accurate: a flood
  // reaches near neighbors before far ones, a unicast takes its path
  // length in legs.
  engine_.schedule_in(delay_ * static_cast<double>(hops),
                      [this, dest, origin, msg] {
                        if (topology_.alive(dest)) {
                          deliver_(dest, origin, msg);
                        }
                      });
}

void SimTransport::flood(NodeId origin, const proto::Message& msg) {
  if (groups_ != nullptr) {
    // Federated overlay: the flood stays inside the origin's neighbor
    // group and costs only that group's links.
    const federation::GroupId group = groups_->group_of(origin);
    ledger_.record(kind_of(msg), static_cast<double>(
        groups_->intra_group_alive_links(group, topology_)));
    for (const NodeId dest : groups_->members(group)) {
      if (dest == origin || !topology_.alive(dest)) continue;
      deliver_later(dest, origin, msg,
                    delay_ > 0.0 ? hop_distance(origin, dest) : 1);
    }
    return;
  }
  ledger_.record(kind_of(msg), cost_model_.flood_cost());
  for (NodeId dest = 0; dest < topology_.num_nodes(); ++dest) {
    if (dest == origin || !topology_.alive(dest)) continue;
    deliver_later(dest, origin, msg,
                  delay_ > 0.0 ? hop_distance(origin, dest) : 1);
  }
}

void SimTransport::escalate(NodeId origin, federation::GroupId target_group,
                            const proto::Message& msg) {
  REALTOR_ASSERT_MSG(groups_ != nullptr, "escalate() needs a group map");
  const NodeId gateway = groups_->gateway(target_group, topology_);
  if (gateway == kInvalidNode) return;  // whole group is down
  // Transit to the remote gateway (2 unicast legs: origin -> own gateway
  // -> remote gateway) plus the remote group's internal flood.
  const double transit = 2.0 * cost_model_.unicast_cost(origin, gateway);
  const double remote_flood = static_cast<double>(
      groups_->intra_group_alive_links(target_group, topology_));
  ledger_.record(kind_of(msg), transit + remote_flood);
  for (const NodeId dest : groups_->members(target_group)) {
    if (dest == origin || !topology_.alive(dest)) continue;
    deliver_later(dest, origin, msg);
  }
}

void SimTransport::unicast(NodeId from, NodeId to, const proto::Message& msg) {
  ledger_.record(kind_of(msg), cost_model_.unicast_cost(from, to));
  deliver_later(to, from, msg, delay_ > 0.0 ? hop_distance(from, to) : 1);
}

}  // namespace realtor::experiment
