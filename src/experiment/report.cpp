#include "experiment/report.hpp"

#include <ostream>

namespace realtor::experiment {

Table summary_table(const RunMetrics& metrics) {
  Table table({"metric", "value"});
  const auto add_count = [&table](const char* name, std::uint64_t value) {
    table.row().cell(std::string(name)).cell(value);
  };
  const auto add_ratio = [&table](const char* name, double value) {
    table.row().cell(std::string(name)).cell(value, 4);
  };
  add_count("tasks generated", metrics.generated);
  add_count("admitted locally", metrics.admitted_local);
  add_count("admitted via migration", metrics.admitted_migrated);
  add_count("rejected", metrics.rejected);
  if (metrics.arrivals_at_dead_nodes > 0) {
    add_count("arrivals at dead nodes", metrics.arrivals_at_dead_nodes);
  }
  add_ratio("admission probability", metrics.admission_probability());
  add_ratio("migration rate", metrics.migration_rate());
  add_count("completed", metrics.completed);
  add_ratio("mean response time (s)", metrics.response_time.mean());
  add_ratio("mean occupancy", metrics.mean_occupancy);
  add_ratio("mean utilization", metrics.mean_utilization);
  if (metrics.evacuation_candidates > 0) {
    add_count("evacuation candidates", metrics.evacuation_candidates);
    add_count("evacuated", metrics.evacuated);
    add_count("lost to attack", metrics.lost_to_attack);
    add_ratio("evacuation success", metrics.evacuation_success_rate());
  }
  if (metrics.escalations > 0) {
    add_count("inter-group escalations", metrics.escalations);
  }
  if (metrics.elusive_moves + metrics.elusive_stays > 0) {
    add_count("elusive relocations", metrics.elusive_moves);
    add_count("elusive stay-puts", metrics.elusive_stays);
  }
  add_ratio("overhead units (Fig. 6)", metrics.total_messages());
  add_ratio("units per admitted task", metrics.messages_per_admitted());
  return table;
}

Table ledger_table(const RunMetrics& metrics) {
  Table table({"kind", "sends", "cost units"});
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(net::MessageKind::kCount); ++i) {
    const auto kind = static_cast<net::MessageKind>(i);
    if (metrics.ledger.sends(kind) == 0) continue;
    table.row()
        .cell(std::string(net::to_string(kind)))
        .cell(metrics.ledger.sends(kind))
        .cell(metrics.ledger.cost(kind), 1);
  }
  table.row()
      .cell(std::string("TOTAL"))
      .cell(metrics.ledger.total_sends())
      .cell(metrics.ledger.total_cost(), 1);
  return table;
}

Table per_node_table(Simulation& simulation) {
  Table table({"node", "alive", "completed", "utilization", "avg occupancy",
               "backlog (s)"});
  const SimTime now = simulation.engine().now();
  for (NodeId id = 0; id < simulation.topology().num_nodes(); ++id) {
    const node::Host& host = simulation.host(id);
    const auto& monitor = simulation.monitor(id);
    table.row()
        .cell(static_cast<std::uint64_t>(id))
        .cell(std::string(simulation.topology().alive(id) ? "yes" : "no"))
        .cell(host.completed_count())
        .cell(monitor.utilization(now), 3)
        .cell(monitor.average_occupancy(now), 3)
        .cell(host.backlog_seconds(), 1);
  }
  return table;
}

Table timeline_table(const Simulation& simulation) {
  Table table({"t (s)", "alive", "occupancy", "window admission",
               "overhead"});
  for (const TimelineSample& sample : simulation.timeline()) {
    table.row()
        .cell(sample.time, 0)
        .cell(static_cast<std::uint64_t>(sample.alive_nodes))
        .cell(sample.mean_occupancy, 3)
        .cell(sample.window_admission, 4)
        .cell(sample.overhead_cost, 0);
  }
  return table;
}

void print_report(std::ostream& os, const std::string& title,
                  Simulation& simulation, bool verbose) {
  os << "== " << title << " ==\n\n";
  summary_table(simulation.metrics()).print(os);
  os << "\n-- message accounting --\n";
  ledger_table(simulation.metrics()).print(os);
  if (!simulation.timeline().empty()) {
    os << "\n-- timeline --\n";
    timeline_table(simulation).print(os);
  }
  if (verbose) {
    os << "\n-- per node --\n";
    per_node_table(simulation).print(os);
  }
  os.flush();
}

}  // namespace realtor::experiment
