// Warm-start sweep execution: copy-on-write world snapshots via fork().
//
// Attack-parameter sweeps re-simulate an identical pre-attack warm-up for
// every sweep point: the points differ only after the first wave fires.
// The planner here hashes each point's pre-divergence configuration
// (everything except the attack schedule) and groups points into
// warm-start classes; the executor runs each class's shared prefix once in
// a single-threaded snapshot parent, then fork()s one copy-on-write child
// per point, which arms only its divergent attack waves and fast-forwards
// the suffix. Children stream their RunMetrics (and timeline) back over a
// pipe; the caller merges them in serial point order, so aggregates are
// byte-identical to the in-process thread executor.
//
// Portability: fork execution is Linux-only. Everywhere else — and for
// classes with fewer than two members or no shared prefix — points run
// in-process on the thread pool, which remains the reference semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiment/metrics.hpp"
#include "experiment/scenario.hpp"
#include "experiment/simulation.hpp"
#include "obs/trace.hpp"

namespace realtor::experiment {

/// Sweep execution backend: in-process worker threads (the portable
/// reference) or warm-start fork (COW children; byte-identical results).
enum class SweepExec { kThread, kFork };

/// Parses "thread" / "fork"; anything else -> nullopt.
std::optional<SweepExec> parse_exec(const std::string& name);
const char* to_string(SweepExec exec);

/// True when this build can fork sweep children (Linux). Other platforms
/// silently fall back to thread execution.
bool fork_exec_supported();

/// Canonical text serialization of every ScenarioConfig field except
/// `attacks`, with doubles rendered as exact bit patterns: two configs
/// with equal strings simulate identically up to the first attack event.
std::string canonical_prefix(const ScenarioConfig& config);

/// FNV-1a hash of canonical_prefix() — the class key shown by --plan.
std::uint64_t prefix_hash(const ScenarioConfig& config);

/// One warm-start class: sweep points sharing a canonical prefix.
struct WarmStartClass {
  std::uint64_t hash = 0;
  /// Snapshot barrier: the earliest wave time over the members (clamped to
  /// the duration). The shared prefix runs every event strictly before it.
  SimTime prefix_end = 0.0;
  /// Indices into the planned point vector, in point order.
  std::vector<std::size_t> members;
  /// Whether the fork executor may snapshot this class: at least two
  /// members and a non-empty shared prefix.
  bool forkable = false;
};

/// Groups `points` into warm-start classes (order of first appearance;
/// members in point order). Points that cannot be snapshotted — engine
/// observer sampling (its pending count sees deferred attack events),
/// external arrivals (caller-driven schedule), or a wave at t <= 0 — get a
/// singleton non-forkable class each.
std::vector<WarmStartClass> plan_warm_start(
    const std::vector<ScenarioConfig>& points);

/// Outcome of one sweep point under run_warm_start().
struct PointResult {
  RunMetrics metrics;
  std::vector<TimelineSample> timeline;
  bool ok = false;
  /// Child exit status (0 for in-process runs and healthy children);
  /// normalized to 128+signal for signal deaths.
  int exit_status = 0;
  bool forked = false;
  std::string error;
};

struct WarmStartOptions {
  SweepExec exec = SweepExec::kThread;
  /// Worker bound shared by the thread pool and the fork process pool
  /// (0 = one per hardware thread).
  unsigned jobs = 0;
  /// Per-point sink factory (empty = untraced). In fork mode it runs
  /// inside the child, after the fork — returned sinks must use
  /// point-unique paths or siblings would clobber each other's dumps. The
  /// shared prefix is traced into a memory buffer and replayed into each
  /// child's sink, so traces are byte-identical to thread execution.
  std::function<std::unique_ptr<obs::TraceSink>(std::size_t point)> make_sink;
  /// Test hook: runs inside the forked child before its suffix resumes.
  /// Lets tests inject child failures (nonzero exits, truncated result
  /// records) without a custom build. Never called on the thread path.
  std::function<void(std::size_t point)> child_hook;
};

struct WarmStartOutcome {
  /// One entry per point, in point order.
  std::vector<PointResult> results;
  std::vector<WarmStartClass> classes;
  /// Points that ran as COW children (0 in thread mode).
  std::size_t forked_points = 0;

  bool all_ok() const;
  /// "point 3: child exited with status 7" lines for every failed point.
  std::vector<std::string> failures() const;
};

/// Runs every point and returns results in point order. Thread exec — and
/// non-forkable classes under fork exec — run in-process via the thread
/// pool; forkable classes run the shared prefix once and fork one child
/// per member. Results are byte-identical across exec modes. Failures
/// (child death, truncated record) are reported per point; the call itself
/// always returns.
WarmStartOutcome run_warm_start(const std::vector<ScenarioConfig>& points,
                                const WarmStartOptions& options);

}  // namespace realtor::experiment
