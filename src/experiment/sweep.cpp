#include "experiment/sweep.hpp"

#include "common/assert.hpp"
#include "experiment/simulation.hpp"

namespace realtor::experiment {

std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options) {
  REALTOR_ASSERT(!options.lambdas.empty());
  REALTOR_ASSERT(!options.protocols.empty());
  REALTOR_ASSERT(options.replications >= 1);

  std::vector<SweepCell> cells;
  cells.reserve(options.lambdas.size() * options.protocols.size());

  for (const proto::ProtocolKind kind : options.protocols) {
    for (const double lambda : options.lambdas) {
      SweepCell cell;
      cell.kind = kind;
      cell.lambda = lambda;
      for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
        ScenarioConfig config = base;
        config.protocol_kind = kind;
        config.lambda = lambda;
        // Workload seed depends on (base seed, lambda index, rep) only —
        // not on the protocol — giving common random numbers across the
        // five curves.
        config.seed = base.seed + 1000003ULL * rep +
                      static_cast<std::uint64_t>(lambda * 1e6);
        Simulation simulation(config);
        const RunMetrics& m = simulation.run();
        cell.admission_probability.add(m.admission_probability());
        cell.total_messages.add(m.total_messages());
        cell.messages_per_admitted.add(m.messages_per_admitted());
        cell.migration_rate.add(m.migration_rate());
        cell.mean_occupancy.add(m.mean_occupancy);
        cell.evacuation_success.add(m.evacuation_success_rate());
        cell.summed.generated += m.generated;
        cell.summed.admitted_local += m.admitted_local;
        cell.summed.admitted_migrated += m.admitted_migrated;
        cell.summed.rejected += m.rejected;
        cell.summed.arrivals_at_dead_nodes += m.arrivals_at_dead_nodes;
        cell.summed.completed += m.completed;
        cell.summed.evacuation_candidates += m.evacuation_candidates;
        cell.summed.evacuated += m.evacuated;
        cell.summed.lost_to_attack += m.lost_to_attack;
        cell.summed.migration_attempts += m.migration_attempts;
        cell.summed.migration_aborts += m.migration_aborts;
        cell.summed.ledger.merge(m.ledger);
        if (options.on_run) {
          options.on_run(cell, rep);
        }
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications) {
  SweepOptions options;
  options.lambdas = std::move(lambdas);
  options.protocols = {
      proto::ProtocolKind::kPurePull, proto::ProtocolKind::kPurePush,
      proto::ProtocolKind::kAdaptivePush, proto::ProtocolKind::kAdaptivePull,
      proto::ProtocolKind::kRealtor};
  options.replications = replications;
  return options;
}

}  // namespace realtor::experiment
