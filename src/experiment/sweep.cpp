#include "experiment/sweep.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/live/live_plane.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {

namespace {

std::size_t set_count(const SweepOptions& options) {
  return options.attack_sets.empty() ? 1 : options.attack_sets.size();
}

ScenarioConfig config_for(const ScenarioConfig& base,
                          const SweepOptions& options, const RunId& id) {
  ScenarioConfig config = base;
  config.protocol_kind = id.kind;
  config.lambda = id.lambda;
  // Workload seed depends on (base seed, lambda, rep) only — not on the
  // protocol or attack set — giving common random numbers across the five
  // curves and a shared pre-attack prefix across the attack sets.
  config.seed = base.seed + 1000003ULL * id.rep +
                static_cast<std::uint64_t>(id.lambda * 1e6);
  if (!options.attack_sets.empty()) {
    config.attacks = options.attack_sets[id.attack_set];
  }
  return config;
}

void accumulate(SweepCell& cell, const RunMetrics& m) {
  cell.admission_probability.add(m.admission_probability());
  cell.total_messages.add(m.total_messages());
  cell.messages_per_admitted.add(m.messages_per_admitted());
  cell.migration_rate.add(m.migration_rate());
  cell.mean_occupancy.add(m.mean_occupancy);
  cell.evacuation_success.add(m.evacuation_success_rate());
  cell.summed.generated += m.generated;
  cell.summed.admitted_local += m.admitted_local;
  cell.summed.admitted_migrated += m.admitted_migrated;
  cell.summed.rejected += m.rejected;
  cell.summed.arrivals_at_dead_nodes += m.arrivals_at_dead_nodes;
  cell.summed.completed += m.completed;
  cell.summed.evacuation_candidates += m.evacuation_candidates;
  cell.summed.evacuated += m.evacuated;
  cell.summed.lost_to_attack += m.lost_to_attack;
  cell.summed.migration_attempts += m.migration_attempts;
  cell.summed.migration_aborts += m.migration_aborts;
  cell.summed.ledger.merge(m.ledger);
}

}  // namespace

std::vector<RunId> sweep_run_ids(const SweepOptions& options) {
  const std::size_t sets = set_count(options);
  std::vector<RunId> ids;
  ids.reserve(options.protocols.size() * options.lambdas.size() * sets *
              options.replications);
  for (const proto::ProtocolKind kind : options.protocols) {
    for (const double lambda : options.lambdas) {
      for (std::size_t set = 0; set < sets; ++set) {
        for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
          ids.push_back(RunId{kind, lambda, set, rep});
        }
      }
    }
  }
  return ids;
}

std::vector<ScenarioConfig> sweep_point_configs(const ScenarioConfig& base,
                                                const SweepOptions& options) {
  std::vector<ScenarioConfig> configs;
  const std::vector<RunId> ids = sweep_run_ids(options);
  configs.reserve(ids.size());
  for (const RunId& id : ids) {
    configs.push_back(config_for(base, options, id));
  }
  return configs;
}

std::string run_label(const RunId& id) {
  std::ostringstream os;
  os << proto::to_string(id.kind) << " lambda=" << format_double(id.lambda, 3)
     << " set=" << id.attack_set << " rep=" << id.rep;
  return os.str();
}

std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options) {
  REALTOR_ASSERT(!options.lambdas.empty());
  REALTOR_ASSERT(!options.protocols.empty());
  REALTOR_ASSERT(options.replications >= 1);

  const std::size_t sets = set_count(options);
  std::vector<SweepCell> cells;
  cells.reserve(options.lambdas.size() * options.protocols.size() * sets);

  const std::vector<RunId> ids = sweep_run_ids(options);
  const unsigned jobs = resolve_jobs(options.jobs);
  if (options.exec == SweepExec::kThread && jobs <= 1) {
    // Serial reference path: run and merge in one streaming pass, so
    // on_run reports live progress.
    std::size_t index = 0;
    for (const proto::ProtocolKind kind : options.protocols) {
      for (const double lambda : options.lambdas) {
        for (std::size_t set = 0; set < sets; ++set) {
          SweepCell cell;
          cell.kind = kind;
          cell.lambda = lambda;
          cell.attack_set = set;
          for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
            const RunId& id = ids[index];
            std::unique_ptr<obs::TraceSink> sink;
            if (options.make_trace_sink) sink = options.make_trace_sink(id);
            Simulation simulation(config_for(base, options, id));
            if (sink) simulation.set_trace_sink(sink.get());
            accumulate(cell, simulation.run());
            if (sink) sink->flush();
            if (options.on_run) options.on_run(cell, rep);
            ++index;
          }
          cells.push_back(std::move(cell));
        }
      }
    }
    return cells;
  }

  // Fan the independent runs out — worker threads, or warm-start forked
  // children under exec=fork — then merge the per-run metrics in exactly
  // the serial order. OnlineStats accumulation and ledger merging see the
  // same values in the same sequence as the serial path, so the
  // aggregates are byte-identical across jobs values and exec modes.
  const std::vector<ScenarioConfig> configs = sweep_point_configs(base,
                                                                  options);
  WarmStartOptions warm;
  warm.exec = options.exec;
  warm.jobs = options.jobs;
  warm.child_hook = options.child_hook;
  if (options.make_trace_sink) {
    warm.make_sink = [&](std::size_t point) {
      return options.make_trace_sink(ids[point]);
    };
  }
  const WarmStartOutcome outcome = run_warm_start(configs, warm);
  if (!outcome.all_ok()) {
    std::ostringstream os;
    os << "sweep execution failed:";
    for (const std::string& line : outcome.failures()) {
      os << "\n  " << line;
    }
    throw std::runtime_error(os.str());
  }

  std::size_t index = 0;
  for (const proto::ProtocolKind kind : options.protocols) {
    for (const double lambda : options.lambdas) {
      for (std::size_t set = 0; set < sets; ++set) {
        SweepCell cell;
        cell.kind = kind;
        cell.lambda = lambda;
        cell.attack_set = set;
        for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
          accumulate(cell, outcome.results[index++].metrics);
          if (options.on_run) options.on_run(cell, rep);
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications) {
  SweepOptions options;
  options.lambdas = std::move(lambdas);
  options.protocols = {
      proto::ProtocolKind::kPurePull, proto::ProtocolKind::kPurePush,
      proto::ProtocolKind::kAdaptivePush, proto::ProtocolKind::kAdaptivePull,
      proto::ProtocolKind::kRealtor};
  options.replications = replications;
  return options;
}

RunSinkFactory make_run_sink_factory(RunSinkOptions options) {
  REALTOR_ASSERT_MSG(
      options.jsonl_prefix.empty() || options.flight_prefix.empty(),
      "a sweep run gets one sink: JSONL or flight recorder, not both");
  if (options.jsonl_prefix.empty() && options.flight_prefix.empty() &&
      options.live_prefix.empty()) {
    return {};
  }
  return [options = std::move(options)](
             const RunId& id) -> std::unique_ptr<obs::TraceSink> {
    const auto run_name = [&](const std::string& prefix,
                              const char* extension) {
      std::ostringstream name;
      name << prefix << '.' << proto::to_string(id.kind) << ".lambda"
           << format_double(id.lambda, 3);
      if (options.attack_suffix) name << ".att" << id.attack_set;
      name << ".rep" << id.rep << extension;
      return name.str();
    };
    const bool flight = !options.flight_prefix.empty();
    std::unique_ptr<obs::TraceSink> sink;
    if (flight) {
      // Dumps on flush (the run flushes after completion) or destruction.
      sink = std::make_unique<obs::FlightDumpSink>(
          run_name(options.flight_prefix, ".bin"), options.flight_capacity);
    } else if (!options.jsonl_prefix.empty()) {
      const std::string name = run_name(options.jsonl_prefix, ".jsonl");
      auto jsonl =
          std::make_unique<obs::JsonlSink>(name, options.jsonl_flush_every);
      if (!jsonl->ok()) {
        std::cerr << "cannot write " << name << '\n';
      } else {
        sink = std::move(jsonl);
      }
    }
    if (options.live_prefix.empty()) return sink;
    // Buffered exposition: each run (or forked child) accumulates its own
    // snapshot history in memory and writes it at flush, so parallel
    // workers never share a file and the bytes match the serial path.
    obs::live::LiveConfig live;
    live.out = run_name(options.live_prefix, ".prom");
    live.rules = options.live_rules;
    live.window = options.live_window;
    live.node_count = options.live_nodes;
    auto plane = std::make_unique<obs::live::LivePlane>(std::move(live));
    if (!plane->ok()) {
      std::cerr << plane->error() << '\n';
      return sink;
    }
    plane->set_owned_downstream(std::move(sink));
    return plane;
  };
}

}  // namespace realtor::experiment
