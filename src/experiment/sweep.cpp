#include "experiment/sweep.hpp"

#include <iostream>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"
#include "obs/jsonl_sink.hpp"
#include "proto/factory.hpp"

namespace realtor::experiment {

namespace {

/// One (protocol, lambda, replication) grid point in serial order.
struct RunSpec {
  proto::ProtocolKind kind;
  double lambda;
  std::uint32_t rep;
};

RunMetrics run_one(const ScenarioConfig& base, const SweepOptions& options,
                   const RunSpec& spec) {
  ScenarioConfig config = base;
  config.protocol_kind = spec.kind;
  config.lambda = spec.lambda;
  // Workload seed depends on (base seed, lambda, rep) only — not on the
  // protocol — giving common random numbers across the five curves.
  config.seed = base.seed + 1000003ULL * spec.rep +
                static_cast<std::uint64_t>(spec.lambda * 1e6);
  std::unique_ptr<obs::TraceSink> sink;
  if (options.make_trace_sink) {
    sink = options.make_trace_sink(spec.kind, spec.lambda, spec.rep);
  }
  Simulation simulation(config);
  if (sink) simulation.set_trace_sink(sink.get());
  RunMetrics metrics = simulation.run();
  if (sink) sink->flush();
  return metrics;
}

void accumulate(SweepCell& cell, const RunMetrics& m) {
  cell.admission_probability.add(m.admission_probability());
  cell.total_messages.add(m.total_messages());
  cell.messages_per_admitted.add(m.messages_per_admitted());
  cell.migration_rate.add(m.migration_rate());
  cell.mean_occupancy.add(m.mean_occupancy);
  cell.evacuation_success.add(m.evacuation_success_rate());
  cell.summed.generated += m.generated;
  cell.summed.admitted_local += m.admitted_local;
  cell.summed.admitted_migrated += m.admitted_migrated;
  cell.summed.rejected += m.rejected;
  cell.summed.arrivals_at_dead_nodes += m.arrivals_at_dead_nodes;
  cell.summed.completed += m.completed;
  cell.summed.evacuation_candidates += m.evacuation_candidates;
  cell.summed.evacuated += m.evacuated;
  cell.summed.lost_to_attack += m.lost_to_attack;
  cell.summed.migration_attempts += m.migration_attempts;
  cell.summed.migration_aborts += m.migration_aborts;
  cell.summed.ledger.merge(m.ledger);
}

}  // namespace

std::vector<SweepCell> run_sweep(const ScenarioConfig& base,
                                 const SweepOptions& options) {
  REALTOR_ASSERT(!options.lambdas.empty());
  REALTOR_ASSERT(!options.protocols.empty());
  REALTOR_ASSERT(options.replications >= 1);

  std::vector<SweepCell> cells;
  cells.reserve(options.lambdas.size() * options.protocols.size());

  const unsigned jobs = resolve_jobs(options.jobs);
  if (jobs <= 1) {
    // Serial reference path: run and merge in one streaming pass, so
    // on_run reports live progress.
    for (const proto::ProtocolKind kind : options.protocols) {
      for (const double lambda : options.lambdas) {
        SweepCell cell;
        cell.kind = kind;
        cell.lambda = lambda;
        for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
          accumulate(cell, run_one(base, options, {kind, lambda, rep}));
          if (options.on_run) options.on_run(cell, rep);
        }
        cells.push_back(std::move(cell));
      }
    }
    return cells;
  }

  // Parallel path: fan the independent runs out, then merge the per-run
  // metrics in exactly the serial order. OnlineStats accumulation and
  // ledger merging see the same values in the same sequence as the serial
  // path, so the aggregates are byte-identical.
  std::vector<RunSpec> runs;
  runs.reserve(options.protocols.size() * options.lambdas.size() *
               options.replications);
  for (const proto::ProtocolKind kind : options.protocols) {
    for (const double lambda : options.lambdas) {
      for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
        runs.push_back(RunSpec{kind, lambda, rep});
      }
    }
  }
  std::vector<RunMetrics> results(runs.size());
  parallel_for(runs.size(), jobs, [&](std::size_t i) {
    results[i] = run_one(base, options, runs[i]);
  });

  std::size_t index = 0;
  for (const proto::ProtocolKind kind : options.protocols) {
    for (const double lambda : options.lambdas) {
      SweepCell cell;
      cell.kind = kind;
      cell.lambda = lambda;
      for (std::uint32_t rep = 0; rep < options.replications; ++rep) {
        accumulate(cell, results[index++]);
        if (options.on_run) options.on_run(cell, rep);
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

SweepOptions paper_sweep_options(std::vector<double> lambdas,
                                 std::uint32_t replications) {
  SweepOptions options;
  options.lambdas = std::move(lambdas);
  options.protocols = {
      proto::ProtocolKind::kPurePull, proto::ProtocolKind::kPurePush,
      proto::ProtocolKind::kAdaptivePush, proto::ProtocolKind::kAdaptivePull,
      proto::ProtocolKind::kRealtor};
  options.replications = replications;
  return options;
}

RunSinkFactory make_run_sink_factory(RunSinkOptions options) {
  REALTOR_ASSERT_MSG(
      options.jsonl_prefix.empty() || options.flight_prefix.empty(),
      "a sweep run gets one sink: JSONL or flight recorder, not both");
  if (options.jsonl_prefix.empty() && options.flight_prefix.empty()) {
    return {};
  }
  return [options = std::move(options)](
             proto::ProtocolKind kind, double lambda,
             std::uint32_t rep) -> std::unique_ptr<obs::TraceSink> {
    const bool flight = !options.flight_prefix.empty();
    std::ostringstream name;
    name << (flight ? options.flight_prefix : options.jsonl_prefix) << '.'
         << proto::to_string(kind) << ".lambda" << format_double(lambda, 3)
         << ".rep" << rep << (flight ? ".bin" : ".jsonl");
    if (flight) {
      // Dumps on flush (run_one flushes after the run) or destruction.
      return std::make_unique<obs::FlightDumpSink>(name.str(),
                                                   options.flight_capacity);
    }
    auto sink = std::make_unique<obs::JsonlSink>(name.str(),
                                                 options.jsonl_flush_every);
    if (!sink->ok()) {
      std::cerr << "cannot write " << name.str() << '\n';
      return nullptr;
    }
    return sink;
  };
}

}  // namespace realtor::experiment
