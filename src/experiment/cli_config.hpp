// Flag → ScenarioConfig mapping shared by the CLI tool and the bench
// binaries, so every knob of the system is reachable from a command line.
//
// Recognized flags (all optional; defaults reproduce the paper's §5 setup):
//   workload:  --lambda --duration --seed --queue --task-size --warmup
//   topology:  --topology=mesh|torus|ring|star|complete|random
//              --width --height --nodes --links --topo-seed
//              --approx-paths (sampled path stats on large topologies)
//   protocol:  --protocol=<name|paper label>  --help-threshold
//              --pledge-threshold --alpha --beta --upper-limit
//              --help-timeout --push-interval --ttl --max-communities
//              --reward=migration|pledge --gossip-interval --gossip-fanout
//   migration: --tries
//   accounting: --cost=paper|exact  --flood=links|spanning  --unicast=<x>
//   attacks:   --attack=time:count:grace:outage (repeatable via commas:
//              "100:5:1:60,200:5:1:60")
//   extensions: --multires  --bw-mean  --secure-fraction
//               --federate=WxH (mesh blocks)  --escalation-window
//               --elusive=<period>
//   output:    --timeline=<interval>  --sample-interval=<s>
//              --engine-sample=<n>  --live-cadence=<s>
#pragma once

#include "common/flags.hpp"
#include "experiment/scenario.hpp"

namespace realtor::experiment {

/// Builds a ScenarioConfig from command-line flags.
ScenarioConfig scenario_from_flags(const Flags& flags);

/// Parses a comma-separated "time:count:grace:outage" attack list (the
/// --attack flag grammar); malformed entries are skipped. Shared with
/// --attack-sweep, whose ';'-separated chunks each use this grammar.
std::vector<AttackWave> parse_attack_waves(const std::string& spec);

/// Maps a --topology flag value to its TopologyKind (unknown names fall
/// back to the paper's mesh). Shared with the bench binaries so their
/// sweeps reach the same shapes as the CLI.
TopologyKind parse_topology_kind(const std::string& name);

/// Applies the topology flags (--topology/--width/--height/--nodes/
/// --links/--topo-seed) to `config`, unpinning the mesh-specific fixed
/// unicast cost for non-mesh shapes, plus --approx-paths.
void apply_topology_flags(const Flags& flags, ScenarioConfig& config);

}  // namespace realtor::experiment
