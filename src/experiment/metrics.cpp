#include "experiment/metrics.hpp"

namespace realtor::experiment {

double RunMetrics::admission_probability() const {
  const std::uint64_t offered = generated - arrivals_at_dead_nodes;
  if (offered == 0) return 0.0;
  return static_cast<double>(admitted_total()) /
         static_cast<double>(offered);
}

double RunMetrics::messages_per_admitted() const {
  if (admitted_total() == 0) return 0.0;
  return total_messages() / static_cast<double>(admitted_total());
}

double RunMetrics::migration_rate() const {
  if (admitted_total() == 0) return 0.0;
  return static_cast<double>(admitted_migrated) /
         static_cast<double>(admitted_total());
}

double RunMetrics::evacuation_success_rate() const {
  if (evacuation_candidates == 0) return 0.0;
  return static_cast<double>(evacuated) /
         static_cast<double>(evacuation_candidates);
}

void RunMetrics::reset() { *this = RunMetrics{}; }

}  // namespace realtor::experiment
