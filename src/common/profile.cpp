#include "common/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace realtor::obs {
namespace {

thread_local std::uint32_t tls_current = 0;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::Profiler() {
  nodes_.emplace_back();  // index 0: the implicit root
  nodes_[0].name = "";
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.clear();
  nodes_.emplace_back();
  nodes_[0].name = "";
}

std::uint32_t Profiler::enter(const char* name) {
  const std::uint32_t parent = tls_current;
  std::lock_guard<std::mutex> lock(mutex_);
  Node& from = nodes_[parent];
  for (std::uint32_t child : from.children) {
    if (nodes_[child].name == name) {
      tls_current = child;
      return parent;
    }
  }
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].name = name;
  nodes_[index].parent = parent;
  nodes_[parent].children.push_back(index);
  tls_current = index;
  return parent;
}

void Profiler::leave(std::uint32_t parent, std::uint64_t ns) {
  // The lock protects the deque's block map against a concurrent enter()
  // growing it; the totals themselves are relaxed atomics.
  std::lock_guard<std::mutex> lock(mutex_);
  Node& node = nodes_[tls_current];
  node.calls.fetch_add(1, std::memory_order_relaxed);
  node.ns.fetch_add(ns, std::memory_order_relaxed);
  tls_current = parent;
}

void Profiler::flatten(std::uint32_t index, int depth,
                       const std::string& prefix,
                       std::vector<ProfileEntry>& out) const {
  const Node& node = nodes_[index];
  const std::string path =
      index == 0 ? std::string()
                 : (prefix.empty() ? node.name : prefix + "/" + node.name);
  if (index != 0) {
    ProfileEntry entry;
    entry.path = path;
    entry.depth = depth;
    entry.calls = node.calls.load(std::memory_order_relaxed);
    entry.ns = node.ns.load(std::memory_order_relaxed);
    out.push_back(std::move(entry));
  }
  std::vector<std::uint32_t> children = node.children;
  std::sort(children.begin(), children.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return nodes_[a].name < nodes_[b].name;
            });
  for (std::uint32_t child : children) {
    flatten(child, index == 0 ? depth : depth + 1, path, out);
  }
}

std::vector<ProfileEntry> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProfileEntry> out;
  flatten(0, 0, "", out);
  return out;
}

void ProfileScope::begin(const char* name) {
  parent_ = Profiler::instance().enter(name);
  start_ns_ = now_ns();
  armed_ = true;
}

void ProfileScope::end() {
  const std::uint64_t elapsed = now_ns() - start_ns_;
  Profiler::instance().leave(parent_, elapsed);
}

void write_profile_tsv(std::ostream& out,
                       const std::vector<ProfileEntry>& entries) {
  out << "depth\tcalls\tns\tpath\n";
  for (const ProfileEntry& entry : entries) {
    out << entry.depth << '\t' << entry.calls << '\t' << entry.ns << '\t'
        << entry.path << '\n';
  }
}

std::vector<ProfileEntry> parse_profile_tsv(std::istream& in) {
  std::vector<ProfileEntry> entries;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {  // header row
      first = false;
      if (line.rfind("depth\t", 0) == 0) continue;
    }
    if (line.empty()) continue;
    std::istringstream fields(line);
    ProfileEntry entry;
    std::string depth, calls, ns;
    if (!std::getline(fields, depth, '\t') ||
        !std::getline(fields, calls, '\t') ||
        !std::getline(fields, ns, '\t') ||
        !std::getline(fields, entry.path)) {
      continue;
    }
    try {
      entry.depth = std::stoi(depth);
      entry.calls = std::stoull(calls);
      entry.ns = std::stoull(ns);
    } catch (...) {
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string render_profile_text(const std::vector<ProfileEntry>& entries) {
  std::ostringstream out;
  out << "profile scopes (wall clock)\n";
  char row[160];
  for (const ProfileEntry& entry : entries) {
    // Last path component, indented by depth.
    const auto slash = entry.path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? entry.path : entry.path.substr(slash + 1);
    std::string indent(static_cast<std::size_t>(entry.depth) * 2, ' ');
    std::snprintf(row, sizeof(row), "  %-40s %10llu calls %12.3f ms\n",
                  (indent + leaf).c_str(),
                  static_cast<unsigned long long>(entry.calls),
                  static_cast<double>(entry.ns) / 1e6);
    out << row;
  }
  return out.str();
}

}  // namespace realtor::obs
