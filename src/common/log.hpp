// Minimal leveled logger. Off (Warn) by default so experiment binaries stay
// quiet; protocol traces are enabled per-binary with --log=debug.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace realtor {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level. Backed by an atomic: safe to mutate from
/// any thread mid-run (agile hosts included); readers see it on their next
/// log statement.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error"; returns false on junk.
bool parse_log_level(const std::string& text, LogLevel& out);

/// Destination of emitted lines. The default sink writes
/// "[LEVEL] message\n" to stderr; tests and trace tooling install their
/// own to capture output instead of scraping the stream. Sinks are called
/// under the emission mutex, so a sink need not synchronize internally but
/// must not log re-entrantly.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs `sink` (empty = restore the stderr default) and returns the
/// previous sink (empty if the default was active).
LogSink set_log_sink(LogSink sink);

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

}  // namespace realtor

#define REALTOR_LOG(level, expr)                                        \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::realtor::log_level())) {                    \
      std::ostringstream realtor_log_os;                                \
      realtor_log_os << expr;                                           \
      ::realtor::detail::emit_log(level, realtor_log_os.str());         \
    }                                                                   \
  } while (false)

#define REALTOR_DEBUG(expr) REALTOR_LOG(::realtor::LogLevel::kDebug, expr)
#define REALTOR_INFO(expr) REALTOR_LOG(::realtor::LogLevel::kInfo, expr)
#define REALTOR_WARN(expr) REALTOR_LOG(::realtor::LogLevel::kWarn, expr)
#define REALTOR_ERROR(expr) REALTOR_LOG(::realtor::LogLevel::kError, expr)
