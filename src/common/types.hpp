// Fundamental vocabulary types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace realtor {

/// Simulated time, in seconds. All paper parameters (task sizes, queue
/// capacities, HELP intervals) are expressed in seconds, so a double keeps
/// the model close to the text.
using SimTime = double;

/// Sentinel for "never" / unset times.
inline constexpr SimTime kNeverTime = std::numeric_limits<SimTime>::infinity();

/// Identifier of a host (a node of the overlay network). Dense, 0-based.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of a task / migratable component instance.
using TaskId = std::uint64_t;

/// Identifier of a scheduled event inside the simulation engine.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

}  // namespace realtor
