// Deterministic random-number streams.
//
// Experiments compare five protocols on *identical* workloads (the paper
// overlays their curves at the same arrival rates), so each stochastic
// decision class draws from its own named stream: switching protocol or
// adding an extra draw in one component must not perturb the others.
// Streams are derived from (seed, name) via SplitMix64 over an FNV-1a hash,
// and generated with xoshiro256**.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace realtor {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 as the authors recommend.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

 private:
  std::uint64_t s_[4]{};
};

/// A named substream of the experiment-wide seed.
///
/// Provides exactly the variate families the REALTOR experiments need.
class RngStream {
 public:
  /// Derives an independent stream from a root seed and a stable name, e.g.
  /// RngStream(seed, "arrivals") or RngStream(seed, "task-size").
  RngStream(std::uint64_t root_seed, std::string_view name);

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Exponential with the given mean (mean > 0). Used for task sizes
  /// (mean 5 s in the paper) and Poisson inter-arrival gaps (mean 1/lambda).
  double exponential(double mean);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Raw 64 random bits (for shuffles and derived seeds).
  std::uint64_t next_u64();

 private:
  Xoshiro256 engine_;
};

/// Stable 64-bit hash of a stream name (FNV-1a).
std::uint64_t hash_name(std::string_view name);

}  // namespace realtor
