// Locale-independent double formatting.
//
// Every machine-readable artifact the project writes — JSONL traces,
// figure/event CSVs, invariant-violation details, bench JSON — must parse
// back with std::from_chars, which always expects '.' as the radix
// character. printf/snprintf and default-constructed iostreams instead
// honor the process locale (LC_NUMERIC): under de_DE.UTF-8 "%g" prints
// "0,5" and a trace stops round-tripping. These helpers keep the familiar
// printf conversion semantics ("%g", "%.3f", ...) but are byte-identical
// to the C locale regardless of what the host process set.
//
// jsonl_sink and the scorecard JSON already use std::to_chars (shortest
// round-trip form), which is locale-independent by specification; this
// header is the one place for everything that wants printf-style widths
// and precisions instead.
#pragma once

#include <cstddef>
#include <string>

namespace realtor {

/// snprintf-compatible formatting of exactly ONE double conversion: `fmt`
/// must contain a single %-conversion taking `value` (e.g. "%g", "%.6f",
/// "%.17g"). Any radix character the active locale produced is rewritten
/// to '.'. Returns the number of characters written (excluding the NUL),
/// truncating like snprintf when `size` is too small.
int format_double(char* buf, std::size_t size, const char* fmt, double value);

/// Same, returning a std::string.
std::string format_double(const char* fmt, double value);

/// Fixed-precision decimal form — "%.<precision>f" of `value`. This is the
/// helper report tables historically used (previously in common/table),
/// now locale-independent.
std::string format_double(double value, int precision);

/// Appends the shortest round-trip form (std::to_chars) of `value`.
/// Locale-independent by specification; kept here so callers outside the
/// sinks don't re-derive the to_chars dance.
void append_double_shortest(std::string& out, double value);

}  // namespace realtor
