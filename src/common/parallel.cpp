#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace realtor {

unsigned resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(resolve_jobs(jobs), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // stop handing out
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace realtor
