// Plain-text table and CSV emitters for the benchmark harness. Every figure
// reproduction prints one series table in the same layout so EXPERIMENTS.md
// can quote them directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/format.hpp"  // format_double — historically declared here

namespace realtor {

/// A column-oriented table: a header row plus formatted cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Fixed-width human-readable rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (fields quoted when they contain separators).
  void print_csv(std::ostream& os) const;
  /// Writes CSV to `path`; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace realtor
