#include "common/format.hpp"

#include <charconv>
#include <clocale>
#include <cstdio>
#include <cstring>

namespace realtor {

int format_double(char* buf, std::size_t size, const char* fmt,
                  double value) {
  int written = std::snprintf(buf, size, fmt, value);
  if (written < 0 || size == 0) return written;
  const char* point = std::localeconv()->decimal_point;
  if (point[0] == '.' && point[1] == '\0') return written;  // C locale
  // A single double conversion contains at most one radix character;
  // rewrite it (possibly multi-byte) back to '.'.
  char* hit = std::strstr(buf, point);
  if (hit == nullptr) return written;
  const std::size_t point_len = std::strlen(point);
  *hit = '.';
  if (point_len > 1) {
    std::memmove(hit + 1, hit + point_len, std::strlen(hit + point_len) + 1);
    written -= static_cast<int>(point_len - 1);
  }
  return written;
}

std::string format_double(const char* fmt, double value) {
  char buf[64];
  const int written = format_double(buf, sizeof buf, fmt, value);
  if (written < 0) return std::string();
  if (static_cast<std::size_t>(written) < sizeof buf) {
    return std::string(buf, static_cast<std::size_t>(written));
  }
  std::string big(static_cast<std::size_t>(written) + 1, '\0');
  const int n = format_double(big.data(), big.size(), fmt, value);
  big.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
  return big;
}

std::string format_double(double value, int precision) {
  char fmt[16];
  std::snprintf(fmt, sizeof fmt, "%%.%df", precision);
  return format_double(fmt, value);
}

void append_double_shortest(std::string& out, double value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, res.ptr);
}

}  // namespace realtor
