#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace realtor {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
LogSink g_sink;  // empty = stderr default; guarded by g_emit_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool parse_log_level(const std::string& text, LogLevel& out) {
  if (text == "debug") {
    out = LogLevel::kDebug;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "warn") {
    out = LogLevel::kWarn;
  } else if (text == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  // Agile hosts log from multiple threads; serialize whole lines.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace realtor
