#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace realtor {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ > 0 ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return n_ > 0 ? min_ : 0.0; }

double OnlineStats::max() const { return n_ > 0 ? max_ : 0.0; }

double OnlineStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

WelchResult welch_t_test(const OnlineStats& a, const OnlineStats& b) {
  WelchResult result;
  if (a.count() < 2 || b.count() < 2) return result;
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double va = a.variance() / na;
  const double vb = b.variance() / nb;
  const double pooled = va + vb;
  if (pooled <= 0.0) {
    // Zero variance on both sides: means differ significantly iff they
    // differ at all.
    result.t = a.mean() == b.mean() ? 0.0
                                    : std::numeric_limits<double>::infinity();
    result.degrees_of_freedom = na + nb - 2.0;
    result.significant_at_5pct = a.mean() != b.mean();
    return result;
  }
  result.t = (a.mean() - b.mean()) / std::sqrt(pooled);
  result.degrees_of_freedom =
      pooled * pooled /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  // Critical value: z_{0.975} = 1.96 with a small-df inflation so the
  // normal approximation stays conservative (t_{0.975,df} ~ 1.96 + 2.4/df).
  const double critical = 1.96 + 2.4 / std::max(1.0, result.degrees_of_freedom);
  result.significant_at_5pct = std::abs(result.t) > critical;
  return result;
}

void TimeWeightedStats::update(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else {
    REALTOR_ASSERT_MSG(now >= last_time_, "time must be monotone");
    weighted_sum_ += last_value_ * (now - last_time_);
  }
  last_time_ = now;
  last_value_ = value;
}

double TimeWeightedStats::average(SimTime now) const {
  if (!started_ || now <= start_) return 0.0;
  const double sum = weighted_sum_ + last_value_ * (now - last_time_);
  return sum / (now - start_);
}

void TimeWeightedStats::reset() { *this = TimeWeightedStats{}; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  REALTOR_ASSERT(bins > 0);
  REALTOR_ASSERT(hi > lo);
}

void Histogram::add(double x) {
  const double pos = (x - lo_) / width_;
  std::size_t idx = 0;
  if (pos > 0.0) {
    idx = std::min(counts_.size() - 1, static_cast<std::size_t>(pos));
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - running) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    running = next;
  }
  return bin_hi(counts_.size() - 1);
}

}  // namespace realtor
