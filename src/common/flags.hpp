// A tiny command-line flag parser for benches and examples.
//
// Accepts --name=value and --name value forms plus bare --switch booleans.
// Google-benchmark binaries pass through any flags they own; we only parse
// the ones registered here and leave argv untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace realtor {

class Flags {
 public:
  /// Parses argv (skipping argv[0]). Unknown flags are collected but not an
  /// error, so binaries can share argv with google-benchmark.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of doubles, e.g. --lambdas=1,2,4,8.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace realtor
