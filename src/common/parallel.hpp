// Minimal fork-join index parallelism for embarrassingly parallel work.
//
// The experiment sweeps fan hundreds of fully independent simulations out
// across threads; each body invocation is seconds of work, so a shared
// atomic cursor (self-balancing: a worker that finishes early simply takes
// the next undone index) beats any static chunking and needs no queues.
#pragma once

#include <cstddef>
#include <functional>

namespace realtor {

/// Resolves a --jobs request: 0 means one worker per hardware thread (at
/// least 1 when the hardware reports nothing); anything else is used as
/// given.
unsigned resolve_jobs(unsigned requested);

/// Invokes body(0) .. body(count-1), each exactly once, across up to
/// `jobs` worker threads (`jobs` = 0 resolves as resolve_jobs). With one
/// worker — or one item — the calls happen inline on the calling thread in
/// ascending index order, byte-for-byte the serial loop. With more, the
/// assignment of indices to threads is nondeterministic; callers must make
/// bodies independent and order-insensitive.
///
/// If a body throws, no new indices are handed out, the already running
/// bodies finish, and the first captured exception is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& body);

}  // namespace realtor
