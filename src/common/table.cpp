#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace realtor {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  REALTOR_ASSERT(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  REALTOR_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
  REALTOR_ASSERT_MSG(rows_.back().size() < headers_.size(),
                     "row has more cells than headers");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  REALTOR_ASSERT(row < rows_.size());
  REALTOR_ASSERT(col < rows_[row].size());
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << std::setw(static_cast<int>(widths[c]) + 2) << text;
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c]) + 2)
       << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& r : rows_) {
    emit_row(r);
  }
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& r : rows_) {
    emit_row(r);
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  print_csv(file);
  return static_cast<bool>(file);
}

}  // namespace realtor
