// Always-on invariant checks. Simulation correctness depends on internal
// invariants (event ordering, queue accounting); violating them must abort
// loudly even in release builds rather than silently corrupt an experiment.
#pragma once

namespace realtor::detail {

[[noreturn]] void assertion_failure(const char* expr, const char* file,
                                    int line, const char* msg);

}  // namespace realtor::detail

#define REALTOR_ASSERT(expr)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::realtor::detail::assertion_failure(#expr, __FILE__, __LINE__, "");    \
    }                                                                         \
  } while (false)

#define REALTOR_ASSERT_MSG(expr, msg)                                         \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::realtor::detail::assertion_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)
