#pragma once
// Hierarchical self-profiler: RAII scoped wall-clock timers feeding a
// shared scope tree ("engine/dispatch", "transport/flood", ...).
//
// The profiler lives in realtor_common — below realtor_sim and
// realtor_net — so the event-loop kernel and the shortest-path cache can
// be instrumented without a dependency on the obs library. It is exposed
// in namespace realtor::obs because it is part of the observability
// surface: the obs metrics registry and BENCH_obs.json consume its
// snapshots.
//
// Cost contract: when disabled (the default), a ProfileScope costs one
// relaxed atomic load and a predictable branch — no clock reads, no
// locks, no allocation. This keeps instrumented hot paths inside the
// tracing-overhead budget gated by bench/perf_regression. When enabled,
// entering a scope takes a mutex to intern the (parent, name) tree node;
// accumulation on exit is lock-free (relaxed atomic adds), and the
// per-thread scope stack is a thread_local node index, so concurrent
// sweep workers profile into one shared tree safely.

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace realtor::obs {

/// One flattened scope-tree node: pre-order position, "a/b/c" path,
/// nesting depth, and accumulated totals.
struct ProfileEntry {
  std::string path;
  int depth = 0;
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
};

class Profiler {
 public:
  static Profiler& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded scope (the enabled flag is untouched). Must not
  /// race live ProfileScopes: call it between runs, when every scope on
  /// every thread has exited.
  void reset();

  /// Deterministic pre-order flattening of the scope tree; siblings are
  /// visited in name order, so two identical workloads produce entries in
  /// the same order (timings differ, structure does not).
  std::vector<ProfileEntry> snapshot() const;

  // Internal API used by ProfileScope: push `name` under the calling
  // thread's current node and return the previous node index; pop back to
  // `parent` after charging `ns` to the node being left.
  std::uint32_t enter(const char* name);
  void leave(std::uint32_t parent, std::uint64_t ns);

 private:
  Profiler();

  struct Node {
    std::string name;
    std::uint32_t parent = 0;
    std::vector<std::uint32_t> children;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> ns{0};
  };

  void flatten(std::uint32_t index, int depth, const std::string& prefix,
               std::vector<ProfileEntry>& out) const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;       // guards nodes_ structure (not totals)
  std::deque<Node> nodes_;         // deque: stable addresses for atomics
};

/// RAII scope timer. Usage: `obs::ProfileScope scope("engine/dispatch");`
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (Profiler::instance().enabled()) begin(name);
  }
  ~ProfileScope() {
    if (armed_) end();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void begin(const char* name);
  void end();

  std::uint32_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Tab-separated dump, one scope per line: depth, calls, ns, path.
/// Trivially parseable back with parse_profile_tsv (used by
/// `realtor_trace --export=perfetto --profile=FILE`).
void write_profile_tsv(std::ostream& out,
                       const std::vector<ProfileEntry>& entries);
std::vector<ProfileEntry> parse_profile_tsv(std::istream& in);

/// Human-readable indented tree with per-scope totals and call counts.
std::string render_profile_text(const std::vector<ProfileEntry>& entries);

}  // namespace realtor::obs
