#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace realtor {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Xoshiro256::reseed(std::uint64_t seed) {
  // Seed through SplitMix64 so that correlated user seeds (0, 1, 2, ...)
  // still produce well-separated states.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

RngStream::RngStream(std::uint64_t root_seed, std::string_view name)
    : engine_(root_seed ^ hash_name(name)) {}

double RngStream::uniform01() {
  // 53 uniform mantissa bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  REALTOR_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t RngStream::uniform_index(std::uint64_t n) {
  REALTOR_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t draw;
  do {
    draw = engine_();
  } while (draw >= limit);
  return draw % n;
}

double RngStream::exponential(double mean) {
  REALTOR_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);  // log(0) guard; uniform01 is in [0,1)
  return -mean * std::log(u);
}

bool RngStream::bernoulli(double p) { return uniform01() < p; }

std::uint64_t RngStream::next_u64() { return engine_(); }

}  // namespace realtor
