#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace realtor::detail {

void assertion_failure(const char* expr, const char* file, int line,
                       const char* msg) {
  std::fprintf(stderr, "REALTOR_ASSERT failed: %s at %s:%d %s\n", expr, file,
               line, msg);
  std::abort();
}

}  // namespace realtor::detail
