// Online statistics used by the experiment harness and monitors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace realtor {

/// Welford's online mean / variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean; 0 for fewer than two samples.
  double ci95_halfwidth() const;

  void merge(const OnlineStats& other);
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Welch's unequal-variance t-test between two sample sets.
struct WelchResult {
  double t = 0.0;                  // test statistic
  double degrees_of_freedom = 0.0; // Welch-Satterthwaite approximation
  /// |t| exceeds the two-sided 5% critical value (normal approximation
  /// of the t distribution; accurate for df >= ~10, conservative below).
  bool significant_at_5pct = false;
};

/// Compares the means of `a` and `b`; both need >= 2 samples, otherwise a
/// zero/insignificant result is returned.
WelchResult welch_t_test(const OnlineStats& a, const OnlineStats& b);

/// Average of a piecewise-constant signal weighted by the time each value
/// was held. Used for queue occupancy and utilization traces.
class TimeWeightedStats {
 public:
  /// Record that the signal changed to `value` at time `now`. The previous
  /// value is credited for the elapsed interval.
  void update(SimTime now, double value);

  /// Close the observation window at `now` and return the time average.
  double average(SimTime now) const;

  bool empty() const { return !started_; }
  void reset();

 private:
  bool started_ = false;
  SimTime start_ = 0.0;
  SimTime last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in clamped
/// edge bins so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Linear-interpolated quantile in [0, 1]; 0 if empty.
  double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace realtor
