#include "net/topology.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace realtor::net {

Topology::Topology(NodeId num_nodes)
    : num_nodes_(num_nodes),
      alive_(num_nodes, 1),
      alive_count_(num_nodes) {
  REALTOR_ASSERT(num_nodes > 0);
}

void Topology::add_link(NodeId a, NodeId b) {
  REALTOR_ASSERT(a < num_nodes_ && b < num_nodes_);
  REALTOR_ASSERT_MSG(a != b, "self links are not allowed");
  REALTOR_ASSERT_MSG(!has_link(a, b), "duplicate link");
  link_set_.insert(pack_link(a, b));
  links_.push_back(Link{std::min(a, b), std::max(a, b)});
  if (alive_[a] && alive_[b]) ++alive_link_count_;
  ++version_;
}

bool Topology::has_link(NodeId a, NodeId b) const {
  REALTOR_ASSERT(a < num_nodes_ && b < num_nodes_);
  return link_set_.count(pack_link(a, b)) != 0;
}

void Topology::set_alive(NodeId node, bool value) {
  REALTOR_ASSERT(node < num_nodes_);
  if ((alive_[node] != 0) == value) return;
  // Links to alive neighbors flip usability together with this node.
  std::size_t alive_degree = 0;
  for (const NodeId n : neighbors(node)) {
    if (alive_[n]) ++alive_degree;
  }
  if (value) {
    alive_link_count_ += alive_degree;
  } else {
    alive_link_count_ -= alive_degree;
  }
  alive_[node] = value ? 1 : 0;
  alive_count_ += value ? 1u : static_cast<std::size_t>(-1);
  ++version_;
}

std::vector<NodeId> Topology::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (alive_[n]) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::alive_neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (const NodeId n : neighbors(node)) {
    if (alive_[n]) out.push_back(n);
  }
  return out;
}

void Topology::rebuild_csr() const {
  csr_offsets_.assign(num_nodes_ + 1, 0);
  for (const Link& link : links_) {
    ++csr_offsets_[link.a + 1];
    ++csr_offsets_[link.b + 1];
  }
  for (NodeId n = 0; n < num_nodes_; ++n) {
    csr_offsets_[n + 1] += csr_offsets_[n];
  }
  csr_neighbors_.resize(links_.size() * 2);
  // Second pass appends in link-insertion order, reproducing the neighbor
  // order the old vector-of-vectors adjacency produced (each add_link
  // appended to both endpoints' lists); cursor starts as a copy of the
  // row offsets.
  std::vector<std::uint32_t> cursor(csr_offsets_.begin(),
                                    csr_offsets_.end() - 1);
  for (const Link& link : links_) {
    csr_neighbors_[cursor[link.a]++] = link.b;
    csr_neighbors_[cursor[link.b]++] = link.a;
  }
  csr_links_ = links_.size();
}

Topology make_mesh(NodeId width, NodeId height) {
  REALTOR_ASSERT(width > 0 && height > 0);
  Topology topo(width * height);
  const auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) topo.add_link(id(x, y), id(x + 1, y));
      if (y + 1 < height) topo.add_link(id(x, y), id(x, y + 1));
    }
  }
  return topo;
}

Topology make_torus(NodeId width, NodeId height) {
  REALTOR_ASSERT(width > 2 && height > 2);
  Topology topo(width * height);
  const auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      topo.add_link(id(x, y), id((x + 1) % width, y));
      topo.add_link(id(x, y), id(x, (y + 1) % height));
    }
  }
  return topo;
}

Topology make_ring(NodeId n) {
  REALTOR_ASSERT(n >= 3);
  Topology topo(n);
  for (NodeId i = 0; i < n; ++i) {
    topo.add_link(i, (i + 1) % n);
  }
  return topo;
}

Topology make_star(NodeId n) {
  REALTOR_ASSERT(n >= 2);
  Topology topo(n);
  for (NodeId i = 1; i < n; ++i) {
    topo.add_link(0, i);
  }
  return topo;
}

Topology make_complete(NodeId n) {
  REALTOR_ASSERT(n >= 2);
  Topology topo(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      topo.add_link(a, b);
    }
  }
  return topo;
}

Topology make_random_connected(NodeId n, std::size_t target_links,
                               std::uint64_t seed) {
  REALTOR_ASSERT(n >= 2);
  const std::size_t max_links =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  REALTOR_ASSERT_MSG(target_links >= n - 1, "too few links to connect");
  REALTOR_ASSERT_MSG(target_links <= max_links, "more links than pairs");

  RngStream rng(seed, "random-topology");
  Topology topo(n);

  // Random spanning tree: attach each node (in a random order) to a random
  // already-attached node.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId parent = order[rng.uniform_index(i)];
    topo.add_link(order[i], parent);
  }

  while (topo.num_links() < target_links) {
    const NodeId a = static_cast<NodeId>(rng.uniform_index(n));
    const NodeId b = static_cast<NodeId>(rng.uniform_index(n));
    if (a == b || topo.has_link(a, b)) continue;
    topo.add_link(a, b);
  }
  return topo;
}

}  // namespace realtor::net
