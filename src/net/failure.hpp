// Attack / failure injection.
//
// The paper motivates REALTOR with hosts coming under external attack and
// leaving the system at any time (§1, §4). FailureInjector schedules node
// kill / restore events on the simulation clock, flips topology liveness,
// and notifies listeners (the experiment drops queued work on killed nodes
// and protocols observe membership silently decaying — REALTOR itself is
// soft-state and needs no explicit notification).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace realtor::net {

class FailureInjector {
 public:
  /// Called after liveness flips: (node, now_alive).
  using Listener = std::function<void(NodeId, bool)>;

  FailureInjector(sim::Engine& engine, Topology& topology);

  void add_listener(Listener listener);

  /// Node goes down at `at` (idempotent if already down).
  void schedule_kill(NodeId node, SimTime at);

  /// Node comes back at `at` (idempotent if already up).
  void schedule_restore(NodeId node, SimTime at);

  /// Kills `count` distinct random alive-at-schedule-time nodes at
  /// `attack_time`, restoring each at `attack_time + outage`; never targets
  /// nodes in `spared` (lets experiments keep a designated victim's
  /// destination pool alive). Returns the chosen victims.
  std::vector<NodeId> schedule_attack_wave(std::size_t count,
                                           SimTime attack_time,
                                           SimTime outage, RngStream& rng,
                                           const std::vector<NodeId>& spared = {});

  std::uint64_t kills() const { return kills_; }
  std::uint64_t restores() const { return restores_; }

 private:
  void apply(NodeId node, bool alive);

  sim::Engine& engine_;
  Topology& topology_;
  std::vector<Listener> listeners_;
  std::uint64_t kills_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace realtor::net
