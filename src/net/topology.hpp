// Overlay network topology.
//
// The paper simulates a 5x5 mesh (25 nodes, 40 links, Fig. 4) that doubles
// as the neighbor scope for all five discovery protocols. Nodes can be
// marked dead to model external attacks; dead nodes neither originate nor
// receive messages and their links carry no traffic.
//
// Storage: links are the ground truth; adjacency is kept flattened in CSR
// form (one offsets array, one neighbors array) rebuilt lazily after a
// batch of add_link calls, so neighbor iteration — the inner loop of every
// BFS and every gossip peer selection — walks one contiguous array instead
// of chasing a vector-of-vectors. The alive-link count is maintained
// incrementally on set_alive (O(degree)), making the paper's flood-cost
// base an O(1) read even on 10k-node topologies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace realtor::net {

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};

/// Contiguous, read-only view of a node's neighbors inside the CSR
/// neighbor array. Cheap to copy; invalidated by the next add_link.
class NeighborSpan {
 public:
  NeighborSpan() = default;
  NeighborSpan(const NodeId* data, std::size_t size)
      : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](std::size_t i) const { return data_[i]; }

 private:
  const NodeId* data_ = nullptr;
  std::size_t size_ = 0;
};

class Topology {
 public:
  explicit Topology(NodeId num_nodes);

  /// Adds an undirected link; duplicate and self links are rejected.
  void add_link(NodeId a, NodeId b);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  /// Neighbors in link-insertion order (CSR row). The span is invalidated
  /// by the next add_link.
  NeighborSpan neighbors(NodeId node) const {
    ensure_csr();
    const std::uint32_t begin = csr_offsets_[node];
    return NeighborSpan(csr_neighbors_.data() + begin,
                        csr_offsets_[node + 1] - begin);
  }
  bool has_link(NodeId a, NodeId b) const;

  /// Liveness (attack) state. Nodes start alive.
  bool alive(NodeId node) const { return alive_[node] != 0; }
  void set_alive(NodeId node, bool alive);
  std::size_t alive_count() const { return alive_count_; }
  std::vector<NodeId> alive_nodes() const;

  /// Links whose both endpoints are alive — the flood cost base in the
  /// paper's accounting. Maintained incrementally; O(1).
  std::size_t alive_link_count() const { return alive_link_count_; }

  /// Alive neighbors of an alive node. Allocates; hot paths should prefer
  /// for_each_alive_neighbor.
  std::vector<NodeId> alive_neighbors(NodeId node) const;

  /// Allocation-free iteration over the alive neighbors of `node`, in
  /// link-insertion order.
  template <typename F>
  void for_each_alive_neighbor(NodeId node, F&& f) const {
    for (const NodeId n : neighbors(node)) {
      if (alive_[n]) f(n);
    }
  }

  /// Allocation-free iteration over alive nodes in ascending id order.
  template <typename F>
  void for_each_alive_node(F&& f) const {
    for (NodeId n = 0; n < num_nodes_; ++n) {
      if (alive_[n]) f(n);
    }
  }

  /// Monotone counter bumped on every liveness change; cheap cache
  /// invalidation for derived structures (shortest paths, cost model).
  std::uint64_t version() const { return version_; }

 private:
  static std::uint64_t pack_link(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  /// Cheap staleness test inlined into every neighbors() call; the
  /// rebuild itself is out of line.
  void ensure_csr() const {
    if (csr_links_ != links_.size() || csr_offsets_.empty()) rebuild_csr();
  }
  /// Rebuilds the CSR arrays from links_ in O(N + E).
  void rebuild_csr() const;

  NodeId num_nodes_;
  std::vector<Link> links_;
  std::unordered_set<std::uint64_t> link_set_;  // O(1) has_link / dup check
  std::vector<char> alive_;
  std::size_t alive_count_;
  std::size_t alive_link_count_ = 0;
  std::uint64_t version_ = 0;

  // CSR adjacency, rebuilt lazily: neighbors of node n live in
  // csr_neighbors_[csr_offsets_[n] .. csr_offsets_[n+1]).
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<NodeId> csr_neighbors_;
  mutable std::size_t csr_links_ = 0;  // links_.size() the CSR was built at
};

/// w x h grid; interior nodes have 4 neighbors. mesh(5,5) reproduces the
/// paper's 25-node / 40-link topology.
Topology make_mesh(NodeId width, NodeId height);

/// Grid with wraparound links in both dimensions.
Topology make_torus(NodeId width, NodeId height);

/// Cycle of n nodes.
Topology make_ring(NodeId n);

/// Hub node 0 connected to all others.
Topology make_star(NodeId n);

/// All pairs connected.
Topology make_complete(NodeId n);

/// Connected Erdos-Renyi-style graph: a random spanning tree plus extra
/// random links until `target_links` is reached. Deterministic given seed.
Topology make_random_connected(NodeId n, std::size_t target_links,
                               std::uint64_t seed);

}  // namespace realtor::net
