// Overlay network topology.
//
// The paper simulates a 5x5 mesh (25 nodes, 40 links, Fig. 4) that doubles
// as the neighbor scope for all five discovery protocols. Nodes can be
// marked dead to model external attacks; dead nodes neither originate nor
// receive messages and their links carry no traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace realtor::net {

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};

class Topology {
 public:
  explicit Topology(NodeId num_nodes);

  /// Adds an undirected link; duplicate and self links are rejected.
  void add_link(NodeId a, NodeId b);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<NodeId>& neighbors(NodeId node) const;
  bool has_link(NodeId a, NodeId b) const;

  /// Liveness (attack) state. Nodes start alive.
  bool alive(NodeId node) const;
  void set_alive(NodeId node, bool alive);
  std::size_t alive_count() const { return alive_count_; }
  std::vector<NodeId> alive_nodes() const;

  /// Links whose both endpoints are alive — the flood cost base in the
  /// paper's accounting.
  std::size_t alive_link_count() const;

  /// Alive neighbors of an alive node.
  std::vector<NodeId> alive_neighbors(NodeId node) const;

  /// Monotone counter bumped on every liveness change; cheap cache
  /// invalidation for derived structures (shortest paths, cost model).
  std::uint64_t version() const { return version_; }

 private:
  NodeId num_nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Link> links_;
  std::vector<char> alive_;
  std::size_t alive_count_;
  std::uint64_t version_ = 0;
};

/// w x h grid; interior nodes have 4 neighbors. mesh(5,5) reproduces the
/// paper's 25-node / 40-link topology.
Topology make_mesh(NodeId width, NodeId height);

/// Grid with wraparound links in both dimensions.
Topology make_torus(NodeId width, NodeId height);

/// Cycle of n nodes.
Topology make_ring(NodeId n);

/// Hub node 0 connected to all others.
Topology make_star(NodeId n);

/// All pairs connected.
Topology make_complete(NodeId n);

/// Connected Erdos-Renyi-style graph: a random spanning tree plus extra
/// random links until `target_links` is reached. Deterministic given seed.
Topology make_random_connected(NodeId n, std::size_t target_links,
                               std::uint64_t seed);

}  // namespace realtor::net
