#include "net/message_ledger.hpp"

#include "common/assert.hpp"

namespace realtor::net {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHelp:
      return "HELP";
    case MessageKind::kPledge:
      return "PLEDGE";
    case MessageKind::kPushAdvert:
      return "PUSH";
    case MessageKind::kGossip:
      return "GOSSIP";
    case MessageKind::kNegotiation:
      return "NEGOTIATION";
    case MessageKind::kMigration:
      return "MIGRATION";
    case MessageKind::kCount:
      break;
  }
  return "?";
}

void MessageLedger::record(MessageKind kind, double cost_units,
                           std::uint64_t count) {
  REALTOR_ASSERT(kind != MessageKind::kCount);
  REALTOR_ASSERT(cost_units >= 0.0);
  const auto i = static_cast<std::size_t>(kind);
  sends_[i] += count;
  cost_[i] += cost_units;
}

std::uint64_t MessageLedger::sends(MessageKind kind) const {
  REALTOR_ASSERT(kind != MessageKind::kCount);
  return sends_[static_cast<std::size_t>(kind)];
}

double MessageLedger::cost(MessageKind kind) const {
  REALTOR_ASSERT(kind != MessageKind::kCount);
  return cost_[static_cast<std::size_t>(kind)];
}

std::uint64_t MessageLedger::total_sends() const {
  std::uint64_t total = 0;
  for (const auto s : sends_) total += s;
  return total;
}

double MessageLedger::total_cost() const {
  double total = 0.0;
  for (const auto c : cost_) total += c;
  return total;
}

double MessageLedger::overhead_cost() const {
  return total_cost() - cost(MessageKind::kMigration);
}

LedgerSnapshot MessageLedger::snapshot() const {
  LedgerSnapshot snap;
  snap.sends = sends_;
  snap.cost = cost_;
  snap.total_sends = total_sends();
  snap.total_cost = total_cost();
  snap.overhead_cost = overhead_cost();
  return snap;
}

void MessageLedger::merge(const MessageLedger& other) {
  for (std::size_t i = 0; i < sends_.size(); ++i) {
    sends_[i] += other.sends_[i];
    cost_[i] += other.cost_[i];
  }
}

void MessageLedger::reset() { *this = MessageLedger{}; }

}  // namespace realtor::net
