#include "net/cost_model.hpp"

#include "common/assert.hpp"

namespace realtor::net {

CostModel::CostModel(const Topology& topology, CostMode mode,
                     std::optional<double> fixed_unicast_cost,
                     FloodMode flood_mode)
    : topology_(topology),
      mode_(mode),
      fixed_unicast_cost_(fixed_unicast_cost),
      flood_mode_(flood_mode),
      paths_(topology) {
  if (fixed_unicast_cost_) {
    REALTOR_ASSERT(*fixed_unicast_cost_ > 0.0);
  }
}

void CostModel::refresh_if_stale() const {
  // Queries resync lazily; this only drops stale caches eagerly.
  if (paths_.version() != topology_.version()) {
    paths_.refresh();
  }
}

double CostModel::flood_cost() const {
  switch (flood_mode_) {
    case FloodMode::kLinks:
      return static_cast<double>(topology_.alive_link_count());
    case FloodMode::kSpanningTree: {
      const std::size_t alive = topology_.alive_count();
      return alive > 0 ? static_cast<double>(alive - 1) : 0.0;
    }
  }
  return 0.0;
}

double CostModel::unicast_cost(NodeId from, NodeId to) const {
  REALTOR_ASSERT(from < topology_.num_nodes());
  REALTOR_ASSERT(to < topology_.num_nodes());
  switch (mode_) {
    case CostMode::kPaperAverage:
      // With a pinned cost (the paper's mesh convention) no path data is
      // touched at all — the common case is a constant load.
      return fixed_unicast_cost_ ? *fixed_unicast_cost_
                                 : paths_.average_path_length();
    case CostMode::kExactHops: {
      const std::uint32_t d = paths_.hops(from, to);
      // A message into a partition dies at the partition edge; charge the
      // average so accounting stays finite (rare under the experiments'
      // attack levels, and consistent with the paper's averaging).
      if (d == kUnreachable) return paths_.average_path_length();
      return static_cast<double>(d);
    }
  }
  return 0.0;
}

}  // namespace realtor::net
