#include "net/shortest_paths.hpp"

#include <deque>

#include "common/assert.hpp"

namespace realtor::net {

ShortestPaths::ShortestPaths(const Topology& topology) : topology_(topology) {
  refresh();
}

void ShortestPaths::refresh() {
  const NodeId n = topology_.num_nodes();
  dist_.assign(static_cast<std::size_t>(n) * n, kUnreachable);

  std::deque<NodeId> frontier;
  for (NodeId src = 0; src < n; ++src) {
    if (!topology_.alive(src)) continue;
    auto* row = &dist_[static_cast<std::size_t>(src) * n];
    row[src] = 0;
    frontier.clear();
    frontier.push_back(src);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const NodeId v : topology_.neighbors(u)) {
        if (!topology_.alive(v) || row[v] != kUnreachable) continue;
        row[v] = row[u] + 1;
        frontier.push_back(v);
      }
    }
  }

  double sum = 0.0;
  std::uint64_t pairs = 0;
  diameter_ = 0;
  connected_ = true;
  for (NodeId a = 0; a < n; ++a) {
    if (!topology_.alive(a)) continue;
    for (NodeId b = 0; b < n; ++b) {
      if (a == b || !topology_.alive(b)) continue;
      const std::uint32_t d = dist_[static_cast<std::size_t>(a) * n + b];
      if (d == kUnreachable) {
        connected_ = false;
        continue;
      }
      sum += d;
      ++pairs;
      if (d > diameter_) diameter_ = d;
    }
  }
  average_path_length_ = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  version_ = topology_.version();
}

std::uint32_t ShortestPaths::hops(NodeId from, NodeId to) const {
  REALTOR_ASSERT(from < topology_.num_nodes());
  REALTOR_ASSERT(to < topology_.num_nodes());
  REALTOR_ASSERT_MSG(version_ == topology_.version(),
                     "ShortestPaths is stale; call refresh()");
  return dist_[static_cast<std::size_t>(from) * topology_.num_nodes() + to];
}

}  // namespace realtor::net
