#include "net/shortest_paths.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/profile.hpp"

namespace realtor::net {

ShortestPaths::ShortestPaths(const Topology& topology)
    : topology_(topology), version_(topology.version()) {}

void ShortestPaths::refresh() { sync(); }

void ShortestPaths::sync() const {
  if (version_ == topology_.version()) return;
  for (auto& [src, dist] : rows_) {
    spare_rows_.push_back(std::move(dist));
  }
  rows_.clear();
  stats_valid_ = false;
  connected_valid_ = false;
  version_ = topology_.version();
}

void ShortestPaths::bfs(NodeId src, std::vector<std::uint32_t>& dist) const {
  obs::ProfileScope scope("net/shortest_paths_bfs");
  const NodeId n = topology_.num_nodes();
  dist.assign(n, kUnreachable);
  if (!topology_.alive(src)) return;
  dist[src] = 0;
  frontier_.clear();
  frontier_.push_back(src);
  std::uint32_t depth = 0;
  while (!frontier_.empty()) {
    ++depth;
    next_frontier_.clear();
    for (const NodeId u : frontier_) {
      for (const NodeId v : topology_.neighbors(u)) {
        if (!topology_.alive(v) || dist[v] != kUnreachable) continue;
        dist[v] = depth;
        next_frontier_.push_back(v);
      }
    }
    frontier_.swap(next_frontier_);
  }
}

const std::vector<std::uint32_t>& ShortestPaths::row_for(NodeId src) const {
  REALTOR_ASSERT(src < topology_.num_nodes());
  sync();
  const auto it = rows_.find(src);
  if (it != rows_.end()) return it->second;
  if (rows_.size() >= kMaxCachedRows) {
    // Flood origins rotate; a full reset is simpler than LRU bookkeeping
    // and just as effective at this cache size.
    for (auto& [s, dist] : rows_) {
      spare_rows_.push_back(std::move(dist));
    }
    rows_.clear();
  }
  std::vector<std::uint32_t> dist;
  if (!spare_rows_.empty()) {
    dist = std::move(spare_rows_.back());
    spare_rows_.pop_back();
  }
  bfs(src, dist);
  return rows_.emplace(src, std::move(dist)).first->second;
}

std::uint32_t ShortestPaths::hops(NodeId from, NodeId to) const {
  REALTOR_ASSERT(from < topology_.num_nodes());
  REALTOR_ASSERT(to < topology_.num_nodes());
  return row_for(from)[to];
}

const std::uint32_t* ShortestPaths::row(NodeId src) const {
  return row_for(src).data();
}

bool ShortestPaths::connected() const {
  sync();
  if (connected_valid_) return connected_;
  const NodeId n = topology_.num_nodes();
  connected_ = true;
  for (NodeId src = 0; src < n; ++src) {
    if (!topology_.alive(src)) continue;
    // One BFS: the alive subgraph is connected iff it reaches every alive
    // node from any single alive source.
    const std::vector<std::uint32_t>& dist = row_for(src);
    std::size_t reached = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable) ++reached;
    }
    connected_ = reached == topology_.alive_count();
    break;
  }
  connected_valid_ = true;
  return connected_;
}

void ShortestPaths::ensure_stats() const {
  sync();
  if (stats_valid_) return;

  const NodeId n = topology_.num_nodes();
  const std::size_t alive = topology_.alive_count();
  const bool sample =
      sampling_enabled_ && alive >= static_cast<std::size_t>(sampling_min_nodes_);
  // Deterministic evenly-strided source subset when sampling; every alive
  // source otherwise.
  const std::size_t stride =
      sample ? std::max<std::size_t>(
                   1, alive / static_cast<std::size_t>(sampling_sources_))
             : 1;

  double sum = 0.0;
  std::uint64_t pairs = 0;
  std::uint32_t diameter = 0;
  std::vector<std::uint32_t> dist;
  if (!spare_rows_.empty()) {
    dist = std::move(spare_rows_.back());
    spare_rows_.pop_back();
  }
  std::size_t alive_index = 0;
  for (NodeId src = 0; src < n; ++src) {
    if (!topology_.alive(src)) continue;
    const bool take = alive_index % stride == 0;
    ++alive_index;
    if (!take) continue;
    bfs(src, dist);
    for (NodeId v = 0; v < n; ++v) {
      if (v == src || !topology_.alive(v)) continue;
      const std::uint32_t d = dist[v];
      if (d == kUnreachable) continue;
      sum += d;
      ++pairs;
      if (d > diameter) diameter = d;
    }
  }
  spare_rows_.push_back(std::move(dist));

  average_path_length_ = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  diameter_ = diameter;
  stats_sampled_ = sample;
  stats_valid_ = true;
}

double ShortestPaths::average_path_length() const {
  ensure_stats();
  return average_path_length_;
}

std::uint32_t ShortestPaths::diameter() const {
  ensure_stats();
  return diameter_;
}

void ShortestPaths::set_sampled_stats(bool enabled, NodeId min_nodes,
                                      NodeId sources) {
  REALTOR_ASSERT(sources > 0);
  sampling_enabled_ = enabled;
  sampling_min_nodes_ = min_nodes;
  sampling_sources_ = sources;
  stats_valid_ = false;
}

}  // namespace realtor::net
