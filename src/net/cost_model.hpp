// Message-cost model in the paper's accounting units.
//
// Two modes:
//   * kPaperAverage — the §5 convention: a flood costs the number of
//     (alive) links; a unicast costs the topology-wide average shortest
//     path length. The paper uses 4 for the 5x5 mesh; set
//     `fixed_unicast_cost` to pin that value.
//   * kExactHops — a unicast costs the exact hop distance between the two
//     endpoints (used by ablations to check the averaging assumption,
//     which the paper asserts "does not affect the performance
//     comparison").
#pragma once

#include <optional>

#include "net/shortest_paths.hpp"
#include "net/topology.hpp"

namespace realtor::net {

enum class CostMode { kPaperAverage, kExactHops };

/// How a flood is charged: the paper counts "the number of links"; a
/// spanning-tree dissemination (each node forwards once) costs N-1
/// messages instead. §5 asserts the choice "does not affect the
/// performance comparison" — the cost-model ablation verifies that.
enum class FloodMode { kLinks, kSpanningTree };

class CostModel {
 public:
  CostModel(const Topology& topology, CostMode mode,
            std::optional<double> fixed_unicast_cost = std::nullopt,
            FloodMode flood_mode = FloodMode::kLinks);

  /// Cost of flooding the overlay from an alive origin (HELP / PUSH advert).
  double flood_cost() const;

  /// Cost of a unicast reply or request between two alive nodes.
  double unicast_cost(NodeId from, NodeId to) const;

  CostMode mode() const { return mode_; }
  FloodMode flood_mode() const { return flood_mode_; }

  /// Recomputes cached paths if node liveness changed.
  void refresh_if_stale() const;

  /// Opt-in sampled average-path/diameter estimation for large topologies
  /// (forwarded to ShortestPaths::set_sampled_stats). Paper-config runs
  /// leave this off and always get exact statistics.
  void set_approx_path_stats(bool enabled) {
    paths_.set_sampled_stats(enabled);
  }

 private:
  const Topology& topology_;
  CostMode mode_;
  std::optional<double> fixed_unicast_cost_;
  FloodMode flood_mode_;
  mutable ShortestPaths paths_;
};

}  // namespace realtor::net
