#include "net/failure.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace realtor::net {

FailureInjector::FailureInjector(sim::Engine& engine, Topology& topology)
    : engine_(engine), topology_(topology) {}

void FailureInjector::add_listener(Listener listener) {
  REALTOR_ASSERT(static_cast<bool>(listener));
  listeners_.push_back(std::move(listener));
}

void FailureInjector::schedule_kill(NodeId node, SimTime at) {
  REALTOR_ASSERT(node < topology_.num_nodes());
  engine_.schedule_at(at, [this, node] { apply(node, false); });
}

void FailureInjector::schedule_restore(NodeId node, SimTime at) {
  REALTOR_ASSERT(node < topology_.num_nodes());
  engine_.schedule_at(at, [this, node] { apply(node, true); });
}

std::vector<NodeId> FailureInjector::schedule_attack_wave(
    std::size_t count, SimTime attack_time, SimTime outage, RngStream& rng,
    const std::vector<NodeId>& spared) {
  std::vector<NodeId> candidates;
  for (const NodeId n : topology_.alive_nodes()) {
    if (std::find(spared.begin(), spared.end(), n) == spared.end()) {
      candidates.push_back(n);
    }
  }
  REALTOR_ASSERT_MSG(count <= candidates.size(),
                     "attack wave larger than the eligible population");
  // Partial Fisher-Yates: the first `count` entries become the victims.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                rng.uniform_index(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(count);
  for (const NodeId victim : candidates) {
    schedule_kill(victim, attack_time);
    if (outage > 0.0) {
      schedule_restore(victim, attack_time + outage);
    }
  }
  return candidates;
}

void FailureInjector::apply(NodeId node, bool alive) {
  if (topology_.alive(node) == alive) return;  // idempotent
  topology_.set_alive(node, alive);
  if (alive) {
    ++restores_;
  } else {
    ++kills_;
  }
  for (const auto& listener : listeners_) {
    listener(node, alive);
  }
}

}  // namespace realtor::net
