// Hop distances over the alive subgraph, computed lazily.
//
// The old implementation eagerly rebuilt an O(N^2)-memory all-pairs matrix
// plus an O(N^2) stats scan after every liveness change — ~400 MB and
// seconds of work per attack event at N=10k. This version does no work
// until asked: hops()/row() run one BFS per queried source and cache the
// row keyed by Topology::version(); connected() is a single BFS;
// average_path_length()/diameter() stream per-source BFS rows only when
// the cost model actually asks (exact by default, with an opt-in sampled
// estimator for large topologies that paper-config runs never enable).
// Any topology change simply invalidates the caches — refresh() is now a
// cheap resynchronization, not a rebuild.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"

namespace realtor::net {

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

class ShortestPaths {
 public:
  /// Binds to `topology` without computing anything; distances materialize
  /// on first query and track liveness changes automatically.
  explicit ShortestPaths(const Topology& topology);

  /// Drops stale caches and marks the table current. Queries resync on
  /// their own, so this is only needed to satisfy version() equality
  /// checks without issuing a query.
  void refresh();

  /// Hop count between alive nodes; kUnreachable if disconnected or if
  /// either endpoint is dead.
  std::uint32_t hops(NodeId from, NodeId to) const;

  /// Distance row for `src` (indexable by destination, num_nodes wide).
  /// Computed by one BFS and cached; the pointer is valid until the next
  /// topology change or cache eviction — consume it before issuing other
  /// queries. Lets flood loops resolve N-1 destinations with one lookup.
  const std::uint32_t* row(NodeId src) const;

  bool reachable(NodeId from, NodeId to) const {
    return hops(from, to) != kUnreachable;
  }

  /// Mean hop count over all ordered pairs of distinct, mutually reachable
  /// alive nodes. On the paper's 5x5 mesh this is ~3.33; the paper rounds
  /// the per-PLEDGE cost to 4. Exact unless the sampled estimator is
  /// enabled and the topology is large.
  double average_path_length() const;

  /// Longest finite shortest path (a lower bound when sampling).
  std::uint32_t diameter() const;

  /// True when every pair of alive nodes is mutually reachable. One BFS.
  bool connected() const;

  /// Topology version this table was computed against.
  std::uint64_t version() const { return version_; }

  /// Opt-in sampled path statistics: when enabled and the alive population
  /// reaches `min_nodes`, average_path_length()/diameter() BFS only
  /// `sources` evenly-strided alive sources instead of all of them.
  /// Deterministic (no RNG). Off by default — paper-config runs and the
  /// golden tests always take the exact path.
  void set_sampled_stats(bool enabled, NodeId min_nodes = 2500,
                         NodeId sources = 64);

  /// True if the most recent stats computation used sampling.
  bool stats_sampled() const { return stats_sampled_; }

 private:
  /// Invalidates caches if the topology moved on; updates version_.
  void sync() const;
  /// BFS from `src` into `dist` (resized/reset inside).
  void bfs(NodeId src, std::vector<std::uint32_t>& dist) const;
  /// Returns the cached row for `src`, computing it if absent.
  const std::vector<std::uint32_t>& row_for(NodeId src) const;
  void ensure_stats() const;

  /// Row-cache capacity: enough for every concurrent flood origin in a
  /// burst without approaching all-pairs memory at N=10k.
  static constexpr std::size_t kMaxCachedRows = 64;

  const Topology& topology_;
  mutable std::uint64_t version_ = 0;

  mutable std::unordered_map<NodeId, std::vector<std::uint32_t>> rows_;
  mutable std::vector<std::vector<std::uint32_t>> spare_rows_;

  mutable bool stats_valid_ = false;
  mutable double average_path_length_ = 0.0;
  mutable std::uint32_t diameter_ = 0;
  mutable bool stats_sampled_ = false;

  mutable bool connected_valid_ = false;
  mutable bool connected_ = false;

  bool sampling_enabled_ = false;
  NodeId sampling_min_nodes_ = 2500;
  NodeId sampling_sources_ = 64;

  // Scratch for BFS frontiers; reused across queries.
  mutable std::vector<NodeId> frontier_;
  mutable std::vector<NodeId> next_frontier_;
};

}  // namespace realtor::net
