// All-pairs hop distances over the alive subgraph (BFS per source).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace realtor::net {

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

class ShortestPaths {
 public:
  /// Computes distances over `topology`'s alive subgraph at construction
  /// time; call refresh() after liveness changes.
  explicit ShortestPaths(const Topology& topology);

  void refresh();

  /// Hop count between alive nodes; kUnreachable if disconnected or if
  /// either endpoint is dead.
  std::uint32_t hops(NodeId from, NodeId to) const;

  bool reachable(NodeId from, NodeId to) const {
    return hops(from, to) != kUnreachable;
  }

  /// Mean hop count over all ordered pairs of distinct, mutually reachable
  /// alive nodes. On the paper's 5x5 mesh this is ~3.33; the paper rounds
  /// the per-PLEDGE cost to 4.
  double average_path_length() const { return average_path_length_; }

  /// Longest finite shortest path.
  std::uint32_t diameter() const { return diameter_; }

  /// True when every pair of alive nodes is mutually reachable.
  bool connected() const { return connected_; }

  /// Topology version this table was computed against.
  std::uint64_t version() const { return version_; }

 private:
  const Topology& topology_;
  std::vector<std::uint32_t> dist_;  // row-major num_nodes x num_nodes
  double average_path_length_ = 0.0;
  std::uint32_t diameter_ = 0;
  bool connected_ = false;
  std::uint64_t version_ = 0;
};

}  // namespace realtor::net
