// Message accounting in the paper's units.
//
// §5: "the number of messages for resource information advertisement to the
// network is counted as the number of links ... HELP message requires the
// number of links for flooding, while PLEDGE message takes the average
// number of shortest paths ... the total number of messages is counted as
// the sum of 1) message flooding, and 2) communication for migration
// between admission controls."
#pragma once

#include <array>
#include <cstdint>

namespace realtor::net {

enum class MessageKind : std::size_t {
  kHelp = 0,        // community invitation flood (PULL solicitations)
  kPledge,          // availability reply / unsolicited threshold pledge
  kPushAdvert,      // PUSH-based availability dissemination flood
  kGossip,          // anti-entropy digest exchange (modern baseline)
  kNegotiation,     // admission-control negotiation during migration
  kMigration,       // component/task transfer itself
  kCount,
};

const char* to_string(MessageKind kind);

/// Value copy of a ledger's state at one instant, for samplers and
/// reports that must not hold a reference into the live ledger.
struct LedgerSnapshot {
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      sends{};
  std::array<double, static_cast<std::size_t>(MessageKind::kCount)> cost{};
  std::uint64_t total_sends = 0;
  double total_cost = 0.0;
  /// Everything except the migration payload (Figs 6-7 y-axis).
  double overhead_cost = 0.0;

  std::uint64_t sends_of(MessageKind kind) const {
    return sends[static_cast<std::size_t>(kind)];
  }
  double cost_of(MessageKind kind) const {
    return cost[static_cast<std::size_t>(kind)];
  }
};

class MessageLedger {
 public:
  /// `count` protocol-level sends costing `cost_units` network messages in
  /// total (a flood of cost 40 is one send, 40 units).
  void record(MessageKind kind, double cost_units, std::uint64_t count = 1);

  std::uint64_t sends(MessageKind kind) const;
  double cost(MessageKind kind) const;

  std::uint64_t total_sends() const;
  double total_cost() const;

  /// Everything except the migration payload itself — the discovery +
  /// negotiation overhead plotted in Figs 6-7.
  double overhead_cost() const;

  /// Consistent copy of every counter plus the derived totals.
  LedgerSnapshot snapshot() const;

  void merge(const MessageLedger& other);
  void reset();

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageKind::kCount)>
      sends_{};
  std::array<double, static_cast<std::size_t>(MessageKind::kCount)> cost_{};
};

}  // namespace realtor::net
