#include "agile/host_runtime.hpp"

#include "common/profile.hpp"

#include <algorithm>
#include <utility>

#include "agile/component.hpp"

#include "common/assert.hpp"

namespace realtor::agile {
namespace {
// Reactor wake-up cap: stay responsive to shutdown and late datagrams even
// with no pending deadline.
constexpr std::chrono::milliseconds kMaxWait{20};
}  // namespace

HostRuntime::HostRuntime(const HostConfig& config, const Clock& clock,
                         DatagramNetwork& network, NamingService& naming,
                         PeerResolver peers)
    : config_(config),
      clock_(clock),
      network_(network),
      naming_(naming),
      peers_(std::move(peers)),
      algo_h_(config.protocol),
      algo_p_(config.protocol),
      pledge_list_(config.protocol.soft_state_ttl,
                   config.protocol.availability_floor),
      membership_(config.protocol.soft_state_ttl,
                  config.protocol.max_communities),
      advert_table_(config.id, config.protocol.availability_floor),
      tie_rng_(0x517cc1b727220a95ULL * (config.id + 1), "agile-ties") {
  REALTOR_ASSERT(config_.queue_capacity > 0.0);
  REALTOR_ASSERT(config_.max_tries >= 1);
  REALTOR_ASSERT(config_.num_hosts > config_.id);
  REALTOR_ASSERT(static_cast<bool>(peers_));
  REALTOR_ASSERT_MSG(config_.discovery != proto::ProtocolKind::kGossip,
                     "the threaded runtime implements the paper's schemes");
}

bool HostRuntime::pull_based() const {
  return config_.discovery == proto::ProtocolKind::kRealtor ||
         config_.discovery == proto::ProtocolKind::kAdaptivePull ||
         config_.discovery == proto::ProtocolKind::kPurePull;
}

HostRuntime::~HostRuntime() { stop(); }

void HostRuntime::start() {
  if (running_.exchange(true)) return;
  if (config_.discovery == proto::ProtocolKind::kPurePush) {
    // Armed before the thread spawns: next_advert_ is reactor-confined.
    next_advert_ = clock_.now() + config_.protocol.push_interval;
  }
  thread_ = std::thread([this] { reactor(); });
}

void HostRuntime::stop() {
  if (!running_.exchange(false)) return;
  network_.inbox(config_.id).close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void HostRuntime::restart() {
  REALTOR_ASSERT_MSG(!running_.load(), "restart() requires a stopped host");
  // The reactor thread is joined: its confined state is safe to reset.
  algo_h_ = proto::AlgorithmH(config_.protocol);
  algo_p_ = proto::AlgorithmP(config_.protocol);
  pledge_list_.clear();
  membership_.clear();
  advert_table_ =
      proto::AvailabilityTable(config_.id, config_.protocol.availability_floor);
  speculations_.clear();
  help_deadline_ = kNeverTime;
  current_episode_ = 0;
  next_advert_ = kNeverTime;  // start() re-arms for pure PUSH
  completions_ = {};
  {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    finish_time_ = 0.0;
    cus_.reset();
  }
  network_.inbox(config_.id).reopen();
  start();
}

std::optional<HostRuntime::Reservation> HostRuntime::request_admission(
    double size_seconds) {
  REALTOR_ASSERT(size_seconds > 0.0);
  if (!running_.load(std::memory_order_relaxed)) {
    return std::nullopt;  // a killed host refuses the negotiation
  }
  const SimTime now = clock_.now();
  std::lock_guard<std::mutex> lock(admit_mutex_);
  const double backlog = std::max(0.0, finish_time_ - now);
  if (backlog + size_seconds > config_.queue_capacity + 1e-9) {
    return std::nullopt;
  }
  finish_time_ = std::max(now, finish_time_) + size_seconds;
  Reservation reservation;
  reservation.completion_time = finish_time_;
  reservation.deadline = cus_.assign_deadline(now, size_seconds);
  return reservation;
}

double HostRuntime::occupancy() const {
  const SimTime now = clock_.now();
  std::lock_guard<std::mutex> lock(admit_mutex_);
  return std::max(0.0, finish_time_ - now) / config_.queue_capacity;
}

void HostRuntime::reactor() {
  Inbox& inbox = network_.inbox(config_.id);
  while (true) {
    const SimTime now = clock_.now();
    process_due(now);

    SimTime next_deadline = kNeverTime;
    if (!completions_.empty()) next_deadline = completions_.top().time;
    if (help_deadline_ < next_deadline) next_deadline = help_deadline_;
    if (next_advert_ < next_deadline) next_deadline = next_advert_;

    auto wall_deadline = std::chrono::steady_clock::now() + kMaxWait;
    if (next_deadline != kNeverTime) {
      wall_deadline = std::min(wall_deadline, clock_.wall_at(next_deadline));
    }

    auto datagram = inbox.pop_until(wall_deadline);
    if (datagram) {
      handle(*datagram);
    } else if (inbox.closed()) {
      break;
    } else if (!running_.load(std::memory_order_relaxed)) {
      break;
    }
  }
}

void HostRuntime::process_due(SimTime now) {
  while (!completions_.empty() && completions_.top().time <= now) {
    const PendingCompletion done = completions_.top();
    completions_.pop();
    stats_.completions.fetch_add(1, std::memory_order_relaxed);
    // Deadlines are met in *model* time: CUS at U=1 makes the deadline
    // coincide with the booked completion instant, so reactor wake-up
    // jitter must not be charged as a miss.
    if (done.time > done.deadline + 1e-9) {
      stats_.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      if (tracing()) {
        trace(trace_event(obs::EventKind::kDeadlineMiss)
                  .with("task", done.task)
                  .with("lateness", done.time - done.deadline));
      }
    }
    naming_.unregister(done.task);
    if (tracing()) {
      trace(trace_event(obs::EventKind::kTaskCompleted)
                .with("task", done.task)
                .with("missed", done.time > done.deadline + 1e-9));
    }
    note_status_change();
  }
  if (help_deadline_ != kNeverTime && now >= help_deadline_) {
    help_deadline_ = kNeverTime;
    algo_h_.note_timeout();
  }
  if (next_advert_ != kNeverTime && now >= next_advert_) {
    next_advert_ = now + config_.protocol.push_interval;
    send_advert();
  }
}

void HostRuntime::send_advert() {
  proto::PushAdvertMsg advert;
  advert.origin = config_.id;
  advert.availability = 1.0 - occupancy();
  network_.multicast(config_.id, Payload{proto::Message{advert}});
  stats_.pledges_sent.fetch_add(1, std::memory_order_relaxed);
  if (tracing()) {
    trace(trace_event(obs::EventKind::kAdvertSent)
              .with("availability", advert.availability));
  }
}

void HostRuntime::handle_advert(const proto::PushAdvertMsg& advert) {
  advert_table_.update(advert.origin, advert.availability, clock_.now(),
                       advert.security_level);
}

std::vector<NodeId> HostRuntime::candidates(SimTime now) {
  if (pull_based()) {
    pledge_list_.expire(now);
    return pledge_list_.candidates(now, tie_rng_);
  }
  std::vector<NodeId> peers;
  peers.reserve(config_.num_hosts);
  for (NodeId peer = 0; peer < config_.num_hosts; ++peer) {
    if (peer != config_.id) peers.push_back(peer);
  }
  return advert_table_.candidates(peers, tie_rng_);
}

void HostRuntime::handle(const Datagram& datagram) {
  obs::ProfileScope scope("agile/handle");
  if (const auto* arrival = std::get_if<TaskArrival>(&datagram.payload)) {
    handle_arrival(*arrival);
  } else if (const auto* transfer =
                 std::get_if<TaskTransfer>(&datagram.payload)) {
    handle_transfer(*transfer);
  } else if (const auto* spec =
                 std::get_if<SpeculativeTransfer>(&datagram.payload)) {
    handle_speculative(datagram.from, *spec);
  } else if (const auto* result =
                 std::get_if<SpeculativeResult>(&datagram.payload)) {
    handle_speculative_result(*result);
  } else if (const auto* msg =
                 std::get_if<proto::Message>(&datagram.payload)) {
    if (const auto* help = std::get_if<proto::HelpMsg>(msg)) {
      handle_help(datagram.from, *help);
    } else if (const auto* pledge = std::get_if<proto::PledgeMsg>(msg)) {
      handle_pledge(*pledge);
    } else if (const auto* advert =
                   std::get_if<proto::PushAdvertMsg>(msg)) {
      handle_advert(*advert);
    }
  }
}

void HostRuntime::handle_arrival(const TaskArrival& arrival) {
  stats_.arrivals.fetch_add(1, std::memory_order_relaxed);
  const SimTime now = clock_.now();
  const double occupancy_with_task =
      occupancy() + arrival.size_seconds / config_.queue_capacity;

  if (const auto reservation = request_admission(arrival.size_seconds)) {
    stats_.admitted_local.fetch_add(1, std::memory_order_relaxed);
    naming_.register_component(arrival.id, config_.id);
    completions_.push(PendingCompletion{reservation->completion_time,
                                        arrival.id, reservation->deadline});
    note_status_change();
  } else {
    switch (try_migrate(arrival)) {
      case MigrateStatus::kMigrated:
        stats_.admitted_migrated.fetch_add(1, std::memory_order_relaxed);
        break;
      case MigrateStatus::kRejected:
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case MigrateStatus::kInFlight:
        break;  // resolved by the SpeculativeResult
    }
  }

  maybe_send_help(now, occupancy_with_task);
}

HostRuntime::MigrateStatus HostRuntime::try_migrate(
    const TaskArrival& arrival) {
  const SimTime now = clock_.now();
  const auto candidates = this->candidates(now);
  const double fraction = arrival.size_seconds / config_.queue_capacity;

  if (config_.speculative_migration) {
    // §3 speculative migration: fire the component state at the best
    // candidate together with the admission request; the reply resolves
    // the outcome asynchronously. One try, like the paper's experiments.
    for (const NodeId target : candidates) {
      if (target == config_.id) continue;
      stats_.negotiation_calls.fetch_add(1, std::memory_order_relaxed);
      naming_.register_component(arrival.id, config_.id);
      speculations_.emplace(arrival.id, std::make_pair(target, fraction));
      SpeculativeTransfer spec;
      spec.id = arrival.id;
      spec.size_seconds = arrival.size_seconds;
      spec.decision_time = now;
      network_.deliver_reliable(config_.id, target, Payload{spec});
      return MigrateStatus::kInFlight;
    }
    return MigrateStatus::kRejected;
  }

  const auto wire_delay = clock_.to_wall(config_.network_delay);
  std::uint32_t tries = 0;
  for (const NodeId target : candidates) {
    if (tries >= config_.max_tries) break;
    if (target == config_.id) continue;
    ++tries;
    stats_.negotiation_calls.fetch_add(1, std::memory_order_relaxed);
    HostRuntime* peer = peers_(target);
    // Sequential negotiation: request leg, remote admission test, reply
    // leg — the reactor blocks exactly like a synchronous TCP exchange.
    if (config_.network_delay > 0.0) std::this_thread::sleep_for(wire_delay);
    const auto reservation =
        peer ? peer->request_admission(arrival.size_seconds) : std::nullopt;
    if (config_.network_delay > 0.0) std::this_thread::sleep_for(wire_delay);
    if (!reservation) {
      note_feedback(target, fraction, /*success=*/false);
      continue;
    }
    note_feedback(target, fraction, /*success=*/true);
    // The migration subsystem moves the (timer) component state and the
    // naming service learns the new location (§3 steps 7-9).
    naming_.register_component(arrival.id, config_.id);
    naming_.update_location(arrival.id, target);
    MigratableComponent component(arrival.id, arrival.size_seconds);
    const auto packed = component.pack();
    const auto unpacked = MigratableComponent::unpack(packed);
    REALTOR_ASSERT_MSG(unpacked.has_value(), "state serialization broke");
    TaskTransfer transfer;
    transfer.id = unpacked->id();
    transfer.size_seconds = unpacked->remaining_seconds();
    transfer.completion_time = reservation->completion_time;
    transfer.deadline = reservation->deadline;
    transfer.decision_time = now;
    network_.deliver_reliable(config_.id, target, Payload{transfer});
    return MigrateStatus::kMigrated;
  }
  return MigrateStatus::kRejected;
}

void HostRuntime::note_feedback(NodeId target, double fraction, bool success) {
  if (pull_based()) {
    if (success) {
      pledge_list_.debit(target, fraction);
      const bool uses_algo_h =
          config_.discovery != proto::ProtocolKind::kPurePull;
      if (uses_algo_h && config_.protocol.reward_policy ==
                             proto::HelpRewardPolicy::kOnMigrationSuccess) {
        algo_h_.note_success();
      }
    } else {
      pledge_list_.remove(target);  // stale pledge
    }
  } else {
    if (success) {
      advert_table_.debit(target, fraction);
    } else {
      advert_table_.invalidate(target);  // stale advertisement
    }
  }
}

void HostRuntime::record_migration_latency(SimTime decision_time) {
  const double latency = clock_.now() - decision_time;
  if (latency < 0.0) return;  // clock skew guard; model time is monotone
  stats_.migration_latency_us.fetch_add(
      static_cast<std::uint64_t>(latency * 1e6), std::memory_order_relaxed);
  stats_.migration_latency_samples.fetch_add(1, std::memory_order_relaxed);
}

void HostRuntime::handle_transfer(const TaskTransfer& transfer) {
  stats_.transfers_in.fetch_add(1, std::memory_order_relaxed);
  completions_.push(PendingCompletion{transfer.completion_time, transfer.id,
                                      transfer.deadline});
  record_migration_latency(transfer.decision_time);
  note_status_change();
}

void HostRuntime::handle_speculative(NodeId from,
                                     const SpeculativeTransfer& transfer) {
  SpeculativeResult result;
  result.id = transfer.id;
  if (const auto reservation = request_admission(transfer.size_seconds)) {
    result.accepted = true;
    stats_.transfers_in.fetch_add(1, std::memory_order_relaxed);
    completions_.push(PendingCompletion{reservation->completion_time,
                                        transfer.id, reservation->deadline});
    naming_.update_location(transfer.id, config_.id);
    record_migration_latency(transfer.decision_time);
    note_status_change();
  }
  network_.deliver_reliable(config_.id, from, Payload{result});
}

void HostRuntime::handle_speculative_result(const SpeculativeResult& result) {
  const auto it = speculations_.find(result.id);
  if (it == speculations_.end()) return;  // duplicate/stray
  const auto [target, fraction] = it->second;
  speculations_.erase(it);
  if (result.accepted) {
    stats_.admitted_migrated.fetch_add(1, std::memory_order_relaxed);
    stats_.speculative_accepted.fetch_add(1, std::memory_order_relaxed);
    note_feedback(target, fraction, /*success=*/true);
  } else {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    stats_.speculative_rejected.fetch_add(1, std::memory_order_relaxed);
    note_feedback(target, fraction, /*success=*/false);
    naming_.unregister(result.id);  // the component perished with the miss
  }
}

void HostRuntime::maybe_send_help(SimTime now, double occupancy_with_task) {
  if (!pull_based()) return;  // PUSH-based modes never solicit
  const bool gated = config_.discovery != proto::ProtocolKind::kPurePull;
  if (gated) {
    if (!algo_h_.should_send_help(now, occupancy_with_task)) return;
  } else if (occupancy_with_task < config_.protocol.help_threshold) {
    return;  // pure PULL: unlimited HELPs whenever above the threshold
  }
  proto::HelpMsg help;
  help.origin = config_.id;
  help.member_count = static_cast<std::uint32_t>(pledge_list_.size(now));
  help.urgency = std::min(
      1.0,
      std::max(0.0, occupancy_with_task - config_.protocol.help_threshold));
  current_episode_ =
      config_.episodes != nullptr ? config_.episodes->next() : 0;
  help.episode = current_episode_;
  network_.multicast(config_.id, Payload{proto::Message{help}});
  stats_.helps_sent.fetch_add(1, std::memory_order_relaxed);
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpSent)
              .with("urgency", help.urgency)
              .with("members", help.member_count)
              .with("episode", help.episode));
  }
  if (gated) {
    const SimTime timeout = algo_h_.note_help_sent(now);
    help_deadline_ = now + timeout;
  }
}

void HostRuntime::handle_help(NodeId from, const proto::HelpMsg& help) {
  (void)from;  // origin travels inside the message as well
  if (!pull_based()) return;  // not part of the PUSH schemes
  const SimTime now = clock_.now();
  const double occ = occupancy();
  const bool answered = algo_p_.should_pledge_on_help(occ);
  if (tracing()) {
    trace(trace_event(obs::EventKind::kHelpReceived)
              .with("origin", help.origin)
              .with("urgency", help.urgency)
              .with("answered", answered)
              .with("episode", help.episode));
  }
  if (!answered) return;
  if (config_.discovery == proto::ProtocolKind::kRealtor) {
    membership_.note_refresh_answered(help.origin, now);
  }
  send_pledge_to(help.origin, occ, help.episode);
}

void HostRuntime::handle_pledge(const proto::PledgeMsg& pledge) {
  if (!pull_based()) return;
  const SimTime now = clock_.now();
  const bool uses_algo_h = config_.discovery != proto::ProtocolKind::kPurePull;
  if (uses_algo_h && algo_h_.note_pledge()) {
    help_deadline_ = now + config_.protocol.help_timeout;  // reset_timer
  }
  pledge_list_.update(pledge.pledger, pledge.availability,
                      pledge.grant_probability, now, pledge.security_level);
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeReceived)
              .with("pledger", pledge.pledger)
              .with("availability", pledge.availability)
              .with("list_size", pledge_list_.held())
              .with("episode", pledge.episode));
  }
  if (uses_algo_h &&
      config_.protocol.reward_policy ==
          proto::HelpRewardPolicy::kOnFirstUsefulPledge &&
      pledge.availability > config_.protocol.availability_floor) {
    algo_h_.claim_round_reward();
  }
}

void HostRuntime::send_pledge_to(NodeId organizer, double occ,
                                 std::uint64_t episode) {
  const SimTime now = clock_.now();
  proto::PledgeMsg pledge;
  pledge.pledger = config_.id;
  pledge.availability = 1.0 - occ;
  pledge.community_count = membership_.count(now);
  pledge.grant_probability = algo_p_.grant_probability(now);
  pledge.episode = episode;
  network_.send(config_.id, organizer, Payload{proto::Message{pledge}});
  stats_.pledges_sent.fetch_add(1, std::memory_order_relaxed);
  if (tracing()) {
    trace(trace_event(obs::EventKind::kPledgeSent)
              .with("organizer", organizer)
              .with("availability", pledge.availability)
              .with("episode", episode));
  }
}

void HostRuntime::note_status_change() {
  const SimTime now = clock_.now();
  const double occ = occupancy();
  if (algo_p_.note_status(now, occ) == node::Crossing::kNone) return;
  switch (config_.discovery) {
    case proto::ProtocolKind::kRealtor:
      // Unsolicited status pledges to every joined community (Fig. 3).
      membership_.prune(now);
      for (const NodeId organizer : membership_.active_organizers(now)) {
        send_pledge_to(organizer, occ);
      }
      break;
    case proto::ProtocolKind::kAdaptivePush:
      send_advert();  // advertise the crossing to everyone
      break;
    default:
      break;  // pure PUSH is periodic; the pull schemes stay silent
  }
}

}  // namespace realtor::agile
