#include "agile/clock.hpp"

#include "common/assert.hpp"

namespace realtor::agile {
namespace {

std::chrono::steady_clock::duration::rep ticks_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

Clock::Clock(double compression)
    : compression_(compression), epoch_ticks_(ticks_now()) {
  REALTOR_ASSERT(compression_ > 0.0);
}

SimTime Clock::now() const {
  const Rep elapsed = ticks_now() - epoch_ticks_.load(std::memory_order_relaxed);
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::duration(elapsed))
          .count();
  return wall_seconds / compression_;
}

void Clock::reset_epoch() {
  epoch_ticks_.store(ticks_now(), std::memory_order_relaxed);
}

std::chrono::steady_clock::duration Clock::to_wall(
    SimTime model_seconds) const {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(model_seconds * compression_));
}

std::chrono::steady_clock::time_point Clock::wall_at(SimTime model_time) const {
  return std::chrono::steady_clock::time_point(
             std::chrono::steady_clock::duration(
                 epoch_ticks_.load(std::memory_order_relaxed))) +
         to_wall(model_time);
}

}  // namespace realtor::agile
