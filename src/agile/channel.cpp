#include "agile/channel.hpp"

#include <utility>

#include "common/assert.hpp"

namespace realtor::agile {

bool Inbox::push(Datagram datagram) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(datagram));
  }
  cv_.notify_one();
  return true;
}

std::optional<Datagram> Inbox::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    // Messages carry a propagation-delay due time; with a uniform delay
    // the FIFO head is always the earliest-due message.
    if (!queue_.empty() && queue_.front().due <= now) {
      Datagram out = std::move(queue_.front());
      queue_.pop_front();
      return out;
    }
    if (closed_ && queue_.empty()) return std::nullopt;
    if (now >= deadline) return std::nullopt;
    auto wake = deadline;
    if (!queue_.empty() && queue_.front().due < wake) {
      wake = queue_.front().due;
    }
    cv_.wait_until(lock, wake);
  }
}

std::optional<Datagram> Inbox::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  if (queue_.front().due > std::chrono::steady_clock::now()) {
    return std::nullopt;  // in flight
  }
  Datagram out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void Inbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Inbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void Inbox::reopen() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = false;
  queue_.clear();  // messages addressed to the dead incarnation are gone
}

std::size_t Inbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

DatagramNetwork::DatagramNetwork(
    NodeId num_hosts, double loss_probability, std::uint64_t seed,
    std::chrono::steady_clock::duration delivery_delay)
    : rng_(seed, "datagram-loss"),
      loss_probability_(loss_probability),
      delivery_delay_(delivery_delay) {
  REALTOR_ASSERT(num_hosts > 0);
  REALTOR_ASSERT(loss_probability_ >= 0.0 && loss_probability_ < 1.0);
  inboxes_.reserve(num_hosts);
  for (NodeId i = 0; i < num_hosts; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

bool DatagramNetwork::should_drop() {
  if (loss_probability_ <= 0.0) return false;
  std::lock_guard<std::mutex> lock(rng_mutex_);
  return rng_.bernoulli(loss_probability_);
}

void DatagramNetwork::send(NodeId from, NodeId to, Payload payload) {
  REALTOR_ASSERT(to < inboxes_.size());
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (should_drop()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto due = std::chrono::steady_clock::now() + delivery_delay_;
  if (inboxes_[to]->push(Datagram{from, to, std::move(payload), due})) {
    delivered_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DatagramNetwork::multicast(NodeId from, Payload payload) {
  for (NodeId to = 0; to < inboxes_.size(); ++to) {
    if (to == from) continue;
    send(from, to, payload);
  }
}

void DatagramNetwork::deliver_reliable(NodeId from, NodeId to,
                                       Payload payload) {
  REALTOR_ASSERT(to < inboxes_.size());
  sent_.fetch_add(1, std::memory_order_relaxed);
  const auto due = std::chrono::steady_clock::now() + delivery_delay_;
  if (inboxes_[to]->push(Datagram{from, to, std::move(payload), due})) {
    delivered_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

Inbox& DatagramNetwork::inbox(NodeId host) {
  REALTOR_ASSERT(host < inboxes_.size());
  return *inboxes_[host];
}

void DatagramNetwork::close_all() {
  for (auto& inbox : inboxes_) {
    inbox->close();
  }
}

}  // namespace realtor::agile
