#include "agile/cluster.hpp"

#include <algorithm>
#include <thread>

#include "common/assert.hpp"
#include "sim/arrivals.hpp"

namespace realtor::agile {

double ClusterMetrics::admission_probability() const {
  if (arrivals_processed == 0) return 0.0;
  return static_cast<double>(admitted_total()) /
         static_cast<double>(arrivals_processed);
}

double ClusterMetrics::migration_rate() const {
  if (admitted_total() == 0) return 0.0;
  return static_cast<double>(admitted_migrated) /
         static_cast<double>(admitted_total());
}

double ClusterMetrics::mean_migration_latency() const {
  if (migration_latency_samples == 0) return 0.0;
  return static_cast<double>(migration_latency_us) * 1e-6 /
         static_cast<double>(migration_latency_samples);
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      clock_(config.time_compression),
      network_(config.num_hosts, config.loss_probability, config.seed,
               clock_.to_wall(config.network_delay)) {
  REALTOR_ASSERT(config_.num_hosts > 0);
  hosts_.reserve(config_.num_hosts);
  const auto resolver = [this](NodeId id) -> HostRuntime* {
    return id < hosts_.size() ? hosts_[id].get() : nullptr;
  };
  for (NodeId id = 0; id < config_.num_hosts; ++id) {
    HostConfig host_config;
    host_config.id = id;
    host_config.num_hosts = config_.num_hosts;
    host_config.queue_capacity = config_.queue_capacity;
    host_config.protocol = config_.protocol;
    host_config.discovery = config_.discovery;
    host_config.max_tries = config_.max_tries;
    host_config.network_delay = config_.network_delay;
    host_config.speculative_migration = config_.speculative_migration;
    host_config.episodes = &episodes_;
    if (config_.trace_sink_factory) {
      if (obs::TraceSink* sink = config_.trace_sink_factory(id)) {
        tracers_.push_back(std::make_unique<obs::Tracer>());
        tracers_.back()->set_sink(sink);
        host_config.tracer = tracers_.back().get();
      }
    }
    hosts_.push_back(std::make_unique<HostRuntime>(
        host_config, clock_, network_, naming_, resolver));
  }
  if (config_.live) {
    LiveMonitorConfig live = *config_.live;
    live.node_count = config_.num_hosts;
    live_ = std::make_unique<LiveMonitor>(std::move(live));
  }
}

Cluster::~Cluster() {
  for (auto& host : hosts_) {
    host->stop();
  }
}

ClusterMetrics Cluster::run() {
  REALTOR_ASSERT_MSG(!ran_, "Cluster::run() is one-shot");
  ran_ = true;

  // Pre-generate the workload so the driver only sleeps and injects. A
  // generous count is truncated at model_duration.
  const std::size_t estimate = static_cast<std::size_t>(
      config_.lambda * config_.model_duration * 1.5 + 64.0);
  auto trace = sim::generate_poisson_trace(
      config_.seed, config_.lambda, config_.mean_task_size,
      config_.num_hosts, estimate);
  while (!trace.empty() && trace.back().time > config_.model_duration) {
    trace.pop_back();
  }

  // Attack timeline: (time, victim, is_kill), executed by the driver
  // between arrival injections.
  struct LifecycleEvent {
    SimTime time;
    NodeId victim;
    bool kill;
  };
  std::vector<LifecycleEvent> events;
  for (const ClusterConfig::Attack& attack : config_.attacks) {
    REALTOR_ASSERT(attack.victim < config_.num_hosts);
    events.push_back({attack.time, attack.victim, true});
    if (attack.outage > 0.0) {
      events.push_back({attack.time + attack.outage, attack.victim, false});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const LifecycleEvent& a, const LifecycleEvent& b) {
              return a.time < b.time;
            });
  std::size_t next_event = 0;
  std::uint64_t killed = 0;
  std::uint64_t restored = 0;
  const auto apply_events_until = [&](SimTime t) {
    while (next_event < events.size() && events[next_event].time <= t) {
      const LifecycleEvent& event = events[next_event++];
      std::this_thread::sleep_until(clock_.wall_at(event.time));
      if (event.kill) {
        hosts_[event.victim]->stop();
        if (config_.on_attack) {
          config_.on_attack(static_cast<std::size_t>(killed), event.time);
        }
        ++killed;
      } else {
        hosts_[event.victim]->restart();
        ++restored;
      }
    }
  };

  for (auto& host : hosts_) {
    host->start();
  }
  // Reactors are up; re-base model time so thread spawn latency does not
  // consume the experiment timeline.
  clock_.reset_epoch();
  if (live_ && live_->ok()) {
    live_->start(clock_, [this] {
      LiveMonitor::Sample s;
      for (const auto& host : hosts_) {
        const HostStats& stats = host->stats();
        s.admitted += stats.admitted_local.load(std::memory_order_relaxed) +
                      stats.admitted_migrated.load(std::memory_order_relaxed);
        s.rejected += stats.rejected.load(std::memory_order_relaxed);
        s.helps += stats.helps_sent.load(std::memory_order_relaxed);
        s.messages +=
            stats.helps_sent.load(std::memory_order_relaxed) +
            stats.pledges_sent.load(std::memory_order_relaxed) +
            stats.negotiation_calls.load(std::memory_order_relaxed);
        s.episodes_closed +=
            stats.migration_latency_samples.load(std::memory_order_relaxed);
        s.latency_sum +=
            static_cast<double>(
                stats.migration_latency_us.load(std::memory_order_relaxed)) *
            1e-6;
        if (host->running()) ++s.nodes_alive;
      }
      s.episodes_issued = episodes_.issued();
      return s;
    });
  }

  for (const sim::Arrival& arrival : trace) {
    apply_events_until(arrival.time);
    std::this_thread::sleep_until(clock_.wall_at(arrival.time));
    TaskArrival task;
    task.id = arrival.id;
    task.size_seconds = arrival.size_seconds;
    task.injected_at = arrival.time;
    network_.deliver_reliable(arrival.node, arrival.node, Payload{task});
  }
  apply_events_until(config_.model_duration + config_.drain);

  std::this_thread::sleep_until(
      clock_.wall_at(config_.model_duration + config_.drain));

  if (live_) live_->stop();  // final sample before hosts stop
  ClusterMetrics metrics = aggregate(trace.size());
  metrics.hosts_killed = killed;
  metrics.hosts_restored = restored;

  for (auto& host : hosts_) {
    host->stop();
  }
  return metrics;
}

ClusterMetrics Cluster::aggregate(std::uint64_t generated) const {
  ClusterMetrics m;
  m.generated = generated;
  for (const auto& host : hosts_) {
    const HostStats& s = host->stats();
    m.arrivals_processed += s.arrivals.load();
    m.admitted_local += s.admitted_local.load();
    m.admitted_migrated += s.admitted_migrated.load();
    m.rejected += s.rejected.load();
    m.transfers += s.transfers_in.load();
    m.completions += s.completions.load();
    m.deadline_misses += s.deadline_misses.load();
    m.helps += s.helps_sent.load();
    m.pledges += s.pledges_sent.load();
    m.negotiations += s.negotiation_calls.load();
    m.speculative_accepted += s.speculative_accepted.load();
    m.speculative_rejected += s.speculative_rejected.load();
    m.migration_latency_us += s.migration_latency_us.load();
    m.migration_latency_samples += s.migration_latency_samples.load();
  }
  m.naming_updates = naming_.updates();
  m.datagrams_sent = network_.sent();
  m.datagrams_dropped = network_.dropped();
  return m;
}

}  // namespace realtor::agile
