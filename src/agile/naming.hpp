// The Agile Object Naming Service (§3, Fig. 1): tracks where each
// migratable component currently lives. "The naming service is updated to
// reflect the new location of the component." Thread-safe: every host
// runtime and the migration path update it concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"

namespace realtor::agile {

class NamingService {
 public:
  /// Registers a newly instantiated component at `host`.
  void register_component(TaskId component, NodeId host);

  /// Re-binds a component after migration; no-op warning-free if the
  /// component already unregistered (it may have completed mid-flight).
  void update_location(TaskId component, NodeId host);

  /// Removes a completed (expired) component.
  void unregister(TaskId component);

  std::optional<NodeId> lookup(TaskId component) const;

  std::size_t size() const;
  std::uint64_t updates() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<TaskId, NodeId> locations_;
  std::uint64_t updates_ = 0;
};

}  // namespace realtor::agile
