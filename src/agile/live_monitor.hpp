// Wall-clock live telemetry for the threaded agile runtime.
//
// The simulation's live plane (obs/live/live_plane.hpp) is tick-driven by
// trace events and therefore deterministic. The agile testbed has no such
// luxury: twenty reactor threads bump atomic counters in real time. The
// LiveMonitor closes the gap by sampling those counters from its own
// wall-clock thread at a model-time cadence, feeding the *same* window
// and rule machinery (obs/live/window.hpp, obs/live/rules.hpp), and
// writing the same Prometheus-text exposition. Alert semantics match the
// simulation plane; only the evidence differs — counter deltas per
// sampling interval instead of individual trace events, so:
//
//   - admission decisions within one interval enter the decision window
//     admitted-first (their true interleaving is unobservable);
//   - episode latency quantiles are fed the interval's mean migration
//     latency (HostStats keeps a sum, not per-episode values);
//   - open_episodes is issued minus decided, an upper bound.
//
// Firings are wall-clock sampled and therefore advisory, not replayable —
// the determinism guarantee belongs to the simulation plane alone.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "agile/clock.hpp"
#include "common/types.hpp"
#include "obs/live/rules.hpp"
#include "obs/live/window.hpp"

namespace realtor::agile {

struct LiveMonitorConfig {
  /// Exposition destination: a file path (rewritten in place per snapshot
  /// so it always holds the latest scrape), "-" (stdout, appending), or
  /// empty (no file — snapshots still accumulate in exposition()).
  std::string out;
  /// Model seconds between samples (converted to wall time by the
  /// cluster's Clock).
  double cadence = 1.0;
  /// Time-window span in model seconds for rate/latency signals.
  double window = 30.0;
  /// Ring buckets per time window.
  std::size_t buckets = 6;
  /// Count window (decisions) for admission signals.
  std::size_t decision_window = 50;
  /// Per-bucket quantile reservoir for the latency window.
  std::size_t latency_reservoir = 256;
  /// Rule specs (obs/live/rules.hpp grammar). Empty = defaults.
  std::vector<std::string> rules;
  /// Host count for the nodes_alive gauge denominator.
  std::uint64_t node_count = 0;
};

/// Samples the cluster's atomics on a wall-clock thread and evaluates the
/// shared live-alert rule set. One monitor per Cluster::run().
class LiveMonitor {
 public:
  /// Cumulative counters at one sampling instant (the monitor diffs
  /// consecutive samples itself).
  struct Sample {
    SimTime now = 0.0;  // model time; stamped by the monitor in thread mode
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t helps = 0;
    /// All protocol sends: helps + pledges + negotiation calls.
    std::uint64_t messages = 0;
    /// Closed discovery episodes (migration latency samples).
    std::uint64_t episodes_closed = 0;
    /// Total migration latency over the closed episodes, model seconds.
    double latency_sum = 0.0;
    std::int64_t nodes_alive = 0;
    std::uint64_t episodes_issued = 0;
  };
  using Sampler = std::function<Sample()>;
  using AlertListener = std::function<void(
      const obs::live::AlertRule& rule, bool firing, SimTime time,
      double value)>;

  explicit LiveMonitor(LiveMonitorConfig config);
  ~LiveMonitor();
  LiveMonitor(const LiveMonitor&) = delete;
  LiveMonitor& operator=(const LiveMonitor&) = delete;

  /// False when a rule failed to parse; error() explains.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  void set_alert_listener(AlertListener listener);

  /// Spawns the sampling thread: every `cadence` model seconds it calls
  /// `sampler`, evaluates rules, and writes a snapshot. `clock` must
  /// outlive the monitor.
  void start(const Clock& clock, Sampler sampler);
  /// Takes one final sample, writes the final snapshot, joins the thread.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Direct-drive mode for tests: feed one cumulative sample (no thread).
  void observe(const Sample& sample);

  // Introspection (thread-safe after stop(); racy but safe during a run).
  std::uint64_t snapshots() const;
  std::uint64_t alerts_fired() const;
  bool alert_firing(const std::string& name) const;
  /// Concatenated snapshot history (same text as the `out` target's
  /// latest snapshot, but never truncated).
  std::string exposition() const;

 private:
  struct RuleState {
    obs::live::AlertRule rule;
    bool firing = false;
    double last_value = 0.0;
    std::optional<obs::live::TailWindow> tail;
    std::optional<obs::live::SlidingWindow> sliding;
  };

  void ingest_locked(const Sample& sample, bool final_sample);
  double evaluate_locked(RuleState& state, SimTime now,
                         double* effective_bound);
  void write_snapshot_locked(SimTime now, bool final_sample);
  void run_loop(const Clock* clock);

  LiveMonitorConfig config_;
  bool ok_ = true;
  std::string error_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool stopped_ = true;
  Sampler sampler_;
  AlertListener alert_listener_;

  std::vector<RuleState> rules_;
  obs::live::TailWindow decisions_;
  obs::live::SlidingWindow helps_;
  obs::live::SlidingWindow messages_;
  obs::live::SlidingWindow rejections_;
  obs::live::SlidingWindow episode_latency_;

  bool have_prev_ = false;
  Sample prev_;
  std::uint64_t decisions_total_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t alerts_fired_ = 0;

  std::string text_;
  bool to_stdout_ = false;
};

}  // namespace realtor::agile
