// Migratable component: the §6 experiment "implement[s] each task as a
// timer waiting to expire", so the transferable state is exactly the
// un-expired time. pack()/unpack() model the state serialization the
// migration subsystem performs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace realtor::agile {

class MigratableComponent {
 public:
  MigratableComponent() = default;
  MigratableComponent(TaskId id, double remaining_seconds)
      : id_(id), remaining_(remaining_seconds) {}

  TaskId id() const { return id_; }
  double remaining_seconds() const { return remaining_; }

  /// Serialized wire image (fixed-size: id + remaining time).
  static constexpr std::size_t kPackedSize =
      sizeof(TaskId) + sizeof(double);
  std::array<std::byte, kPackedSize> pack() const;

  /// Rebuilds a component from its wire image; nullopt on a corrupt image
  /// (negative remaining time).
  static std::optional<MigratableComponent> unpack(
      const std::array<std::byte, kPackedSize>& bytes);

 private:
  TaskId id_ = 0;
  double remaining_ = 0.0;
};

}  // namespace realtor::agile
