#include "agile/component.hpp"

#include <cstring>

namespace realtor::agile {

std::array<std::byte, MigratableComponent::kPackedSize>
MigratableComponent::pack() const {
  std::array<std::byte, kPackedSize> out{};
  std::memcpy(out.data(), &id_, sizeof(id_));
  std::memcpy(out.data() + sizeof(id_), &remaining_, sizeof(remaining_));
  return out;
}

std::optional<MigratableComponent> MigratableComponent::unpack(
    const std::array<std::byte, kPackedSize>& bytes) {
  TaskId id = 0;
  double remaining = 0.0;
  std::memcpy(&id, bytes.data(), sizeof(id));
  std::memcpy(&remaining, bytes.data() + sizeof(id), sizeof(remaining));
  if (!(remaining >= 0.0)) return std::nullopt;  // also rejects NaN
  return MigratableComponent(id, remaining);
}

}  // namespace realtor::agile
