// The Fig. 9 testbed: N HostRuntimes (paper: 20 Linux workstations) plus a
// workload driver that replays a Poisson trace in compressed wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "agile/channel.hpp"
#include "agile/clock.hpp"
#include "agile/host_runtime.hpp"
#include "agile/live_monitor.hpp"
#include "agile/naming.hpp"
#include "common/types.hpp"
#include "proto/config.hpp"

namespace realtor::agile {

struct ClusterConfig {
  NodeId num_hosts = 20;
  double queue_capacity = 50.0;  // Fig. 9: queue_size = 50
  proto::ProtocolConfig protocol;
  /// Discovery scheme spoken by every host (paper's measurement: REALTOR).
  proto::ProtocolKind discovery = proto::ProtocolKind::kRealtor;
  std::uint32_t max_tries = 1;

  /// Workload (matches the simulation scenario, §6: "the experiment
  /// scenario remains the same as in the simulation").
  double lambda = 4.0;
  double mean_task_size = 5.0;
  SimTime model_duration = 60.0;

  /// Wall seconds per model second (0.005 -> 200x faster than real time).
  double time_compression = 0.005;
  /// UDP-like loss applied to HELP/PLEDGE datagrams.
  double loss_probability = 0.0;
  /// One-way propagation delay in model seconds (applies to datagrams and
  /// to each leg of the sequential negotiation RPC).
  SimTime network_delay = 0.0;
  /// §3 speculative migration (state ships with the admission request).
  bool speculative_migration = false;
  /// Model seconds to keep the cluster alive after the last arrival so
  /// in-flight negotiations and transfers settle.
  SimTime drain = 5.0;

  std::uint64_t seed = 42;

  /// Attack schedule: `victim` is stopped at `time` and (outage > 0)
  /// restarted cold at `time + outage` by the workload driver.
  struct Attack {
    SimTime time = 0.0;
    NodeId victim = kInvalidNode;
    SimTime outage = 0.0;
  };
  std::vector<Attack> attacks;

  /// Per-host trace sink factory. Called once per host at construction;
  /// the returned sink is borrowed (must outlive the cluster) and receives
  /// that host's events from its reactor thread — a flight-recorder ring
  /// per host, or one shared thread-safe JsonlSink returned for every id.
  /// nullptr results are fine (that host stays untraced); unset (default)
  /// disables tracing entirely.
  std::function<obs::TraceSink*(NodeId)> trace_sink_factory;

  /// Driver hook fired right after each attack kill lands, before the
  /// next injection — the demo uses it to dump flight rings while the
  /// pre-attack window is still in memory. attack_index counts kills in
  /// schedule order.
  std::function<void(std::size_t attack_index, SimTime time)> on_attack;

  /// Wall-clock live telemetry: when set, Cluster::run() starts a
  /// LiveMonitor that samples the hosts' atomic counters every
  /// live->cadence model seconds, evaluates the shared alert-rule set,
  /// and writes Prometheus-text snapshots to live->out. node_count is
  /// filled in from num_hosts automatically.
  std::optional<LiveMonitorConfig> live;
};

struct ClusterMetrics {
  std::uint64_t generated = 0;
  std::uint64_t arrivals_processed = 0;
  std::uint64_t admitted_local = 0;
  std::uint64_t admitted_migrated = 0;
  std::uint64_t rejected = 0;
  std::uint64_t transfers = 0;
  std::uint64_t completions = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t helps = 0;
  std::uint64_t pledges = 0;
  std::uint64_t negotiations = 0;
  std::uint64_t naming_updates = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t speculative_accepted = 0;
  std::uint64_t speculative_rejected = 0;
  std::uint64_t hosts_killed = 0;
  std::uint64_t hosts_restored = 0;
  std::uint64_t migration_latency_us = 0;
  std::uint64_t migration_latency_samples = 0;

  std::uint64_t admitted_total() const {
    return admitted_local + admitted_migrated;
  }
  /// Fig. 9 y-axis.
  double admission_probability() const;
  double migration_rate() const;
  /// Mean decision-to-registered migration latency in model seconds.
  double mean_migration_latency() const;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs the whole experiment: spawns host reactors, replays the trace in
  /// compressed wall time, drains, stops everything and aggregates.
  /// Blocking; one-shot.
  ClusterMetrics run();

  HostRuntime& host(NodeId id) { return *hosts_[id]; }
  const NamingService& naming() const { return naming_; }
  /// Discovery episodes opened across all hosts (atomic; see
  /// obs::EpisodeSource).
  const obs::EpisodeSource& episodes() const { return episodes_; }
  /// The wall-clock telemetry monitor; nullptr unless ClusterConfig::live
  /// was set. Valid for introspection after run() returns.
  LiveMonitor* live() { return live_.get(); }

 private:
  ClusterMetrics aggregate(std::uint64_t generated) const;

  ClusterConfig config_;
  Clock clock_;
  DatagramNetwork network_;
  NamingService naming_;
  obs::EpisodeSource episodes_;
  /// One tracer per host (stable addresses: HostConfig borrows them),
  /// each pointing at the factory-provided sink. Empty when untraced.
  std::vector<std::unique_ptr<obs::Tracer>> tracers_;
  std::vector<std::unique_ptr<HostRuntime>> hosts_;
  std::unique_ptr<LiveMonitor> live_;
  bool ran_ = false;
};

}  // namespace realtor::agile
