// Wall-clock abstraction for the threaded Agile Objects runtime.
//
// The paper's §6 measurement ran for real seconds on 20 Pentium-II hosts.
// Our in-process cluster compresses time: one *model* second shrinks to
// `compression` wall seconds, so a Fig. 9 sweep finishes in seconds while
// the code path (threads, channels, timers) stays the real concurrent one.
#pragma once

#include <atomic>
#include <chrono>

#include "common/types.hpp"

namespace realtor::agile {

class Clock {
 public:
  /// `compression`: wall seconds per model second (e.g. 0.01 runs 100x
  /// faster than real time; 1.0 is real time).
  explicit Clock(double compression = 1.0);

  /// Model seconds since the epoch (construction or last reset).
  SimTime now() const;

  /// Re-bases model time 0 at the current instant. Thread-safe; used by
  /// the cluster driver after all host reactors have spawned so thread
  /// startup latency does not eat into the experiment timeline.
  void reset_epoch();

  /// Converts a model-time duration to the wall duration to sleep/wait.
  std::chrono::steady_clock::duration to_wall(SimTime model_seconds) const;

  /// Wall instant at which the model clock reads `model_time`.
  std::chrono::steady_clock::time_point wall_at(SimTime model_time) const;

  double compression() const { return compression_; }

 private:
  using Rep = std::chrono::steady_clock::duration::rep;

  double compression_;
  std::atomic<Rep> epoch_ticks_;
};

}  // namespace realtor::agile
