#include "agile/naming.hpp"

namespace realtor::agile {

void NamingService::register_component(TaskId component, NodeId host) {
  std::lock_guard<std::mutex> lock(mutex_);
  locations_[component] = host;
}

void NamingService::update_location(TaskId component, NodeId host) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = locations_.find(component);
  if (it == locations_.end()) return;
  it->second = host;
  ++updates_;
}

void NamingService::unregister(TaskId component) {
  std::lock_guard<std::mutex> lock(mutex_);
  locations_.erase(component);
}

std::optional<NodeId> NamingService::lookup(TaskId component) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = locations_.find(component);
  if (it == locations_.end()) return std::nullopt;
  return it->second;
}

std::size_t NamingService::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return locations_.size();
}

std::uint64_t NamingService::updates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return updates_;
}

}  // namespace realtor::agile
