// One Agile Objects host: a reactor thread running the REALTOR protocol
// over the in-process channels, a bounded work queue measured in seconds,
// a Constant Utilization Server assigning EDF deadlines, and a thread-safe
// admission RPC (the paper's TCP negotiation between Admission Controls).
//
// Threading model (guides CP.2/CP.3): all protocol soft state is confined
// to the reactor thread; the only shared mutable state is the admission
// account (mutex), the per-host statistics (atomics), and the channels.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "agile/channel.hpp"
#include "agile/clock.hpp"
#include "agile/naming.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"
#include "proto/algorithm_h.hpp"
#include "proto/algorithm_p.hpp"
#include "proto/availability_table.hpp"
#include "proto/community.hpp"
#include "proto/config.hpp"
#include "proto/factory.hpp"
#include "proto/pledge_list.hpp"
#include "sched/cus.hpp"

namespace realtor::agile {

struct HostConfig {
  NodeId id = 0;
  /// Total hosts in the cluster (push-based modes advertise to everyone).
  NodeId num_hosts = 1;
  /// Fig. 9 uses queue_size = 50 (half the simulation's 100).
  double queue_capacity = 50.0;
  proto::ProtocolConfig protocol;
  /// Which discovery scheme this runtime speaks. The paper's measurement
  /// runs REALTOR; the other four make Fig. 9 a measured comparison.
  proto::ProtocolKind discovery = proto::ProtocolKind::kRealtor;
  /// Candidates tried per migration (paper: one-time try).
  std::uint32_t max_tries = 1;
  /// One-way propagation delay in model seconds; charged on the two RPC
  /// legs of a sequential migration (the datagram network delays the
  /// transfer itself).
  SimTime network_delay = 0.0;
  /// §3 speculative migration: ship the component state together with the
  /// admission request instead of after the negotiation.
  bool speculative_migration = false;
  /// Optional borrowed tracer. Reactor threads emit concurrently, so the
  /// attached sink must be thread-safe (JsonlSink is; MemorySink is not).
  obs::Tracer* tracer = nullptr;
  /// Optional cluster-shared allocator of discovery-episode ids (atomic;
  /// safe across reactor threads). nullptr = episodes disabled (all 0).
  obs::EpisodeSource* episodes = nullptr;
};

/// Concurrency-safe counters; snapshot with relaxed loads after the run.
struct HostStats {
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> admitted_local{0};
  std::atomic<std::uint64_t> admitted_migrated{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> transfers_in{0};
  std::atomic<std::uint64_t> completions{0};
  std::atomic<std::uint64_t> deadline_misses{0};
  std::atomic<std::uint64_t> helps_sent{0};
  std::atomic<std::uint64_t> pledges_sent{0};
  std::atomic<std::uint64_t> negotiation_calls{0};
  std::atomic<std::uint64_t> speculative_accepted{0};
  std::atomic<std::uint64_t> speculative_rejected{0};
  /// Decision-to-registered migration latency, accumulated at the
  /// *destination* in model microseconds (mean = sum / count).
  std::atomic<std::uint64_t> migration_latency_us{0};
  std::atomic<std::uint64_t> migration_latency_samples{0};
};

class HostRuntime {
 public:
  /// Resolves a peer id to its runtime for the admission RPC; returns
  /// nullptr for unknown/down peers.
  using PeerResolver = std::function<HostRuntime*(NodeId)>;

  /// Granted reservation from the admission RPC: the work is booked, the
  /// CUS deadline assigned; the component state must follow via
  /// TaskTransfer.
  struct Reservation {
    SimTime completion_time = 0.0;
    SimTime deadline = 0.0;
  };

  HostRuntime(const HostConfig& config, const Clock& clock,
              DatagramNetwork& network, NamingService& naming,
              PeerResolver peers);
  ~HostRuntime();
  HostRuntime(const HostRuntime&) = delete;
  HostRuntime& operator=(const HostRuntime&) = delete;

  void start();
  void stop();

  /// Restarts a stopped host with cold protocol state (recovery after an
  /// attack outage): empty pledge list, no memberships, reset Algorithm H,
  /// empty queue. Resident components of the previous incarnation are
  /// lost, exactly like a killed machine.
  void restart();

  NodeId id() const { return config_.id; }

  /// Thread-safe admission RPC (callable from any host's reactor): books
  /// `size_seconds` of work if it fits the queue, assigns the CUS/EDF
  /// deadline, and returns the reservation.
  std::optional<Reservation> request_admission(double size_seconds);

  /// Current queue occupancy in [0, 1]; thread-safe.
  double occupancy() const;

  /// True while the reactor thread is serving (false between stop() and
  /// restart()); thread-safe. The live monitor's nodes_alive gauge.
  bool running() const { return running_.load(std::memory_order_relaxed); }

  const HostStats& stats() const { return stats_; }

 private:
  struct PendingCompletion {
    SimTime time = 0.0;
    TaskId task = 0;
    SimTime deadline = 0.0;
    bool operator>(const PendingCompletion& other) const {
      return time > other.time;
    }
  };

  enum class MigrateStatus { kMigrated, kRejected, kInFlight };

  void reactor();
  void handle(const Datagram& datagram);
  void handle_arrival(const TaskArrival& arrival);
  void handle_transfer(const TaskTransfer& transfer);
  void handle_speculative(NodeId from, const SpeculativeTransfer& transfer);
  void handle_speculative_result(const SpeculativeResult& result);
  void handle_help(NodeId from, const proto::HelpMsg& help);
  void handle_pledge(const proto::PledgeMsg& pledge);
  void handle_advert(const proto::PushAdvertMsg& advert);
  MigrateStatus try_migrate(const TaskArrival& arrival);
  void note_feedback(NodeId target, double fraction, bool success);
  void record_migration_latency(SimTime decision_time);
  void send_advert();
  std::vector<NodeId> candidates(SimTime now);
  bool pull_based() const;
  void maybe_send_help(SimTime now, double occupancy_with_task);
  /// `episode` echoes the solicited HELP round; 0 for unsolicited pledges.
  void send_pledge_to(NodeId organizer, double occ, std::uint64_t episode = 0);
  void note_status_change();
  void process_due(SimTime now);
  bool tracing() const {
    return config_.tracer != nullptr && config_.tracer->active();
  }
  obs::TraceEvent trace_event(obs::EventKind kind) const {
    return obs::TraceEvent(clock_.now(), config_.id, kind);
  }
  void trace(const obs::TraceEvent& event) const {
    config_.tracer->emit(event);
  }

  HostConfig config_;
  const Clock& clock_;
  DatagramNetwork& network_;
  NamingService& naming_;
  PeerResolver peers_;

  // Shared admission state (RPC from peer reactors + local admits).
  mutable std::mutex admit_mutex_;
  SimTime finish_time_ = 0.0;  // instant all booked work completes
  sched::ConstantUtilizationServer cus_{1.0};

  // Reactor-confined protocol state.
  proto::AlgorithmH algo_h_;
  proto::AlgorithmP algo_p_;
  proto::PledgeList pledge_list_;
  proto::CommunityMembership membership_;
  proto::AvailabilityTable advert_table_;  // push-based modes
  RngStream tie_rng_;
  SimTime help_deadline_ = kNeverTime;
  /// Reactor-confined: id of the last HELP round this host opened.
  std::uint64_t current_episode_ = 0;
  SimTime next_advert_ = kNeverTime;  // pure PUSH period
  /// Outstanding speculative migrations: component -> (target, capacity
  /// fraction), resolved by SpeculativeResult.
  std::unordered_map<TaskId, std::pair<NodeId, double>> speculations_;
  std::priority_queue<PendingCompletion, std::vector<PendingCompletion>,
                      std::greater<PendingCompletion>>
      completions_;

  HostStats stats_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace realtor::agile
