// In-process message channels standing in for the paper's transports:
// "REALTOR uses IP multicasting for HELP messages and UDP for PLEDGE
// messages" (§6). Datagram sends are fire-and-forget with configurable
// loss; task transfers ride the reliable path (the paper uses TCP for the
// admission negotiation and the migration subsystem for state transfer).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/message.hpp"

namespace realtor::agile {

/// Workload injection: a task (timer component, §6) arriving at a host.
struct TaskArrival {
  TaskId id = 0;
  double size_seconds = 0.0;
  SimTime injected_at = 0.0;
};

/// A migrating component's state, already admitted at the destination via
/// the admission RPC: "the only state of the task is the current value of
/// un-expired time" (§6).
struct TaskTransfer {
  TaskId id = 0;
  double size_seconds = 0.0;
  /// Completion instant reserved by the destination's admission RPC.
  SimTime completion_time = 0.0;
  /// EDF deadline assigned by the destination's Constant Utilization
  /// Server at reservation time.
  SimTime deadline = 0.0;
  /// Model instant the origin decided to migrate (latency measurement).
  SimTime decision_time = 0.0;
};

/// Speculative migration (§3): the component state travels *with* the
/// admission request instead of after it — "the migration of the component
/// can happen concurrently to the negotiation ... thus enabling very
/// low-latency migration". The destination books or refuses on receipt.
struct SpeculativeTransfer {
  TaskId id = 0;
  double size_seconds = 0.0;
  SimTime decision_time = 0.0;
};

/// Destination's verdict on a speculative transfer.
struct SpeculativeResult {
  TaskId id = 0;
  bool accepted = false;
};

using Payload = std::variant<proto::Message, TaskArrival, TaskTransfer,
                             SpeculativeTransfer, SpeculativeResult>;

struct Datagram {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Payload payload;
  /// Earliest wall instant the message may be handed to the receiver
  /// (propagation-delay model; default: immediately deliverable).
  std::chrono::steady_clock::time_point due{};
};

/// MPSC mailbox with timed blocking pop; close() releases all waiters.
class Inbox {
 public:
  /// Returns false when the inbox is closed (message discarded).
  bool push(Datagram datagram);

  /// Pops the next datagram, blocking until `deadline`. Returns nullopt on
  /// timeout or when closed with an empty queue.
  std::optional<Datagram> pop_until(
      std::chrono::steady_clock::time_point deadline);

  std::optional<Datagram> try_pop();

  void close();
  bool closed() const;

  /// Reopens a closed inbox with an empty queue (host restart after an
  /// attack outage).
  void reopen();

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Datagram> queue_;
  bool closed_ = false;
};

/// The shared medium: one inbox per host, lossy datagram semantics, a
/// lossless path for negotiated transfers, and a broadcast group.
class DatagramNetwork {
 public:
  /// `delivery_delay`: one-way propagation delay applied to every message
  /// (wall-clock units; the cluster converts its model delay through the
  /// time-compression factor).
  DatagramNetwork(NodeId num_hosts, double loss_probability,
                  std::uint64_t seed,
                  std::chrono::steady_clock::duration delivery_delay =
                      std::chrono::steady_clock::duration::zero());

  /// UDP-like: may silently drop the message.
  void send(NodeId from, NodeId to, Payload payload);

  /// IP-multicast-like: delivered to every host except the sender, each
  /// copy subject to independent loss.
  void multicast(NodeId from, Payload payload);

  /// Lossless in-order delivery (negotiated transfers, workload driver).
  void deliver_reliable(NodeId from, NodeId to, Payload payload);

  Inbox& inbox(NodeId host);

  void close_all();

  std::uint64_t sent() const { return sent_.load(); }
  std::uint64_t delivered() const { return delivered_.load(); }
  std::uint64_t dropped() const { return dropped_.load(); }

 private:
  bool should_drop();

  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::mutex rng_mutex_;
  RngStream rng_;
  double loss_probability_;
  std::chrono::steady_clock::duration delivery_delay_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace realtor::agile
