#include "agile/live_monitor.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/format.hpp"

namespace realtor::agile {

using obs::live::AlertRule;
using obs::live::RuleSignal;
using obs::live::WindowSnapshot;

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_label_escaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

double signal_quantile(RuleSignal signal) {
  switch (signal) {
    case RuleSignal::kEpisodeP50:
      return 0.50;
    case RuleSignal::kEpisodeP90:
      return 0.90;
    default:
      return 0.99;
  }
}

std::uint64_t delta(std::uint64_t now, std::uint64_t before) {
  return now > before ? now - before : 0;
}

}  // namespace

LiveMonitor::LiveMonitor(LiveMonitorConfig config)
    : config_(std::move(config)),
      decisions_(config_.decision_window),
      helps_(config_.window, config_.buckets),
      messages_(config_.window, config_.buckets),
      rejections_(config_.window, config_.buckets),
      episode_latency_(config_.window, config_.buckets,
                       config_.latency_reservoir) {
  std::vector<std::string> specs =
      config_.rules.empty() ? obs::live::default_alert_rules() : config_.rules;
  for (const std::string& spec : specs) {
    AlertRule rule;
    std::string parse_error;
    if (!obs::live::parse_alert_rule(spec, rule, &parse_error)) {
      ok_ = false;
      error_ = parse_error;
      return;
    }
    RuleState state;
    state.rule = rule;
    if (obs::live::signal_count_windowed(rule.signal)) {
      const std::size_t n = rule.window > 0.0
                                ? static_cast<std::size_t>(rule.window)
                                : config_.decision_window;
      state.tail.emplace(n);
    } else if (obs::live::signal_rated(rule.signal) ||
               rule.signal == RuleSignal::kEpisodeP50 ||
               rule.signal == RuleSignal::kEpisodeP90 ||
               rule.signal == RuleSignal::kEpisodeP99) {
      const double span = rule.window > 0.0 ? rule.window : config_.window;
      const bool quantile = !obs::live::signal_rated(rule.signal);
      state.sliding.emplace(span, config_.buckets,
                            quantile ? config_.latency_reservoir : 0);
    }
    rules_.push_back(std::move(state));
  }
  to_stdout_ = config_.out == "-";
}

LiveMonitor::~LiveMonitor() { stop(); }

void LiveMonitor::set_alert_listener(AlertListener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  alert_listener_ = std::move(listener);
}

void LiveMonitor::start(const Clock& clock, Sampler sampler) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_ || !stopped_ || config_.cadence <= 0.0) return;
  sampler_ = std::move(sampler);
  stop_requested_ = false;
  stopped_ = false;
  thread_ = std::thread([this, &clock] { run_loop(&clock); });
}

void LiveMonitor::run_loop(const Clock* clock) {
  std::uint64_t tick = 1;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const SimTime target = static_cast<double>(tick) * config_.cadence;
    // wall_at() pins the schedule to the model epoch, so sampling drift
    // never accumulates even when a sample runs long.
    if (cv_.wait_until(lock, clock->wall_at(target),
                       [this] { return stop_requested_; })) {
      return;  // stop() takes the final sample itself
    }
    Sample sample = sampler_();
    sample.now = clock->now();
    ingest_locked(sample, /*final_sample=*/false);
    ++tick;
  }
}

void LiveMonitor::stop() {
  Sampler final_sampler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    final_sampler = sampler_;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  if (final_sampler) {
    Sample sample = final_sampler();
    if (sample.now <= prev_.now) sample.now = prev_.now + config_.cadence;
    ingest_locked(sample, /*final_sample=*/true);
  }
}

void LiveMonitor::observe(const Sample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  ingest_locked(sample, /*final_sample=*/false);
}

void LiveMonitor::ingest_locked(const Sample& sample, bool final_sample) {
  const SimTime now = sample.now;
  const Sample prev = have_prev_ ? prev_ : Sample{};

  // Decisions enter the count windows admitted-first: their true
  // interleaving inside one sampling interval is unobservable.
  const std::uint64_t d_admit = delta(sample.admitted, prev.admitted);
  const std::uint64_t d_reject = delta(sample.rejected, prev.rejected);
  for (std::uint64_t i = 0; i < d_admit; ++i) {
    decisions_.observe(1.0);
    for (RuleState& state : rules_) {
      if (state.tail) state.tail->observe(1.0);
    }
  }
  for (std::uint64_t i = 0; i < d_reject; ++i) {
    decisions_.observe(0.0);
    for (RuleState& state : rules_) {
      if (state.tail) state.tail->observe(0.0);
    }
  }
  decisions_total_ += d_admit + d_reject;

  const auto feed_rate = [&](obs::live::SlidingWindow& window,
                             std::uint64_t occurrences) {
    for (std::uint64_t i = 0; i < occurrences; ++i) window.count(now);
  };
  const std::uint64_t d_helps = delta(sample.helps, prev.helps);
  const std::uint64_t d_messages = delta(sample.messages, prev.messages);
  feed_rate(helps_, d_helps);
  feed_rate(messages_, d_messages);
  feed_rate(rejections_, d_reject);
  for (RuleState& state : rules_) {
    if (!state.sliding || !obs::live::signal_rated(state.rule.signal)) {
      continue;
    }
    feed_rate(*state.sliding,
              state.rule.signal == RuleSignal::kHelpRate      ? d_helps
              : state.rule.signal == RuleSignal::kMessageRate ? d_messages
                                                              : d_reject);
  }

  // Episode latency: HostStats keeps sum and count, not per-episode
  // values, so the interval's closures all contribute its mean.
  const std::uint64_t d_closed =
      delta(sample.episodes_closed, prev.episodes_closed);
  if (d_closed > 0) {
    const double mean_latency =
        (sample.latency_sum - prev.latency_sum) /
        static_cast<double>(d_closed);
    for (std::uint64_t i = 0; i < d_closed; ++i) {
      episode_latency_.observe(now, mean_latency);
      for (RuleState& state : rules_) {
        if (state.sliding && !obs::live::signal_rated(state.rule.signal)) {
          state.sliding->observe(now, mean_latency);
        }
      }
    }
  }

  prev_ = sample;
  have_prev_ = true;

  helps_.advance(now);
  messages_.advance(now);
  rejections_.advance(now);
  episode_latency_.advance(now);

  for (RuleState& state : rules_) {
    double effective_bound = 0.0;
    const double value = evaluate_locked(state, now, &effective_bound);
    state.last_value = value;
    const bool holds =
        obs::live::compare(state.rule.op, value, effective_bound);
    if (holds == state.firing) continue;
    state.firing = holds;
    if (holds) ++alerts_fired_;
    if (alert_listener_) alert_listener_(state.rule, holds, now, value);
  }

  ++snapshots_;
  write_snapshot_locked(now, final_sample);
}

double LiveMonitor::evaluate_locked(RuleState& state, SimTime now,
                                    double* effective_bound) {
  const AlertRule& rule = state.rule;
  *effective_bound = rule.bound;
  switch (rule.signal) {
    case RuleSignal::kAdmissionProbability: {
      const WindowSnapshot snap = state.tail->snapshot();
      return snap.count > 0 ? snap.mean() : 1.0;
    }
    case RuleSignal::kAdmissionBurn: {
      const WindowSnapshot snap = state.tail->snapshot();
      const double admission = snap.count > 0 ? snap.mean() : 1.0;
      return (1.0 - admission) / (1.0 - rule.param);
    }
    case RuleSignal::kHelpRate:
    case RuleSignal::kMessageRate:
    case RuleSignal::kRejectionRate: {
      state.sliding->advance(now);
      if (rule.relative) {
        const std::uint64_t total =
            rule.signal == RuleSignal::kHelpRate ? prev_.helps
            : rule.signal == RuleSignal::kMessageRate
                ? prev_.messages
                : prev_.rejected;
        const double baseline =
            now > 0.0 ? static_cast<double>(total) / now : 0.0;
        *effective_bound = rule.bound * baseline;
      }
      return state.sliding->rate(now);
    }
    case RuleSignal::kEpisodeP50:
    case RuleSignal::kEpisodeP90:
    case RuleSignal::kEpisodeP99:
      state.sliding->advance(now);
      return state.sliding->quantile(signal_quantile(rule.signal));
    case RuleSignal::kNodesAlive:
      return static_cast<double>(prev_.nodes_alive);
    case RuleSignal::kOpenEpisodes: {
      const std::uint64_t decided =
          prev_.episodes_closed + prev_.rejected;
      return static_cast<double>(
          delta(prev_.episodes_issued, decided));
    }
  }
  return 0.0;
}

void LiveMonitor::write_snapshot_locked(SimTime now, bool final_sample) {
  std::string snapshot;
  snapshot += "# realtor_live snapshot ";
  append_u64(snapshot, snapshots_);
  snapshot += " t=";
  append_double_shortest(snapshot, now);
  snapshot += " plane=agile";
  if (final_sample) snapshot += " final";
  snapshot += '\n';

  snapshot += "realtor_live_time ";
  append_double_shortest(snapshot, now);
  snapshot += '\n';
  snapshot += "realtor_live_nodes_alive ";
  append_double_shortest(snapshot, static_cast<double>(prev_.nodes_alive));
  snapshot += '\n';
  snapshot += "realtor_live_nodes_total ";
  append_u64(snapshot, config_.node_count);
  snapshot += '\n';
  snapshot += "realtor_live_open_episodes ";
  append_u64(snapshot,
             delta(prev_.episodes_issued,
                   prev_.episodes_closed + prev_.rejected));
  snapshot += '\n';
  snapshot += "realtor_live_decisions_total ";
  append_u64(snapshot, decisions_total_);
  snapshot += '\n';

  const WindowSnapshot admissions = decisions_.snapshot();
  snapshot += "realtor_live_admission_probability ";
  append_double_shortest(snapshot,
                         admissions.count > 0 ? admissions.mean() : 1.0);
  snapshot += '\n';
  snapshot += "realtor_live_help_rate ";
  append_double_shortest(snapshot, helps_.rate(now));
  snapshot += '\n';
  snapshot += "realtor_live_message_rate ";
  append_double_shortest(snapshot, messages_.rate(now));
  snapshot += '\n';
  snapshot += "realtor_live_rejection_rate ";
  append_double_shortest(snapshot, rejections_.rate(now));
  snapshot += '\n';
  snapshot += "realtor_live_episode_latency_p50 ";
  append_double_shortest(snapshot, episode_latency_.quantile(0.50));
  snapshot += '\n';
  snapshot += "realtor_live_episode_latency_p99 ";
  append_double_shortest(snapshot, episode_latency_.quantile(0.99));
  snapshot += '\n';

  snapshot += "realtor_live_alerts_fired_total ";
  append_u64(snapshot, alerts_fired_);
  snapshot += '\n';
  for (const RuleState& state : rules_) {
    snapshot += "realtor_live_alert{rule=\"";
    append_label_escaped(snapshot, state.rule.name);
    snapshot += "\"} ";
    snapshot += state.firing ? '1' : '0';
    snapshot += '\n';
    snapshot += "realtor_live_alert_value{rule=\"";
    append_label_escaped(snapshot, state.rule.name);
    snapshot += "\"} ";
    append_double_shortest(snapshot, state.last_value);
    snapshot += '\n';
  }
  snapshot += '\n';

  text_ += snapshot;
  if (config_.out.empty()) return;
  if (to_stdout_) {
    std::fwrite(snapshot.data(), 1, snapshot.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::ofstream file(config_.out, std::ios::trunc);
  if (file) file << snapshot;
}

std::uint64_t LiveMonitor::snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_;
}

std::uint64_t LiveMonitor::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alerts_fired_;
}

bool LiveMonitor::alert_firing(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RuleState& state : rules_) {
    if (state.rule.name == name) return state.firing;
  }
  return false;
}

std::string LiveMonitor::exposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return text_;
}

}  // namespace realtor::agile
