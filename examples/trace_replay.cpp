// Trace record / replay: capture a workload to CSV, replay it through the
// simulation, and verify the replay reproduces the live run bit-exactly —
// the regression-testing workflow for protocol changes.
//
//   ./trace_replay [--lambda=7] [--count=1500] [--out=workload.csv]
#include <iostream>

#include "common/flags.hpp"
#include "experiment/simulation.hpp"
#include "trace/workload_csv.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);
  const double lambda = flags.get_double("lambda", 7.0);
  const auto count = static_cast<std::size_t>(flags.get_int("count", 1500));
  const std::string path =
      flags.get_string("out", "/tmp/realtor_workload.csv");

  // 1. Generate a workload and persist it.
  const auto arrivals = sim::generate_poisson_trace(42, lambda, 5.0, 25, count);
  const auto records = trace::from_arrivals(arrivals);
  if (!trace::save_csv_file(path, records)) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  std::cout << "recorded " << records.size() << " arrivals to " << path
            << " (" << arrivals.back().time << "s of lambda=" << lambda
            << " workload)\n";

  // 2. Load it back — the file is the contract, not the in-memory vector.
  const auto loaded = trace::load_csv_file(path);
  if (!loaded.ok) {
    std::cerr << "trace load failed: " << loaded.error << '\n';
    return 1;
  }

  // 3. Run live (internal generator) and replayed (injected) simulations.
  experiment::ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = lambda;
  // End exactly at the last recorded arrival so the live generator cannot
  // produce arrivals beyond the trace.
  config.duration = arrivals.back().time;
  config.seed = 42;

  experiment::Simulation live(config);
  const auto& live_metrics = live.run();

  experiment::ScenarioConfig replay_config = config;
  replay_config.external_arrivals = true;
  experiment::Simulation replay(replay_config);
  for (const trace::TraceRecord& record : loaded.records) {
    replay.engine().schedule_at(record.arrival.time, [&replay, record] {
      replay.inject(record.arrival, record.bandwidth_share,
                    record.min_security);
    });
  }
  const auto& replay_metrics = replay.run();

  std::cout << "\n              live      replayed\n"
            << "generated  " << live_metrics.generated << "     "
            << replay_metrics.generated << '\n'
            << "admitted   " << live_metrics.admitted_total() << "     "
            << replay_metrics.admitted_total() << '\n'
            << "rejected   " << live_metrics.rejected << "       "
            << replay_metrics.rejected << '\n'
            << "messages   " << live_metrics.ledger.total_cost() << "   "
            << replay_metrics.ledger.total_cost() << '\n';

  const bool identical =
      live_metrics.generated == replay_metrics.generated &&
      live_metrics.admitted_total() == replay_metrics.admitted_total() &&
      live_metrics.rejected == replay_metrics.rejected &&
      live_metrics.ledger.total_cost() == replay_metrics.ledger.total_cost();
  std::cout << (identical ? "\nreplay is bit-identical to the live run ✓\n"
                          : "\nMISMATCH between live and replayed run!\n");
  return identical ? 0 : 1;
}
