// Agile Objects cluster demo: the *threaded* runtime from §6 — one reactor
// thread per host, REALTOR over multicast/datagram channels, a synchronous
// admission RPC, migratable timer components and a naming service —
// running time-compressed on this machine.
//
//   ./agile_cluster_demo [--hosts=20] [--lambda=5] [--duration=60]
//                        [--loss=0.0] [--compression=0.005]
#include <iostream>

#include "agile/cluster.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  agile::ClusterConfig config;
  config.num_hosts = static_cast<NodeId>(flags.get_int("hosts", 20));
  config.queue_capacity = flags.get_double("queue", 50.0);
  config.lambda = flags.get_double("lambda", 5.0);
  config.model_duration = flags.get_double("duration", 60.0);
  config.time_compression = flags.get_double("compression", 0.005);
  config.loss_probability = flags.get_double("loss", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::cout << "Spinning up " << config.num_hosts
            << " host reactors (queue " << config.queue_capacity
            << "s, REALTOR, datagram loss " << config.loss_probability
            << ")...\n"
            << "Replaying " << config.model_duration
            << " model-seconds of Poisson(" << config.lambda
            << ") arrivals at " << 1.0 / config.time_compression
            << "x real time.\n\n";

  agile::Cluster cluster(config);
  const agile::ClusterMetrics m = cluster.run();

  std::cout << "arrivals processed      " << m.arrivals_processed << '\n'
            << "admitted locally        " << m.admitted_local << '\n'
            << "admitted via migration  " << m.admitted_migrated << '\n'
            << "rejected                " << m.rejected << '\n'
            << "admission probability   " << m.admission_probability() << '\n'
            << "components completed    " << m.completions << '\n'
            << "CUS/EDF deadline misses " << m.deadline_misses << '\n'
            << "HELP multicasts         " << m.helps << '\n'
            << "PLEDGE datagrams        " << m.pledges << '\n'
            << "admission RPC calls     " << m.negotiations << '\n'
            << "naming service updates  " << m.naming_updates << '\n'
            << "datagrams sent/dropped  " << m.datagrams_sent << "/"
            << m.datagrams_dropped << '\n';

  std::cout << "\nTry --loss=0.2 to watch the soft-state protocol shrug off "
               "a lossy network,\nor --lambda=9 to push the cluster into "
               "overload.\n";
  return 0;
}
