// Agile Objects cluster demo: the *threaded* runtime from §6 — one reactor
// thread per host, REALTOR over multicast/datagram channels, a synchronous
// admission RPC, migratable timer components and a naming service —
// running time-compressed on this machine.
//
//   ./agile_cluster_demo [--hosts=20] [--lambda=5] [--duration=60]
//                        [--loss=0.0] [--compression=0.005]
//                        [--attack=<time>:<victim>[:<outage>]]
//                        [--trace=run.jsonl [--trace-flush-every=256]]
//                        [--flight-recorder[=N] [--flight-out=path]]
//                        [--live-metrics[=live.prom] [--live-cadence=1]
//                         [--alert=rule,rule,...]]
//
// Tracing: --trace shares one thread-safe JSONL sink across all reactor
// threads; --flight-recorder gives every host its own binary ring (one
// source per host in the dump) and dumps on exit, plus right after each
// --attack kill. Analyze either output with realtor_trace.
//
// --live-metrics starts the wall-clock LiveMonitor: a sampler thread
// reads the hosts' atomic counters every --live-cadence model seconds,
// evaluates the same alert rules realtor_sim --live-metrics uses, and
// rewrites the .prom file with the latest snapshot (watch it with
// `watch cat live.prom`).
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "agile/cluster.hpp"
#include "common/flags.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/jsonl_sink.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  agile::ClusterConfig config;
  config.num_hosts = static_cast<NodeId>(flags.get_int("hosts", 20));
  config.queue_capacity = flags.get_double("queue", 50.0);
  config.lambda = flags.get_double("lambda", 5.0);
  config.model_duration = flags.get_double("duration", 60.0);
  config.time_compression = flags.get_double("compression", 0.005);
  config.loss_probability = flags.get_double("loss", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // --attack=time:victim[:outage] — driver stops (and optionally
  // restarts) one host mid-run.
  const std::string attack = flags.get_string("attack", "");
  if (!attack.empty()) {
    agile::ClusterConfig::Attack wave;
    unsigned victim = 0;
    if (std::sscanf(attack.c_str(), "%lf:%u:%lf", &wave.time, &victim,
                    &wave.outage) >= 2) {
      wave.victim = static_cast<NodeId>(victim);
      config.attacks.push_back(wave);
    } else {
      std::cerr << "bad --attack (want time:victim[:outage]): " << attack
                << '\n';
      return 1;
    }
  }

  // Tracing: one shared JSONL sink (thread-safe) or per-host flight
  // rings; a run uses one of them.
  const std::string trace_path = flags.get_string("trace", "");
  if (!trace_path.empty() && flags.has("flight-recorder")) {
    std::cerr << "--trace and --flight-recorder are mutually exclusive\n";
    return 1;
  }
  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::FlightRecorder> flight;
  const std::string flight_out =
      flags.get_string("flight-out", "agile_flight.bin");
  std::size_t attack_dumps = 0;
  if (!trace_path.empty()) {
    jsonl.emplace(trace_path, static_cast<std::size_t>(
                                  flags.get_int("trace-flush-every", 0)));
    if (!jsonl->ok()) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
    config.trace_sink_factory = [&jsonl](NodeId) -> obs::TraceSink* {
      return &*jsonl;
    };
  } else if (flags.has("flight-recorder")) {
    const std::int64_t n = flags.get_int(
        "flight-recorder",
        static_cast<std::int64_t>(obs::kDefaultFlightCapacity));
    flight.emplace(n > 0 ? static_cast<std::size_t>(n)
                         : obs::kDefaultFlightCapacity);
    // Rings are created here in the Cluster constructor (single-threaded);
    // thread_safe=true because reactor threads write while the driver
    // dumps on attack.
    config.trace_sink_factory = [&flight](NodeId id) -> obs::TraceSink* {
      return &flight->ring(id, /*thread_safe=*/true);
    };
    config.on_attack = [&](std::size_t index, SimTime) {
      const std::string path =
          flight_out + ".attack" + std::to_string(index) + ".bin";
      std::string error;
      if (flight->dump(path, &error)) {
        ++attack_dumps;
      } else {
        std::cerr << error << '\n';
      }
    };
  }

  std::string live_out;
  if (flags.has("live-metrics")) {
    live_out = flags.get_string("live-metrics", "live.prom");
    if (live_out == "true") live_out = "live.prom";
    agile::LiveMonitorConfig live;
    live.out = live_out;
    live.cadence = flags.get_double("live-cadence", 1.0);
    live.window = flags.get_double("live-window", 10.0);
    const std::string rules = flags.get_string("alert", "");
    std::size_t start = 0;
    while (start < rules.size()) {
      std::size_t comma = rules.find(',', start);
      if (comma == std::string::npos) comma = rules.size();
      if (comma > start) {
        live.rules.push_back(rules.substr(start, comma - start));
      }
      start = comma + 1;
    }
    config.live = std::move(live);
  }

  std::cout << "Spinning up " << config.num_hosts
            << " host reactors (queue " << config.queue_capacity
            << "s, REALTOR, datagram loss " << config.loss_probability
            << ")...\n"
            << "Replaying " << config.model_duration
            << " model-seconds of Poisson(" << config.lambda
            << ") arrivals at " << 1.0 / config.time_compression
            << "x real time.\n\n";

  agile::Cluster cluster(config);
  if (config.live && cluster.live() && !cluster.live()->ok()) {
    std::cerr << cluster.live()->error() << '\n';
    return 1;
  }
  const agile::ClusterMetrics m = cluster.run();

  std::cout << "arrivals processed      " << m.arrivals_processed << '\n'
            << "admitted locally        " << m.admitted_local << '\n'
            << "admitted via migration  " << m.admitted_migrated << '\n'
            << "rejected                " << m.rejected << '\n'
            << "admission probability   " << m.admission_probability() << '\n'
            << "components completed    " << m.completions << '\n'
            << "CUS/EDF deadline misses " << m.deadline_misses << '\n'
            << "HELP multicasts         " << m.helps << '\n'
            << "PLEDGE datagrams        " << m.pledges << '\n'
            << "admission RPC calls     " << m.negotiations << '\n'
            << "naming service updates  " << m.naming_updates << '\n'
            << "datagrams sent/dropped  " << m.datagrams_sent << "/"
            << m.datagrams_dropped << '\n';

  if (jsonl) {
    jsonl->flush();
    std::cout << "trace: " << jsonl->lines_written() << " records -> "
              << trace_path << '\n';
  }
  if (flight) {
    std::string error;
    if (!flight->dump(flight_out, &error)) {
      std::cerr << error << '\n';
    } else {
      std::cout << "flight: " << flight->total_recorded() << " records in "
                << flight->ring_count() << " rings ("
                << flight->total_dropped() << " overwritten";
      if (attack_dumps > 0) {
        std::cout << ", " << attack_dumps << " attack dumps";
      }
      std::cout << ") -> " << flight_out << '\n';
    }
  }

  if (agile::LiveMonitor* live = cluster.live()) {
    std::cout << "live: " << live->snapshots() << " snapshots, "
              << live->alerts_fired() << " alerts -> " << live_out << '\n';
  }

  std::cout << "\nTry --loss=0.2 to watch the soft-state protocol shrug off "
               "a lossy network,\nor --lambda=9 to push the cluster into "
               "overload.\n";
  return 0;
}
