// Survivability walk-through: the scenario the paper's introduction
// motivates. A distributed real-time application runs across a mesh; at
// t=120 s an attacker takes down a third of the hosts with a one-second
// warning. Watch REALTOR evacuate the resident components, lose the ones
// it cannot place, and recover once the hosts come back.
//
//   ./attack_survivability [--victims=8] [--grace=1] [--outage=80]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  experiment::ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = flags.get_double("lambda", 4.0);
  config.duration = flags.get_double("duration", 360.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  experiment::AttackWave wave;
  wave.time = 120.0;
  wave.count = static_cast<std::size_t>(flags.get_int("victims", 8));
  wave.grace = flags.get_double("grace", 1.0);
  wave.outage = flags.get_double("outage", 80.0);
  config.attacks = {wave};

  std::cout << "Attack survivability demo: " << wave.count
            << " of 25 hosts attacked at t=" << wave.time << "s, "
            << wave.grace << "s warning, " << wave.outage << "s outage\n\n";

  experiment::Simulation sim(config);
  const auto& m = sim.run();

  std::cout << "workload: " << m.generated << " tasks at lambda="
            << config.lambda << " over " << config.duration << "s\n\n";

  Table table({"event", "count"});
  table.row().cell(std::string("components resident on victims"))
      .cell(m.evacuation_candidates);
  table.row().cell(std::string("evacuated to safe hosts")).cell(m.evacuated);
  table.row().cell(std::string("lost to the attack")).cell(m.lost_to_attack);
  table.row().cell(std::string("arrivals addressed to dead hosts"))
      .cell(m.arrivals_at_dead_nodes);
  table.row().cell(std::string("total migrations (incl. load-driven)"))
      .cell(m.admitted_migrated + m.evacuated);
  table.print(std::cout);

  std::cout << "\nevacuation success rate : " << m.evacuation_success_rate()
            << "\noverall admission prob. : " << m.admission_probability()
            << "\n\nThe grace period models the paper's security enforcers "
               "(§3) warning the node;\nset --grace=0 to see the no-warning "
               "case where all resident work perishes.\n";
  return 0;
}
