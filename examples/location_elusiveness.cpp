// Location elusiveness demo (§3): components keep moving so an attacker
// cannot track them. Every --period seconds each host relocates its newest
// queued component through REALTOR; we report how often components move,
// what the extra motion costs, and that admission is unharmed.
//
//   ./location_elusiveness [--period=10] [--lambda=6] [--duration=400]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  experiment::ScenarioConfig base;
  base.protocol_kind = proto::ProtocolKind::kRealtor;
  base.lambda = flags.get_double("lambda", 6.0);
  base.duration = flags.get_double("duration", 400.0);
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  experiment::ScenarioConfig elusive = base;
  elusive.elusiveness.enabled = true;
  elusive.elusiveness.period = flags.get_double("period", 10.0);

  std::cout << "Location elusiveness: relocate each host's newest component "
               "every "
            << elusive.elusiveness.period << "s (lambda=" << base.lambda
            << ", " << base.duration << "s)\n\n";

  experiment::Simulation baseline_sim(base);
  const auto& mb = baseline_sim.run();
  experiment::Simulation elusive_sim(elusive);
  const auto& me = elusive_sim.run();

  Table table({"metric", "baseline", "elusive"});
  table.row()
      .cell(std::string("admission probability"))
      .cell(mb.admission_probability(), 4)
      .cell(me.admission_probability(), 4);
  table.row()
      .cell(std::string("component moves (total)"))
      .cell(mb.admitted_migrated)
      .cell(me.admitted_migrated + me.elusive_moves);
  table.row()
      .cell(std::string("proactive relocations"))
      .cell(std::uint64_t{0})
      .cell(me.elusive_moves);
  table.row()
      .cell(std::string("relocations with no better hide-out"))
      .cell(std::uint64_t{0})
      .cell(me.elusive_stays);
  table.row()
      .cell(std::string("discovery+migration cost (units)"))
      .cell(mb.ledger.total_cost(), 0)
      .cell(me.ledger.total_cost(), 0);
  table.row()
      .cell(std::string("mean response time (s)"))
      .cell(mb.response_time.mean(), 2)
      .cell(me.response_time.mean(), 2);
  table.print(std::cout);

  const double moves_per_task =
      me.admitted_total() > 0
          ? static_cast<double>(me.elusive_moves) /
                static_cast<double>(me.admitted_total())
          : 0.0;
  std::cout << "\nWith elusiveness on, a queued component changes host "
            << moves_per_task
            << " extra times per admitted task on average —\nmaking its "
               "location a moving target at a bounded message cost, with "
               "admission probability intact.\n";
  return 0;
}
