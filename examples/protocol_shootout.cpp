// Protocol shootout: compare all five discovery protocols on a custom
// topology and load, on the *same* workload (common random numbers), and
// print a compact scoreboard — a miniature of the paper's whole evaluation.
//
//   ./protocol_shootout [--lambda=8] [--topology=mesh|torus|ring|star|
//                        complete|random] [--nodes=25] [--duration=400]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "experiment/simulation.hpp"
#include "proto/factory.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  experiment::ScenarioConfig base;
  base.lambda = flags.get_double("lambda", 8.0);
  base.duration = flags.get_double("duration", 400.0);
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const std::string topology = flags.get_string("topology", "mesh");
  const auto nodes = static_cast<NodeId>(flags.get_int("nodes", 25));
  if (topology == "torus") {
    base.topology.kind = experiment::TopologyKind::kTorus;
  } else if (topology == "ring") {
    base.topology.kind = experiment::TopologyKind::kRing;
  } else if (topology == "star") {
    base.topology.kind = experiment::TopologyKind::kStar;
  } else if (topology == "complete") {
    base.topology.kind = experiment::TopologyKind::kComplete;
  } else if (topology == "random") {
    base.topology.kind = experiment::TopologyKind::kRandom;
    base.topology.links = static_cast<std::size_t>(
        flags.get_int("links", nodes * 2));
  } else {
    base.topology.kind = experiment::TopologyKind::kMesh;
  }
  base.topology.nodes = nodes;
  if (base.topology.kind != experiment::TopologyKind::kMesh) {
    // Non-mesh topologies have different path lengths: let the cost model
    // compute the true average instead of pinning the paper's 4.
    base.fixed_unicast_cost.reset();
  }

  std::cout << "Protocol shootout: topology=" << topology
            << " lambda=" << base.lambda << " duration=" << base.duration
            << "s (identical workload for every protocol)\n\n";

  Table table({"protocol", "admission", "migration-rate", "overhead",
               "per-task", "mean-occupancy"});
  // The paper's five schemes plus the modern gossip baseline.
  for (const auto kind : proto::kExtendedProtocolKinds) {
    experiment::ScenarioConfig config = base;
    config.protocol_kind = kind;
    experiment::Simulation sim(config);
    const auto& m = sim.run();
    table.row()
        .cell(std::string(proto::paper_label(kind)))
        .cell(m.admission_probability(), 4)
        .cell(m.migration_rate(), 4)
        .cell(m.total_messages(), 0)
        .cell(m.messages_per_admitted(), 2)
        .cell(m.mean_occupancy, 3);
  }
  table.print(std::cout);
  std::cout << "\nReading the scoreboard: the paper's headline (Figs. 5-7) "
               "is that REALTOR\nmatches the best admission probability at "
               "a fraction of pure PUSH's overhead.\n";
  return 0;
}
