// Quickstart: run one REALTOR experiment on the paper's 5x5 mesh and print
// what happened. Start here to see the public API end to end.
//
//   ./quickstart [--lambda=7] [--duration=300] [--seed=42]
#include <iostream>

#include "common/flags.hpp"
#include "experiment/simulation.hpp"
#include "net/message_ledger.hpp"

int main(int argc, char** argv) {
  using namespace realtor;
  const Flags flags(argc, argv);

  // 1. Describe the scenario. Defaults reproduce §5 of the paper: 25-node
  //    mesh, exp(5 s) tasks, 100 s queues, thresholds 0.9, one-try
  //    migration, message costs in the paper's accounting units.
  experiment::ScenarioConfig config;
  config.protocol_kind = proto::ProtocolKind::kRealtor;
  config.lambda = flags.get_double("lambda", 7.0);
  config.duration = flags.get_double("duration", 300.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // 2. Build and run the simulation. Everything — hosts, protocol
  //    instances, admission control, the Poisson workload — is wired by
  //    the Simulation object onto one deterministic event engine.
  experiment::Simulation sim(config);
  const experiment::RunMetrics& m = sim.run();

  // 3. Read the results.
  std::cout << "REALTOR on a 5x5 mesh, lambda=" << config.lambda
            << " tasks/s for " << config.duration << " simulated seconds\n\n";
  std::cout << "tasks generated        " << m.generated << '\n'
            << "admitted locally       " << m.admitted_local << '\n'
            << "admitted via migration " << m.admitted_migrated << '\n'
            << "rejected               " << m.rejected << '\n'
            << "admission probability  " << m.admission_probability() << '\n'
            << "migration rate         " << m.migration_rate() << '\n'
            << "completed              " << m.completed << '\n'
            << "mean response time     " << m.response_time.mean() << " s\n"
            << "mean queue occupancy   " << m.mean_occupancy << '\n';

  std::cout << "\nmessage accounting (paper units: flood = links, unicast = "
               "avg path):\n";
  for (const auto kind :
       {net::MessageKind::kHelp, net::MessageKind::kPledge,
        net::MessageKind::kPushAdvert, net::MessageKind::kNegotiation,
        net::MessageKind::kMigration}) {
    std::cout << "  " << net::to_string(kind) << ": "
              << m.ledger.sends(kind) << " sends, " << m.ledger.cost(kind)
              << " units\n";
  }
  std::cout << "  total overhead (Fig. 6 quantity): " << m.total_messages()
            << " units, " << m.messages_per_admitted()
            << " per admitted task\n";
  return 0;
}
