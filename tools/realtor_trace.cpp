// realtor_trace — offline analyzer for realtor_sim --trace=... JSONL files.
//
//   realtor_trace run.jsonl                  # event-kind summary
//   realtor_trace run.jsonl --node=7         # one node's timeline
//   realtor_trace run.jsonl --kind=help_sent # filter (summary + timeline)
//   realtor_trace run.jsonl --intervals      # Algorithm-H interval history
//   realtor_trace run.jsonl --limit=50       # cap timeline rows
//
// Any line that does not parse as a flat JSON trace record is a hard
// error with its line number — the trace format is part of the tool
// contract, not best-effort.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace realtor;

struct KindSummary {
  std::uint64_t count = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  std::vector<char> nodes_seen;  // indexed by node id
};

std::string format_fields(const obs::ParsedEvent& event) {
  std::string out;
  for (const auto& [key, value] : event.fields) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    switch (value.type) {
      case obs::JsonValue::Type::kNumber: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", value.number);
        out += buf;
        break;
      }
      case obs::JsonValue::Type::kString:
        out += value.text;
        break;
      case obs::JsonValue::Type::kBool:
        out += value.boolean ? "true" : "false";
        break;
      case obs::JsonValue::Type::kNull:
        out += "null";
        break;
    }
  }
  return out;
}

void print_timeline(const std::vector<obs::ParsedEvent>& events,
                    bool filter_node, NodeId node, bool filter_kind,
                    const std::string& kind, std::uint64_t limit) {
  std::uint64_t shown = 0;
  std::uint64_t matched = 0;
  for (const obs::ParsedEvent& event : events) {
    if (filter_node && event.node != node) continue;
    if (filter_kind && event.kind != kind) continue;
    ++matched;
    if (shown >= limit) continue;
    ++shown;
    std::printf("%10.3f  ", event.time);
    if (event.node == kInvalidNode) {
      std::printf("%6s", "-");
    } else {
      std::printf("%6llu", static_cast<unsigned long long>(event.node));
    }
    std::printf("  %-20s %s\n", event.kind.c_str(),
                format_fields(event).c_str());
  }
  if (matched > shown) {
    std::printf("... %llu more (raise --limit)\n",
                static_cast<unsigned long long>(matched - shown));
  }
}

void print_summary(const std::vector<obs::ParsedEvent>& events) {
  std::map<std::string, KindSummary> kinds;
  double span_end = 0.0;
  std::vector<char> all_nodes;
  for (const obs::ParsedEvent& event : events) {
    KindSummary& summary = kinds[event.kind];
    if (summary.count == 0) summary.first_time = event.time;
    ++summary.count;
    summary.last_time = event.time;
    span_end = std::max(span_end, event.time);
    if (event.node != kInvalidNode) {
      if (event.node >= summary.nodes_seen.size()) {
        summary.nodes_seen.resize(event.node + 1, 0);
      }
      summary.nodes_seen[event.node] = 1;
      if (event.node >= all_nodes.size()) {
        all_nodes.resize(event.node + 1, 0);
      }
      all_nodes[event.node] = 1;
    }
  }
  const auto live = static_cast<unsigned long long>(
      std::count(all_nodes.begin(), all_nodes.end(), 1));
  std::printf("%llu records, %llu nodes, t in [0, %.3f]\n\n",
              static_cast<unsigned long long>(events.size()), live, span_end);
  std::printf("%-20s %10s %8s %12s %12s\n", "kind", "count", "nodes",
              "first", "last");
  for (const auto& [kind, summary] : kinds) {
    std::printf("%-20s %10llu %8llu %12.3f %12.3f\n", kind.c_str(),
                static_cast<unsigned long long>(summary.count),
                static_cast<unsigned long long>(std::count(
                    summary.nodes_seen.begin(), summary.nodes_seen.end(), 1)),
                summary.first_time, summary.last_time);
  }
}

// Algorithm-H evolution: every help_interval record in order, then the
// final interval each node settled on.
void print_intervals(const std::vector<obs::ParsedEvent>& events) {
  std::map<NodeId, double> final_interval;
  std::uint64_t updates = 0;
  for (const obs::ParsedEvent& event : events) {
    if (event.kind != "help_interval") continue;
    ++updates;
    const double interval = event.number("interval", 0.0);
    const obs::JsonValue* reason = event.find("reason");
    std::printf("%10.3f  node %-5llu interval %8.3f  (%s)\n", event.time,
                static_cast<unsigned long long>(event.node), interval,
                reason != nullptr ? reason->text.c_str() : "?");
    final_interval[event.node] = interval;
  }
  if (updates == 0) {
    std::printf("no help_interval records "
                "(push-based protocol, or Algorithm H never adapted)\n");
    return;
  }
  std::printf("\nfinal intervals:\n");
  for (const auto& [node, interval] : final_interval) {
    std::printf("  node %-5llu %8.3f\n",
                static_cast<unsigned long long>(node), interval);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  std::string path = flags.get_string("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty() || flags.get_bool("help", false)) {
    std::cout << "usage: realtor_trace <run.jsonl> "
                 "[--node=<id>] [--kind=<name>] [--intervals] "
                 "[--limit=<n>]\n";
    return path.empty() ? 1 : 0;
  }

  std::vector<obs::ParsedEvent> events;
  std::string error;
  if (!obs::load_trace_file(path, events, &error)) {
    std::cerr << path << ": " << error << '\n';
    return 1;
  }

  if (flags.get_bool("intervals", false)) {
    print_intervals(events);
    return 0;
  }

  const bool filter_node = flags.has("node");
  const NodeId node = static_cast<NodeId>(flags.get_int("node", 0));
  const bool filter_kind = flags.has("kind");
  const std::string kind = flags.get_string("kind", "");
  if (filter_kind) {
    obs::EventKind parsed;
    if (!obs::parse_event_kind(kind, parsed)) {
      std::cerr << "unknown event kind: " << kind << '\n';
      return 1;
    }
  }
  if (filter_node || filter_kind) {
    print_timeline(events, filter_node, node, filter_kind, kind,
                   static_cast<std::uint64_t>(flags.get_int("limit", 100)));
    return 0;
  }
  print_summary(events);
  return 0;
}
