// realtor_trace — offline analyzer for structured run traces: JSONL files
// from realtor_sim --trace=... and binary flight-recorder dumps from
// --flight-recorder (auto-detected by magic; every mode below works on
// either).
//
//   realtor_trace run.jsonl                  # event-kind summary
//   realtor_trace flight.bin                 # same, from a flight dump
//   realtor_trace run.jsonl --node=7         # one node's timeline
//   realtor_trace run.jsonl --kind=help_sent # filter (summary + timeline)
//   realtor_trace run.jsonl --intervals      # Algorithm-H interval history
//   realtor_trace run.jsonl --episodes       # discovery-episode spans +
//                                            # latency percentiles
//   realtor_trace run.jsonl --check          # protocol invariant checker
//                                            # (nonzero exit on violation)
//   realtor_trace run.jsonl --scorecard      # survivability scorecard:
//                                            # per-attack MTTR, stage
//                                            # latency breakdown, miss/
//                                            # drop attribution
//   realtor_trace run.jsonl --scorecard --format=json
//                                            # machine-readable scorecard
//   realtor_trace run.jsonl --format=csv     # machine-readable event/
//                                            # episode tables
//   realtor_trace run.jsonl --limit=50       # cap timeline/episode rows
//   realtor_trace run.jsonl --critical-path  # per-episode lineage walk:
//                                            # latency attributed to named
//                                            # phases, p50/p90/p99 tables
//   realtor_trace run.jsonl --critical-path --blame=10
//                                            # top-K slowest lineage edges
//   realtor_trace run.jsonl --critical-path --check
//                                            # structural gate: phases of
//                                            # every path must telescope
//   realtor_trace run.jsonl --export=perfetto --out=run.perfetto-trace
//                                            # Chrome-trace JSON for
//                                            # ui.perfetto.dev; add
//                                            # --profile=prof.tsv to merge
//                                            # a realtor_sim --profile dump
//   realtor_trace run.jsonl --jobs=4 --stats # parallel ingest; bytes /
//                                            # events / MB/s on stderr
//   realtor_trace run.jsonl --follow         # live dashboard: reload the
//                                            # growing file on each change
//                                            # and render utilization per
//                                            # node, open episodes, firing
//                                            # alerts. --refresh=<s> poll
//                                            # period, --plain appends
//                                            # frames instead of clearing,
//                                            # --once one frame, --idle-
//                                            # exit=<s> stop after quiet,
//                                            # --max-frames=<n> frame cap
//   realtor_trace run.jsonl --follow --once --check
//                                            # render, then gate: the
//                                            # invariant checker judges
//                                            # the final load (--follow
//                                            # --check requires --once,
//                                            # --idle-exit or --max-frames)
//
// Ingest goes through obs/event_store.hpp: the file is mmap'd, parsed in
// newline-sharded parallel (--jobs=N, default all hardware threads) into
// an interned zero-copy store, and every analysis below runs off that
// store. Serial and parallel loads produce identical stores, so --jobs
// never changes any output byte.
//
// --check replays the paper's algorithmic guarantees over the trace (see
// obs/invariants.hpp for the catalog); parameters of the traced run can be
// overridden with --alpha --beta --initial-interval --upper-limit
// --interval-floor --pledge-threshold --tolerance.
//
// Damaged input is skipped but counted — malformed JSONL lines, and
// unrecoverable records in truncated/corrupt flight dumps: every mode
// reports the count on stderr, and the --check gates treat any dropped
// input as a violation — an analysis that silently ignored part of its
// input must not report a clean bill.
//
// Exit codes (relied on by CI; the README carries the per-combination
// contract table, enforced by tests/cli/test_trace_exit_codes.sh):
//   0  analysis ran and every requested gate passed
//   1  bad usage or unreadable input (bad path, bad magic, bad flag,
//      --follow combined with an offline analysis mode, or
//      --follow --check without a termination condition)
//   2  a gate tripped: invariant violation, critical-path inconsistency,
//      or dropped input under --check (including --follow --check over
//      the final load)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/format.hpp"
#include "common/profile.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_store.hpp"
#include "obs/flight_reader.hpp"
#include "obs/invariants.hpp"
#include "obs/perfetto.hpp"
#include "obs/scorecard.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace realtor;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitViolation = 2;

struct KindSummary {
  std::uint64_t count = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  std::vector<char> nodes_seen;  // indexed by node id
};

std::string format_value(const obs::StoredField& field) {
  switch (field.type) {
    case obs::JsonValue::Type::kNumber: {
      char buf[32];
      format_double(buf, sizeof buf, "%g", field.number);
      return buf;
    }
    case obs::JsonValue::Type::kString:
      return std::string(field.text);
    case obs::JsonValue::Type::kBool:
      return field.boolean ? "true" : "false";
    case obs::JsonValue::Type::kNull:
      return "null";
  }
  return "";
}

std::string format_fields(const obs::EventStore& store,
                          const obs::EventView& view) {
  std::string out;
  for (const obs::StoredField* field = view.fields_begin();
       field != view.fields_end(); ++field) {
    if (!out.empty()) out += ' ';
    out += store.name(field->key);
    out += '=';
    out += format_value(*field);
  }
  return out;
}

/// Filters compare interned ids, not strings: a --kind name the trace
/// never used resolves to kNoStrId, which no record carries.
bool keep(const obs::EventRec& rec, bool filter_node, NodeId node,
          bool filter_kind, obs::StrId kind_id) {
  if (filter_node && rec.node != node) return false;
  if (filter_kind && rec.kind != kind_id) return false;
  return true;
}

void print_timeline(const obs::EventStore& store, bool filter_node,
                    NodeId node, bool filter_kind, obs::StrId kind_id,
                    std::uint64_t limit) {
  std::uint64_t shown = 0;
  std::uint64_t matched = 0;
  char time[32];
  for (const obs::EventRec& rec : store.records()) {
    if (!keep(rec, filter_node, node, filter_kind, kind_id)) continue;
    ++matched;
    if (shown >= limit) continue;
    ++shown;
    format_double(time, sizeof time, "%.3f", rec.time);
    std::printf("%10s  ", time);
    if (rec.node == kInvalidNode) {
      std::printf("%6s", "-");
    } else {
      std::printf("%6llu", static_cast<unsigned long long>(rec.node));
    }
    const obs::EventView view(store, rec);
    std::printf("  %-20s %s\n", view.kind_cstr(),
                format_fields(store, view).c_str());
  }
  if (matched > shown) {
    std::printf("... %llu more (raise --limit)\n",
                static_cast<unsigned long long>(matched - shown));
  }
}

/// Events as CSV: time,node,kind plus the sorted union of payload keys.
/// Cells of absent fields stay empty, so every row has the same width.
void print_events_csv(const obs::EventStore& store, bool filter_node,
                      NodeId node, bool filter_kind, obs::StrId kind_id) {
  std::set<std::string_view> keys;
  for (const obs::EventRec& rec : store.records()) {
    if (!keep(rec, filter_node, node, filter_kind, kind_id)) continue;
    const obs::EventView view(store, rec);
    for (const obs::StoredField* field = view.fields_begin();
         field != view.fields_end(); ++field) {
      keys.insert(store.name(field->key));
    }
  }
  std::printf("time,node,kind");
  std::vector<obs::StrId> key_ids;
  key_ids.reserve(keys.size());
  for (const std::string_view key : keys) {
    std::printf(",%s", key.data());  // interned names are NUL-terminated
    key_ids.push_back(store.find_id(key));
  }
  std::printf("\n");
  char time[40];
  for (const obs::EventRec& rec : store.records()) {
    if (!keep(rec, filter_node, node, filter_kind, kind_id)) continue;
    const obs::EventView view(store, rec);
    format_double(time, sizeof time, "%.6f", rec.time);
    if (rec.node == kInvalidNode) {
      std::printf("%s,,%s", time, view.kind_cstr());
    } else {
      std::printf("%s,%llu,%s", time,
                  static_cast<unsigned long long>(rec.node),
                  view.kind_cstr());
    }
    for (const obs::StrId key : key_ids) {
      const obs::StoredField* value = view.find(key);
      std::printf(",%s", value != nullptr ? format_value(*value).c_str() : "");
    }
    std::printf("\n");
  }
}

void print_summary(const obs::EventStore& store) {
  std::map<std::string_view, KindSummary> kinds;
  double span_end = 0.0;
  std::vector<char> all_nodes;
  for (const obs::EventRec& rec : store.records()) {
    KindSummary& summary = kinds[store.name(rec.kind)];
    if (summary.count == 0) summary.first_time = rec.time;
    ++summary.count;
    summary.last_time = rec.time;
    span_end = std::max(span_end, rec.time);
    if (rec.node != kInvalidNode) {
      if (rec.node >= summary.nodes_seen.size()) {
        summary.nodes_seen.resize(rec.node + 1, 0);
      }
      summary.nodes_seen[rec.node] = 1;
      if (rec.node >= all_nodes.size()) {
        all_nodes.resize(rec.node + 1, 0);
      }
      all_nodes[rec.node] = 1;
    }
  }
  const auto live = static_cast<unsigned long long>(
      std::count(all_nodes.begin(), all_nodes.end(), 1));
  char end_buf[32];
  format_double(end_buf, sizeof end_buf, "%.3f", span_end);
  std::printf("%llu records, %llu nodes, t in [0, %s]\n\n",
              static_cast<unsigned long long>(store.size()), live, end_buf);
  std::printf("%-20s %10s %8s %12s %12s\n", "kind", "count", "nodes",
              "first", "last");
  char first[32], last[32];
  for (const auto& [kind, summary] : kinds) {
    format_double(first, sizeof first, "%.3f", summary.first_time);
    format_double(last, sizeof last, "%.3f", summary.last_time);
    std::printf("%-20s %10llu %8llu %12s %12s\n", kind.data(),
                static_cast<unsigned long long>(summary.count),
                static_cast<unsigned long long>(std::count(
                    summary.nodes_seen.begin(), summary.nodes_seen.end(), 1)),
                first, last);
  }
}

// Algorithm-H evolution: every help_interval record in order, then the
// final interval each node settled on.
void print_intervals(const obs::EventStore& store) {
  const obs::StrId help_interval_id = store.find_id("help_interval");
  const obs::StrId interval_id = store.find_id("interval");
  const obs::StrId reason_id = store.find_id("reason");
  std::map<NodeId, double> final_interval;
  std::uint64_t updates = 0;
  char time[32], ival[32];
  for (const obs::EventRec& rec : store.records()) {
    if (rec.kind != help_interval_id || help_interval_id == obs::kNoStrId) {
      continue;
    }
    ++updates;
    const obs::EventView view(store, rec);
    const double interval = view.number(interval_id, 0.0);
    const obs::StoredField* reason = view.find(reason_id);
    format_double(time, sizeof time, "%.3f", rec.time);
    format_double(ival, sizeof ival, "%.3f", interval);
    std::printf("%10s  node %-5llu interval %8s  (%.*s)\n", time,
                static_cast<unsigned long long>(rec.node), ival,
                reason != nullptr ? static_cast<int>(reason->text.size()) : 1,
                reason != nullptr ? reason->text.data() : "?");
    final_interval[rec.node] = interval;
  }
  if (updates == 0) {
    std::printf("no help_interval records "
                "(push-based protocol, or Algorithm H never adapted)\n");
    return;
  }
  std::printf("\nfinal intervals:\n");
  for (const auto& [node, interval] : final_interval) {
    format_double(ival, sizeof ival, "%.3f", interval);
    std::printf("  node %-5llu %8s\n",
                static_cast<unsigned long long>(node), ival);
  }
}

void print_latency_row(const char* label, const obs::Histogram& histogram) {
  const auto& stats = histogram.stats();
  if (stats.count() == 0) {
    std::printf("  %-22s (no samples)\n", label);
    return;
  }
  char mean[32], p50[32], p90[32], p99[32], max[32];
  format_double(mean, sizeof mean, "%.3f", stats.mean());
  format_double(p50, sizeof p50, "%.3f", histogram.p50());
  format_double(p90, sizeof p90, "%.3f", histogram.p90());
  format_double(p99, sizeof p99, "%.3f", histogram.p99());
  format_double(max, sizeof max, "%.3f", stats.max());
  std::printf("  %-22s n=%-6llu mean=%-8s p50=%-8s p90=%-8s "
              "p99=%-8s max=%s\n",
              label, static_cast<unsigned long long>(stats.count()),
              mean, p50, p90, p99, max);
}

void print_episodes(const std::vector<obs::Episode>& episodes,
                    std::uint64_t limit) {
  const obs::EpisodeSummary summary = obs::summarize_episodes(episodes);
  std::printf("%llu episodes, %llu with a pledge, %llu with a migration\n\n",
              static_cast<unsigned long long>(summary.episodes),
              static_cast<unsigned long long>(summary.with_pledge),
              static_cast<unsigned long long>(summary.with_migration));
  print_latency_row("time_to_first_pledge", summary.time_to_first_pledge);
  print_latency_row("time_to_migration", summary.time_to_migration);
  std::printf("\n%-10s %6s %10s %8s %8s %8s %8s %10s %10s\n", "episode",
              "origin", "start", "urgency", "pledges", "attempts",
              "migrated", "t_pledge", "t_migrate");
  std::uint64_t shown = 0;
  char start[32], urgency[32], latency[32];
  for (const obs::Episode& episode : episodes) {
    if (shown >= limit) break;
    ++shown;
    format_double(start, sizeof start, "%.3f", episode.start_time);
    format_double(urgency, sizeof urgency, "%.3f", episode.urgency);
    std::printf("%-10llu %6lld %10s %8s %8llu %8llu %8llu ",
                static_cast<unsigned long long>(episode.id),
                episode.origin == kInvalidNode
                    ? -1LL
                    : static_cast<long long>(episode.origin),
                start, urgency,
                static_cast<unsigned long long>(episode.pledges_received),
                static_cast<unsigned long long>(episode.migration_attempts),
                static_cast<unsigned long long>(episode.migrations));
    if (episode.started && episode.has_pledge()) {
      format_double(latency, sizeof latency, "%.3f",
                    episode.time_to_first_pledge());
      std::printf("%10s ", latency);
    } else {
      std::printf("%10s ", "-");
    }
    if (episode.started && episode.has_migration()) {
      format_double(latency, sizeof latency, "%.3f",
                    episode.time_to_migration());
      std::printf("%10s\n", latency);
    } else {
      std::printf("%10s\n", "-");
    }
  }
  if (episodes.size() > shown) {
    std::printf("... %llu more (raise --limit)\n",
                static_cast<unsigned long long>(episodes.size() - shown));
  }
}

void print_episodes_csv(const std::vector<obs::Episode>& episodes) {
  std::printf("episode,origin,start,urgency,helps_received,pledges_sent,"
              "pledges_received,attempts,aborts,migrations,rejections,"
              "time_to_first_pledge,time_to_migration\n");
  char start[40], urgency[32], latency[40];
  for (const obs::Episode& episode : episodes) {
    std::printf("%llu,", static_cast<unsigned long long>(episode.id));
    if (episode.origin == kInvalidNode) {
      std::printf(",");
    } else {
      std::printf("%llu,", static_cast<unsigned long long>(episode.origin));
    }
    format_double(start, sizeof start, "%.6f", episode.start_time);
    format_double(urgency, sizeof urgency, "%g", episode.urgency);
    std::printf("%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,",
                start, urgency,
                static_cast<unsigned long long>(episode.helps_received),
                static_cast<unsigned long long>(episode.pledges_sent),
                static_cast<unsigned long long>(episode.pledges_received),
                static_cast<unsigned long long>(episode.migration_attempts),
                static_cast<unsigned long long>(episode.migration_aborts),
                static_cast<unsigned long long>(episode.migrations),
                static_cast<unsigned long long>(episode.rejections));
    if (episode.started && episode.has_pledge()) {
      format_double(latency, sizeof latency, "%.6f",
                    episode.time_to_first_pledge());
      std::printf("%s,", latency);
    } else {
      std::printf(",");
    }
    if (episode.started && episode.has_migration()) {
      format_double(latency, sizeof latency, "%.6f",
                    episode.time_to_migration());
      std::printf("%s\n", latency);
    } else {
      std::printf("\n");
    }
  }
}

int run_check(const obs::EventStore& store, const Flags& flags) {
  obs::InvariantConfig config;
  config.initial_help_interval =
      flags.get_double("initial-interval", config.initial_help_interval);
  config.help_upper_limit =
      flags.get_double("upper-limit", config.help_upper_limit);
  config.help_interval_floor =
      flags.get_double("interval-floor", config.help_interval_floor);
  config.alpha = flags.get_double("alpha", config.alpha);
  config.beta = flags.get_double("beta", config.beta);
  config.pledge_threshold =
      flags.get_double("pledge-threshold", config.pledge_threshold);
  config.tolerance = flags.get_double("tolerance", config.tolerance);

  const std::vector<obs::SpanEvent> spans = obs::normalize_events(store);
  const std::vector<obs::Violation> violations =
      obs::check_invariants(spans, config);
  if (violations.empty()) {
    const std::vector<obs::Episode> episodes = obs::build_episodes(spans);
    std::printf("OK: %llu records, %llu episodes, all invariants hold\n",
                static_cast<unsigned long long>(store.size()),
                static_cast<unsigned long long>(episodes.size()));
    return kExitOk;
  }
  char time[32];
  for (const obs::Violation& violation : violations) {
    format_double(time, sizeof time, "%.3f", violation.time);
    std::printf("VIOLATION %-26s t=%s node=%llu  %s\n",
                violation.invariant, time,
                static_cast<unsigned long long>(violation.node),
                violation.detail.c_str());
  }
  std::printf("%llu violation(s) in %llu records\n",
              static_cast<unsigned long long>(violations.size()),
              static_cast<unsigned long long>(store.size()));
  return kExitViolation;
}

/// --critical-path [--blame[=K]] [--top=K] [--check]: lineage-walk every
/// episode, print the phase-attribution table, optionally the top-K
/// slowest edges, and optionally gate on structural consistency.
int run_critical_path(const obs::EventStore& store, const Flags& flags,
                      std::uint64_t dropped_input) {
  const std::vector<obs::SpanEvent> spans = obs::normalize_events(store);
  const obs::CriticalPathAnalysis analysis =
      obs::analyze_critical_paths(spans);
  std::fputs(obs::render_critical_path(analysis).c_str(), stdout);
  if (flags.has("blame")) {
    const std::int64_t top_k =
        flags.get_int("top", flags.get_int("blame", 10));
    std::fputs(
        obs::render_blame(analysis,
                          top_k > 0 ? static_cast<std::size_t>(top_k) : 10)
            .c_str(),
        stdout);
  }
  if (!flags.get_bool("check", false)) return kExitOk;

  const std::vector<std::string> violations =
      obs::check_critical_paths(analysis);
  for (const std::string& violation : violations) {
    std::printf("VIOLATION critical_path  %s\n", violation.c_str());
  }
  if (!violations.empty()) return kExitViolation;
  if (dropped_input > 0) {
    std::printf("FAIL: %llu record(s)/line(s) were dropped from the input "
                "— the paths above cover only what parsed\n",
                static_cast<unsigned long long>(dropped_input));
    return kExitViolation;
  }
  std::printf("OK: %llu critical path(s) structurally consistent\n",
              static_cast<unsigned long long>(analysis.paths.size()));
  return kExitOk;
}

/// --export=perfetto [--profile=FILE] [--out=FILE]: Chrome-trace JSON.
int run_export_perfetto(const obs::EventStore& store, const Flags& flags) {
  const std::vector<obs::SpanEvent> spans = obs::normalize_events(store);
  const obs::CriticalPathAnalysis analysis =
      obs::analyze_critical_paths(spans);
  std::vector<obs::ProfileEntry> profile;
  const std::string profile_path = flags.get_string("profile", "");
  if (!profile_path.empty()) {
    std::ifstream in(profile_path);
    if (!in) {
      std::cerr << "cannot open --profile file: " << profile_path << '\n';
      return kExitUsage;
    }
    profile = obs::parse_profile_tsv(in);
  }
  const std::vector<obs::ChromeEvent> chrome =
      obs::build_chrome_events(spans, analysis, profile);
  const std::string json = obs::render_chrome_json(chrome);
  const std::string out_path = flags.get_string("out", "");
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return kExitOk;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open --out file: " << out_path << '\n';
    return kExitUsage;
  }
  out << json;
  std::printf("wrote %llu trace events to %s (load in ui.perfetto.dev)\n",
              static_cast<unsigned long long>(chrome.size()),
              out_path.c_str());
  return kExitOk;
}

std::uint64_t file_size_of(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return 0;
  const auto pos = file.tellg();
  return pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

/// One --follow dashboard frame rendered from a freshly loaded store.
void render_follow_frame(const obs::EventStore& store,
                         const std::string& path, std::uint64_t frame,
                         std::uint64_t dropped, bool plain) {
  if (!plain) std::fputs("\x1b[H\x1b[2J", stdout);  // clear + home

  const obs::StrId k_help = store.find_id("help_sent");
  const obs::StrId k_pledge = store.find_id("pledge_sent");
  const obs::StrId k_arrival = store.find_id("task_arrival");
  const obs::StrId k_local = store.find_id("task_admit_local");
  const obs::StrId k_migrated = store.find_id("task_admit_migrated");
  const obs::StrId k_rejected = store.find_id("task_rejected");
  const obs::StrId k_killed = store.find_id("node_killed");
  const obs::StrId k_restored = store.find_id("node_restored");
  const obs::StrId k_sample = store.find_id("node_sample");
  const obs::StrId k_firing = store.find_id("alert_firing");
  const obs::StrId k_cleared = store.find_id("alert_cleared");
  const obs::StrId f_episode = store.find_id("episode");
  const obs::StrId f_rule = store.find_id("rule");
  const obs::StrId f_occupancy = store.find_id("occupancy");
  const obs::StrId f_utilization = store.find_id("utilization");

  double span_end = 0.0;
  std::uint64_t helps = 0, pledges = 0, arrivals = 0, local = 0;
  std::uint64_t migrated = 0, rejected = 0;
  std::set<NodeId> seen, dead;
  std::set<std::uint64_t> open_episodes;
  std::uint64_t episodes_opened = 0, episodes_decided = 0;
  struct NodeGauge {
    double occupancy = 0.0;
    double utilization = 0.0;
  };
  std::map<NodeId, NodeGauge> gauges;
  struct AlertLine {
    double time;
    bool firing;
    std::string rule;
  };
  std::map<std::string, AlertLine> alert_state;  // latest transition / rule
  std::vector<AlertLine> recent;

  for (const obs::EventRec& rec : store.records()) {
    span_end = std::max(span_end, rec.time);
    if (rec.node != kInvalidNode) seen.insert(rec.node);
    if (rec.kind == k_arrival) ++arrivals;
    if (rec.kind == k_local) ++local;
    if (rec.kind == k_pledge) ++pledges;
    if (rec.kind == k_killed) dead.insert(rec.node);
    if (rec.kind == k_restored) dead.erase(rec.node);
    if (rec.kind == k_help) {
      ++helps;
      const obs::EventView view(store, rec);
      const std::uint64_t episode =
          static_cast<std::uint64_t>(view.number(f_episode, 0.0));
      if (episode != 0 && open_episodes.insert(episode).second) {
        ++episodes_opened;
      }
    }
    if (rec.kind == k_migrated || rec.kind == k_rejected) {
      if (rec.kind == k_migrated) ++migrated;
      if (rec.kind == k_rejected) ++rejected;
      const obs::EventView view(store, rec);
      const std::uint64_t episode =
          static_cast<std::uint64_t>(view.number(f_episode, 0.0));
      if (episode != 0 && open_episodes.erase(episode) > 0) {
        ++episodes_decided;
      }
    }
    if (rec.kind == k_sample && rec.node != kInvalidNode) {
      const obs::EventView view(store, rec);
      NodeGauge& gauge = gauges[rec.node];
      gauge.occupancy = view.number(f_occupancy, 0.0);
      gauge.utilization = view.number(f_utilization, 0.0);
    }
    if (rec.kind == k_firing || rec.kind == k_cleared) {
      const obs::EventView view(store, rec);
      const obs::StoredField* rule = view.find(f_rule);
      AlertLine line{rec.time, rec.kind == k_firing,
                     rule != nullptr ? std::string(rule->text) : "?"};
      alert_state[line.rule] = line;
      recent.push_back(std::move(line));
    }
  }

  char when[32];
  format_double(when, sizeof when, "%.3f", span_end);
  std::printf("%s  frame %llu  t=[0, %s]  %llu records",
              path.c_str(), static_cast<unsigned long long>(frame), when,
              static_cast<unsigned long long>(store.size()));
  if (dropped > 0) {
    std::printf("  (%llu dropped)",
                static_cast<unsigned long long>(dropped));
  }
  std::printf("\n\n");

  std::printf("nodes: %llu seen, %llu alive",
              static_cast<unsigned long long>(seen.size()),
              static_cast<unsigned long long>(seen.size() - dead.size()));
  if (!dead.empty()) {
    std::printf(", %llu dead", static_cast<unsigned long long>(dead.size()));
  }
  std::printf("\ntasks: %llu arrivals, %llu admitted "
              "(local %llu / migrated %llu), %llu rejected\n",
              static_cast<unsigned long long>(arrivals),
              static_cast<unsigned long long>(local + migrated),
              static_cast<unsigned long long>(local),
              static_cast<unsigned long long>(migrated),
              static_cast<unsigned long long>(rejected));
  std::printf("messages: %llu help, %llu pledge\n",
              static_cast<unsigned long long>(helps),
              static_cast<unsigned long long>(pledges));
  std::printf("episodes: %llu opened, %llu decided, %llu open\n",
              static_cast<unsigned long long>(episodes_opened),
              static_cast<unsigned long long>(episodes_decided),
              static_cast<unsigned long long>(open_episodes.size()));

  if (!alert_state.empty()) {
    std::printf("\nalerts:\n");
    char time[32];
    for (const auto& [rule, line] : alert_state) {
      format_double(time, sizeof time, "%.3f", line.time);
      std::printf("  %-24s %s since %s\n", rule.c_str(),
                  line.firing ? "FIRING" : "clear ", time);
    }
    const std::size_t show = std::min<std::size_t>(recent.size(), 5);
    std::printf("recent transitions:\n");
    for (std::size_t i = recent.size() - show; i < recent.size(); ++i) {
      format_double(time, sizeof time, "%.3f", recent[i].time);
      std::printf("  %10s  %s %s\n", time,
                  recent[i].firing ? "firing " : "cleared",
                  recent[i].rule.c_str());
    }
  }

  if (!gauges.empty()) {
    std::printf("\n%6s %10s %12s  (latest node_sample)\n", "node",
                "occupancy", "utilization");
    std::size_t shown = 0;
    for (const auto& [node, gauge] : gauges) {
      if (shown >= 16) {
        std::printf("  ... %llu more nodes\n",
                    static_cast<unsigned long long>(gauges.size() - shown));
        break;
      }
      ++shown;
      char occ[32], util[32];
      format_double(occ, sizeof occ, "%.3f", gauge.occupancy);
      format_double(util, sizeof util, "%.3f", gauge.utilization);
      std::printf("%6llu %10s %12s\n",
                  static_cast<unsigned long long>(node), occ, util);
    }
  }
  std::fflush(stdout);
}

/// --follow: poll the file, reload on growth, render a dashboard frame.
/// Terminates on --once, --max-frames, or --idle-exit; with --check the
/// invariant gate then runs over the final load (exit 2 on violation or
/// dropped input). Runs forever otherwise (Ctrl-C to stop).
int run_follow(const std::string& path, const Flags& flags, unsigned jobs) {
  const double refresh = std::max(0.05, flags.get_double("refresh", 1.0));
  const bool once = flags.get_bool("once", false);
  const bool plain = flags.get_bool("plain", false);
  const double idle_exit = flags.get_double("idle-exit", 0.0);
  const std::uint64_t max_frames = static_cast<std::uint64_t>(
      std::max<std::int64_t>(flags.get_int("max-frames", 0), 0));
  const bool check = flags.get_bool("check", false);
  if (check && !once && idle_exit <= 0.0 && max_frames == 0) {
    std::cerr << "--follow --check needs a termination condition "
                 "(--once, --idle-exit=<s> or --max-frames=<n>) so the "
                 "gate has a final trace to judge\n";
    return kExitUsage;
  }

  // Reloads the whole file; incremental tailing would be unsound for
  // flight dumps (rewritten, not appended) and buys little for JSONL at
  // dashboard cadence.
  std::uint64_t dropped = 0;
  const auto load = [&](obs::EventStore& store, std::string* error) {
    dropped = 0;
    if (obs::is_flight_file(path)) {
      obs::FlightStoreInfo info;
      obs::TraceLoadStats fstats;
      if (!obs::load_flight_file(path, store, info, fstats, error)) {
        return false;
      }
      dropped = fstats.malformed;
      return true;
    }
    obs::IngestStats istats;
    if (!obs::load_trace_store(path, store, istats, error, jobs)) {
      return false;
    }
    dropped = istats.malformed;
    return true;
  };

  std::uint64_t last_size = ~0ull;
  std::uint64_t frames = 0;
  auto last_change = std::chrono::steady_clock::now();
  bool loaded_once = false;
  obs::EventStore final_store;
  std::uint64_t final_dropped = 0;
  for (;;) {
    const std::uint64_t size = file_size_of(path);
    if (size != last_size) {
      last_size = size;
      last_change = std::chrono::steady_clock::now();
      obs::EventStore store;
      std::string error;
      if (!load(store, &error)) {
        if (!loaded_once) {
          std::cerr << path << ": " << error << '\n';
          return kExitUsage;
        }
        // A reload can race a mid-rewrite flight dump; keep the last
        // good frame and retry at the next poll.
      } else {
        loaded_once = true;
        ++frames;
        render_follow_frame(store, path, frames, dropped, plain);
        final_store = std::move(store);
        final_dropped = dropped;
      }
    }
    if (once && loaded_once) break;
    if (max_frames > 0 && frames >= max_frames) break;
    if (idle_exit > 0.0 && loaded_once &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_change)
                .count() >= idle_exit) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(refresh));
  }

  if (!check) return kExitOk;
  const int result = run_check(final_store, flags);
  if (result == kExitOk && final_dropped > 0) {
    std::printf("FAIL: %llu record(s)/line(s) were dropped from the final "
                "load — the clean verdict above covers only what parsed\n",
                static_cast<unsigned long long>(final_dropped));
    return kExitViolation;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  std::string path = flags.get_string("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty() || flags.get_bool("help", false)) {
    std::cout << "usage: realtor_trace <run.jsonl|flight.bin> "
                 "[--node=<id>] [--kind=<name>] [--intervals] "
                 "[--episodes] [--check] [--scorecard] "
                 "[--critical-path] [--blame[=<k>]] [--top=<k>] "
                 "[--export=perfetto] [--profile=<tsv>] [--out=<file>] "
                 "[--format=csv|json] [--limit=<n>] [--jobs=<n>] [--stats]\n"
                 "       realtor_trace <file> --follow [--refresh=<s>] "
                 "[--once] [--plain] [--idle-exit=<s>] [--max-frames=<n>] "
                 "[--check]\n"
                 "--check options: --initial-interval --upper-limit "
                 "--interval-floor --alpha --beta --pledge-threshold "
                 "--tolerance\n"
                 "exit codes: 0 ok, 1 usage/unreadable input, "
                 "2 gate violation (see README for the full contract)\n";
    return path.empty() ? kExitUsage : kExitOk;
  }

  // 0 = resolve_jobs: one parse shard per hardware thread. Serial and
  // parallel ingest produce identical stores, so --jobs never changes
  // what any mode below prints.
  const unsigned jobs =
      static_cast<unsigned>(std::max<std::int64_t>(flags.get_int("jobs", 0),
                                                   0));
  const bool want_stats = flags.get_bool("stats", false);

  if (flags.get_bool("follow", false)) {
    // --follow is a live viewer: it owns ingestion (reload-on-growth) and
    // renders a dashboard, so the offline analysis modes cannot combine
    // with it — only --check (as a post-follow gate) and the follow knobs.
    for (const char* incompatible :
         {"episodes", "intervals", "scorecard", "critical-path", "blame",
          "export", "node", "kind", "format"}) {
      if (flags.has(incompatible)) {
        std::cerr << "--follow does not combine with --" << incompatible
                  << " (follow renders the live dashboard; run the "
                     "analysis mode on the finished file instead)\n";
        return kExitUsage;
      }
    }
    return run_follow(path, flags, jobs);
  }

  obs::EventStore store;
  std::string error;
  // Input records/lines that were skipped rather than analyzed; any
  // --check gate refuses a clean verdict while this is non-zero.
  std::uint64_t dropped_input = 0;
  std::uint64_t ingest_bytes = 0;
  std::size_t ingest_malformed = 0;
  unsigned ingest_shards = 1;
  const char* ingest_mode = "read";
  const auto ingest_start = std::chrono::steady_clock::now();
  if (obs::is_flight_file(path)) {
    obs::FlightStoreInfo info;
    obs::TraceLoadStats fstats;
    if (!obs::load_flight_file(path, store, info, fstats, &error)) {
      std::cerr << path << ": " << error << '\n';
      return kExitUsage;
    }
    if (info.total_dropped() > 0) {
      std::cerr << path << ": ring wrap-around dropped "
                << info.total_dropped()
                << " oldest record(s) before the dump\n";
    }
    if (fstats.malformed > 0) {
      std::cerr << path << ": "
                << (info.truncated ? "truncated dump, " : "")
                << fstats.malformed
                << " unrecoverable record(s) skipped\n";
    }
    dropped_input = fstats.malformed;
    ingest_malformed = fstats.malformed;
    ingest_bytes = file_size_of(path);
    ingest_mode = "flight";
  } else {
    obs::IngestStats istats;
    if (!obs::load_trace_store(path, store, istats, &error, jobs)) {
      std::cerr << path << ": " << error << '\n';
      return kExitUsage;
    }
    if (istats.malformed > 0) {
      std::cerr << path << ": skipped " << istats.malformed
                << " malformed line(s), first at line "
                << istats.first_malformed_line << ": "
                << istats.first_error << '\n';
    }
    dropped_input = istats.malformed;
    ingest_malformed = istats.malformed;
    ingest_bytes = istats.bytes;
    ingest_shards = istats.shards;
    ingest_mode = istats.mapped ? "mmap" : "read";
  }
  if (want_stats) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ingest_start)
            .count();
    const double mib = static_cast<double>(ingest_bytes) / (1024.0 * 1024.0);
    char rate[32];
    format_double(rate, sizeof rate, "%.1f",
                  seconds > 0.0 ? mib / seconds : 0.0);
    std::fprintf(stderr,
                 "ingest: %llu bytes, %llu events, %llu malformed, "
                 "%s MB/s (%s, shards=%u)\n",
                 static_cast<unsigned long long>(ingest_bytes),
                 static_cast<unsigned long long>(store.size()),
                 static_cast<unsigned long long>(ingest_malformed), rate,
                 ingest_mode, ingest_shards);
  }

  const std::string format = flags.get_string("format", "text");
  const bool scorecard_mode = flags.get_bool("scorecard", false);
  if (format != "text" && format != "csv" &&
      !(format == "json" && scorecard_mode)) {
    std::cerr << "unknown --format: " << format
              << " (text|csv; json with --scorecard)\n";
    return kExitUsage;
  }
  const bool csv = format == "csv";

  if (flags.has("export")) {
    const std::string export_format = flags.get_string("export", "");
    if (export_format != "perfetto") {
      std::cerr << "unknown --export: " << export_format
                << " (perfetto)\n";
      return kExitUsage;
    }
    return run_export_perfetto(store, flags);
  }

  if (flags.get_bool("critical-path", false) || flags.has("blame")) {
    return run_critical_path(store, flags, dropped_input);
  }

  if (flags.get_bool("check", false)) {
    const int result = run_check(store, flags);
    if (result == kExitOk && dropped_input > 0) {
      std::printf("FAIL: %llu malformed record(s)/line(s) were dropped "
                  "from the input — the clean verdict above covers only "
                  "what parsed\n",
                  static_cast<unsigned long long>(dropped_input));
      return kExitViolation;
    }
    return result;
  }

  if (scorecard_mode) {
    const obs::Scorecard scorecard = obs::build_scorecard(store);
    const std::string out = format == "json"
                                ? obs::render_scorecard_json(scorecard)
                                : obs::render_scorecard_text(scorecard);
    std::fputs(out.c_str(), stdout);
    return kExitOk;
  }

  if (flags.get_bool("episodes", false)) {
    const std::vector<obs::Episode> episodes =
        obs::build_episodes(obs::normalize_events(store));
    if (csv) {
      print_episodes_csv(episodes);
    } else {
      print_episodes(episodes,
                     static_cast<std::uint64_t>(flags.get_int("limit", 50)));
    }
    return kExitOk;
  }

  if (flags.get_bool("intervals", false)) {
    print_intervals(store);
    return kExitOk;
  }

  const bool filter_node = flags.has("node");
  const NodeId node = static_cast<NodeId>(flags.get_int("node", 0));
  const bool filter_kind = flags.has("kind");
  const std::string kind = flags.get_string("kind", "");
  obs::StrId kind_id = obs::kNoStrId;
  if (filter_kind) {
    obs::EventKind parsed;
    if (!obs::parse_event_kind(kind, parsed)) {
      std::cerr << "unknown event kind: " << kind << '\n';
      return kExitUsage;
    }
    kind_id = store.find_id(kind);
  }
  if (csv) {
    print_events_csv(store, filter_node, node, filter_kind, kind_id);
    return kExitOk;
  }
  if (filter_node || filter_kind) {
    print_timeline(store, filter_node, node, filter_kind, kind_id,
                   static_cast<std::uint64_t>(flags.get_int("limit", 100)));
    return kExitOk;
  }
  print_summary(store);
  return kExitOk;
}
