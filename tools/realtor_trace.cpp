// realtor_trace — offline analyzer for structured run traces: JSONL files
// from realtor_sim --trace=... and binary flight-recorder dumps from
// --flight-recorder (auto-detected by magic; every mode below works on
// either).
//
//   realtor_trace run.jsonl                  # event-kind summary
//   realtor_trace flight.bin                 # same, from a flight dump
//   realtor_trace run.jsonl --node=7         # one node's timeline
//   realtor_trace run.jsonl --kind=help_sent # filter (summary + timeline)
//   realtor_trace run.jsonl --intervals      # Algorithm-H interval history
//   realtor_trace run.jsonl --episodes       # discovery-episode spans +
//                                            # latency percentiles
//   realtor_trace run.jsonl --check          # protocol invariant checker
//                                            # (nonzero exit on violation)
//   realtor_trace run.jsonl --scorecard      # survivability scorecard:
//                                            # per-attack MTTR, stage
//                                            # latency breakdown, miss/
//                                            # drop attribution
//   realtor_trace run.jsonl --scorecard --format=json
//                                            # machine-readable scorecard
//   realtor_trace run.jsonl --format=csv     # machine-readable event/
//                                            # episode tables
//   realtor_trace run.jsonl --limit=50       # cap timeline/episode rows
//   realtor_trace run.jsonl --critical-path  # per-episode lineage walk:
//                                            # latency attributed to named
//                                            # phases, p50/p90/p99 tables
//   realtor_trace run.jsonl --critical-path --blame=10
//                                            # top-K slowest lineage edges
//   realtor_trace run.jsonl --critical-path --check
//                                            # structural gate: phases of
//                                            # every path must telescope
//   realtor_trace run.jsonl --export=perfetto --out=run.perfetto-trace
//                                            # Chrome-trace JSON for
//                                            # ui.perfetto.dev; add
//                                            # --profile=prof.tsv to merge
//                                            # a realtor_sim --profile dump
//
// --check replays the paper's algorithmic guarantees over the trace (see
// obs/invariants.hpp for the catalog); parameters of the traced run can be
// overridden with --alpha --beta --initial-interval --upper-limit
// --interval-floor --pledge-threshold --tolerance.
//
// Damaged input is skipped but counted — malformed JSONL lines, and
// unrecoverable records in truncated/corrupt flight dumps: every mode
// reports the count on stderr, and the --check gates treat any dropped
// input as a violation — an analysis that silently ignored part of its
// input must not report a clean bill.
//
// Exit codes (relied on by CI):
//   0  analysis ran and every requested gate passed
//   1  bad usage or unreadable input (bad path, bad magic, bad flag)
//   2  a gate tripped: invariant violation, critical-path inconsistency,
//      or dropped input under --check
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/profile.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_reader.hpp"
#include "obs/invariants.hpp"
#include "obs/perfetto.hpp"
#include "obs/scorecard.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace realtor;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitViolation = 2;

struct KindSummary {
  std::uint64_t count = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  std::vector<char> nodes_seen;  // indexed by node id
};

std::string format_value(const obs::JsonValue& value) {
  switch (value.type) {
    case obs::JsonValue::Type::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", value.number);
      return buf;
    }
    case obs::JsonValue::Type::kString:
      return value.text;
    case obs::JsonValue::Type::kBool:
      return value.boolean ? "true" : "false";
    case obs::JsonValue::Type::kNull:
      return "null";
  }
  return "";
}

std::string format_fields(const obs::ParsedEvent& event) {
  std::string out;
  for (const auto& [key, value] : event.fields) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += format_value(value);
  }
  return out;
}

bool keep(const obs::ParsedEvent& event, bool filter_node, NodeId node,
          bool filter_kind, const std::string& kind) {
  if (filter_node && event.node != node) return false;
  if (filter_kind && event.kind != kind) return false;
  return true;
}

void print_timeline(const std::vector<obs::ParsedEvent>& events,
                    bool filter_node, NodeId node, bool filter_kind,
                    const std::string& kind, std::uint64_t limit) {
  std::uint64_t shown = 0;
  std::uint64_t matched = 0;
  for (const obs::ParsedEvent& event : events) {
    if (!keep(event, filter_node, node, filter_kind, kind)) continue;
    ++matched;
    if (shown >= limit) continue;
    ++shown;
    std::printf("%10.3f  ", event.time);
    if (event.node == kInvalidNode) {
      std::printf("%6s", "-");
    } else {
      std::printf("%6llu", static_cast<unsigned long long>(event.node));
    }
    std::printf("  %-20s %s\n", event.kind.c_str(),
                format_fields(event).c_str());
  }
  if (matched > shown) {
    std::printf("... %llu more (raise --limit)\n",
                static_cast<unsigned long long>(matched - shown));
  }
}

/// Events as CSV: time,node,kind plus the sorted union of payload keys.
/// Cells of absent fields stay empty, so every row has the same width.
void print_events_csv(const std::vector<obs::ParsedEvent>& events,
                      bool filter_node, NodeId node, bool filter_kind,
                      const std::string& kind) {
  std::set<std::string> keys;
  for (const obs::ParsedEvent& event : events) {
    if (!keep(event, filter_node, node, filter_kind, kind)) continue;
    for (const auto& [key, value] : event.fields) {
      keys.insert(key);
    }
  }
  std::printf("time,node,kind");
  for (const std::string& key : keys) {
    std::printf(",%s", key.c_str());
  }
  std::printf("\n");
  for (const obs::ParsedEvent& event : events) {
    if (!keep(event, filter_node, node, filter_kind, kind)) continue;
    if (event.node == kInvalidNode) {
      std::printf("%.6f,,%s", event.time, event.kind.c_str());
    } else {
      std::printf("%.6f,%llu,%s", event.time,
                  static_cast<unsigned long long>(event.node),
                  event.kind.c_str());
    }
    for (const std::string& key : keys) {
      const obs::JsonValue* value = event.find(key);
      std::printf(",%s", value != nullptr ? format_value(*value).c_str() : "");
    }
    std::printf("\n");
  }
}

void print_summary(const std::vector<obs::ParsedEvent>& events) {
  std::map<std::string, KindSummary> kinds;
  double span_end = 0.0;
  std::vector<char> all_nodes;
  for (const obs::ParsedEvent& event : events) {
    KindSummary& summary = kinds[event.kind];
    if (summary.count == 0) summary.first_time = event.time;
    ++summary.count;
    summary.last_time = event.time;
    span_end = std::max(span_end, event.time);
    if (event.node != kInvalidNode) {
      if (event.node >= summary.nodes_seen.size()) {
        summary.nodes_seen.resize(event.node + 1, 0);
      }
      summary.nodes_seen[event.node] = 1;
      if (event.node >= all_nodes.size()) {
        all_nodes.resize(event.node + 1, 0);
      }
      all_nodes[event.node] = 1;
    }
  }
  const auto live = static_cast<unsigned long long>(
      std::count(all_nodes.begin(), all_nodes.end(), 1));
  std::printf("%llu records, %llu nodes, t in [0, %.3f]\n\n",
              static_cast<unsigned long long>(events.size()), live, span_end);
  std::printf("%-20s %10s %8s %12s %12s\n", "kind", "count", "nodes",
              "first", "last");
  for (const auto& [kind, summary] : kinds) {
    std::printf("%-20s %10llu %8llu %12.3f %12.3f\n", kind.c_str(),
                static_cast<unsigned long long>(summary.count),
                static_cast<unsigned long long>(std::count(
                    summary.nodes_seen.begin(), summary.nodes_seen.end(), 1)),
                summary.first_time, summary.last_time);
  }
}

// Algorithm-H evolution: every help_interval record in order, then the
// final interval each node settled on.
void print_intervals(const std::vector<obs::ParsedEvent>& events) {
  std::map<NodeId, double> final_interval;
  std::uint64_t updates = 0;
  for (const obs::ParsedEvent& event : events) {
    if (event.kind != "help_interval") continue;
    ++updates;
    const double interval = event.number("interval", 0.0);
    const obs::JsonValue* reason = event.find("reason");
    std::printf("%10.3f  node %-5llu interval %8.3f  (%s)\n", event.time,
                static_cast<unsigned long long>(event.node), interval,
                reason != nullptr ? reason->text.c_str() : "?");
    final_interval[event.node] = interval;
  }
  if (updates == 0) {
    std::printf("no help_interval records "
                "(push-based protocol, or Algorithm H never adapted)\n");
    return;
  }
  std::printf("\nfinal intervals:\n");
  for (const auto& [node, interval] : final_interval) {
    std::printf("  node %-5llu %8.3f\n",
                static_cast<unsigned long long>(node), interval);
  }
}

void print_latency_row(const char* label, const obs::Histogram& histogram) {
  const auto& stats = histogram.stats();
  if (stats.count() == 0) {
    std::printf("  %-22s (no samples)\n", label);
    return;
  }
  std::printf("  %-22s n=%-6llu mean=%-8.3f p50=%-8.3f p90=%-8.3f "
              "p99=%-8.3f max=%.3f\n",
              label, static_cast<unsigned long long>(stats.count()),
              stats.mean(), histogram.p50(), histogram.p90(),
              histogram.p99(), stats.max());
}

void print_episodes(const std::vector<obs::Episode>& episodes,
                    std::uint64_t limit) {
  const obs::EpisodeSummary summary = obs::summarize_episodes(episodes);
  std::printf("%llu episodes, %llu with a pledge, %llu with a migration\n\n",
              static_cast<unsigned long long>(summary.episodes),
              static_cast<unsigned long long>(summary.with_pledge),
              static_cast<unsigned long long>(summary.with_migration));
  print_latency_row("time_to_first_pledge", summary.time_to_first_pledge);
  print_latency_row("time_to_migration", summary.time_to_migration);
  std::printf("\n%-10s %6s %10s %8s %8s %8s %8s %10s %10s\n", "episode",
              "origin", "start", "urgency", "pledges", "attempts",
              "migrated", "t_pledge", "t_migrate");
  std::uint64_t shown = 0;
  for (const obs::Episode& episode : episodes) {
    if (shown >= limit) break;
    ++shown;
    std::printf("%-10llu %6lld %10.3f %8.3f %8llu %8llu %8llu ",
                static_cast<unsigned long long>(episode.id),
                episode.origin == kInvalidNode
                    ? -1LL
                    : static_cast<long long>(episode.origin),
                episode.start_time, episode.urgency,
                static_cast<unsigned long long>(episode.pledges_received),
                static_cast<unsigned long long>(episode.migration_attempts),
                static_cast<unsigned long long>(episode.migrations));
    if (episode.started && episode.has_pledge()) {
      std::printf("%10.3f ", episode.time_to_first_pledge());
    } else {
      std::printf("%10s ", "-");
    }
    if (episode.started && episode.has_migration()) {
      std::printf("%10.3f\n", episode.time_to_migration());
    } else {
      std::printf("%10s\n", "-");
    }
  }
  if (episodes.size() > shown) {
    std::printf("... %llu more (raise --limit)\n",
                static_cast<unsigned long long>(episodes.size() - shown));
  }
}

void print_episodes_csv(const std::vector<obs::Episode>& episodes) {
  std::printf("episode,origin,start,urgency,helps_received,pledges_sent,"
              "pledges_received,attempts,aborts,migrations,rejections,"
              "time_to_first_pledge,time_to_migration\n");
  for (const obs::Episode& episode : episodes) {
    std::printf("%llu,", static_cast<unsigned long long>(episode.id));
    if (episode.origin == kInvalidNode) {
      std::printf(",");
    } else {
      std::printf("%llu,", static_cast<unsigned long long>(episode.origin));
    }
    std::printf("%.6f,%g,%llu,%llu,%llu,%llu,%llu,%llu,%llu,",
                episode.start_time, episode.urgency,
                static_cast<unsigned long long>(episode.helps_received),
                static_cast<unsigned long long>(episode.pledges_sent),
                static_cast<unsigned long long>(episode.pledges_received),
                static_cast<unsigned long long>(episode.migration_attempts),
                static_cast<unsigned long long>(episode.migration_aborts),
                static_cast<unsigned long long>(episode.migrations),
                static_cast<unsigned long long>(episode.rejections));
    if (episode.started && episode.has_pledge()) {
      std::printf("%.6f,", episode.time_to_first_pledge());
    } else {
      std::printf(",");
    }
    if (episode.started && episode.has_migration()) {
      std::printf("%.6f\n", episode.time_to_migration());
    } else {
      std::printf("\n");
    }
  }
}

int run_check(const std::vector<obs::ParsedEvent>& events,
              const Flags& flags) {
  obs::InvariantConfig config;
  config.initial_help_interval =
      flags.get_double("initial-interval", config.initial_help_interval);
  config.help_upper_limit =
      flags.get_double("upper-limit", config.help_upper_limit);
  config.help_interval_floor =
      flags.get_double("interval-floor", config.help_interval_floor);
  config.alpha = flags.get_double("alpha", config.alpha);
  config.beta = flags.get_double("beta", config.beta);
  config.pledge_threshold =
      flags.get_double("pledge-threshold", config.pledge_threshold);
  config.tolerance = flags.get_double("tolerance", config.tolerance);

  const std::vector<obs::SpanEvent> spans = obs::normalize_events(events);
  const std::vector<obs::Violation> violations =
      obs::check_invariants(spans, config);
  if (violations.empty()) {
    const std::vector<obs::Episode> episodes = obs::build_episodes(spans);
    std::printf("OK: %llu records, %llu episodes, all invariants hold\n",
                static_cast<unsigned long long>(events.size()),
                static_cast<unsigned long long>(episodes.size()));
    return kExitOk;
  }
  for (const obs::Violation& violation : violations) {
    std::printf("VIOLATION %-26s t=%.3f node=%llu  %s\n",
                violation.invariant, violation.time,
                static_cast<unsigned long long>(violation.node),
                violation.detail.c_str());
  }
  std::printf("%llu violation(s) in %llu records\n",
              static_cast<unsigned long long>(violations.size()),
              static_cast<unsigned long long>(events.size()));
  return kExitViolation;
}

/// --critical-path [--blame[=K]] [--top=K] [--check]: lineage-walk every
/// episode, print the phase-attribution table, optionally the top-K
/// slowest edges, and optionally gate on structural consistency.
int run_critical_path(const std::vector<obs::ParsedEvent>& events,
                      const Flags& flags, std::uint64_t dropped_input) {
  const std::vector<obs::SpanEvent> spans = obs::normalize_events(events);
  const obs::CriticalPathAnalysis analysis =
      obs::analyze_critical_paths(spans);
  std::fputs(obs::render_critical_path(analysis).c_str(), stdout);
  if (flags.has("blame")) {
    const std::int64_t top_k =
        flags.get_int("top", flags.get_int("blame", 10));
    std::fputs(
        obs::render_blame(analysis,
                          top_k > 0 ? static_cast<std::size_t>(top_k) : 10)
            .c_str(),
        stdout);
  }
  if (!flags.get_bool("check", false)) return kExitOk;

  const std::vector<std::string> violations =
      obs::check_critical_paths(analysis);
  for (const std::string& violation : violations) {
    std::printf("VIOLATION critical_path  %s\n", violation.c_str());
  }
  if (!violations.empty()) return kExitViolation;
  if (dropped_input > 0) {
    std::printf("FAIL: %llu record(s)/line(s) were dropped from the input "
                "— the paths above cover only what parsed\n",
                static_cast<unsigned long long>(dropped_input));
    return kExitViolation;
  }
  std::printf("OK: %llu critical path(s) structurally consistent\n",
              static_cast<unsigned long long>(analysis.paths.size()));
  return kExitOk;
}

/// --export=perfetto [--profile=FILE] [--out=FILE]: Chrome-trace JSON.
int run_export_perfetto(const std::vector<obs::ParsedEvent>& events,
                        const Flags& flags) {
  const std::vector<obs::SpanEvent> spans = obs::normalize_events(events);
  const obs::CriticalPathAnalysis analysis =
      obs::analyze_critical_paths(spans);
  std::vector<obs::ProfileEntry> profile;
  const std::string profile_path = flags.get_string("profile", "");
  if (!profile_path.empty()) {
    std::ifstream in(profile_path);
    if (!in) {
      std::cerr << "cannot open --profile file: " << profile_path << '\n';
      return kExitUsage;
    }
    profile = obs::parse_profile_tsv(in);
  }
  const std::vector<obs::ChromeEvent> chrome =
      obs::build_chrome_events(spans, analysis, profile);
  const std::string json = obs::render_chrome_json(chrome);
  const std::string out_path = flags.get_string("out", "");
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return kExitOk;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open --out file: " << out_path << '\n';
    return kExitUsage;
  }
  out << json;
  std::printf("wrote %llu trace events to %s (load in ui.perfetto.dev)\n",
              static_cast<unsigned long long>(chrome.size()),
              out_path.c_str());
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  std::string path = flags.get_string("in", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty() || flags.get_bool("help", false)) {
    std::cout << "usage: realtor_trace <run.jsonl|flight.bin> "
                 "[--node=<id>] [--kind=<name>] [--intervals] "
                 "[--episodes] [--check] [--scorecard] "
                 "[--critical-path] [--blame[=<k>]] [--top=<k>] "
                 "[--export=perfetto] [--profile=<tsv>] [--out=<file>] "
                 "[--format=csv|json] [--limit=<n>]\n"
                 "--check options: --initial-interval --upper-limit "
                 "--interval-floor --alpha --beta --pledge-threshold "
                 "--tolerance\n"
                 "exit codes: 0 ok, 1 usage/unreadable input, "
                 "2 gate violation\n";
    return path.empty() ? kExitUsage : kExitOk;
  }

  std::vector<obs::ParsedEvent> events;
  obs::TraceLoadStats load_stats;
  std::string error;
  // Input records/lines that were skipped rather than analyzed; any
  // --check gate refuses a clean verdict while this is non-zero.
  std::uint64_t dropped_input = 0;
  if (obs::is_flight_file(path)) {
    obs::FlightDump dump;
    if (!obs::load_flight_file(path, dump, &error)) {
      std::cerr << path << ": " << error << '\n';
      return kExitUsage;
    }
    events = std::move(dump.events);
    if (dump.total_dropped() > 0) {
      std::cerr << path << ": ring wrap-around dropped "
                << dump.total_dropped()
                << " oldest record(s) before the dump\n";
    }
    if (dump.malformed > 0) {
      std::cerr << path << ": "
                << (dump.truncated ? "truncated dump, " : "")
                << dump.malformed
                << " unrecoverable record(s) skipped\n";
    }
    dropped_input = dump.malformed;
  } else {
    if (!obs::load_trace_file(path, events, load_stats, &error)) {
      std::cerr << path << ": " << error << '\n';
      return kExitUsage;
    }
    if (load_stats.malformed > 0) {
      std::cerr << path << ": skipped " << load_stats.malformed
                << " malformed line(s), first at line "
                << load_stats.first_malformed_line << ": "
                << load_stats.first_error << '\n';
    }
    dropped_input = load_stats.malformed;
  }

  const std::string format = flags.get_string("format", "text");
  const bool scorecard_mode = flags.get_bool("scorecard", false);
  if (format != "text" && format != "csv" &&
      !(format == "json" && scorecard_mode)) {
    std::cerr << "unknown --format: " << format
              << " (text|csv; json with --scorecard)\n";
    return kExitUsage;
  }
  const bool csv = format == "csv";

  if (flags.has("export")) {
    const std::string export_format = flags.get_string("export", "");
    if (export_format != "perfetto") {
      std::cerr << "unknown --export: " << export_format
                << " (perfetto)\n";
      return kExitUsage;
    }
    return run_export_perfetto(events, flags);
  }

  if (flags.get_bool("critical-path", false) || flags.has("blame")) {
    return run_critical_path(events, flags, dropped_input);
  }

  if (flags.get_bool("check", false)) {
    const int result = run_check(events, flags);
    if (result == kExitOk && dropped_input > 0) {
      std::printf("FAIL: %llu malformed record(s)/line(s) were dropped "
                  "from the input — the clean verdict above covers only "
                  "what parsed\n",
                  static_cast<unsigned long long>(dropped_input));
      return kExitViolation;
    }
    return result;
  }

  if (scorecard_mode) {
    const obs::Scorecard scorecard = obs::build_scorecard(events);
    const std::string out = format == "json"
                                ? obs::render_scorecard_json(scorecard)
                                : obs::render_scorecard_text(scorecard);
    std::fputs(out.c_str(), stdout);
    return kExitOk;
  }

  if (flags.get_bool("episodes", false)) {
    const std::vector<obs::Episode> episodes =
        obs::build_episodes(obs::normalize_events(events));
    if (csv) {
      print_episodes_csv(episodes);
    } else {
      print_episodes(episodes,
                     static_cast<std::uint64_t>(flags.get_int("limit", 50)));
    }
    return kExitOk;
  }

  if (flags.get_bool("intervals", false)) {
    print_intervals(events);
    return kExitOk;
  }

  const bool filter_node = flags.has("node");
  const NodeId node = static_cast<NodeId>(flags.get_int("node", 0));
  const bool filter_kind = flags.has("kind");
  const std::string kind = flags.get_string("kind", "");
  if (filter_kind) {
    obs::EventKind parsed;
    if (!obs::parse_event_kind(kind, parsed)) {
      std::cerr << "unknown event kind: " << kind << '\n';
      return kExitUsage;
    }
  }
  if (csv) {
    print_events_csv(events, filter_node, node, filter_kind, kind);
    return kExitOk;
  }
  if (filter_node || filter_kind) {
    print_timeline(events, filter_node, node, filter_kind, kind,
                   static_cast<std::uint64_t>(flags.get_int("limit", 100)));
    return kExitOk;
  }
  print_summary(events);
  return kExitOk;
}
