// realtor_sim — the one-stop command line for the whole system.
//
// Runs any scenario the library supports and prints the full report:
//
//   realtor_sim                               # paper defaults, REALTOR
//   realtor_sim --protocol=Push-1 --lambda=8
//   realtor_sim --topology=torus --nodes=100 --width=10 --height=10
//   realtor_sim --attack=200:10:1:150 --timeline=25
//   realtor_sim --federate=5x5 --width=10 --height=10 --lambda=28
//   realtor_sim --multires --secure-fraction=0.4
//   realtor_sim --elusive=10
//   realtor_sim --trace-out=w.csv          # record the workload
//   realtor_sim --trace-in=w.csv           # replay it
//   realtor_sim --trace=run.jsonl          # structured event trace (JSONL;
//                                          # analyze with realtor_trace)
//   realtor_sim --sweep=1,2,4,8 --reps=5   # protocol comparison sweep
//   realtor_sim --sweep=2,8 --jobs=4       # sweep on 4 worker threads
//                                          # (byte-identical output; 0 =
//                                          # one per hardware thread)
//
// Sweeps + tracing: --sweep with --trace=prefix writes one JSONL file per
// (protocol, lambda, replication) run, named
// prefix.<protocol>.lambda<L>.rep<R>.jsonl — a single shared file would
// interleave records across worker threads. Use --jobs=1 if the runs must
// also execute in serial order.
//
// See experiment/cli_config.hpp for the complete flag list.
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "experiment/cli_config.hpp"
#include "experiment/figures.hpp"
#include "experiment/report.hpp"
#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "obs/jsonl_sink.hpp"
#include "proto/factory.hpp"
#include "trace/workload_csv.hpp"

namespace {

using namespace realtor;

int run_single(const Flags& flags) {
  experiment::ScenarioConfig config =
      experiment::scenario_from_flags(flags);

  const std::string trace_in = flags.get_string("trace-in", "");
  const std::string trace_out = flags.get_string("trace-out", "");

  // Structured event trace (distinct from the workload CSV trace-in/out).
  const std::string trace_path = flags.get_string("trace", "");
  std::optional<obs::JsonlSink> event_sink;
  if (!trace_path.empty()) {
    // A trace without time-series records is half blind; default the
    // sampler on unless the user picked an interval explicitly.
    if (!flags.has("sample-interval")) config.sample_interval = 10.0;
    event_sink.emplace(trace_path);
    if (!event_sink->ok()) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
  }
  const auto report_trace = [&] {
    if (event_sink) {
      std::cout << "trace: " << event_sink->lines_written()
                << " records -> " << trace_path << '\n';
    }
  };

  if (!trace_in.empty()) {
    const auto loaded = trace::load_csv_file(trace_in);
    if (!loaded.ok) {
      std::cerr << "trace load failed: " << loaded.error << '\n';
      return 1;
    }
    config.external_arrivals = true;
    if (!loaded.records.empty()) {
      config.duration = std::max(config.duration,
                                 loaded.records.back().arrival.time);
    }
    experiment::Simulation sim(config);
    if (event_sink) sim.set_trace_sink(&*event_sink);
    for (const trace::TraceRecord& record : loaded.records) {
      sim.engine().schedule_at(record.arrival.time, [&sim, record] {
        sim.inject(record.arrival, record.bandwidth_share,
                   record.min_security);
      });
    }
    sim.run();
    experiment::print_report(std::cout,
                             std::string("replay of ") + trace_in, sim,
                             flags.get_bool("verbose", false));
    report_trace();
    return 0;
  }

  if (!trace_out.empty()) {
    const std::size_t estimate = static_cast<std::size_t>(
        config.lambda * config.duration * 1.2 + 64.0);
    auto arrivals = sim::generate_poisson_trace(
        config.seed, config.lambda, config.mean_task_size,
        experiment::build_topology(config.topology).num_nodes(), estimate);
    while (!arrivals.empty() && arrivals.back().time > config.duration) {
      arrivals.pop_back();
    }
    if (!trace::save_csv_file(trace_out, trace::from_arrivals(arrivals))) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 1;
    }
    std::cout << "recorded " << arrivals.size() << " arrivals to "
              << trace_out << '\n';
    return 0;
  }

  experiment::Simulation sim(config);
  if (event_sink) sim.set_trace_sink(&*event_sink);
  sim.run();
  std::string title = std::string(proto::paper_label(config.protocol_kind)) +
                      " @ lambda=" + format_double(config.lambda, 1);
  experiment::print_report(std::cout, title, sim,
                           flags.get_bool("verbose", false));
  report_trace();
  return 0;
}

int run_sweep_mode(const Flags& flags) {
  const experiment::ScenarioConfig base =
      experiment::scenario_from_flags(flags);
  auto options = experiment::paper_sweep_options(
      flags.get_double_list("sweep", {2.0, 4.0, 6.0, 8.0, 10.0}),
      static_cast<std::uint32_t>(flags.get_int("reps", 3)));
  if (flags.get_bool("with-gossip", false)) {
    options.protocols.push_back(proto::ProtocolKind::kGossip);
  }
  options.jobs = static_cast<unsigned>(flags.get_int("jobs", 0));
  // A sweep cannot funnel every run into one JSONL file without
  // interleaving records across worker threads, so --trace here fans out
  // to one suffixed file per (protocol, lambda, replication) run. Use
  // --jobs=1 if you additionally need the runs traced in serial order.
  const std::string trace_prefix = flags.get_string("trace", "");
  if (!trace_prefix.empty()) {
    options.make_trace_sink =
        [trace_prefix](proto::ProtocolKind kind, double lambda,
                       std::uint32_t rep) -> std::unique_ptr<obs::TraceSink> {
      std::ostringstream name;
      name << trace_prefix << '.' << proto::to_string(kind) << ".lambda"
           << format_double(lambda, 3) << ".rep" << rep << ".jsonl";
      auto sink = std::make_unique<obs::JsonlSink>(name.str());
      if (!sink->ok()) {
        std::cerr << "cannot write " << name.str() << '\n';
        return nullptr;
      }
      return sink;
    };
  }
  const auto cells = experiment::run_sweep(base, options);
  experiment::emit_figure("admission probability",
                          experiment::fig5_admission_probability(cells));
  experiment::emit_figure("message overhead",
                          experiment::fig6_message_overhead(cells));
  experiment::emit_figure("cost per admitted task",
                          experiment::fig7_cost_per_admitted(cells));
  experiment::emit_figure("migration rate",
                          experiment::fig8_migration_rate(cells));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout <<
        "realtor_sim — run REALTOR discovery scenarios\n"
        "  (see the header of tools/realtor_sim.cpp and\n"
        "   src/experiment/cli_config.hpp for all flags)\n";
    return 0;
  }
  if (flags.has("sweep")) {
    return run_sweep_mode(flags);
  }
  return run_single(flags);
}
