// realtor_sim — the one-stop command line for the whole system.
//
// Runs any scenario the library supports and prints the full report:
//
//   realtor_sim                               # paper defaults, REALTOR
//   realtor_sim --protocol=Push-1 --lambda=8
//   realtor_sim --topology=torus --nodes=100 --width=10 --height=10
//   realtor_sim --attack=200:10:1:150 --timeline=25
//   realtor_sim --federate=5x5 --width=10 --height=10 --lambda=28
//   realtor_sim --multires --secure-fraction=0.4
//   realtor_sim --elusive=10
//   realtor_sim --trace-out=w.csv          # record the workload
//   realtor_sim --trace-in=w.csv           # replay it
//   realtor_sim --trace=run.jsonl          # structured event trace (JSONL;
//                                          # analyze with realtor_trace)
//   realtor_sim --trace=run.jsonl --trace-flush-every=256
//                                          # batch JSONL writes (K lines
//                                          # per flush; 0 = write-through)
//   realtor_sim --flight-recorder          # binary flight recorder, ring
//                                          # of 65536 records per source
//   realtor_sim --flight-recorder=4096 --flight-out=run.bin
//                                          # smaller ring, explicit dump
//                                          # path; attack waves also dump
//                                          # run.bin.attack<k>.bin
//   realtor_sim --live-metrics=live.prom   # live telemetry plane: the
//                                          # file is rewritten with a
//                                          # Prometheus-text snapshot at
//                                          # every --live-cadence (default
//                                          # 10 sim s) boundary; "-" /
//                                          # "fd:3" stream to stdout / an
//                                          # inherited descriptor
//   realtor_sim --live-metrics=live.prom \
//     --alert="p99:episode_p99>5/60,storm:help_rate>3x/30"
//                                          # custom alert rules (comma
//                                          # list; see obs/live/rules.hpp
//                                          # for the grammar). Firings are
//                                          # alert_firing trace events; with
//                                          # --flight-recorder each firing
//                                          # also dumps the rings to
//                                          # <flight-out>.alert-<rule>.bin
//   realtor_sim --profile                  # hierarchical self-profiler:
//                                          # per-scope wall time tree
//   realtor_sim --profile=prof.tsv         # ... also dumped as TSV for
//                                          # realtor_trace --export=perfetto
//   realtor_sim --sweep=1,2,4,8 --reps=5   # protocol comparison sweep
//   realtor_sim --sweep=2,8 --jobs=4       # sweep on 4 worker threads
//                                          # (byte-identical output; 0 =
//                                          # one per hardware thread)
//   realtor_sim --sweep=6 --exec=fork      # warm-start execution: shared
//                                          # pre-attack prefixes simulate
//                                          # once, points finish in forked
//                                          # COW children (Linux; output
//                                          # byte-identical to --exec=thread)
//   realtor_sim --sweep=6 \
//     --attack-sweep="150:5:1:60;150:10:1:60;150:20:1:60"
//                                          # sweep attack schedules too:
//                                          # ';'-separated sets, each a
//                                          # comma list of t:count:grace:o
//                                          # (empty chunk = no attacks)
//   realtor_sim --sweep=6 --attack-sweep=... --plan
//                                          # dry run: print the computed
//                                          # warm-start classes and exit
//
// Sweeps + tracing: --sweep with --trace=prefix writes one JSONL file per
// (protocol, lambda, replication) run, named
// prefix.<protocol>.lambda<L>.rep<R>.jsonl — a single shared file would
// interleave records across worker threads. Use --jobs=1 if the runs must
// also execute in serial order.
//
// See experiment/cli_config.hpp for the complete flag list.
#include <exception>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "common/profile.hpp"
#include "experiment/cli_config.hpp"
#include "experiment/figures.hpp"
#include "experiment/report.hpp"
#include "experiment/simulation.hpp"
#include "experiment/sweep.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/live/live_plane.hpp"
#include "proto/factory.hpp"
#include "trace/workload_csv.hpp"

namespace {

using namespace realtor;

/// Ring capacity for --flight-recorder[=N]: a bare flag stores "true",
/// which get_int maps to the fallback — the default capacity.
std::size_t flight_capacity_from(const Flags& flags) {
  const std::int64_t n = flags.get_int(
      "flight-recorder",
      static_cast<std::int64_t>(obs::kDefaultFlightCapacity));
  return n > 0 ? static_cast<std::size_t>(n) : obs::kDefaultFlightCapacity;
}

/// --alert accepts a comma-separated rule list (the grammar itself never
/// uses commas); empty entries are dropped.
std::vector<std::string> alert_rules_from(const Flags& flags) {
  std::vector<std::string> rules;
  std::istringstream stream(flags.get_string("alert", ""));
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) rules.push_back(item);
  }
  return rules;
}

/// Sim-time cadence of live_tick boundaries when --live-metrics is on and
/// the user did not pick one explicitly.
constexpr double kDefaultLiveCadence = 10.0;

int run_single(const Flags& flags) {
  experiment::ScenarioConfig config =
      experiment::scenario_from_flags(flags);

  const std::string trace_in = flags.get_string("trace-in", "");
  const std::string trace_out = flags.get_string("trace-out", "");

  // Structured event trace (distinct from the workload CSV trace-in/out).
  // JSONL (--trace) and the binary flight recorder (--flight-recorder)
  // feed the same instrumented sites; a run uses one sink, not both.
  const std::string trace_path = flags.get_string("trace", "");
  if (!trace_path.empty() && flags.has("flight-recorder")) {
    std::cerr << "--trace and --flight-recorder are mutually exclusive "
                 "(one sink per run)\n";
    return 1;
  }
  std::optional<obs::JsonlSink> event_sink;
  std::optional<obs::FlightRecorder> flight;
  const std::string flight_out = flags.get_string("flight-out", "flight.bin");
  std::size_t attack_dumps = 0;
  if (!trace_path.empty()) {
    // A trace without time-series records is half blind; default the
    // sampler on unless the user picked an interval explicitly.
    if (!flags.has("sample-interval")) config.sample_interval = 10.0;
    event_sink.emplace(trace_path, static_cast<std::size_t>(
                                       flags.get_int("trace-flush-every", 0)));
    if (!event_sink->ok()) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
  } else if (flags.has("flight-recorder")) {
    // The always-on mode: bounded memory, no I/O until a dump. The
    // sampler keeps its configured default (samples would crowd tight
    // rings; pass --sample-interval to add them).
    flight.emplace(flight_capacity_from(flags));
  }
  // --live-metrics[=<file|fd:N|->]: wrap whichever sink the run uses in
  // the live telemetry plane (write-through: the operator can watch the
  // target while the run executes). Works standalone too — the plane is
  // itself a sink.
  std::unique_ptr<obs::live::LivePlane> live;
  std::string live_out;
  std::size_t alert_dumps = 0;
  if (flags.has("live-metrics")) {
    live_out = flags.get_string("live-metrics", "");
    if (live_out == "true") live_out = "live.prom";  // bare flag
    if (!flags.has("live-cadence")) config.live_cadence = kDefaultLiveCadence;
    obs::live::LiveConfig live_config;
    live_config.out = live_out;
    live_config.window = flags.get_double("live-window", 30.0);
    live_config.rules = alert_rules_from(flags);
    live_config.node_count =
        experiment::build_topology(config.topology).num_nodes();
    live_config.write_through = true;
    live = std::make_unique<obs::live::LivePlane>(std::move(live_config));
    if (!live->ok()) {
      std::cerr << live->error() << '\n';
      return 1;
    }
  }
  const auto attach_tracing = [&](experiment::Simulation& sim) {
    obs::TraceSink* base = nullptr;
    if (event_sink) base = &*event_sink;
    if (flight) {
      base = &flight->ring(0);
      // Dump-on-attack: snapshot the rings right after each wave's kills
      // land, while the pre-attack window is still in memory.
      sim.set_attack_wave_listener([&](std::size_t wave, SimTime) {
        const std::string path =
            flight_out + ".attack" + std::to_string(wave) + ".bin";
        std::string error;
        if (flight->dump(path, &error)) {
          ++attack_dumps;
        } else {
          std::cerr << error << '\n';
        }
      });
    }
    if (live) {
      live->set_downstream(base);
      sim.set_trace_sink(live.get());
      if (flight) {
        // Dump-on-alert: every firing snapshots the rings while the
        // events that tripped the rule are still in memory. Re-firings
        // of one rule overwrite its dump (latest wins).
        live->set_alert_listener([&](const obs::live::AlertRule& rule,
                                     bool firing, SimTime, double) {
          if (!firing) return;
          const std::string path =
              flight_out + ".alert-" + rule.name + ".bin";
          std::string error;
          if (flight->dump(path, &error)) {
            ++alert_dumps;
          } else {
            std::cerr << error << '\n';
          }
        });
      }
    } else if (base != nullptr) {
      sim.set_trace_sink(base);
    }
  };
  // --profile[=out.tsv]: arm the self-profiler for this run; report the
  // scope tree at the end (and dump it as TSV when a path was given, for
  // realtor_trace --export=perfetto --profile=out.tsv).
  const bool profile_enabled = flags.has("profile");
  const std::string profile_out = flags.get_string("profile", "");
  if (profile_enabled) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }
  const auto report_profile = [&] {
    if (!profile_enabled) return;
    obs::Profiler::instance().set_enabled(false);
    const std::vector<obs::ProfileEntry> entries =
        obs::Profiler::instance().snapshot();
    // A bare --profile stores "true" (no dump path, report only).
    if (!profile_out.empty() && profile_out != "true") {
      std::ofstream out(profile_out);
      if (out) {
        obs::write_profile_tsv(out, entries);
        std::cout << "profile: " << entries.size() << " scopes -> "
                  << profile_out << '\n';
      } else {
        std::cerr << "cannot write " << profile_out << '\n';
      }
    }
    std::cout << obs::render_profile_text(entries);
  };
  const auto report_trace = [&] {
    if (event_sink) {
      std::cout << "trace: " << event_sink->lines_written()
                << " records -> " << trace_path << '\n';
    }
    if (flight) {
      // Dump-on-exit: the tail of the run, whatever happened.
      std::string error;
      if (!flight->dump(flight_out, &error)) {
        std::cerr << error << '\n';
        return;
      }
      std::cout << "flight: " << flight->total_recorded() << " records ("
                << flight->total_dropped() << " overwritten";
      if (attack_dumps > 0) {
        std::cout << ", " << attack_dumps << " attack dumps";
      }
      if (alert_dumps > 0) {
        std::cout << ", " << alert_dumps << " alert dumps";
      }
      std::cout << ") -> " << flight_out << '\n';
    }
    if (live) {
      std::cout << "live: " << live->snapshots() << " snapshots, "
                << live->alerts_fired() << " alerts -> " << live_out << '\n';
    }
  };

  if (!trace_in.empty()) {
    const auto loaded = trace::load_csv_file(trace_in);
    if (!loaded.ok) {
      std::cerr << "trace load failed: " << loaded.error << '\n';
      return 1;
    }
    config.external_arrivals = true;
    if (!loaded.records.empty()) {
      config.duration = std::max(config.duration,
                                 loaded.records.back().arrival.time);
    }
    experiment::Simulation sim(config);
    attach_tracing(sim);
    for (const trace::TraceRecord& record : loaded.records) {
      sim.engine().schedule_at(record.arrival.time, [&sim, record] {
        sim.inject(record.arrival, record.bandwidth_share,
                   record.min_security);
      });
    }
    sim.run();
    experiment::print_report(std::cout,
                             std::string("replay of ") + trace_in, sim,
                             flags.get_bool("verbose", false));
    report_trace();
    report_profile();
    return 0;
  }

  if (!trace_out.empty()) {
    const std::size_t estimate = static_cast<std::size_t>(
        config.lambda * config.duration * 1.2 + 64.0);
    auto arrivals = sim::generate_poisson_trace(
        config.seed, config.lambda, config.mean_task_size,
        experiment::build_topology(config.topology).num_nodes(), estimate);
    while (!arrivals.empty() && arrivals.back().time > config.duration) {
      arrivals.pop_back();
    }
    if (!trace::save_csv_file(trace_out, trace::from_arrivals(arrivals))) {
      std::cerr << "cannot write " << trace_out << '\n';
      return 1;
    }
    std::cout << "recorded " << arrivals.size() << " arrivals to "
              << trace_out << '\n';
    return 0;
  }

  experiment::Simulation sim(config);
  attach_tracing(sim);
  sim.run();
  std::string title = std::string(proto::paper_label(config.protocol_kind)) +
                      " @ lambda=" + format_double(config.lambda, 1);
  experiment::print_report(std::cout, title, sim,
                           flags.get_bool("verbose", false));
  report_trace();
  report_profile();
  return 0;
}

/// The per-(lambda, attack set) comparison table attack-parameter sweeps
/// print instead of fig5–8: the figure tables key cells on (protocol,
/// lambda) alone and would silently merge distinct attack sets.
Table attack_sweep_table(const std::vector<experiment::SweepCell>& cells,
                         const experiment::SweepOptions& options) {
  std::vector<std::string> headers = {"lambda", "attack_set"};
  for (const proto::ProtocolKind kind : options.protocols) {
    headers.push_back(std::string(proto::to_string(kind)) + "_admission");
    headers.push_back(std::string(proto::to_string(kind)) + "_evac");
  }
  Table table(std::move(headers));
  const std::size_t sets =
      options.attack_sets.empty() ? 1 : options.attack_sets.size();
  for (const double lambda : options.lambdas) {
    for (std::size_t set = 0; set < sets; ++set) {
      table.row().cell(format_double(lambda, 3)).cell(
          static_cast<std::uint64_t>(set));
      for (const proto::ProtocolKind kind : options.protocols) {
        for (const experiment::SweepCell& cell : cells) {
          if (cell.kind != kind || cell.lambda != lambda ||
              cell.attack_set != set) {
            continue;
          }
          table.cell(cell.admission_probability.mean())
              .cell(cell.evacuation_success.mean());
          break;
        }
      }
    }
  }
  return table;
}

int print_warm_start_plan(const experiment::ScenarioConfig& base,
                          const experiment::SweepOptions& options) {
  const std::vector<experiment::RunId> ids = experiment::sweep_run_ids(options);
  const std::vector<experiment::ScenarioConfig> configs =
      experiment::sweep_point_configs(base, options);
  const std::vector<experiment::WarmStartClass> classes =
      experiment::plan_warm_start(configs);
  std::cout << "warm-start plan: " << configs.size() << " points, "
            << classes.size() << " classes (exec="
            << experiment::to_string(options.exec) << ", fork "
            << (experiment::fork_exec_supported() ? "supported"
                                                  : "unsupported")
            << ")\n";
  for (const experiment::WarmStartClass& cls : classes) {
    std::cout << "class " << std::hex << std::setw(16) << std::setfill('0')
              << cls.hash << std::dec << std::setfill(' ') << " members="
              << cls.members.size() << " prefix_end="
              << format_double(cls.prefix_end, 3)
              << (cls.forkable ? " forkable" : " singleton") << '\n';
    for (const std::size_t member : cls.members) {
      std::cout << "  - " << experiment::run_label(ids[member]) << '\n';
    }
  }
  return 0;
}

int run_sweep_mode(const Flags& flags) {
  experiment::ScenarioConfig base = experiment::scenario_from_flags(flags);
  if (flags.has("live-metrics") && !flags.has("live-cadence")) {
    base.live_cadence = kDefaultLiveCadence;
  }
  auto options = experiment::paper_sweep_options(
      flags.get_double_list("sweep", {2.0, 4.0, 6.0, 8.0, 10.0}),
      static_cast<std::uint32_t>(flags.get_int("reps", 3)));
  if (flags.get_bool("with-gossip", false)) {
    options.protocols.push_back(proto::ProtocolKind::kGossip);
  }
  options.jobs = static_cast<unsigned>(flags.get_int("jobs", 0));
  const std::string exec_name = flags.get_string("exec", "thread");
  const std::optional<experiment::SweepExec> exec =
      experiment::parse_exec(exec_name);
  if (!exec) {
    std::cerr << "unknown --exec value '" << exec_name
              << "' (expected thread or fork)\n";
    return 1;
  }
  options.exec = *exec;
  if (flags.has("attack-sweep")) {
    // ';'-separated attack sets, each a comma list of t:count:grace:outage
    // waves; an empty chunk is the no-attack baseline.
    std::istringstream stream(flags.get_string("attack-sweep", ""));
    std::string chunk;
    while (std::getline(stream, chunk, ';')) {
      options.attack_sets.push_back(experiment::parse_attack_waves(chunk));
    }
    if (options.attack_sets.empty()) {
      options.attack_sets.emplace_back();
    }
  }
  if (flags.get_bool("plan", false)) {
    return print_warm_start_plan(base, options);
  }
  // A sweep cannot funnel every run into one trace file without
  // interleaving records across worker threads, so --trace (JSONL) and
  // --flight-recorder (binary rings) fan out to one suffixed file per
  // (protocol, lambda, replication) run. Use --jobs=1 if you additionally
  // need the runs traced in serial order.
  experiment::RunSinkOptions sink_options;
  sink_options.jsonl_prefix = flags.get_string("trace", "");
  sink_options.jsonl_flush_every =
      static_cast<std::size_t>(flags.get_int("trace-flush-every", 0));
  if (flags.has("flight-recorder")) {
    sink_options.flight_prefix = flags.get_string("flight-out", "flight");
    sink_options.flight_capacity = flight_capacity_from(flags);
  }
  sink_options.attack_suffix = options.attack_sets.size() > 1;
  if (!sink_options.jsonl_prefix.empty() &&
      !sink_options.flight_prefix.empty()) {
    std::cerr << "--trace and --flight-recorder are mutually exclusive in "
                 "sweep mode (one sink per run)\n";
    return 1;
  }
  // --live-metrics=<prefix> in sweep mode: one buffered exposition history
  // per run (prefix.<proto>.lambda<L>[.att<K>].rep<R>.prom), wrapping the
  // run's JSONL/flight sink when one is armed. Byte-identical across
  // --jobs values and --exec modes for a fixed seed.
  if (flags.has("live-metrics")) {
    sink_options.live_prefix = flags.get_string("live-metrics", "");
    if (sink_options.live_prefix == "true") sink_options.live_prefix = "live";
    sink_options.live_rules = alert_rules_from(flags);
    sink_options.live_window = flags.get_double("live-window", 30.0);
    sink_options.live_nodes =
        experiment::build_topology(base.topology).num_nodes();
  }
  options.make_trace_sink =
      experiment::make_run_sink_factory(std::move(sink_options));
  const auto cells = experiment::run_sweep(base, options);
  if (options.attack_sets.size() > 1) {
    experiment::emit_figure("attack-parameter sweep",
                            attack_sweep_table(cells, options));
    return 0;
  }
  experiment::emit_figure("admission probability",
                          experiment::fig5_admission_probability(cells));
  experiment::emit_figure("message overhead",
                          experiment::fig6_message_overhead(cells));
  experiment::emit_figure("cost per admitted task",
                          experiment::fig7_cost_per_admitted(cells));
  experiment::emit_figure("migration rate",
                          experiment::fig8_migration_rate(cells));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout <<
        "realtor_sim — run REALTOR discovery scenarios\n"
        "  (see the header of tools/realtor_sim.cpp and\n"
        "   src/experiment/cli_config.hpp for all flags)\n";
    return 0;
  }
  try {
    if (flags.has("sweep")) {
      return run_sweep_mode(flags);
    }
    return run_single(flags);
  } catch (const std::exception& e) {
    std::cerr << "realtor_sim: " << e.what() << '\n';
    return 1;
  }
}
