// Behavioural tests of the five protocols against a scripted transport.
#include <gtest/gtest.h>

#include "fake_transport.hpp"
#include "net/topology.hpp"
#include "proto/adaptive_pull.hpp"
#include "proto/adaptive_push.hpp"
#include "proto/factory.hpp"
#include "proto/pure_pull.hpp"
#include "proto/pure_push.hpp"
#include "proto/realtor.hpp"
#include "sim/engine.hpp"

namespace realtor::proto {
namespace {

using testing::FakeTransport;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolEnv make_env() {
    ProtocolEnv env;
    env.engine = &engine_;
    env.topology = &topo_;
    env.transport = &transport_;
    env.local_occupancy = [this] { return occupancy_; };
    env.seed = 7;
    return env;
  }

  ProtocolConfig config_;  // defaults: thresholds 0.9, window 100
  sim::Engine engine_;
  net::Topology topo_ = net::make_mesh(3, 3);
  FakeTransport transport_;
  double occupancy_ = 0.0;
};

// ---------------------------------------------------------------- PurePush

TEST_F(ProtocolTest, PurePushAdvertisesEveryInterval) {
  config_.push_interval = 1.0;
  PurePushProtocol p(0, config_, make_env());
  p.start();
  engine_.run_until(5.5);
  EXPECT_EQ(transport_.flood_count(), 5u);
  const auto& advert = std::get<PushAdvertMsg>(transport_.floods[0].msg);
  EXPECT_EQ(advert.origin, 0u);
  EXPECT_DOUBLE_EQ(advert.availability, 1.0);
}

TEST_F(ProtocolTest, PurePushAdvertReflectsOccupancy) {
  PurePushProtocol p(0, config_, make_env());
  p.start();
  occupancy_ = 0.25;
  engine_.run_until(1.0);
  const auto& advert = std::get<PushAdvertMsg>(transport_.floods[0].msg);
  EXPECT_DOUBLE_EQ(advert.availability, 0.75);
}

TEST_F(ProtocolTest, PurePushBuildsCandidatesFromAdverts) {
  PurePushProtocol p(0, config_, make_env());
  p.on_message(1, Message{PushAdvertMsg{1, 0.8}});
  p.on_message(2, Message{PushAdvertMsg{2, 0.3}});
  p.on_message(3, Message{PushAdvertMsg{3, 0.05}});  // below floor
  const auto c = p.migration_candidates();
  EXPECT_EQ(c, (std::vector<NodeId>{1, 2}));
}

TEST_F(ProtocolTest, PurePushFailedMigrationInvalidatesEntry) {
  PurePushProtocol p(0, config_, make_env());
  p.on_message(1, Message{PushAdvertMsg{1, 0.8}});
  p.on_migration_result(1, 0.1, /*success=*/false);
  EXPECT_TRUE(p.migration_candidates().empty());
}

TEST_F(ProtocolTest, PurePushSuccessfulMigrationDebitsEntry) {
  PurePushProtocol p(0, config_, make_env());
  p.on_message(1, Message{PushAdvertMsg{1, 0.8}});
  p.on_message(2, Message{PushAdvertMsg{2, 0.7}});
  p.on_migration_result(1, 0.5, /*success=*/true);  // 0.8 -> 0.3
  const auto c = p.migration_candidates();
  EXPECT_EQ(c, (std::vector<NodeId>{2, 1}));
}

TEST_F(ProtocolTest, PurePushIgnoresForeignMessageTypes) {
  PurePushProtocol p(0, config_, make_env());
  p.on_message(1, Message{HelpMsg{1, 0, 0.0}});
  p.on_message(1, Message{PledgeMsg{1, 0.9, 0, 1.0}});
  EXPECT_EQ(transport_.unicast_count(), 0u);
  EXPECT_TRUE(p.migration_candidates().empty());
}

TEST_F(ProtocolTest, PurePushDeadHostStaysSilent) {
  PurePushProtocol p(0, config_, make_env());
  p.start();
  topo_.set_alive(0, false);
  engine_.run_until(3.0);
  EXPECT_EQ(transport_.flood_count(), 0u);
}

// ------------------------------------------------------------ AdaptivePush

TEST_F(ProtocolTest, AdaptivePushAdvertisesOnCrossingsOnly) {
  AdaptivePushProtocol p(0, config_, make_env());
  p.on_status_change(0.1);   // primes detector
  p.on_status_change(0.5);   // no crossing
  EXPECT_EQ(transport_.flood_count(), 0u);
  p.on_status_change(0.95);  // crossing up
  EXPECT_EQ(transport_.flood_count(), 1u);
  p.on_status_change(0.99);  // still above
  EXPECT_EQ(transport_.flood_count(), 1u);
  p.on_status_change(0.3);   // crossing down
  EXPECT_EQ(transport_.flood_count(), 2u);
  const auto& advert = std::get<PushAdvertMsg>(transport_.floods[1].msg);
  EXPECT_DOUBLE_EQ(advert.availability, 0.7);
}

TEST_F(ProtocolTest, AdaptivePushCandidatesTrackAdverts) {
  AdaptivePushProtocol p(0, config_, make_env());
  p.on_message(4, Message{PushAdvertMsg{4, 0.6}});
  EXPECT_EQ(p.migration_candidates(), (std::vector<NodeId>{4}));
  p.on_message(4, Message{PushAdvertMsg{4, 0.02}});  // crossed up -> busy
  EXPECT_TRUE(p.migration_candidates().empty());
}

TEST_F(ProtocolTest, AdaptivePushDeadPeersExcludedFromCandidates) {
  AdaptivePushProtocol p(0, config_, make_env());
  p.on_message(4, Message{PushAdvertMsg{4, 0.6}});
  topo_.set_alive(4, false);
  EXPECT_TRUE(p.migration_candidates().empty());
  topo_.set_alive(4, true);
  EXPECT_EQ(p.migration_candidates(), (std::vector<NodeId>{4}));
}

// --------------------------------------------------------------- PurePull

TEST_F(ProtocolTest, PurePullHelpsOnEveryQualifyingArrival) {
  PurePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.5);  // below threshold: silent
  EXPECT_EQ(transport_.flood_count(), 0u);
  p.on_task_arrival(0.95);
  p.on_task_arrival(0.97);
  p.on_task_arrival(1.10);
  EXPECT_EQ(transport_.flood_count(), 3u);  // no window, unlimited
  EXPECT_EQ(p.helps_sent(), 3u);
}

TEST_F(ProtocolTest, PurePullRepliesPledgeOncePerHelpWhenBelowThreshold) {
  PurePullProtocol p(5, config_, make_env());
  occupancy_ = 0.4;
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  ASSERT_EQ(transport_.unicast_count(), 1u);
  EXPECT_EQ(transport_.unicasts[0].to, 2u);
  const auto& pledge = std::get<PledgeMsg>(transport_.unicasts[0].msg);
  EXPECT_EQ(pledge.pledger, 5u);
  EXPECT_DOUBLE_EQ(pledge.availability, 0.6);
  occupancy_ = 0.95;
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  EXPECT_EQ(transport_.unicast_count(), 1u);  // busy: no reply
}

TEST_F(ProtocolTest, PurePullNoUnsolicitedPledges) {
  PurePullProtocol p(5, config_, make_env());
  p.on_status_change(0.1);
  p.on_status_change(0.95);  // crossing up
  p.on_status_change(0.1);   // crossing down
  EXPECT_EQ(transport_.unicast_count(), 0u);
}

TEST_F(ProtocolTest, PurePullCandidatesComeFromPledges) {
  PurePullProtocol p(0, config_, make_env());
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  p.on_message(7, Message{PledgeMsg{7, 0.4, 0, 1.0}});
  EXPECT_EQ(p.migration_candidates(), (std::vector<NodeId>{3, 7}));
}

TEST_F(ProtocolTest, PurePullHelpCarriesMemberCountAndUrgency) {
  PurePullProtocol p(0, config_, make_env());
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  p.on_task_arrival(1.05);
  const auto& help = std::get<HelpMsg>(transport_.floods[0].msg);
  EXPECT_EQ(help.member_count, 1u);
  EXPECT_NEAR(help.urgency, 0.15, 1e-9);
}

// ------------------------------------------------------------ AdaptivePull

TEST_F(ProtocolTest, AdaptivePullWindowGatesHelp) {
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);
  EXPECT_EQ(transport_.flood_count(), 1u);
  p.on_task_arrival(0.99);  // within interval: suppressed
  EXPECT_EQ(transport_.flood_count(), 1u);
  engine_.run_until(0.5);
  p.on_task_arrival(0.99);  // still within 1.0s interval
  EXPECT_EQ(transport_.flood_count(), 1u);
}

TEST_F(ProtocolTest, AdaptivePullTimeoutGrowsInterval) {
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);  // HELP, timer armed for 1s
  engine_.run_until(2.0);   // no pledges: timeout fires
  EXPECT_DOUBLE_EQ(p.algorithm_h().interval(), 2.0);
  EXPECT_EQ(p.algorithm_h().timeouts(), 1u);
}

TEST_F(ProtocolTest, AdaptivePullPledgeRestartsRoundTimer) {
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);
  engine_.run_until(0.8);
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});  // restarts timer
  engine_.run_until(1.5);  // original deadline passed, restarted one not
  EXPECT_EQ(p.algorithm_h().timeouts(), 0u);
  engine_.run_until(2.0);  // restarted deadline (1.8) passed
  EXPECT_EQ(p.algorithm_h().timeouts(), 1u);
}

TEST_F(ProtocolTest, AdaptivePullRewardOnMigrationSuccess) {
  config_.reward_policy = HelpRewardPolicy::kOnMigrationSuccess;
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);
  engine_.run_until(2.0);  // timeout: interval 2.0
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  EXPECT_DOUBLE_EQ(p.algorithm_h().interval(), 2.0);  // pledge alone: no shrink
  p.on_migration_result(3, 0.1, /*success=*/true);
  EXPECT_DOUBLE_EQ(p.algorithm_h().interval(), 1.0);
}

TEST_F(ProtocolTest, AdaptivePullRewardOnFirstUsefulPledgePolicy) {
  config_.reward_policy = HelpRewardPolicy::kOnFirstUsefulPledge;
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);
  engine_.run_until(2.0);  // timeout: interval 2.0
  engine_.run_until(3.0);
  p.on_task_arrival(0.95);  // second round
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  EXPECT_DOUBLE_EQ(p.algorithm_h().interval(), 1.0);  // shrunk once
  p.on_message(4, Message{PledgeMsg{4, 0.9, 0, 1.0}});
  EXPECT_DOUBLE_EQ(p.algorithm_h().interval(), 1.0);  // not twice
}

TEST_F(ProtocolTest, AdaptivePullFailedMigrationDropsCandidate) {
  AdaptivePullProtocol p(0, config_, make_env());
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  p.on_migration_result(3, 0.1, /*success=*/false);
  EXPECT_TRUE(p.migration_candidates().empty());
}

// ----------------------------------------------------------------- REALTOR

TEST_F(ProtocolTest, RealtorAnswersHelpAndJoinsCommunity) {
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.2;
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  ASSERT_EQ(transport_.unicast_count(), 1u);
  EXPECT_EQ(transport_.unicasts[0].to, 2u);
  EXPECT_EQ(p.community_count(), 1u);
}

TEST_F(ProtocolTest, RealtorCrossingNotifiesJoinedCommunities) {
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.2;
  p.on_status_change(0.2);
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  p.on_message(7, Message{HelpMsg{7, 0, 0.1}});
  transport_.clear();
  p.on_status_change(0.95);  // crossing up: warn both organizers
  EXPECT_EQ(transport_.unicast_count(), 2u);
  for (const auto& sent : transport_.unicasts) {
    const auto& pledge = std::get<PledgeMsg>(sent.msg);
    EXPECT_NEAR(pledge.availability, 0.05, 1e-9);
  }
  transport_.clear();
  p.on_status_change(0.5);  // crossing down: re-advertise capacity
  EXPECT_EQ(transport_.unicast_count(), 2u);
}

TEST_F(ProtocolTest, RealtorNoUnsolicitedPledgeWithoutMembership) {
  RealtorProtocol p(5, config_, make_env());
  p.on_status_change(0.2);
  p.on_status_change(0.95);
  EXPECT_EQ(transport_.unicast_count(), 0u);
}

TEST_F(ProtocolTest, RealtorMembershipCapBoundsUnsolicitedFanout) {
  config_.max_communities = 2;
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.2;
  p.on_status_change(0.2);
  p.on_message(1, Message{HelpMsg{1, 0, 0.1}});
  engine_.run_until(1.0);
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  engine_.run_until(2.0);
  p.on_message(3, Message{HelpMsg{3, 0, 0.1}});  // evicts stalest organizer 1
  EXPECT_EQ(transport_.unicast_count(), 3u);  // replies are unconditional
  transport_.clear();
  p.on_status_change(0.95);
  EXPECT_EQ(transport_.unicast_count(), 2u);  // fanout capped
  std::set<NodeId> targets;
  for (const auto& sent : transport_.unicasts) targets.insert(sent.to);
  EXPECT_EQ(targets, (std::set<NodeId>{2, 3}));
}

TEST_F(ProtocolTest, RealtorBusyHostDoesNotAnswerHelp) {
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.95;
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  EXPECT_EQ(transport_.unicast_count(), 0u);
  EXPECT_EQ(p.community_count(), 0u);
}

TEST_F(ProtocolTest, RealtorHelpGatedByAlgorithmH) {
  RealtorProtocol p(0, config_, make_env());
  p.on_task_arrival(0.95);
  p.on_task_arrival(0.99);
  EXPECT_EQ(transport_.flood_count(), 1u);
  EXPECT_EQ(p.algorithm_h().helps_sent(), 1u);
}

TEST_F(ProtocolTest, RealtorSelfKilledForgetsEverything) {
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.2;
  p.on_status_change(0.2);
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  p.on_message(3, Message{PledgeMsg{3, 0.8, 0, 1.0}});
  p.on_self_killed();
  EXPECT_TRUE(p.migration_candidates().empty());
  EXPECT_EQ(p.community_count(), 0u);
  transport_.clear();
  p.on_status_change(0.95);
  EXPECT_EQ(transport_.unicast_count(), 0u);  // memberships gone
}

TEST_F(ProtocolTest, RealtorUnsolicitedPledgeCounterTracks) {
  RealtorProtocol p(5, config_, make_env());
  occupancy_ = 0.2;
  p.on_status_change(0.2);
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  p.on_status_change(0.95);
  p.on_status_change(0.2);
  EXPECT_EQ(p.unsolicited_pledges(), 2u);
}

// ----------------------------------------------- Multi-resource extension

TEST_F(ProtocolTest, PledgeListFiltersBySecurityQuery) {
  RealtorProtocol p(0, config_, make_env());
  PledgeMsg low;
  low.pledger = 3;
  low.availability = 0.9;
  low.security_level = 1;
  PledgeMsg high;
  high.pledger = 4;
  high.availability = 0.5;
  high.security_level = 3;
  p.on_message(3, Message{low});
  p.on_message(4, Message{high});
  EXPECT_EQ(p.migration_candidates(), (std::vector<NodeId>{3, 4}));
  CandidateQuery query;
  query.min_security = 2;
  EXPECT_EQ(p.migration_candidates(query), (std::vector<NodeId>{4}));
  query.min_security = 4;
  EXPECT_TRUE(p.migration_candidates(query).empty());
}

TEST_F(ProtocolTest, PushAdvertCarriesSecurityAndFilters) {
  AdaptivePushProtocol p(0, config_, make_env());
  PushAdvertMsg advert;
  advert.origin = 4;
  advert.availability = 0.8;
  advert.security_level = 2;
  p.on_message(4, Message{advert});
  CandidateQuery cleared;
  cleared.min_security = 2;
  EXPECT_EQ(p.migration_candidates(cleared), (std::vector<NodeId>{4}));
  CandidateQuery too_high;
  too_high.min_security = 3;
  EXPECT_TRUE(p.migration_candidates(too_high).empty());
}

TEST_F(ProtocolTest, OutgoingPledgeCarriesLocalSecurity) {
  ProtocolEnv env = make_env();
  env.local_security = [] { return std::uint8_t{2}; };
  RealtorProtocol p(5, config_, std::move(env));
  occupancy_ = 0.2;
  p.on_message(2, Message{HelpMsg{2, 0, 0.1}});
  ASSERT_EQ(transport_.unicast_count(), 1u);
  const auto& pledge = std::get<PledgeMsg>(transport_.unicasts[0].msg);
  EXPECT_EQ(pledge.security_level, 2);
}

TEST_F(ProtocolTest, MinAvailabilityQueryFilters) {
  RealtorProtocol p(0, config_, make_env());
  p.on_message(3, Message{PledgeMsg{3, 0.3, 0, 1.0}});
  p.on_message(4, Message{PledgeMsg{4, 0.8, 0, 1.0}});
  CandidateQuery query;
  query.min_availability = 0.5;
  EXPECT_EQ(p.migration_candidates(query), (std::vector<NodeId>{4}));
}

// ----------------------------------------------------------------- Factory

TEST(Factory, NamesRoundTrip) {
  for (const ProtocolKind kind : kExtendedProtocolKinds) {
    EXPECT_EQ(parse_protocol(to_string(kind)), kind);
    EXPECT_EQ(parse_protocol(paper_label(kind)), kind);
  }
  EXPECT_EQ(parse_protocol("REALTOR"), ProtocolKind::kRealtor);
  EXPECT_FALSE(parse_protocol("bogus").has_value());
}

TEST(Factory, BuildsEveryKind) {
  sim::Engine engine;
  net::Topology topo = net::make_mesh(3, 3);
  testing::FakeTransport transport;
  for (const ProtocolKind kind : kExtendedProtocolKinds) {
    ProtocolEnv env;
    env.engine = &engine;
    env.topology = &topo;
    env.transport = &transport;
    env.local_occupancy = [] { return 0.0; };
    env.seed = 1;
    ProtocolConfig config;
    const auto p = make_protocol(kind, 0, config, std::move(env));
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), to_string(kind));
    EXPECT_EQ(p->self(), 0u);
  }
}

}  // namespace
}  // namespace realtor::proto
