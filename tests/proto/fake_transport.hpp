// Scripted transport for protocol unit tests: records every send and lets
// the test deliver, duplicate, drop or reorder messages explicitly.
#pragma once

#include <vector>

#include "proto/transport.hpp"

namespace realtor::proto::testing {

struct SentFlood {
  NodeId origin;
  Message msg;
};

struct SentUnicast {
  NodeId from;
  NodeId to;
  Message msg;
};

class FakeTransport final : public Transport {
 public:
  void flood(NodeId origin, const Message& msg) override {
    floods.push_back(SentFlood{origin, msg});
  }

  void unicast(NodeId from, NodeId to, const Message& msg) override {
    unicasts.push_back(SentUnicast{from, to, msg});
  }

  std::size_t flood_count() const { return floods.size(); }
  std::size_t unicast_count() const { return unicasts.size(); }

  void clear() {
    floods.clear();
    unicasts.clear();
  }

  std::vector<SentFlood> floods;
  std::vector<SentUnicast> unicasts;
};

}  // namespace realtor::proto::testing
