#include "proto/algorithm_h.hpp"

#include <gtest/gtest.h>

namespace realtor::proto {
namespace {

ProtocolConfig base_config() {
  ProtocolConfig c;
  c.help_threshold = 0.9;
  c.initial_help_interval = 1.0;
  c.help_upper_limit = 100.0;
  c.help_interval_floor = 0.1;
  c.alpha = 1.0;
  c.beta = 0.5;
  c.help_timeout = 1.0;
  return c;
}

TEST(AlgorithmH, TriggersOnlyAboveThreshold) {
  AlgorithmH h(base_config());
  EXPECT_FALSE(h.should_send_help(10.0, 0.5));
  EXPECT_FALSE(h.should_send_help(10.0, 0.89));
  EXPECT_TRUE(h.should_send_help(10.0, 0.9));
  EXPECT_TRUE(h.should_send_help(10.0, 1.2));  // would-exceed counts too
}

TEST(AlgorithmH, FirstHelpAllowedImmediately) {
  AlgorithmH h(base_config());
  EXPECT_TRUE(h.should_send_help(0.0, 0.95));
}

TEST(AlgorithmH, IntervalGatesRepeatedHelp) {
  AlgorithmH h(base_config());
  h.note_help_sent(0.0);
  EXPECT_FALSE(h.should_send_help(0.5, 0.95));
  EXPECT_FALSE(h.should_send_help(1.0, 0.95));  // strictly greater required
  EXPECT_TRUE(h.should_send_help(1.01, 0.95));
}

TEST(AlgorithmH, TimeoutGrowsIntervalGeometrically) {
  AlgorithmH h(base_config());
  h.note_help_sent(0.0);
  h.note_timeout();
  EXPECT_DOUBLE_EQ(h.interval(), 2.0);
  h.note_timeout();
  EXPECT_DOUBLE_EQ(h.interval(), 4.0);
  EXPECT_EQ(h.timeouts(), 2u);
}

TEST(AlgorithmH, IntervalCappedAtUpperLimit) {
  AlgorithmH h(base_config());
  h.note_help_sent(0.0);
  for (int i = 0; i < 20; ++i) h.note_timeout();
  EXPECT_DOUBLE_EQ(h.interval(), 100.0);
}

TEST(AlgorithmH, SuccessShrinksInterval) {
  AlgorithmH h(base_config());
  h.note_help_sent(0.0);
  h.note_timeout();
  h.note_timeout();  // interval 4.0
  h.note_success();
  EXPECT_DOUBLE_EQ(h.interval(), 2.0);
  EXPECT_EQ(h.rewards(), 1u);
}

TEST(AlgorithmH, IntervalFloored) {
  AlgorithmH h(base_config());
  for (int i = 0; i < 20; ++i) h.note_success();
  EXPECT_DOUBLE_EQ(h.interval(), 0.1);
}

TEST(AlgorithmH, PledgeKeepsRoundOpenUntilTimeout) {
  AlgorithmH h(base_config());
  h.note_help_sent(0.0);
  EXPECT_TRUE(h.awaiting_response());
  EXPECT_TRUE(h.note_pledge());   // round open: driver restarts timer
  EXPECT_TRUE(h.note_pledge());   // still open
  h.note_timeout();
  EXPECT_FALSE(h.awaiting_response());
  EXPECT_FALSE(h.note_pledge());  // round closed: stray pledge
}

TEST(AlgorithmH, ClaimRoundRewardOncePerRound) {
  ProtocolConfig c = base_config();
  AlgorithmH h(c);
  h.note_help_sent(0.0);
  h.note_timeout();
  h.note_timeout();  // interval 4.0
  h.note_help_sent(10.0);
  EXPECT_TRUE(h.claim_round_reward());
  EXPECT_DOUBLE_EQ(h.interval(), 2.0);
  EXPECT_FALSE(h.claim_round_reward());  // second pledge, same round
  EXPECT_DOUBLE_EQ(h.interval(), 2.0);
  h.note_timeout();
  h.note_help_sent(20.0);
  EXPECT_TRUE(h.claim_round_reward());  // new round may reward again
}

TEST(AlgorithmH, ClaimRewardOutsideRoundIsNoop) {
  AlgorithmH h(base_config());
  EXPECT_FALSE(h.claim_round_reward());
  EXPECT_DOUBLE_EQ(h.interval(), 1.0);
}

TEST(AlgorithmH, HelpsSentCounted) {
  AlgorithmH h(base_config());
  EXPECT_DOUBLE_EQ(h.note_help_sent(0.0), 1.0);  // returns timeout duration
  h.note_timeout();
  h.note_help_sent(5.0);
  EXPECT_EQ(h.helps_sent(), 2u);
  EXPECT_DOUBLE_EQ(h.last_help_time(), 5.0);
}

TEST(AlgorithmH, GrowthStopsExactlyBelowUpperLimit) {
  // Fig. 2: grow only while (interval + interval*alpha) < Upper_limit.
  ProtocolConfig c = base_config();
  c.initial_help_interval = 60.0;
  c.alpha = 1.0;
  AlgorithmH h(c);
  h.note_help_sent(0.0);
  h.note_timeout();  // 60 + 60 = 120 >= 100 -> clamp to 100
  EXPECT_DOUBLE_EQ(h.interval(), 100.0);
}

}  // namespace
}  // namespace realtor::proto
