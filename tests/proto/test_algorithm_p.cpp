#include "proto/algorithm_p.hpp"

#include <gtest/gtest.h>

namespace realtor::proto {
namespace {

ProtocolConfig config_with_threshold(double threshold) {
  ProtocolConfig c;
  c.pledge_threshold = threshold;
  return c;
}

TEST(AlgorithmP, PledgesOnHelpOnlyBelowThreshold) {
  AlgorithmP p(config_with_threshold(0.9));
  EXPECT_TRUE(p.should_pledge_on_help(0.0));
  EXPECT_TRUE(p.should_pledge_on_help(0.89));
  EXPECT_FALSE(p.should_pledge_on_help(0.9));
  EXPECT_FALSE(p.should_pledge_on_help(1.0));
}

TEST(AlgorithmP, StatusCrossingsReported) {
  AlgorithmP p(config_with_threshold(0.9));
  EXPECT_EQ(p.note_status(0.0, 0.1), node::Crossing::kNone);
  EXPECT_EQ(p.note_status(1.0, 0.95), node::Crossing::kUp);
  EXPECT_EQ(p.note_status(2.0, 0.97), node::Crossing::kNone);
  EXPECT_EQ(p.note_status(3.0, 0.5), node::Crossing::kDown);
}

TEST(AlgorithmP, GrantProbabilityDefaultsToOne) {
  AlgorithmP p(config_with_threshold(0.9));
  EXPECT_DOUBLE_EQ(p.grant_probability(0.0), 1.0);
}

TEST(AlgorithmP, GrantProbabilityTracksTimeBelowThreshold) {
  AlgorithmP p(config_with_threshold(0.5));
  p.note_status(0.0, 0.1);   // below on [0, 10)
  p.note_status(10.0, 0.9);  // above on [10, 20)
  EXPECT_NEAR(p.grant_probability(20.0), 0.5, 1e-9);
  p.note_status(20.0, 0.1);  // below on [20, 40)
  EXPECT_NEAR(p.grant_probability(40.0), 0.75, 1e-9);
}

TEST(AlgorithmP, ThresholdAccessor) {
  AlgorithmP p(config_with_threshold(0.75));
  EXPECT_DOUBLE_EQ(p.threshold(), 0.75);
}

}  // namespace
}  // namespace realtor::proto
